"""Setup shim: enables legacy editable installs in offline environments
(no `wheel` package available for PEP 517 editable wheels)."""
from setuptools import setup

setup()
