"""Content-addressed checkpoint store: keys, verification, persistence."""

import json

import pytest

from repro.errors import SupervisionError
from repro.supervision.checkpoint import CheckpointStore, checkpoint_key


class TestCheckpointKey:
    def test_key_is_stable(self):
        config = {"linkage": "GROUP_AVERAGE", "n_sample": 60}
        assert checkpoint_key(0, config, "linkage") == checkpoint_key(0, config, "linkage")

    def test_key_ignores_dict_ordering(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert checkpoint_key(3, a, "cut") == checkpoint_key(3, b, "cut")

    def test_key_separates_seed_config_stage(self):
        config = {"n_sample": 60}
        base = checkpoint_key(0, config, "sample")
        assert checkpoint_key(1, config, "sample") != base
        assert checkpoint_key(0, {"n_sample": 61}, "sample") != base
        assert checkpoint_key(0, config, "linkage") != base


class TestInMemoryStore:
    def test_save_load_roundtrip(self):
        store = CheckpointStore()
        key = checkpoint_key(0, {}, "sample")
        store.save(key, "sample", [1, 2, 3])
        assert store.load(key) == [1, 2, 3]
        assert key in store
        assert len(store) == 1
        assert store.stages == ["sample"]

    def test_missing_key_returns_none(self):
        assert CheckpointStore().load("0" * 64) is None

    def test_corrupt_payload_degrades_to_missing(self):
        store = CheckpointStore()
        key = checkpoint_key(0, {}, "linkage")
        store.save(key, "linkage", {"a": 1})
        store._blobs[key] = b"flipped bits"  # simulate memory corruption
        assert store.load(key) is None
        assert store.corrupt_detected == 1
        assert key not in store  # evicted; the stage will recompute

    def test_journal_records_completion_order(self):
        store = CheckpointStore()
        for stage in ("collect", "payload_check", "sample"):
            store.save(checkpoint_key(0, {}, stage), stage, stage.upper())
        assert store.stages == ["collect", "payload_check", "sample"]

    def test_clear_forgets_everything(self):
        store = CheckpointStore()
        key = checkpoint_key(0, {}, "cut")
        store.save(key, "cut", "x")
        store.clear()
        assert store.load(key) is None
        assert len(store) == 0


class TestDirectoryStore:
    def test_blobs_and_journal_persisted(self, tmp_path):
        store = CheckpointStore(root=tmp_path)
        key = checkpoint_key(5, {"n": 1}, "sample")
        store.save(key, "sample", {"v": 42})
        assert (tmp_path / f"{key}.ckpt").exists()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["stage"] == "sample"

    def test_fresh_process_resumes_from_disk(self, tmp_path):
        key = checkpoint_key(5, {"n": 1}, "sample")
        CheckpointStore(root=tmp_path).save(key, "sample", {"v": 42})
        # a brand-new store object (fresh process) replays the journal
        resumed = CheckpointStore(root=tmp_path)
        assert resumed.stages == ["sample"]
        assert resumed.load(key) == {"v": 42}

    def test_bitflipped_blob_on_disk_degrades_to_recompute(self, tmp_path):
        key = checkpoint_key(5, {}, "linkage")
        CheckpointStore(root=tmp_path).save(key, "linkage", [1, 2])
        blob = tmp_path / f"{key}.ckpt"
        raw = bytearray(blob.read_bytes())
        raw[0] ^= 0xFF
        blob.write_bytes(bytes(raw))
        resumed = CheckpointStore(root=tmp_path)
        assert resumed.load(key) is None
        assert resumed.corrupt_detected == 1

    def test_corrupt_journal_line_raises(self, tmp_path):
        (tmp_path / "journal.jsonl").write_text("not json at all\n")
        with pytest.raises(SupervisionError):
            CheckpointStore(root=tmp_path)
