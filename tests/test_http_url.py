"""URL splitting, percent-encoding, and query-string handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.http.url import QueryString, parse_url, percent_decode, percent_encode


class TestPercentEncoding:
    def test_unreserved_untouched(self):
        assert percent_encode("abcXYZ019-._~") == "abcXYZ019-._~"

    def test_space_becomes_plus_by_default(self):
        assert percent_encode("a b") == "a+b"

    def test_space_percent_form(self):
        assert percent_encode("a b", plus_spaces=False) == "a%20b"

    def test_reserved_encoded(self):
        assert percent_encode("a&b=c") == "a%26b%3Dc"

    def test_utf8_multibyte(self):
        assert percent_encode("日") == "%E6%97%A5"

    def test_decode_inverse(self):
        assert percent_decode("a%26b%3Dc") == "a&b=c"

    def test_decode_plus(self):
        assert percent_decode("a+b") == "a b"
        assert percent_decode("a+b", plus_spaces=False) == "a+b"

    def test_decode_tolerates_bare_percent(self):
        assert percent_decode("100%") == "100%"
        assert percent_decode("a%zzb") == "a%zzb"

    @given(st.text(max_size=40))
    def test_roundtrip(self, text):
        assert percent_decode(percent_encode(text)) == text


class TestParseUrl:
    def test_origin_form(self):
        assert parse_url("/p/a?x=1#f") == ("/p/a", "x=1", "f")

    def test_no_query(self):
        assert parse_url("/path") == ("/path", "", "")

    def test_absolute_url(self):
        assert parse_url("http://h.example.com/p?q=2") == ("/p", "q=2", "")

    def test_absolute_url_without_path(self):
        assert parse_url("http://h.example.com") == ("/", "", "")

    def test_relative_target_gets_leading_slash(self):
        path, __, __ = parse_url("p?x=1")
        assert path == "/p"

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_url("")


class TestQueryString:
    def test_parse_ordered(self):
        q = QueryString.parse("b=2&a=1&b=3")
        assert q.pairs == [("b", "2"), ("a", "1"), ("b", "3")]

    def test_get_first(self):
        q = QueryString.parse("b=2&b=3")
        assert q.get("b") == "2"

    def test_get_default(self):
        assert QueryString.parse("a=1").get("zz", "d") == "d"

    def test_get_all(self):
        assert QueryString.parse("b=2&a=1&b=3").get_all("b") == ["2", "3"]

    def test_bare_key(self):
        q = QueryString.parse("flag&a=1")
        assert q.get("flag") == ""

    def test_contains_and_len(self):
        q = QueryString.parse("a=1&b=2")
        assert "a" in q
        assert "c" not in q
        assert len(q) == 2

    def test_decodes_values(self):
        q = QueryString.parse("msg=hello+world%21")
        assert q.get("msg") == "hello world!"

    def test_encode_roundtrip(self):
        q = QueryString.parse("a=1&b=two+words")
        assert QueryString.parse(q.encode()).pairs == q.pairs

    def test_add_preserves_order(self):
        q = QueryString()
        q.add("z", "1")
        q.add("a", "2")
        assert q.keys() == ["z", "a"]

    def test_empty(self):
        assert len(QueryString.parse("")) == 0
        assert QueryString.parse("").encode() == ""
