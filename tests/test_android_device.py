"""Device identifier getters behind the Binder."""

from random import Random

import pytest

from repro.android.device import Device
from repro.android.permissions import INTERNET, Manifest, READ_PHONE_STATE
from repro.errors import PermissionDenied
from repro.sensitive.identifiers import IdentifierKind


def manifest(*perms):
    return Manifest(package="jp.test.app", permissions=frozenset(perms))


@pytest.fixture
def device():
    return Device.generate(Random(9))


class TestGetters:
    def test_phone_state_getters_with_permission(self, device):
        m = manifest(INTERNET, READ_PHONE_STATE)
        assert device.get_device_id(m) == device.identity.imei
        assert device.get_subscriber_id(m) == device.identity.imsi
        assert device.get_sim_serial_number(m) == device.identity.sim_serial
        assert device.get_network_operator_name(m) == device.identity.carrier

    def test_phone_state_getters_denied(self, device):
        m = manifest(INTERNET)
        for getter in (
            device.get_device_id,
            device.get_subscriber_id,
            device.get_sim_serial_number,
            device.get_network_operator_name,
        ):
            with pytest.raises(PermissionDenied):
                getter(m)

    def test_android_id_needs_nothing(self, device):
        assert device.get_android_id(manifest()) == device.identity.android_id

    def test_read_identifier_generic(self, device):
        m = manifest(INTERNET, READ_PHONE_STATE)
        for kind in IdentifierKind:
            assert device.read_identifier(m, kind) == device.identity.value_of(kind)

    def test_can_read_probes_without_raising(self, device):
        m = manifest(INTERNET)
        assert device.can_read(m, IdentifierKind.ANDROID_ID)
        assert not device.can_read(m, IdentifierKind.IMEI)


class TestMetadata:
    def test_user_agent_mentions_device(self, device):
        assert device.model in device.user_agent
        assert device.android_version in device.user_agent

    def test_generate_is_deterministic(self):
        a = Device.generate(Random(1))
        b = Device.generate(Random(1))
        assert a.identity == b.identity
