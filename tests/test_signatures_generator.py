"""Signature generation from clusters and dendrograms."""

import pytest

from repro.clustering.linkage import agglomerate
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.errors import SignatureError
from repro.signatures.generator import GeneratorConfig, SignatureGenerator, deduplicate
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.tokens import TokenFilter
from tests.conftest import make_packet


def ad_packet(seq, udid="deadbeef11223344"):
    return make_packet(
        host="api.ad-maker.info",
        ip="219.94.128.7",
        target=f"/api/v2/imp?sid=PUBTOKEN&udid={udid}&seq={seq}",
    )


def other_packet(page):
    return make_packet(
        host="m.naver.jp", ip="125.209.222.10", target=f"/matome/feed?page={page}&fmt=json"
    )


class TestSignatureForCluster:
    def test_extracts_udid_token(self):
        generator = SignatureGenerator()
        signature = generator.signature_for_cluster([ad_packet(1), ad_packet(2), ad_packet(3)])
        assert signature is not None
        assert any("udid=deadbeef11223344" in t for t in signature.tokens)

    def test_scoped_to_domain_when_coherent(self):
        signature = SignatureGenerator().signature_for_cluster([ad_packet(1), ad_packet(2)])
        assert signature.scope_domain == "ad-maker.info"

    def test_unscoped_when_mixed_domains(self):
        p = ad_packet(1)
        q = make_packet(host="x.elsewhere.net", target="/api/v2/imp?sid=PUBTOKEN&udid=deadbeef11223344&seq=9")
        signature = SignatureGenerator().signature_for_cluster([p, q])
        assert signature is not None
        assert signature.scope_domain == ""

    def test_small_cluster_skipped(self):
        assert SignatureGenerator().signature_for_cluster([ad_packet(1)]) is None

    def test_nothing_shared_returns_none(self):
        cfg = GeneratorConfig(token_filter=TokenFilter(min_length=12))
        p = make_packet(host="a.example.com", target="/aaaa?x=111111")
        q = make_packet(host="a.example.com", target="/bbbb?y=222222")
        assert SignatureGenerator(cfg).signature_for_cluster([p, q]) is None

    def test_max_tokens_cap_keeps_longest(self):
        cfg = GeneratorConfig(max_tokens=2)
        signature = SignatureGenerator(cfg).signature_for_cluster([ad_packet(1), ad_packet(2)])
        assert signature is not None
        assert len(signature.tokens) <= 2

    def test_source_cluster_recorded(self):
        signature = SignatureGenerator().signature_for_cluster([ad_packet(i) for i in range(5)])
        assert signature.source_cluster == 5


class TestFromDendrogram:
    def test_end_to_end_two_modules(self):
        packets = [ad_packet(i) for i in range(4)] + [other_packet(i) for i in range(4)]
        matrix = distance_matrix(packets, PacketDistance.paper())
        dendrogram = agglomerate(matrix)
        signatures = SignatureGenerator().from_dendrogram(dendrogram, packets)
        assert signatures
        domains = {s.scope_domain for s in signatures}
        assert "ad-maker.info" in domains

    def test_leaf_count_mismatch_rejected(self):
        packets = [ad_packet(i) for i in range(3)]
        matrix = distance_matrix(packets, PacketDistance.paper())
        dendrogram = agglomerate(matrix)
        with pytest.raises(SignatureError):
            SignatureGenerator().from_dendrogram(dendrogram, packets[:2])

    def test_generated_signatures_match_their_cluster(self):
        packets = [ad_packet(i) for i in range(4)]
        matrix = distance_matrix(packets, PacketDistance.paper())
        dendrogram = agglomerate(matrix)
        signatures = SignatureGenerator().from_dendrogram(dendrogram, packets)
        assert signatures
        matched = [p for p in packets if any(s.matches(p) for s in signatures)]
        assert len(matched) == len(packets)


class TestDeduplicate:
    def test_subsumed_dropped(self):
        broad = ConjunctionSignature(tokens=("udid=",), scope_domain="")
        narrow = ConjunctionSignature(tokens=("udid=deadbeef", "seq="), scope_domain="x.com")
        kept = deduplicate([broad, narrow])
        assert kept == [broad]

    def test_different_scopes_both_kept(self):
        a = ConjunctionSignature(tokens=("udid=abc",), scope_domain="a.com")
        b = ConjunctionSignature(tokens=("udid=abc",), scope_domain="b.com")
        assert len(deduplicate([a, b])) == 2

    def test_unrelated_tokens_both_kept(self):
        a = ConjunctionSignature(tokens=("alpha=1",))
        b = ConjunctionSignature(tokens=("beta=2",))
        assert len(deduplicate([a, b])) == 2

    def test_scoped_not_allowed_to_subsume_unscoped(self):
        scoped = ConjunctionSignature(tokens=("udid=",), scope_domain="a.com")
        unscoped = ConjunctionSignature(tokens=("udid=abc",), scope_domain="")
        kept = deduplicate([scoped, unscoped])
        assert len(kept) == 2
