"""Brute-force verification of conjunction matching semantics.

The matcher claims: all tokens occur left-to-right in non-overlapping
positions.  A naive recursive matcher defines the same predicate by
enumeration; hypothesis drives both over random token sets and texts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures.conjunction import ConjunctionSignature

alphabet = "ab="


def brute_force_matches(tokens, text, start=0):
    """Exhaustive: try every placement of the first token, recurse."""
    if not tokens:
        return True
    token = tokens[0]
    position = start
    while True:
        found = text.find(token, position)
        if found < 0:
            return False
        if brute_force_matches(tokens[1:], text, found + len(token)):
            return True
        position = found + 1


@settings(max_examples=300, deadline=None)
@given(
    tokens=st.lists(st.text(alphabet=alphabet, min_size=1, max_size=3), min_size=1, max_size=3),
    text=st.text(alphabet=alphabet, max_size=16),
)
def test_greedy_matcher_agrees_or_is_stricter(tokens, text):
    """The production matcher is greedy (first placement wins).  Greedy
    left-to-right matching over plain substrings is complete for this
    predicate when a match exists with earliest placements — which is
    exactly the classic subsequence-of-substrings argument.  Verify
    agreement with exhaustive search."""
    signature = ConjunctionSignature(tokens=tuple(tokens))
    assert signature.matches_text(text) == brute_force_matches(tokens, text)


@settings(max_examples=200, deadline=None)
@given(
    tokens=st.lists(st.text(alphabet=alphabet, min_size=1, max_size=3), min_size=1, max_size=3),
    text=st.text(alphabet=alphabet, max_size=16),
)
def test_token_hits_bounded_by_match(tokens, text):
    signature = ConjunctionSignature(tokens=tuple(tokens))
    hits = signature.token_hits(text)
    assert 0 <= hits <= len(tokens)
    if signature.matches_text(text):
        assert hits == len(tokens)
