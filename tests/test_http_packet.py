"""HttpPacket and Destination: model fields and JSON persistence."""

import pytest

from repro.errors import ParseError
from repro.http.packet import Destination, HttpPacket
from tests.conftest import make_packet


class TestDestination:
    def test_make(self):
        d = Destination.make("10.0.0.1", 80, "Ads.Example.COM")
        assert str(d.ip) == "10.0.0.1"
        assert d.port == 80
        assert d.host == "ads.example.com"  # normalized

    def test_registered_domain(self):
        d = Destination.make("10.0.0.1", 80, "googleads.g.doubleclick.net")
        assert d.registered_domain == "doubleclick.net"

    def test_rejects_bad_port(self):
        with pytest.raises(Exception):
            Destination.make("10.0.0.1", 0, "h.example.com")

    def test_str(self):
        d = Destination.make("10.0.0.1", 8080, "h.example.com")
        assert "h.example.com" in str(d)
        assert "8080" in str(d)


class TestPacketFields:
    def test_paper_six_fields(self):
        p = make_packet(
            host="ads.x.com",
            ip="1.2.3.4",
            port=443,
            target="/ad?u=9",
            cookie="sid=1",
            body=b"k=v",
        )
        assert str(p.ip) == "1.2.3.4"
        assert p.port == 443
        assert p.host == "ads.x.com"
        assert p.request_line.startswith("POST /ad?u=9")
        assert p.cookie == "sid=1"
        assert p.body == b"k=v"

    def test_canonical_text_has_three_fields(self):
        p = make_packet(target="/x?q=1", cookie="c=2", body=b"b=3")
        text = p.canonical_text()
        assert "/x?q=1" in text
        assert "c=2" in text
        assert "b=3" in text

    def test_wire_bytes_parseable(self):
        from repro.http.parser import parse_request

        p = make_packet(body=b"a=1")
        again = parse_request(p.wire_bytes())
        assert again.body == b"a=1"


class TestPersistence:
    def test_roundtrip(self):
        p = make_packet(cookie="sid=x", body=b"imei=123", app_id="jp.a.b")
        p.timestamp = 12.5
        p.meta["service"] = "test"
        d = p.to_dict()
        again = HttpPacket.from_dict(d)
        assert again.host == p.host
        assert again.port == p.port
        assert str(again.ip) == str(p.ip)
        assert again.app_id == "jp.a.b"
        assert again.timestamp == 12.5
        assert again.meta == {"service": "test"}
        assert again.cookie == "sid=x"
        assert again.body == b"imei=123"

    def test_from_dict_missing_key(self):
        with pytest.raises(ParseError):
            HttpPacket.from_dict({"ip": "1.2.3.4"})

    def test_defaults_for_optional_fields(self):
        p = make_packet()
        d = p.to_dict()
        del d["meta"]
        d.pop("timestamp")
        again = HttpPacket.from_dict(d)
        assert again.meta == {}
        assert again.timestamp == 0.0
