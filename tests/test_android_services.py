"""The wire-format engine: templates, value sources, permission gating."""

from random import Random

import pytest

from repro.android.app import Application
from repro.android.device import Device
from repro.android.permissions import INTERNET, Manifest, READ_PHONE_STATE
from repro.android.services import (
    Param,
    RequestTemplate,
    Service,
    ServiceSpec,
    ValueSource,
)
from repro.errors import SimulationError
from repro.sensitive.identifiers import IdentifierKind
from repro.sensitive.transforms import Transform


def make_spec(templates, hosts=("api.svc.example.com", "img.svc.example.com")):
    return ServiceSpec(
        name="svc",
        category="ad",
        hosts=hosts,
        ip_base="198.51.100.0",
        templates=tuple(templates),
        packets_per_app=3.0,
    )


def make_app(*perms, package="jp.test.app"):
    return Application(
        package=package,
        manifest=Manifest(package=package, permissions=frozenset(perms or (INTERNET,))),
    )


@pytest.fixture
def device():
    return Device.generate(Random(4))


def one_packet(spec, app, device, seed=0):
    service = Service(spec)
    packets = service.session_packets(app, device, Random(seed), 1)
    assert len(packets) == 1
    return packets[0]


class TestSpecValidation:
    def test_needs_hosts(self):
        with pytest.raises(SimulationError):
            ServiceSpec(name="x", category="ad", hosts=(), ip_base="1.2.3.0")

    def test_template_host_index_checked(self):
        bad = RequestTemplate(name="t", method="GET", path="/p", host_index=5)
        with pytest.raises(SimulationError):
            make_spec([bad])


class TestIpAssignment:
    def test_hosts_get_stable_ips_in_block(self):
        spec = make_spec([RequestTemplate(name="t", method="GET", path="/p")])
        a = Service(spec)
        b = Service(spec)
        for host in spec.hosts:
            assert a.ip_for(host) == b.ip_for(host)
            assert a.ip_for(host).in_network(a.ip_for(spec.hosts[0]), 24)

    def test_different_hosts_usually_differ(self):
        spec = make_spec([RequestTemplate(name="t", method="GET", path="/p")])
        service = Service(spec)
        assert service.ip_for(spec.hosts[0]) != service.ip_for(spec.hosts[1])


class TestValueSources:
    def test_literal_and_package(self, device):
        t = RequestTemplate(
            name="t",
            method="GET",
            path="/p",
            query=(Param.lit("v", "1.2"), Param("pkg", ValueSource.PACKAGE)),
        )
        packet = one_packet(make_spec([t]), make_app(), device)
        assert "v=1.2" in packet.request.target
        assert "pkg=jp.test.app" in packet.request.target

    def test_app_token_stable_per_app(self, device):
        t = RequestTemplate(
            name="t", method="GET", path="/p", query=(Param("sid", ValueSource.APP_TOKEN, length=10),)
        )
        spec = make_spec([t])
        p1 = one_packet(spec, make_app(), device, seed=1)
        p2 = one_packet(spec, make_app(), device, seed=2)
        p3 = one_packet(spec, make_app(package="jp.other.app"), device, seed=1)
        token = lambda p: p.request.query.get("sid")
        assert token(p1) == token(p2)
        assert token(p1) != token(p3)

    def test_random_hex_fresh_each_request(self, device):
        t = RequestTemplate(
            name="t", method="GET", path="/p", query=(Param("r", ValueSource.RANDOM_HEX, length=12),)
        )
        service = Service(make_spec([t]))
        packets = service.session_packets(make_app(), device, Random(0), 5)
        values = {p.request.query.get("r") for p in packets}
        assert len(values) == 5

    def test_sequence_increments(self, device):
        t = RequestTemplate(
            name="t", method="GET", path="/p", query=(Param("seq", ValueSource.SEQUENCE),)
        )
        service = Service(make_spec([t]))
        packets = service.session_packets(make_app(), device, Random(0), 3)
        seqs = sorted(int(p.request.query.get("seq")) for p in packets)
        assert seqs == [1, 2, 3]

    def test_identifier_with_permission(self, device):
        t = RequestTemplate(
            name="t", method="GET", path="/p",
            query=(Param.ident("imei", IdentifierKind.IMEI),),
        )
        app = make_app(INTERNET, READ_PHONE_STATE)
        packet = one_packet(make_spec([t]), app, device)
        assert device.identity.imei in packet.request.target

    def test_identifier_gated_silently_omitted(self, device):
        t = RequestTemplate(
            name="t", method="GET", path="/p",
            query=(Param.ident("imei", IdentifierKind.IMEI), Param.lit("v", "1")),
        )
        packet = one_packet(make_spec([t]), make_app(INTERNET), device)
        assert "imei" not in packet.request.target
        assert "v=1" in packet.request.target  # rest of the request intact

    def test_identifier_hash_transform(self, device):
        import hashlib

        t = RequestTemplate(
            name="t", method="GET", path="/p",
            query=(Param.ident("u", IdentifierKind.ANDROID_ID, Transform.MD5),),
        )
        packet = one_packet(make_spec([t]), make_app(), device)
        digest = hashlib.md5(device.identity.android_id.encode()).hexdigest()
        assert digest in packet.request.target

    def test_app_gate_deterministic_per_app(self, device):
        t = RequestTemplate(
            name="t", method="GET", path="/p",
            query=(Param.ident("u", IdentifierKind.ANDROID_ID, app_gate=0.5),),
        )
        spec = make_spec([t])
        app = make_app()
        results = {
            "u" in one_packet(spec, app, device, seed=s).request.query for s in range(5)
        }
        assert len(results) == 1  # same app -> always same gate outcome


class TestPacketShape:
    def test_post_body_form_encoded(self, device):
        t = RequestTemplate(
            name="t", method="POST", path="/collect",
            body=(Param.lit("k", "v"), Param.lit("k2", "v w")),
        )
        packet = one_packet(make_spec([t]), make_app(), device)
        assert packet.request.method == "POST"
        assert packet.body == b"k=v&k2=v+w"
        assert "x-www-form-urlencoded" in packet.request.header("Content-Type")
        assert packet.request.header("Content-Length") == str(len(packet.body))

    def test_cookies_rendered(self, device):
        t = RequestTemplate(
            name="t", method="GET", path="/p", cookies=(Param.lit("sid", "abc"),)
        )
        packet = one_packet(make_spec([t]), make_app(), device)
        assert packet.cookie == "sid=abc"

    def test_host_header_matches_destination(self, device):
        t = RequestTemplate(name="t", method="GET", path="/p", host_index=1)
        packet = one_packet(make_spec([t]), make_app(), device)
        assert packet.host == "img.svc.example.com"
        assert packet.request.host == packet.host

    def test_meta_provenance(self, device):
        t = RequestTemplate(name="boot", method="GET", path="/p")
        packet = one_packet(make_spec([t]), make_app(), device)
        assert packet.meta["service"] == "svc"
        assert packet.meta["event"] == "boot"
        assert packet.app_id == "jp.test.app"


class TestSessionPackets:
    def test_once_templates_fire_once(self, device):
        templates = [
            RequestTemplate(name="init", method="GET", path="/init", once=True),
            RequestTemplate(name="poll", method="GET", path="/poll", weight=1.0),
        ]
        service = Service(make_spec(templates))
        packets = service.session_packets(make_app(), device, Random(0), 6)
        inits = [p for p in packets if p.meta["event"] == "init"]
        assert len(inits) == 1

    def test_count_zero(self, device):
        service = Service(make_spec([RequestTemplate(name="t", method="GET", path="/p")]))
        assert service.session_packets(make_app(), device, Random(0), 0) == []

    def test_timestamps_sorted_within_duration(self, device):
        service = Service(make_spec([RequestTemplate(name="t", method="GET", path="/p")]))
        packets = service.session_packets(make_app(), device, Random(0), 10, duration=300.0)
        times = [p.timestamp for p in packets]
        assert times == sorted(times)
        assert all(0 <= t <= 300 for t in times)

    def test_weights_respected_roughly(self, device):
        templates = [
            RequestTemplate(name="often", method="GET", path="/a", weight=9.0),
            RequestTemplate(name="rare", method="GET", path="/b", weight=1.0),
        ]
        service = Service(make_spec(templates))
        packets = service.session_packets(make_app(), device, Random(0), 200)
        often = sum(1 for p in packets if p.meta["event"] == "often")
        assert often > 140
