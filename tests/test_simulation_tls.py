"""TLS adoption: observer view, per-service migration, determinism."""

from random import Random

import pytest

from repro.simulation.tls import adopt_tls, encrypt_packet
from tests.conftest import make_packet


def ad_packet(i, service="adnet"):
    p = make_packet(host="ads.adnet.com", target=f"/imp?udid=deadbeef&seq={i}")
    p.meta.update({"service": service, "category": "ad"})
    return p


def content_packet(i):
    p = make_packet(host="img.other.jp", target=f"/img?i={i}")
    p.meta.update({"service": "cdn", "category": "content"})
    return p


class TestEncryptPacket:
    def test_content_hidden(self):
        original = ad_packet(1)
        observed = encrypt_packet(original, Random(1))
        assert "udid=deadbeef" not in observed.canonical_text()
        assert observed.port == 443
        assert observed.host == original.host
        assert observed.meta["tls"] is True

    def test_provenance_kept(self):
        observed = encrypt_packet(ad_packet(1), Random(1))
        assert observed.app_id == "jp.test.app"
        assert observed.meta["service"] == "adnet"

    def test_original_untouched(self):
        original = ad_packet(1)
        encrypt_packet(original, Random(1))
        assert "udid=deadbeef" in original.canonical_text()


class TestAdoptTls:
    def test_zero_adoption_is_identity(self):
        packets = [ad_packet(i) for i in range(5)]
        observed = adopt_tls(packets, 0.0, seed=1)
        assert observed == packets

    def test_full_adoption_encrypts_all_ad_traffic(self):
        packets = [ad_packet(i) for i in range(5)] + [content_packet(9)]
        observed = adopt_tls(packets, 1.0, seed=1)
        assert all(p.meta.get("tls") for p in observed[:5])
        assert not observed[5].meta.get("tls")

    def test_per_service_migration(self):
        packets = [ad_packet(i, service=f"svc{i % 4}") for i in range(40)]
        observed = adopt_tls(packets, 0.5, seed=3)
        by_service: dict[str, set[bool]] = {}
        for packet in observed:
            by_service.setdefault(packet.meta["service"], set()).add(
                bool(packet.meta.get("tls"))
            )
        # A service is either fully migrated or fully plaintext.
        assert all(len(states) == 1 for states in by_service.values())

    def test_deterministic(self):
        packets = [ad_packet(i, service=f"svc{i % 3}") for i in range(12)]
        a = adopt_tls(packets, 0.5, seed=7)
        b = adopt_tls(packets, 0.5, seed=7)
        assert [p.meta.get("tls", False) for p in a] == [p.meta.get("tls", False) for p in b]

    def test_invalid_adoption(self):
        with pytest.raises(ValueError):
            adopt_tls([], 1.5)

    def test_detection_floor_falls_with_adoption(self, small_corpus, small_split):
        """The headline limitation: signatures trained on plaintext lose
        exactly the migrated services' traffic."""
        from repro.core.pipeline import DetectionPipeline
        from repro.signatures.matcher import SignatureMatcher

        suspicious, __ = small_split
        pipeline = DetectionPipeline(small_corpus.trace, small_corpus.payload_check())
        result = pipeline.run(n_sample=80, seed=1)
        matcher = SignatureMatcher(result.signatures)

        recalls = []
        for adoption in (0.0, 0.5, 1.0):
            observed = adopt_tls(list(suspicious), adoption, seed=5)
            recalls.append(sum(matcher.is_sensitive(p) for p in observed) / len(observed))
        assert recalls[0] >= recalls[1] >= recalls[2]
        assert recalls[0] - recalls[2] > 0.3  # most leaks ride ad traffic
