"""Brute-force verification of the clustering algorithm.

The library computes group-average linkage with the Lance-Williams
recurrence; the paper defines it as the literal double sum

    d_group(Cx, Cy) = (1/|Cx||Cy|) * sum_{p in Cx} sum_{q in Cy} d(p, q).

This suite re-implements agglomeration naively from that definition and
checks the optimized version produces the identical merge tree — heights
and cluster memberships — on random inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.linkage import Linkage, agglomerate
from repro.distance.matrix import distance_matrix


def brute_force_group_average(points):
    """Naive agglomeration straight from the paper's definition.

    Returns the merge heights, the partition trajectory as frozensets
    (order-independent comparison material), and the smallest gap seen
    between the best and runner-up candidate merge across all rounds.
    A tiny gap means the merge choice is decided by float noise — the
    optimized recurrence may legitimately pick the other pair, so
    callers should skip exact comparisons in that regime.
    """

    def d(a, b):
        return abs(a - b)

    clusters: list[list[int]] = [[i] for i in range(len(points))]
    heights: list[float] = []
    partitions: list[set[frozenset]] = []
    min_gap = float("inf")
    while len(clusters) > 1:
        best = None
        runner_up = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                total = sum(
                    d(points[p], points[q]) for p in clusters[i] for q in clusters[j]
                )
                avg = total / (len(clusters[i]) * len(clusters[j]))
                if best is None or avg < best[0]:
                    runner_up = best[0] if best is not None else None
                    best = (avg, i, j)
                elif runner_up is None or avg < runner_up:
                    runner_up = avg
        avg, i, j = best
        if runner_up is not None:
            min_gap = min(min_gap, runner_up - avg)
        heights.append(avg)
        merged = clusters[i] + clusters[j]
        clusters = [c for k, c in enumerate(clusters) if k not in (i, j)]
        clusters.append(merged)
        partitions.append({frozenset(c) for c in clusters})
    return heights, partitions, min_gap


# Below this, best and runner-up candidate merges are indistinguishable at
# float precision: either merge order is a valid group-average dendrogram,
# so exact-match assertions are skipped.
AMBIGUITY_GAP = 1e-9


class TestAgainstBruteForce:
    def test_known_sequence(self):
        points = [0.0, 1.0, 5.0, 6.5, 20.0]
        matrix = distance_matrix(points, lambda a, b: abs(a - b))
        dendrogram = agglomerate(matrix, Linkage.GROUP_AVERAGE)
        brute_heights, __, __gap = brute_force_group_average(points)
        ours = [m.height for m in dendrogram.merges]
        assert all(abs(a - b) < 1e-9 for a, b in zip(sorted(ours), sorted(brute_heights)))

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(0, 1000, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=9,
            unique=True,
        )
    )
    def test_heights_match_on_random_inputs(self, points):
        matrix = distance_matrix(points, lambda a, b: abs(a - b))
        dendrogram = agglomerate(matrix, Linkage.GROUP_AVERAGE)
        brute_heights, __, gap = brute_force_group_average(points)
        if gap < AMBIGUITY_GAP:
            return  # merge choice decided by float noise; either order is valid
        ours = sorted(m.height for m in dendrogram.merges)
        theirs = sorted(brute_heights)
        assert all(abs(a - b) < 1e-6 for a, b in zip(ours, theirs))

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.floats(0, 1000, allow_nan=False, allow_infinity=False),
            min_size=3,
            max_size=8,
            unique=True,
        )
    )
    def test_final_two_clusters_match(self, points):
        """The last merge's two sides must agree with brute force (ties in
        earlier merges can reorder internal structure, but the top split is
        determined for unique heights)."""
        matrix = distance_matrix(points, lambda a, b: abs(a - b))
        dendrogram = agglomerate(matrix, Linkage.GROUP_AVERAGE)
        heights, partitions, gap = brute_force_group_average(points)
        if gap < AMBIGUITY_GAP:
            return  # merge choice decided by float noise; either order is valid
        # Partition just before the last brute-force merge = two clusters.
        brute_two = partitions[-2] if len(partitions) >= 2 else partitions[-1]
        root_left, root_right = dendrogram.children(dendrogram.root)
        ours_two = {
            frozenset(dendrogram.leaves(root_left)),
            frozenset(dendrogram.leaves(root_right)),
        }
        # Only assert when brute force heights are unique (no tie games).
        if len(set(round(h, 9) for h in heights)) == len(heights):
            assert ours_two == brute_two
