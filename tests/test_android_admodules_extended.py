"""Wire-format fidelity for the catalog services not covered elsewhere."""

import hashlib
from random import Random

import pytest

from repro.android.admodules import (
    ADIMG,
    ADLANTIS,
    ADWHIRL,
    AMOAD,
    IMOBILE,
    MBGA_CORE,
    MEDIBAAD,
    MOBCLIX,
    MYDAS,
    NEND,
)
from repro.android.app import Application
from repro.android.device import Device
from repro.android.permissions import INTERNET, Manifest, READ_PHONE_STATE
from repro.android.services import Service


@pytest.fixture
def device():
    return Device.generate(Random(77))


def build_app(*extra, package="jp.co.soft0042.quiz"):
    perms = frozenset({INTERNET, *extra})
    return Application(package=package, manifest=Manifest(package=package, permissions=perms))


def session(spec, app, device, n=30, seed=0):
    return Service(spec).session_packets(app, device, Random(seed), n)


def all_text(packets):
    return "\n".join(p.canonical_text() for p in packets)


class TestNend:
    def test_plain_android_id(self, device):
        text = all_text(session(NEND, build_app(), device))
        assert device.identity.android_id in text

    def test_api_key_is_app_stable(self, device):
        packets = session(NEND, build_app(), device)
        keys = {p.request.query.get("apikey") for p in packets if p.request.query.get("apikey")}
        assert len(keys) == 1


class TestMydas:
    def test_imei_and_android_id(self, device):
        text = all_text(session(MYDAS, build_app(READ_PHONE_STATE), device))
        assert device.identity.imei in text
        assert device.identity.android_id in text

    def test_single_host(self, device):
        packets = session(MYDAS, build_app(), device)
        assert {p.host for p in packets} == {"ads.mydas.mobi"}


class TestAmoad:
    def test_posts_json_endpoint(self, device):
        packets = session(AMOAD, build_app(READ_PHONE_STATE), device, n=10)
        assert all(p.request.method == "POST" for p in packets)
        assert all("/4/sp/json" in p.request.target for p in packets)

    def test_carrier_in_body(self, device):
        packets = session(AMOAD, build_app(READ_PHONE_STATE), device, n=20)
        carrier_wire = device.identity.carrier.replace(" ", "+")
        assert any(
            carrier_wire.encode("latin-1") in p.body
            or device.identity.carrier.encode("latin-1") in p.body
            for p in packets
        )


class TestAdwhirl:
    def test_md5_imei_when_permitted(self, device):
        digest = hashlib.md5(device.identity.imei.encode()).hexdigest()
        text = all_text(session(ADWHIRL, build_app(READ_PHONE_STATE), device))
        assert digest in text

    def test_config_fetch_once(self, device):
        packets = session(ADWHIRL, build_app(), device, n=15)
        configs = [p for p in packets if p.meta["event"] == "config"]
        assert len(configs) == 1
        assert configs[0].host == "cus.adwhirl.com"


class TestImobile:
    def test_sha1_imei_when_permitted(self, device):
        digest = hashlib.sha1(device.identity.imei.encode()).hexdigest()
        text = all_text(session(IMOBILE, build_app(READ_PHONE_STATE), device, n=60))
        assert digest in text

    def test_no_plain_imei_ever(self, device):
        text = all_text(session(IMOBILE, build_app(READ_PHONE_STATE), device, n=60))
        assert device.identity.imei not in text


class TestMobclix:
    def test_sha1_android_id(self, device):
        digest = hashlib.sha1(device.identity.android_id.encode()).hexdigest()
        text = all_text(session(MOBCLIX, build_app(), device, n=20))
        assert digest in text


class TestAdimg:
    def test_app_gate_limits_leaking_integrations(self, device):
        """Only ~30% of adopting apps' builds send the hashed id at all."""
        digest = hashlib.sha1(device.identity.android_id.encode()).hexdigest()
        leaking_apps = 0
        for i in range(30):
            app = build_app(package=f"jp.co.works{i:04d}.manga")
            text = all_text(session(ADIMG, app, device, n=10, seed=i))
            leaking_apps += digest in text
        assert 2 <= leaking_apps <= 18


class TestMedibaad:
    def test_two_hosts_same_operator_block(self, device):
        from repro.net.ipv4 import common_prefix_length

        service = Service(MEDIBAAD)
        ips = [service.ip_for(h) for h in MEDIBAAD.hosts]
        assert common_prefix_length(ips[0], ips[1]) >= 24


class TestMbgaCore:
    def test_imsi_in_auth_once(self, device):
        packets = session(MBGA_CORE, build_app(READ_PHONE_STATE), device, n=20)
        auth = [p for p in packets if p.meta["event"] == "auth"]
        assert len(auth) == 1
        assert device.identity.imsi.encode("latin-1") in auth[0].body

    def test_api_calls_carry_session_cookie(self, device):
        packets = session(MBGA_CORE, build_app(), device, n=20)
        api = [p for p in packets if p.meta["event"] == "api"]
        assert api
        assert all("sp_sid=" in p.cookie for p in api)


class TestAdlantisLocation:
    def test_location_with_permission(self, device):
        from repro.android.permissions import ACCESS_FINE_LOCATION

        packets = session(
            ADLANTIS, build_app(READ_PHONE_STATE, ACCESS_FINE_LOCATION), device, n=40
        )
        lats = [p.request.query.get("lat") for p in packets if "lat" in p.request.query]
        assert lats
        assert all(abs(float(lat) - device.location.latitude) < 0.01 for lat in lats)

    def test_no_location_without_permission(self, device):
        packets = session(ADLANTIS, build_app(READ_PHONE_STATE), device, n=40)
        assert not any("lat" in p.request.query for p in packets)
