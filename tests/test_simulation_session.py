"""Session driver: durations, volumes, interleaving."""

from random import Random

import pytest

from repro.android.app import Application
from repro.android.admodules import ADMAKER
from repro.android.device import Device
from repro.android.permissions import INTERNET, Manifest, READ_PHONE_STATE
from repro.android.services import Service
from repro.android.webapi import make_own_backend
from repro.simulation.session import SessionConfig, SessionDriver


@pytest.fixture
def device():
    return Device.generate(Random(2))


def build_app(with_ad=True, loner=False):
    package = "jp.test.session"
    manifest = Manifest(package=package, permissions=frozenset({INTERNET, READ_PHONE_STATE}))
    app = Application(package=package, manifest=manifest)
    rng = Random(0)
    if loner:
        app.own_services.append(make_own_backend(package, rng))
        return app
    if with_ad:
        app.services.append(Service(ADMAKER))
    app.own_services.append(make_own_backend(package, rng))
    return app


class TestRun:
    def test_produces_sorted_timestamps(self, device):
        driver = SessionDriver(device)
        packets = driver.run(build_app(), Random(1))
        times = [p.timestamp for p in packets]
        assert times == sorted(times)

    def test_duration_bounds(self, device):
        app = build_app()
        for seed in range(5):
            duration = app.session_duration(Random(seed))
            assert 5 * 60 <= duration <= 15 * 60

    def test_volume_scales_with_config(self, device):
        low = SessionDriver(device, SessionConfig(own_backend_mean=5.0))
        high = SessionDriver(device, SessionConfig(own_backend_mean=120.0))
        app = build_app(with_ad=False)
        # A second backend keeps the app out of the loner volume class.
        app.own_services.append(make_own_backend("jp.test.session2", Random(5)))
        n_low = len(low.run(app, Random(1)))
        n_high = len(high.run(app, Random(1)))
        assert n_high > n_low * 3

    def test_loner_gets_loner_volume(self, device):
        driver = SessionDriver(device, SessionConfig(own_backend_mean=100.0, loner_mean=4.0))
        loner = build_app(loner=True)
        packets = driver.run(loner, Random(3))
        assert 1 <= len(packets) <= 20  # loner mean, not backend mean

    def test_ad_service_contributes(self, device):
        driver = SessionDriver(device)
        packets = driver.run(build_app(with_ad=True), Random(1))
        ad_packets = [p for p in packets if p.meta.get("service") == "admaker"]
        assert ad_packets

    def test_all_packets_attributed_to_app(self, device):
        driver = SessionDriver(device)
        app = build_app()
        packets = driver.run(app, Random(1))
        assert all(p.app_id == app.package for p in packets)

    def test_deterministic_given_rng(self, device):
        driver = SessionDriver(device)
        a = driver.run(build_app(), Random(9))
        b = driver.run(build_app(), Random(9))
        assert [p.request.target for p in a] == [p.request.target for p in b]
