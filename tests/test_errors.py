"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    AddressError,
    ClusteringError,
    DatasetError,
    DistanceError,
    FederationError,
    HttpParseError,
    ParseError,
    PermissionDenied,
    ReportValidationError,
    ReproError,
    SignatureError,
    SimulationError,
)


def test_all_errors_derive_from_repro_error():
    for cls in (
        ParseError,
        AddressError,
        HttpParseError,
        DistanceError,
        ClusteringError,
        SignatureError,
        PermissionDenied,
        SimulationError,
        DatasetError,
        FederationError,
        ReportValidationError,
    ):
        assert issubclass(cls, ReproError)


def test_address_error_is_parse_error():
    assert issubclass(AddressError, ParseError)
    assert issubclass(HttpParseError, ParseError)


def test_parse_error_truncates_long_data():
    err = ParseError("bad", "x" * 200)
    assert "..." in str(err)
    assert len(str(err)) < 150


def test_parse_error_shows_short_data_verbatim():
    err = ParseError("bad", "abc")
    assert "abc" in str(err)


def test_parse_error_handles_bytes():
    err = ParseError("bad", b"\xff" * 100)
    assert "bad" in str(err)


def test_permission_denied_carries_context():
    err = PermissionDenied("jp.app.x", "READ_PHONE_STATE")
    assert err.app == "jp.app.x"
    assert err.permission == "READ_PHONE_STATE"
    assert "jp.app.x" in str(err)
    assert "READ_PHONE_STATE" in str(err)


def test_catching_base_class_catches_everything():
    with pytest.raises(ReproError):
        raise HttpParseError("nope")


def test_report_validation_error_is_federation_error():
    assert issubclass(ReportValidationError, FederationError)


def test_report_validation_error_carries_reason():
    assert ReportValidationError("bad").reason == "schema"
    assert ReportValidationError("bad", reason="checksum").reason == "checksum"
    with pytest.raises(FederationError):
        raise ReportValidationError("caught as federation failure")
