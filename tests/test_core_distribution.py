"""The resilient server -> device signature distribution channel."""

import pytest

from repro.core.distribution import (
    FetchStatus,
    SignatureChannel,
    SignatureFetcher,
)
from repro.core.flowcontrol import FlowControlApp
from repro.errors import DistributionError
from repro.reliability.faults import FaultKind, FaultPlan
from repro.reliability.retry import BreakerState, CircuitBreaker, RetryPolicy
from repro.signatures.conjunction import ConjunctionSignature


def sigs(marker="imei=12345"):
    return [ConjunctionSignature(tokens=(marker,), scope_domain="adnet.com")]


class TestChannel:
    def test_publish_assigns_monotonic_versions(self):
        channel = SignatureChannel()
        assert channel.publish(sigs()).set_version == 1
        assert channel.publish(sigs()).set_version == 2
        assert channel.latest_version == 2

    def test_transmit_without_publication_raises(self):
        with pytest.raises(DistributionError):
            SignatureChannel().transmit()

    def test_perfect_channel_delivers_latest(self):
        channel = SignatureChannel()
        channel.publish(sigs("a=1"))
        channel.publish(sigs("b=2"))
        payload, kind, delay = channel.transmit()
        assert kind is FaultKind.NONE and delay == 0.0
        assert b"b=2" in payload

    def test_stale_fault_serves_previous_version(self):
        channel = SignatureChannel(FaultPlan(seed=1, stale=1.0))
        channel.publish(sigs("a=1"))
        channel.publish(sigs("b=2"))
        payload, kind, __ = channel.transmit()
        assert kind is FaultKind.STALE
        assert b"a=1" in payload and b"b=2" not in payload

    def test_stale_with_single_version_serves_it(self):
        channel = SignatureChannel(FaultPlan(seed=1, stale=1.0))
        channel.publish(sigs("a=1"))
        payload, __, __ = channel.transmit()
        assert b"a=1" in payload


class TestFetcher:
    def test_happy_path_is_fresh(self):
        channel = SignatureChannel()
        channel.publish(sigs())
        result = SignatureFetcher(channel).fetch()
        assert result.status is FetchStatus.FRESH
        assert result.set_version == 1
        assert result.attempts == 1
        assert list(result.signatures) == sigs()
        assert result.ok

    def test_retries_through_transient_drops(self):
        # Deterministically: find a seed where attempt 1 drops, a later
        # attempt succeeds within the budget.
        for seed in range(50):
            channel = SignatureChannel(FaultPlan(seed=seed, drop=0.5))
            channel.publish(sigs())
            fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=6), seed=seed)
            result = fetcher.fetch()
            if result.status is FetchStatus.FRESH and result.attempts > 1:
                assert fetcher.health.drops == result.attempts - 1
                return
        pytest.fail("no seed produced drop-then-success within budget")

    def test_corrupt_envelope_fails_integrity_then_falls_back(self):
        channel = SignatureChannel(FaultPlan(seed=2, corrupt=1.0))
        channel.publish(sigs())
        fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=3))
        result = fetcher.fetch()
        assert result.status is FetchStatus.DEGRADED
        assert fetcher.health.integrity_failures == 3
        assert result.signatures == ()

    def test_truncated_envelope_detected(self):
        channel = SignatureChannel(FaultPlan(seed=2, truncate=1.0))
        channel.publish(sigs())
        fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=2))
        result = fetcher.fetch()
        assert result.status is FetchStatus.DEGRADED
        assert fetcher.health.integrity_failures == 2

    def test_exhausted_retries_fall_back_to_last_known_good(self):
        plan = FaultPlan(seed=0)  # clean first
        channel = SignatureChannel(plan)
        channel.publish(sigs("v1=x"))
        fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=2))
        assert fetcher.fetch().status is FetchStatus.FRESH
        # Channel turns hostile: everything drops from now on.
        channel.fault_plan = FaultPlan(seed=1, drop=1.0)
        channel.publish(sigs("v2=y"))
        result = fetcher.fetch()
        assert result.status is FetchStatus.CACHED
        assert result.set_version == 1
        assert any("v1=x" in s.tokens[0] for s in result.signatures)
        assert fetcher.health.fallbacks == 1

    def test_degraded_when_nothing_ever_fetched(self):
        channel = SignatureChannel(FaultPlan(seed=3, drop=1.0))
        channel.publish(sigs())
        fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=4))
        result = fetcher.fetch()
        assert result.status is FetchStatus.DEGRADED
        assert not result.ok
        assert fetcher.health.degraded_sessions == 1

    def test_stale_read_never_regresses_installed_version(self):
        channel = SignatureChannel()
        channel.publish(sigs("v1=x"))
        channel.publish(sigs("v2=y"))
        fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=2))
        assert fetcher.fetch().set_version == 2
        # Now every read is stale (serves v1); fetcher must reject and fall
        # back to the cached v2 rather than downgrade.
        channel.fault_plan = FaultPlan(seed=4, stale=1.0)
        result = fetcher.fetch()
        assert result.status is FetchStatus.CACHED
        assert result.set_version == 2
        assert fetcher.health.stale_reads == 2

    def test_delay_advances_logical_clock(self):
        channel = SignatureChannel(FaultPlan(seed=5, delay=1.0, max_delay_ticks=4.0))
        channel.publish(sigs())
        fetcher = SignatureFetcher(channel)
        result = fetcher.fetch()
        assert result.status is FetchStatus.FRESH
        assert fetcher.health.delay_ticks > 0.0
        assert fetcher.clock > 1.0

    def test_fetch_is_deterministic(self):
        def run():
            channel = SignatureChannel(FaultPlan(seed=6, drop=0.4, corrupt=0.2))
            channel.publish(sigs())
            fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=5), seed=6)
            results = [fetcher.fetch() for __ in range(5)]
            return [(r.status, r.set_version, r.attempts) for r in results], fetcher.clock

        assert run() == run()


class TestCircuitBreaking:
    def test_open_breaker_fails_fast_without_channel_attempts(self):
        channel = SignatureChannel(FaultPlan(seed=7, drop=1.0))
        channel.publish(sigs())
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1000.0)
        fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=3), breaker=breaker)
        first = fetcher.fetch()  # three drops -> breaker opens
        assert first.attempts == 3
        assert breaker.state(fetcher.clock) is BreakerState.OPEN
        second = fetcher.fetch()
        assert second.attempts == 0
        assert fetcher.health.breaker_rejections >= 1
        assert fetcher.health.breaker_state == BreakerState.OPEN.value

    def test_breaker_recovers_after_cooldown(self):
        channel = SignatureChannel(FaultPlan(seed=8, drop=1.0))
        channel.publish(sigs())
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3.0)
        fetcher = SignatureFetcher(
            channel,
            retry=RetryPolicy(max_attempts=2, base_delay=2.0, jitter=0.0),
            breaker=breaker,
        )
        fetcher.fetch()  # opens the breaker
        channel.fault_plan = None  # network heals
        # Clock keeps advancing across sessions; eventually a probe passes.
        for __ in range(10):
            result = fetcher.fetch()
            if result.status is FetchStatus.FRESH:
                break
        assert result.status is FetchStatus.FRESH
        assert breaker.state(fetcher.clock) is BreakerState.CLOSED


class TestFetchInto:
    def test_fresh_fetch_installs_signatures(self):
        channel = SignatureChannel()
        channel.publish(sigs())
        app = FlowControlApp.degraded()
        result = SignatureFetcher(channel).fetch_into(app)
        assert result.status is FetchStatus.FRESH
        assert not app.is_degraded
        assert app.signature_version == 1

    def test_degraded_fetch_leaves_app_in_keyword_mode(self):
        channel = SignatureChannel(FaultPlan(seed=9, drop=1.0))
        channel.publish(sigs())
        app = FlowControlApp.degraded()
        result = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=2)).fetch_into(app)
        assert result.status is FetchStatus.DEGRADED
        assert app.is_degraded

    def test_degraded_fetch_does_not_clobber_last_good_install(self):
        channel = SignatureChannel()
        channel.publish(sigs())
        app = FlowControlApp.degraded()
        fetcher = SignatureFetcher(channel, retry=RetryPolicy(max_attempts=1))
        assert fetcher.fetch_into(app).status is FetchStatus.FRESH
        # New device, no cache, dead channel: its degraded result must not
        # wipe another app's set — but also the same fetcher's CACHED
        # result reinstalls the old version on the same app.
        channel.fault_plan = FaultPlan(seed=10, drop=1.0)
        result = fetcher.fetch_into(app)
        assert result.status is FetchStatus.CACHED
        assert app.signature_version == 1
        assert not app.is_degraded
