"""Prefilter soundness under attack: match == match_full_scan, always.

The longest-literal prefilter skips the conjunction scan when a
signature's filter literal is absent from the packet text.  That is only
sound if the literal's absence truly falsifies the conjunction — which
holds because the literal is one of the signature's own tokens, and
matchers are rebuilt from scratch on every reload so literals can never
go stale against a regenerated set.  These tests make the argument
empirical across mutated traffic and post-regeneration sets.
"""

import pytest

from repro.arena.defender import DefenderLoop
from repro.arena.mutations import MutationFamily, plans_for
from repro.eval.crossval import generate_from
from repro.serving.shards import ShardedMatcher
from repro.signatures.matcher import SignatureMatcher, filter_literal


@pytest.fixture(scope="module")
def check(small_corpus):
    return small_corpus.payload_check()


@pytest.fixture(scope="module")
def traffic(small_corpus, check):
    suspicious, normal = check.split(small_corpus.trace)
    return list(suspicious[:60]), list(suspicious[60:100]), list(normal[:60])


@pytest.fixture(scope="module")
def boot(traffic):
    train, __, ___ = traffic
    return generate_from(train)


@pytest.fixture(scope="module")
def mutated_streams(check, traffic):
    """Every family's mutants over two rounds, plus untouched benign."""
    __, held_out, benign = traffic
    streams = []
    for plan in plans_for(check, seed=11):
        for round_no in (1, 2):
            streams.append(plan.mutate_all(held_out, round_no))
    streams.append(benign)
    return streams


@pytest.fixture(scope="module")
def regenerated(boot, check, traffic):
    """The defender's merged set after healing one evading family."""
    __, held_out, ___ = traffic
    (plan,) = plans_for(check, seed=11, families=[MutationFamily.PADDING_CHAFF])
    defender = DefenderLoop(boot)
    defender.observe_misses(plan.mutate_all(held_out, 1), round_no=1)
    assert len(defender.signatures) > len(boot)  # regeneration happened
    return defender.signatures


def assert_equivalent(matcher, packets):
    for packet in packets:
        fast = matcher.match(packet)
        slow = matcher.match_full_scan(packet)
        assert fast.matched == slow.matched, packet.canonical_text()
        assert fast.signature == slow.signature


class TestPrefilterEquivalence:
    def test_boot_set_over_mutated_traffic(self, boot, mutated_streams):
        matcher = SignatureMatcher(boot)
        for stream in mutated_streams:
            assert_equivalent(matcher, stream)

    def test_regenerated_set_over_mutated_traffic(
        self, regenerated, mutated_streams
    ):
        matcher = SignatureMatcher(regenerated)
        for stream in mutated_streams:
            assert_equivalent(matcher, stream)

    def test_regenerated_set_actually_flags_new_traffic(
        self, regenerated, boot, check, traffic
    ):
        """Guard against a vacuous equivalence (nothing matching at all)."""
        __, held_out, ___ = traffic
        (plan,) = plans_for(
            check, seed=11, families=[MutationFamily.PADDING_CHAFF]
        )
        mutants = plan.mutate_all(held_out, 1)
        base = sum(1 for m in mutants if SignatureMatcher(boot).is_sensitive(m))
        healed = sum(
            1 for m in mutants if SignatureMatcher(regenerated).is_sensitive(m)
        )
        assert healed > base


class TestShardedAgreement:
    """The sharded production matcher agrees with the reference scan."""

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_sharded_matches_full_scan(
        self, regenerated, mutated_streams, n_shards
    ):
        sharded = ShardedMatcher(regenerated, n_shards=n_shards)
        reference = SignatureMatcher(regenerated)
        for stream in mutated_streams:
            for packet in stream:
                assert (
                    sharded.match(packet).matched
                    == reference.match_full_scan(packet).matched
                )


class TestLiteralInvariants:
    def test_filter_literal_is_one_of_the_signatures_tokens(self, regenerated):
        for signature in regenerated:
            literal = filter_literal(signature)
            assert literal in signature.tokens
            assert all(len(literal) >= len(t) for t in signature.tokens)

    def test_match_full_scan_without_prefilter_index(self, boot, traffic):
        """The reference path ignores literals entirely: dropping a
        packet's literal from the text flips both paths identically."""
        matcher = SignatureMatcher(boot)
        __, held_out, ___ = traffic
        flagged = [p for p in held_out if matcher.is_sensitive(p)]
        assert flagged  # precondition: something to compare
        assert_equivalent(matcher, flagged)
