"""FederatedAggregator and SupportStore: caps, k-gate, journal replay."""

import pytest

from repro.errors import FederationError
from repro.federation.aggregate import (
    AcceptOutcome,
    DirSupportStore,
    FederatedAggregator,
    InMemorySupportStore,
)
from repro.federation.report import DeviceReport, token_for
from tests.conftest import make_packet


def report(device: str, token: str, seq: int = 1) -> DeviceReport:
    packet = make_packet(target=f"/r?k={token}")
    return DeviceReport(device_id=device, seq=seq, token=token, packet=packet)


class TestAcceptOutcomes:
    def test_new_pair_counted(self):
        agg = FederatedAggregator()
        assert agg.accept(report("device-00001", "t1")) is AcceptOutcome.COUNTED
        assert agg.support("t1") == 1

    def test_same_device_same_token_is_repeat(self):
        agg = FederatedAggregator()
        agg.accept(report("device-00001", "t1", seq=1))
        assert agg.accept(report("device-00001", "t1", seq=2)) is AcceptOutcome.REPEAT
        assert agg.support("t1") == 1  # support is distinct devices, not reports

    def test_distinct_devices_accumulate_support(self):
        agg = FederatedAggregator()
        for i in range(5):
            agg.accept(report(f"device-{i:05d}", "t1"))
        assert agg.support("t1") == 5

    def test_contribution_cap_blocks_new_tokens(self):
        agg = FederatedAggregator(contribution_cap=2)
        assert agg.accept(report("device-00001", "t1")) is AcceptOutcome.COUNTED
        assert agg.accept(report("device-00001", "t2")) is AcceptOutcome.COUNTED
        assert agg.accept(report("device-00001", "t3")) is AcceptOutcome.CAPPED
        # Repeats of already-held tokens stay free at the cap.
        assert agg.accept(report("device-00001", "t1", seq=9)) is AcceptOutcome.REPEAT
        assert agg.support("t3") == 0

    def test_cap_is_per_device(self):
        agg = FederatedAggregator(contribution_cap=1)
        agg.accept(report("device-00001", "t1"))
        assert agg.accept(report("device-00002", "t2")) is AcceptOutcome.COUNTED

    def test_bad_cap_rejected(self):
        with pytest.raises(FederationError):
            FederatedAggregator(contribution_cap=0)


class TestKGate:
    def test_min_support_filters_tokens(self):
        agg = FederatedAggregator()
        for i in range(3):
            agg.accept(report(f"device-{i:05d}", "popular"))
        agg.accept(report("device-00009", "lonely"))
        assert agg.admitted_tokens(1) == ["lonely", "popular"]
        assert agg.admitted_tokens(2) == ["popular"]
        assert agg.admitted_tokens(4) == []

    def test_min_support_validation(self):
        with pytest.raises(FederationError):
            FederatedAggregator().admitted_tokens(0)

    def test_material_sorted_and_content_deduped(self):
        agg = FederatedAggregator()
        # Two devices report byte-identical packets under one token: the
        # material keeps one copy.
        packet = make_packet(target="/track?udid=x")
        token = token_for(packet)
        for device in ("device-00002", "device-00001"):
            agg.accept(DeviceReport(device_id=device, seq=1, token=token, packet=packet))
        material = agg.admitted_material(2)
        assert len(material) == 1
        assert material[0].wire_bytes() == packet.wire_bytes()

    def test_material_is_arrival_order_independent(self):
        reports = [
            report(f"device-{i:05d}", token, seq=i + 1)
            for token in ("ta", "tb")
            for i in range(4)
        ]
        forward = FederatedAggregator()
        backward = FederatedAggregator()
        for item in reports:
            forward.accept(item)
        for item in reversed(reports):
            backward.accept(item)
        def wire(agg):
            return [p.wire_bytes() for p in agg.admitted_material(2)]

        assert wire(forward) == wire(backward)

    def test_stats_shape(self):
        agg = FederatedAggregator()
        agg.accept(report("device-00001", "t1"))
        agg.accept(report("device-00002", "t1"))
        agg.accept(report("device-00001", "t1", seq=5))
        stats = agg.stats()
        assert stats["tokens"] == 1
        assert stats["max_support"] == 2
        assert stats["contributions"]["counted"] == 2
        assert stats["contributions"]["repeat"] == 1


class TestExemplarRetention:
    def test_smallest_pairs_win_regardless_of_order(self):
        devices = [f"device-{i:05d}" for i in range(6)]
        forward = InMemorySupportStore(exemplars_per_token=2)
        backward = InMemorySupportStore(exemplars_per_token=2)
        for store, order in ((forward, devices), (backward, list(reversed(devices)))):
            for i, device in enumerate(order):
                store.add("t", device, i + 1, {"device": device})
        kept_forward = [(d, s) for d, s, _ in forward.exemplars("t")]
        kept_backward = [(d, s) for d, s, _ in backward.exemplars("t")]
        assert [d for d, _ in kept_forward] == devices[:2]
        assert [d for d, _ in kept_backward] == devices[:2]

    def test_exemplar_budget_validated(self):
        with pytest.raises(FederationError):
            InMemorySupportStore(exemplars_per_token=0)


class TestDirSupportStore:
    def test_journal_replay_reconstructs_state(self, tmp_path):
        store = DirSupportStore(tmp_path / "agg")
        store.add("t1", "device-00001", 1, {"p": 1})
        store.add("t1", "device-00002", 3, {"p": 2})
        store.add("t2", "device-00001", 2, {"p": 3})

        revived = DirSupportStore(tmp_path / "agg")
        assert revived.tokens() == ["t1", "t2"]
        assert revived.support("t1") == 2
        assert revived.exemplars("t1") == store.exemplars("t1")
        assert revived.device_token_count("device-00001") == 2

    def test_repeats_not_journaled(self, tmp_path):
        store = DirSupportStore(tmp_path / "agg")
        for _ in range(5):
            store.add("t1", "device-00001", 1, {"p": 1})
        journal = (tmp_path / "agg" / "support.jsonl").read_text(encoding="utf-8")
        assert len(journal.splitlines()) == 1

    def test_corrupt_journal_raises(self, tmp_path):
        root = tmp_path / "agg"
        DirSupportStore(root).add("t1", "device-00001", 1, {"p": 1})
        with (root / "support.jsonl").open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(FederationError):
            DirSupportStore(root)

    def test_aggregator_resumes_over_journal(self, tmp_path):
        # The cross-process resume path: a fresh aggregator over the same
        # journal dir continues with full replay-defense-free state.
        agg = FederatedAggregator(DirSupportStore(tmp_path / "agg"))
        for i in range(3):
            agg.accept(report(f"device-{i:05d}", "popular"))
        revived = FederatedAggregator(DirSupportStore(tmp_path / "agg"))
        assert revived.support("popular") == 3
        assert revived.accept(report("device-00000", "popular")) is AcceptOutcome.REPEAT
