"""Held-out evaluation, learning curves, k-fold recall."""

import pytest

from repro.errors import ReproError
from repro.eval.crossval import (
    holdout_evaluation,
    kfold_recall,
    learning_curve,
)


@pytest.fixture(scope="module")
def groups(request):
    small_split = request.getfixturevalue("small_split")
    suspicious, normal = small_split
    return list(suspicious), list(normal)


class TestHoldout:
    def test_result_shape(self, groups):
        suspicious, normal = groups
        result = holdout_evaluation(suspicious, normal, n_train=60, seed=1)
        assert result.n_train == 60
        assert result.n_heldout == len(suspicious) - 60
        assert 0.0 <= result.heldout_recall <= 1.0
        assert 0.0 <= result.false_positive_rate <= 1.0
        assert result.n_signatures > 0

    def test_heldout_recall_meaningful(self, groups):
        suspicious, normal = groups
        result = holdout_evaluation(suspicious, normal, n_train=80, seed=2)
        # Ad-module traffic repeats heavily, so held-out recall is high.
        assert result.heldout_recall > 0.5
        assert result.false_positive_rate < 0.05

    def test_train_exhausting_data_rejected(self, groups):
        suspicious, normal = groups
        with pytest.raises(ReproError):
            holdout_evaluation(suspicious, normal, n_train=len(suspicious))

    def test_deterministic(self, groups):
        suspicious, normal = groups
        a = holdout_evaluation(suspicious, normal, n_train=40, seed=9)
        b = holdout_evaluation(suspicious, normal, n_train=40, seed=9)
        assert a == b


class TestLearningCurve:
    def test_curve_monotone_within_noise(self, groups):
        suspicious, normal = groups
        curve = learning_curve(suspicious, normal, [20, 60, 110], seed=3)
        assert len(curve) == 3
        assert curve[-1].heldout_recall >= curve[0].heldout_recall - 0.12

    def test_sizes_recorded(self, groups):
        suspicious, normal = groups
        curve = learning_curve(suspicious, normal, [10, 30], seed=3)
        assert [r.n_train for r in curve] == [10, 30]


class TestKfold:
    def test_fold_count_and_coverage(self, groups):
        suspicious, normal = groups
        results = kfold_recall(suspicious, normal, k=3, seed=1, max_train=80)
        assert len(results) == 3
        assert sum(r.n_heldout for r in results) == len(suspicious)

    def test_recall_stable_across_folds(self, groups):
        suspicious, normal = groups
        results = kfold_recall(suspicious, normal, k=3, seed=1, max_train=80)
        recalls = [r.heldout_recall for r in results]
        assert max(recalls) - min(recalls) < 0.35

    def test_invalid_k_rejected(self, groups):
        suspicious, normal = groups
        with pytest.raises(ReproError):
            kfold_recall(suspicious, normal, k=1)

    def test_too_little_data_rejected(self, groups):
        __, normal = groups
        with pytest.raises(ReproError):
            kfold_recall(normal[:5], normal, k=5)
