"""The attacker suite: purity, determinism, and the ground-truth contract."""

import pytest

from repro.arena.mutations import (
    MutationFamily,
    MutationPlan,
    packet_fingerprint,
    plans_for,
    tenant_pool,
)

ROUNDS = (1, 2, 3)


@pytest.fixture(scope="module")
def check(small_corpus):
    return small_corpus.payload_check()


@pytest.fixture(scope="module")
def leaks(small_corpus, check):
    suspicious, __ = check.split(small_corpus.trace)
    return list(suspicious[:40])


@pytest.fixture(scope="module")
def plans(check):
    return {plan.family: plan for plan in plans_for(check, seed=7)}


class TestPurity:
    """mutate is a pure function of (seed, round, packet)."""

    @pytest.mark.parametrize("family", list(MutationFamily))
    def test_same_inputs_same_mutant(self, plans, leaks, family):
        plan = plans[family]
        for packet in leaks[:10]:
            a = plan.mutate(packet, 2)
            b = plan.mutate(packet, 2)
            assert a.wire_bytes() == b.wire_bytes()
            assert str(a.destination) == str(b.destination)

    @pytest.mark.parametrize("family", list(MutationFamily))
    def test_independent_of_call_order(self, plans, leaks, family):
        plan = plans[family]
        forward = [plan.mutate(p, 1).wire_bytes() for p in leaks[:10]]
        backward = [plan.mutate(p, 1).wire_bytes() for p in reversed(leaks[:10])]
        assert forward == list(reversed(backward))

    @pytest.mark.parametrize("family", list(MutationFamily))
    def test_original_packet_untouched(self, plans, leaks, family):
        packet = leaks[0]
        before = packet.wire_bytes()
        plans[family].mutate(packet, 1)
        assert packet.wire_bytes() == before

    def test_seed_changes_the_mutant(self, check, leaks):
        a = MutationPlan(
            family=MutationFamily.PADDING_CHAFF, seed=1,
            preserve=check.spellings(),
        )
        b = MutationPlan(
            family=MutationFamily.PADDING_CHAFF, seed=2,
            preserve=check.spellings(),
        )
        assert any(
            a.mutate(p, 1).wire_bytes() != b.mutate(p, 1).wire_bytes()
            for p in leaks[:10]
        )

    def test_rounds_produce_distinct_mutants(self, plans, leaks):
        plan = plans[MutationFamily.PADDING_CHAFF]
        assert any(
            plan.mutate(p, 1).wire_bytes() != plan.mutate(p, 2).wire_bytes()
            for p in leaks[:10]
        )


class TestGroundTruth:
    """Every mutated-but-leaking packet must stay payload-check positive."""

    @pytest.mark.parametrize("family", list(MutationFamily))
    def test_every_mutant_stays_sensitive(self, plans, check, leaks, family):
        plan = plans[family]
        for round_no in ROUNDS:
            for mutant in plan.mutate_all(leaks, round_no):
                assert check.is_sensitive(mutant), (family, round_no)

    @pytest.mark.parametrize("family", list(MutationFamily))
    def test_mutants_carry_arena_tags(self, plans, leaks, family):
        mutant = plans[family].mutate(leaks[0], 3)
        assert mutant.meta["arena_family"] == family.value
        assert mutant.meta["arena_round"] == 3


class TestFamilySemantics:
    def test_token_split_never_breaks_a_preserved_spelling(self, plans, leaks):
        plan = plans[MutationFamily.TOKEN_SPLIT]
        for packet in leaks:
            mutant = plan.mutate(packet, 1)
            text = mutant.canonical_text()
            original = packet.canonical_text()
            for spelling in plan.preserve:
                if spelling in original:
                    assert spelling in text

    def test_header_reorder_preserves_content_multiset(self, plans, leaks):
        plan = plans[MutationFamily.HEADER_REORDER]
        for packet in leaks[:10]:
            mutant = plan.mutate(packet, 1)
            assert sorted(mutant.request.headers) == sorted(packet.request.headers)
            path, __, query = packet.request.target.partition("?")
            mpath, __, mquery = mutant.request.target.partition("?")
            assert mpath == path
            assert sorted(mquery.split("&")) == sorted(query.split("&"))

    def test_padding_chaff_only_adds(self, plans, leaks):
        plan = plans[MutationFamily.PADDING_CHAFF]
        for packet in leaks[:10]:
            mutant = plan.mutate(packet, 1)
            __, ___, query = packet.request.target.partition("?")
            __, ___, mquery = mutant.request.target.partition("?")
            original_chunks = [c for c in query.split("&") if c]
            mutant_chunks = [c for c in mquery.split("&") if c]
            for chunk in original_chunks:
                assert chunk in mutant_chunks
            assert len(mutant_chunks) > len(original_chunks)
            assert ("X-Padding" in dict(mutant.request.headers))

    def test_encoding_churn_rewrites_within_known_spellings(
        self, plans, check, leaks
    ):
        plan = plans[MutationFamily.ENCODING_CHURN]
        known = set(check.spellings())
        changed = 0
        for packet in leaks:
            for round_no in ROUNDS:
                mutant = plan.mutate(packet, round_no)
                if mutant.wire_bytes() != packet.wire_bytes():
                    changed += 1
                text = mutant.canonical_text()
                assert any(s in text for s in known)
        assert changed > 0  # churn actually re-spells something

    def test_dest_rotation_moves_host_and_ip_together(self, plans, leaks):
        plan = plans[MutationFamily.DEST_ROTATION]
        for packet in leaks[:10]:
            mutant = plan.mutate(packet, 1)
            pool = tenant_pool(packet.destination.registered_domain)
            assert (
                mutant.destination.host,
                str(mutant.destination.ip),
            ) in pool
            assert dict(mutant.request.headers)["Host"] == mutant.destination.host
            assert mutant.destination.registered_domain != (
                packet.destination.registered_domain
            )


class TestTenantPool:
    def test_deterministic(self):
        assert tenant_pool("ads.example.com") == tenant_pool("ads.example.com")

    def test_distinct_tenants_get_disjoint_pools(self):
        a = {host for host, __ in tenant_pool("alpha.example.com")}
        b = {host for host, __ in tenant_pool("beta.tracker.net")}
        assert not (a & b)

    def test_hosts_resolve_to_distinct_apexes(self):
        hosts = [host for host, __ in tenant_pool("metrics.adnet.com")]
        apexes = {host.partition(".")[2] for host in hosts}
        assert len(apexes) == len(hosts) == 3


class TestFingerprint:
    def test_stable_and_distinct(self, leaks):
        assert packet_fingerprint(leaks[0]) == packet_fingerprint(leaks[0])
        prints = {packet_fingerprint(p) for p in leaks}
        assert len(prints) == len(leaks)


class TestPlansFor:
    def test_one_plan_per_family_by_default(self, check):
        plans = plans_for(check, seed=0)
        assert [p.family for p in plans] == list(MutationFamily)
        assert all(p.preserve == check.spellings() for p in plans)

    def test_family_subset(self, check):
        plans = plans_for(
            check, seed=0, families=[MutationFamily.PADDING_CHAFF]
        )
        assert [p.family for p in plans] == [MutationFamily.PADDING_CHAFF]

    def test_unknown_family_raises(self, leaks):
        class Bogus:
            value = "bogus"

        broken = MutationPlan(family=Bogus(), seed=0)  # bypasses the enum
        with pytest.raises(ValueError):
            broken.mutate(leaks[0], 1)
