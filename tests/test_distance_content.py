"""Content distance: the three NCD components and ablation flags."""

import pytest

from repro.distance.content import ContentDistance, header_distance
from tests.conftest import make_packet


class TestComponents:
    def test_identical_packets_near_zero(self):
        p = make_packet(target="/ad?u=abc123", cookie="sid=1", body=b"k=v")
        q = make_packet(target="/ad?u=abc123", cookie="sid=1", body=b"k=v")
        assert ContentDistance().distance(p, q) < 0.6  # tiny strings compress poorly

    def test_no_cookies_both_sides_contribute_zero(self):
        cd = ContentDistance()
        p = make_packet()
        q = make_packet()
        assert cd.cookie_distance(p, q) == 0.0

    def test_cookie_one_sided_is_max(self):
        cd = ContentDistance()
        p = make_packet(cookie="sid=abc")
        q = make_packet()
        assert cd.cookie_distance(p, q) == 1.0

    def test_body_distance_on_bytes(self):
        cd = ContentDistance()
        p = make_packet(body=b"imei=358537041234567&x=1" * 3)
        q = make_packet(body=b"imei=358537041234567&x=2" * 3)
        r = make_packet(body=b"completely unrelated binary \x00\x01\x02 payload" * 3)
        assert cd.body_distance(p, q) < cd.body_distance(p, r)

    def test_rline_distance_sensitive_to_path(self):
        cd = ContentDistance()
        p = make_packet(target="/api/v2/imp?sid=aaa")
        q = make_packet(target="/api/v2/imp?sid=bbb")
        r = make_packet(target="/completely/else?zz=1")
        assert cd.rline_distance(p, q) < cd.rline_distance(p, r)


class TestAblation:
    def test_component_count(self):
        assert ContentDistance().component_count == 3
        assert ContentDistance(use_body=False).component_count == 2
        assert ContentDistance(use_rline=False, use_cookie=False).component_count == 1

    def test_disabled_component_ignored(self):
        p = make_packet(cookie="sid=aaaa")
        q = make_packet()  # no cookie -> cookie distance 1.0
        full = ContentDistance().distance(p, q)
        no_cookie = ContentDistance(use_cookie=False).distance(p, q)
        assert full > no_cookie

    def test_distance_bounded_by_component_count(self):
        cd = ContentDistance()
        p = make_packet(target="/a?x=1", cookie="c=1", body=b"b1")
        q = make_packet(target="/zz?y=2", cookie="d=2", body=b"b2")
        assert 0.0 <= cd.distance(p, q) <= cd.component_count


def test_header_distance_convenience_matches_class():
    p = make_packet(target="/a?x=1", body=b"k=v")
    q = make_packet(target="/a?x=2", body=b"k=w")
    assert header_distance(p, q) == pytest.approx(ContentDistance().distance(p, q))


def test_callable_protocol():
    cd = ContentDistance()
    p, q = make_packet(), make_packet()
    assert cd(p, q) == cd.distance(p, q)
