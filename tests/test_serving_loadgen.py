"""The fleet load generator: determinism, ordering, burst shaping."""

import pytest

from repro.errors import SimulationError
from repro.serving.loadgen import FleetLoadGenerator, LoadProfile


class TestEventStream:
    def test_deterministic_for_seed(self, small_corpus):
        a = FleetLoadGenerator(small_corpus, seed=5).events(200)
        b = FleetLoadGenerator(small_corpus, seed=5).events(200)
        assert [(e.tick, e.device_id, e.seq) for e in a] == [
            (e.tick, e.device_id, e.seq) for e in b
        ]
        assert all(x.packet is y.packet for x, y in zip(a, b))

    def test_different_seed_different_stream(self, small_corpus):
        a = FleetLoadGenerator(small_corpus, seed=5).events(50)
        b = FleetLoadGenerator(small_corpus, seed=6).events(50)
        assert [e.tick for e in a] != [e.tick for e in b]

    def test_ticks_strictly_ordered_and_seq_dense(self, small_corpus):
        events = FleetLoadGenerator(small_corpus, seed=0).events(300)
        ticks = [e.tick for e in events]
        assert ticks == sorted(ticks)
        assert [e.seq for e in events] == list(range(300))

    def test_default_is_one_trace_pass(self, small_corpus):
        events = FleetLoadGenerator(small_corpus, seed=0).events()
        assert len(events) == len(small_corpus.trace)

    def test_cycles_trace_beyond_its_length(self, small_corpus):
        n = len(small_corpus.trace) + 25
        events = FleetLoadGenerator(small_corpus, seed=0).events(n)
        assert len(events) == n
        assert events[len(small_corpus.trace)].packet is events[0].packet

    def test_devices_within_fleet(self, small_corpus):
        profile = LoadProfile(n_devices=3)
        events = FleetLoadGenerator(small_corpus, profile, seed=1).events(120)
        devices = {e.device_id for e in events}
        assert devices <= {"device-000", "device-001", "device-002"}
        assert len(devices) == 3


class TestBurst:
    def test_burst_compresses_interarrivals(self, small_corpus):
        calm = LoadProfile(mean_interarrival_ticks=2.0)
        burst = LoadProfile(
            mean_interarrival_ticks=2.0, burst_factor=8.0, burst_start=0.0, burst_ticks=1e9
        )
        calm_events = FleetLoadGenerator(small_corpus, calm, seed=2).events(400)
        burst_events = FleetLoadGenerator(small_corpus, burst, seed=2).events(400)
        assert burst_events[-1].tick < calm_events[-1].tick / 4

    def test_burst_window_only(self, small_corpus):
        profile = LoadProfile(
            mean_interarrival_ticks=1.0, burst_factor=10.0, burst_start=0.0, burst_ticks=20.0
        )
        events = FleetLoadGenerator(small_corpus, profile, seed=3).events(500)
        inside = [e for e in events if e.tick < 20.0]
        outside = [e for e in events if e.tick >= 20.0]
        assert len(inside) > 100  # ~10x rate in the window
        assert outside  # stream continues past the burst


class TestDeviceSubstreams:
    def test_substream_deterministic(self, small_corpus):
        a = FleetLoadGenerator(small_corpus, seed=5).device_events(3, 20)
        b = FleetLoadGenerator(small_corpus, seed=5).device_events(3, 20)
        assert [(e.tick, e.seq) for e in a] == [(e.tick, e.seq) for e in b]
        assert all(x.packet is y.packet for x, y in zip(a, b))

    def test_substream_stable_under_fleet_growth(self, small_corpus):
        # The regression this class exists for: one device's stream is a
        # pure function of (corpus, profile, seed, device id) — generating
        # other devices' streams first must never perturb it.
        loadgen = FleetLoadGenerator(small_corpus, seed=5)
        before = loadgen.device_events(3, 20)
        for other in range(50):
            loadgen.device_events(other, 20)
        after = loadgen.device_events(3, 20)
        assert [(e.tick, e.seq) for e in before] == [(e.tick, e.seq) for e in after]
        assert [e.packet for e in before] == [e.packet for e in after]

    def test_fleet_merge_is_growth_stable(self, small_corpus):
        # The 10-device merged stream is the 9-device stream with
        # device-00009's events spliced in — nothing else moves.
        loadgen = FleetLoadGenerator(small_corpus, seed=5)
        small = loadgen.fleet_events(9, 10)
        large = loadgen.fleet_events(10, 10)
        kept = [e for e in large if e.device_id != "device-00009"]
        assert [(e.tick, e.device_id) for e in kept] == [
            (e.tick, e.device_id) for e in small
        ]

    def test_fleet_events_tick_ordered_and_renumbered(self, small_corpus):
        events = FleetLoadGenerator(small_corpus, seed=5).fleet_events(4, 6)
        assert len(events) == 24
        assert [e.seq for e in events] == list(range(24))
        ticks = [e.tick for e in events]
        assert ticks == sorted(ticks)

    def test_distinct_devices_have_distinct_streams(self, small_corpus):
        loadgen = FleetLoadGenerator(small_corpus, seed=5)
        a = loadgen.device_events(0, 20)
        b = loadgen.device_events(1, 20)
        assert [e.tick for e in a] != [e.tick for e in b]

    def test_device_id_format(self):
        assert FleetLoadGenerator.device_id(3) == "device-00003"
        assert FleetLoadGenerator.device_id(12345) == "device-12345"

    def test_packet_pool_override(self, small_corpus, small_split):
        suspicious, __ = small_split
        loadgen = FleetLoadGenerator(small_corpus, seed=5, packets=suspicious)
        pool = {p.wire_bytes() for p in suspicious}
        events = loadgen.device_events(0, 30)
        assert all(e.packet.wire_bytes() in pool for e in events)

    def test_empty_packet_pool_rejected(self, small_corpus):
        with pytest.raises(SimulationError):
            FleetLoadGenerator(small_corpus, seed=5, packets=[])

    def test_rejects_bad_arguments(self, small_corpus):
        loadgen = FleetLoadGenerator(small_corpus, seed=5)
        with pytest.raises(SimulationError):
            loadgen.device_events(-1, 10)
        with pytest.raises(SimulationError):
            loadgen.device_events(0, 0)
        with pytest.raises(SimulationError):
            loadgen.fleet_events(0, 10)


class TestValidation:
    def test_rejects_bad_profile(self):
        with pytest.raises(SimulationError):
            LoadProfile(mean_interarrival_ticks=0.0)
        with pytest.raises(SimulationError):
            LoadProfile(n_devices=0)
        with pytest.raises(SimulationError):
            LoadProfile(burst_factor=0.5)
        with pytest.raises(SimulationError):
            LoadProfile(burst_ticks=-1.0)

    def test_rejects_non_positive_event_count(self, small_corpus):
        with pytest.raises(SimulationError):
            FleetLoadGenerator(small_corpus, seed=0).events(0)
