"""The fleet load generator: determinism, ordering, burst shaping."""

import pytest

from repro.errors import SimulationError
from repro.serving.loadgen import FleetLoadGenerator, LoadProfile


class TestEventStream:
    def test_deterministic_for_seed(self, small_corpus):
        a = FleetLoadGenerator(small_corpus, seed=5).events(200)
        b = FleetLoadGenerator(small_corpus, seed=5).events(200)
        assert [(e.tick, e.device_id, e.seq) for e in a] == [
            (e.tick, e.device_id, e.seq) for e in b
        ]
        assert all(x.packet is y.packet for x, y in zip(a, b))

    def test_different_seed_different_stream(self, small_corpus):
        a = FleetLoadGenerator(small_corpus, seed=5).events(50)
        b = FleetLoadGenerator(small_corpus, seed=6).events(50)
        assert [e.tick for e in a] != [e.tick for e in b]

    def test_ticks_strictly_ordered_and_seq_dense(self, small_corpus):
        events = FleetLoadGenerator(small_corpus, seed=0).events(300)
        ticks = [e.tick for e in events]
        assert ticks == sorted(ticks)
        assert [e.seq for e in events] == list(range(300))

    def test_default_is_one_trace_pass(self, small_corpus):
        events = FleetLoadGenerator(small_corpus, seed=0).events()
        assert len(events) == len(small_corpus.trace)

    def test_cycles_trace_beyond_its_length(self, small_corpus):
        n = len(small_corpus.trace) + 25
        events = FleetLoadGenerator(small_corpus, seed=0).events(n)
        assert len(events) == n
        assert events[len(small_corpus.trace)].packet is events[0].packet

    def test_devices_within_fleet(self, small_corpus):
        profile = LoadProfile(n_devices=3)
        events = FleetLoadGenerator(small_corpus, profile, seed=1).events(120)
        devices = {e.device_id for e in events}
        assert devices <= {"device-000", "device-001", "device-002"}
        assert len(devices) == 3


class TestBurst:
    def test_burst_compresses_interarrivals(self, small_corpus):
        calm = LoadProfile(mean_interarrival_ticks=2.0)
        burst = LoadProfile(
            mean_interarrival_ticks=2.0, burst_factor=8.0, burst_start=0.0, burst_ticks=1e9
        )
        calm_events = FleetLoadGenerator(small_corpus, calm, seed=2).events(400)
        burst_events = FleetLoadGenerator(small_corpus, burst, seed=2).events(400)
        assert burst_events[-1].tick < calm_events[-1].tick / 4

    def test_burst_window_only(self, small_corpus):
        profile = LoadProfile(
            mean_interarrival_ticks=1.0, burst_factor=10.0, burst_start=0.0, burst_ticks=20.0
        )
        events = FleetLoadGenerator(small_corpus, profile, seed=3).events(500)
        inside = [e for e in events if e.tick < 20.0]
        outside = [e for e in events if e.tick >= 20.0]
        assert len(inside) > 100  # ~10x rate in the window
        assert outside  # stream continues past the burst


class TestValidation:
    def test_rejects_bad_profile(self):
        with pytest.raises(SimulationError):
            LoadProfile(mean_interarrival_ticks=0.0)
        with pytest.raises(SimulationError):
            LoadProfile(n_devices=0)
        with pytest.raises(SimulationError):
            LoadProfile(burst_factor=0.5)
        with pytest.raises(SimulationError):
            LoadProfile(burst_ticks=-1.0)

    def test_rejects_non_positive_event_count(self, small_corpus):
        with pytest.raises(SimulationError):
            FleetLoadGenerator(small_corpus, seed=0).events(0)
