"""Service persistence: repositories over in-memory and sqlite backends."""

import sqlite3
import threading

import pytest

from repro.errors import ServiceError, SignatureStoreError
from repro.service.repository import (
    MIGRATIONS,
    InMemoryReportRepository,
    InMemorySignatureRepository,
    SqliteReportRepository,
    SqliteSignatureRepository,
    SqliteStore,
    open_repositories,
)
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore


def sigs(n: int = 2):
    return [
        ConjunctionSignature(tokens=(f"udid=abc{i}", "seq="), scope_domain="admob.com")
        for i in range(n)
    ]


def envelope_doc(set_version: int, n: int = 2) -> str:
    return SignatureStore.dumps_envelope(sigs(n), set_version)


@pytest.fixture(params=["memory", "sqlite"])
def sig_repo(request, tmp_path):
    if request.param == "memory":
        yield InMemorySignatureRepository()
    else:
        store = SqliteStore(tmp_path / "repo.sqlite3")
        yield SqliteSignatureRepository(store)
        store.close()


@pytest.fixture(params=["memory", "sqlite"])
def report_repo(request, tmp_path):
    if request.param == "memory":
        yield InMemoryReportRepository()
    else:
        store = SqliteStore(tmp_path / "repo.sqlite3")
        yield SqliteReportRepository(store)
        store.close()


class TestSignatureRepository:
    def test_empty(self, sig_repo):
        assert sig_repo.latest_version() == 0
        assert sig_repo.latest() is None
        assert sig_repo.get(1) is None
        assert sig_repo.versions() == []
        assert sig_repo.corrupt_reads() == 0

    def test_store_roundtrip_is_verbatim(self, sig_repo):
        document = envelope_doc(1)
        stored = sig_repo.store(document)
        assert stored.set_version == 1
        found_document, found_envelope = sig_repo.latest()
        assert found_document == document  # byte-identical, not re-serialized
        assert found_envelope.checksum == stored.checksum
        assert sig_repo.get(1)[0] == document

    def test_versions_accumulate(self, sig_repo):
        sig_repo.store(envelope_doc(1))
        sig_repo.store(envelope_doc(3))
        assert sig_repo.versions() == [1, 3]
        assert sig_repo.latest_version() == 3
        assert sig_repo.latest()[1].set_version == 3
        assert sig_repo.get(1)[1].set_version == 1

    def test_stale_publish_rejected(self, sig_repo):
        sig_repo.store(envelope_doc(2))
        for stale in (1, 2):
            with pytest.raises(ServiceError, match="stale publish"):
                sig_repo.store(envelope_doc(stale))
        assert sig_repo.versions() == [2]  # nothing was persisted

    def test_corrupt_document_rejected_on_write(self, sig_repo):
        with pytest.raises(SignatureStoreError):
            sig_repo.store('{"not": "an envelope"}')
        assert sig_repo.latest() is None


class TestCorruptionDegradation:
    def corrupt_version(self, repo, version: int) -> None:
        if isinstance(repo, InMemorySignatureRepository):
            repo.corrupt(version, '{"garbage": true}')
        else:
            repo.store_backend.write(
                "UPDATE signature_envelopes SET document = ? WHERE set_version = ?",
                ('{"garbage": true}', version),
            )

    def test_degrades_to_last_known_good(self, sig_repo):
        good = envelope_doc(1)
        sig_repo.store(good)
        sig_repo.store(envelope_doc(2))
        self.corrupt_version(sig_repo, 2)
        document, envelope = sig_repo.latest()
        assert envelope.set_version == 1
        assert document == good
        assert sig_repo.corrupt_reads() == 1
        assert sig_repo.get(2) is None
        # the raw history still lists the corrupt version
        assert sig_repo.versions() == [1, 2]

    def test_all_corrupt_is_none(self, sig_repo):
        sig_repo.store(envelope_doc(1))
        self.corrupt_version(sig_repo, 1)
        assert sig_repo.latest() is None
        assert sig_repo.corrupt_reads() >= 1

    def test_checksum_tamper_detected(self, sig_repo):
        # flip payload bytes but keep valid JSON: the stored checksum no
        # longer matches, so read-time verification must refuse the row
        document = envelope_doc(1, n=3)
        sig_repo.store(document)
        tampered = document.replace("udid=abc0", "udid=evil0")
        if isinstance(sig_repo, InMemorySignatureRepository):
            sig_repo.corrupt(1, tampered)
        else:
            sig_repo.store_backend.write(
                "UPDATE signature_envelopes SET document = ? WHERE set_version = 1",
                (tampered,),
            )
        assert sig_repo.latest() is None
        assert sig_repo.corrupt_reads() == 1


class TestReportRepository:
    def test_add_and_count(self, report_repo):
        assert report_repo.add("dev-a", 1, "tok-1", {"v": 1}) is True
        assert report_repo.add("dev-a", 2, "tok-1", {"v": 2}) is True
        assert report_repo.count() == 2

    def test_redelivery_is_idempotent(self, report_repo):
        assert report_repo.add("dev-a", 1, "tok-1", {"v": 1}) is True
        assert report_repo.add("dev-a", 1, "tok-1", {"v": 1}) is False
        assert report_repo.count() == 1

    def test_token_support_counts_distinct_devices(self, report_repo):
        report_repo.add("dev-a", 1, "tok-1", {})
        report_repo.add("dev-a", 2, "tok-1", {})  # same device twice
        report_repo.add("dev-b", 1, "tok-1", {})
        report_repo.add("dev-b", 2, "tok-2", {})
        assert report_repo.token_support() == {"tok-1": 2, "tok-2": 1}


class TestSqliteStore:
    def test_memory_path_rejected(self):
        with pytest.raises(ServiceError, match="file path"):
            SqliteStore(":memory:")

    def test_migrations_apply_once(self, tmp_path):
        path = tmp_path / "svc.sqlite3"
        first = SqliteStore(path)
        assert first.migrations_applied == len(MIGRATIONS)
        assert first.schema_version() == len(MIGRATIONS)
        first.close()
        again = SqliteStore(path)  # re-open: nothing left to apply
        assert again.migrations_applied == 0
        assert again.schema_version() == len(MIGRATIONS)
        again.close()

    def test_wal_mode_pinned(self, tmp_path):
        store = SqliteStore(tmp_path / "svc.sqlite3")
        mode = store.connection().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_data_survives_reopen(self, tmp_path):
        path = tmp_path / "svc.sqlite3"
        store = SqliteStore(path)
        repo = SqliteSignatureRepository(store)
        document = envelope_doc(1)
        repo.store(document)
        store.close()
        reopened = SqliteSignatureRepository(SqliteStore(path))
        assert reopened.latest()[0] == document
        reopened.store_backend.close()

    def test_open_repositories_wiring(self, tmp_path):
        memory = open_repositories(None)
        assert isinstance(memory[0], InMemorySignatureRepository)
        assert memory[2] is None
        durable = open_repositories(tmp_path / "svc.sqlite3")
        assert isinstance(durable[0], SqliteSignatureRepository)
        assert durable[2] is not None
        durable[2].close()


class TestConcurrency:
    def test_readers_proceed_during_writer_transaction(self, tmp_path):
        """WAL: thread-per-request readers never block behind the writer."""
        path = tmp_path / "svc.sqlite3"
        store = SqliteStore(path)
        repo = SqliteSignatureRepository(store)
        committed = envelope_doc(1)
        repo.store(committed)

        # open (and hold) an uncommitted writer transaction on this thread
        writer = store.connection()
        writer.execute("BEGIN IMMEDIATE")
        writer.execute(
            "INSERT INTO signature_envelopes (set_version, checksum, document) "
            "VALUES (?, ?, ?)",
            (2, "deadbeef", envelope_doc(2)),
        )

        seen: list = []
        errors: list = []

        def read() -> None:
            try:
                # each thread gets its own connection from the store
                seen.append(repo.latest())
            except sqlite3.Error as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=read) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        writer.rollback()

        assert not errors
        assert len(seen) == 8
        # snapshot isolation: every reader saw the committed version only
        assert all(found[0] == committed for found in seen)
        store.close()

    def test_concurrent_writers_keep_history_consistent(self, tmp_path):
        """Racing publishers: exactly one insert per version wins."""
        store = SqliteStore(tmp_path / "svc.sqlite3")
        repo = SqliteSignatureRepository(store)
        outcomes: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def publish(version: int) -> None:
            barrier.wait()
            try:
                repo.store(envelope_doc(version))
                result = "stored"
            except ServiceError:
                result = "rejected"
            with lock:
                outcomes.append(result)

        threads = [
            threading.Thread(target=publish, args=(version,))
            for version in (1, 1, 2, 2, 3, 3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        assert len(outcomes) == 6
        # history is a clean monotone prefix subset regardless of the race
        stored = repo.versions()
        assert stored == sorted(set(stored))
        assert set(stored) <= {1, 2, 3}
        assert repo.latest()[1].set_version == max(stored)
        assert outcomes.count("stored") == len(stored)
        store.close()
