"""Deterministic fault injection."""

import pytest

from repro.errors import SimulationError
from repro.reliability.faults import FaultKind, FaultPlan

PAYLOAD = b'{"format_version": 2, "signatures": ["x" * 4]}' * 8


def outcomes(plan, n=200):
    return [plan.apply(PAYLOAD) for __ in range(n)]


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = outcomes(FaultPlan(seed=3, drop=0.2, corrupt=0.2, truncate=0.2))
        b = outcomes(FaultPlan(seed=3, drop=0.2, corrupt=0.2, truncate=0.2))
        assert a == b

    def test_different_seed_different_sequence(self):
        a = outcomes(FaultPlan(seed=3, drop=0.3, corrupt=0.3))
        b = outcomes(FaultPlan(seed=4, drop=0.3, corrupt=0.3))
        assert a != b

    def test_labels_fork_the_stream(self):
        plan_a = FaultPlan(seed=3, drop=0.5)
        plan_b = FaultPlan(seed=3, drop=0.5)
        a = [plan_a.apply(PAYLOAD, "device-1") for __ in range(50)]
        b = [plan_b.apply(PAYLOAD, "device-2") for __ in range(50)]
        assert a != b


class TestTaxonomy:
    def test_clean_plan_never_faults(self):
        plan = FaultPlan(seed=0)
        for outcome in outcomes(plan, 50):
            assert outcome.kind is FaultKind.NONE
            assert outcome.payload == PAYLOAD

    def test_all_kinds_occur_at_high_rates(self):
        plan = FaultPlan(seed=1, drop=0.15, truncate=0.15, corrupt=0.15, delay=0.15, stale=0.15)
        outcomes(plan, 400)
        for kind in FaultKind:
            assert plan.counts[kind] > 0, kind

    def test_drop_loses_payload(self):
        plan = FaultPlan(seed=2, drop=1.0)
        outcome = plan.apply(PAYLOAD)
        assert outcome.kind is FaultKind.DROP
        assert outcome.payload is None
        assert not outcome.delivered

    def test_truncate_yields_strict_prefix(self):
        plan = FaultPlan(seed=2, truncate=1.0)
        for __ in range(50):
            outcome = plan.apply(PAYLOAD)
            assert outcome.kind is FaultKind.TRUNCATE
            assert len(outcome.payload) < len(PAYLOAD)
            assert PAYLOAD.startswith(outcome.payload)

    def test_corrupt_changes_bytes_not_length(self):
        plan = FaultPlan(seed=2, corrupt=1.0)
        for __ in range(50):
            outcome = plan.apply(PAYLOAD)
            assert outcome.kind is FaultKind.CORRUPT
            assert len(outcome.payload) == len(PAYLOAD)
            assert outcome.payload != PAYLOAD

    def test_delay_keeps_payload_and_adds_ticks(self):
        plan = FaultPlan(seed=2, delay=1.0, max_delay_ticks=5.0)
        outcome = plan.apply(PAYLOAD)
        assert outcome.kind is FaultKind.DELAY
        assert outcome.payload == PAYLOAD
        assert 0.0 <= outcome.delay_ticks <= 5.0

    def test_stale_passes_payload_through(self):
        plan = FaultPlan(seed=2, stale=1.0)
        outcome = plan.apply(PAYLOAD)
        assert outcome.kind is FaultKind.STALE
        assert outcome.payload == PAYLOAD

    def test_empirical_rate_tracks_nominal(self):
        plan = FaultPlan(seed=5, drop=0.25)
        results = outcomes(plan, 1000)
        dropped = sum(1 for o in results if o.kind is FaultKind.DROP)
        assert 0.18 <= dropped / 1000 <= 0.32


class TestStream:
    def test_stream_applies_per_packet(self):
        plan = FaultPlan(seed=9, drop=0.5)
        payloads = [b"packet-%d" % i for i in range(40)]
        results = list(plan.apply_stream(payloads))
        assert len(results) == 40
        kinds = {o.kind for o in results}
        assert FaultKind.DROP in kinds and FaultKind.NONE in kinds

    def test_uniform_splits_rate(self):
        plan = FaultPlan.uniform(0.4, seed=1)
        assert plan.total_rate == pytest.approx(0.4)


class TestValidation:
    def test_rejects_rate_out_of_range(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop=1.5)

    def test_rejects_rates_summing_past_one(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop=0.6, corrupt=0.6)

    def test_rejects_negative_delay_bound(self):
        with pytest.raises(SimulationError):
            FaultPlan(max_delay_ticks=-1)
