"""The command-line interface, exercised end to end through files."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A corpus built once through the CLI itself."""
    root = tmp_path_factory.mktemp("cli")
    trace = root / "trace.jsonl"
    identity = root / "identity.json"
    code = main(
        [
            "corpus", "--apps", "40", "--seed", "3",
            "--out", str(trace), "--identity", str(identity),
        ]
    )
    assert code == 0
    return root, trace, identity


class TestCorpus:
    def test_outputs_exist(self, workspace):
        __, trace, identity = workspace
        assert trace.exists() and trace.stat().st_size > 0
        data = json.loads(identity.read_text())
        assert set(data) == {"android_id", "imei", "imsi", "sim_serial", "carrier"}


class TestLabel:
    def test_prints_table3_view(self, workspace, capsys):
        __, trace, identity = workspace
        assert main(["label", "--trace", str(trace), "--identity", str(identity)]) == 0
        out = capsys.readouterr().out
        assert "suspicious:" in out
        assert "ANDROID_ID" in out


class TestGenerateAndScreen:
    def test_generate_writes_signatures(self, workspace, capsys):
        root, trace, identity = workspace
        sigs = root / "signatures.json"
        code = main(
            [
                "generate", "--trace", str(trace), "--identity", str(identity),
                "--sample", "40", "--out", str(sigs),
            ]
        )
        assert code == 0
        from repro.signatures.store import SignatureStore

        assert SignatureStore.load(sigs)

    def test_screen_reports_metrics(self, workspace, capsys):
        root, trace, identity = workspace
        sigs = root / "signatures.json"
        if not sigs.exists():
            main(
                [
                    "generate", "--trace", str(trace), "--identity", str(identity),
                    "--sample", "40", "--out", str(sigs),
                ]
            )
            capsys.readouterr()
        code = main(
            [
                "screen", "--trace", str(trace), "--signatures", str(sigs),
                "--identity", str(identity), "--sample", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flagged" in out
        assert "TP" in out

    def test_screen_without_ground_truth(self, workspace, capsys):
        root, trace, identity = workspace
        sigs = root / "signatures.json"
        if not sigs.exists():
            main(
                [
                    "generate", "--trace", str(trace), "--identity", str(identity),
                    "--sample", "40", "--out", str(sigs),
                ]
            )
            capsys.readouterr()
        assert main(["screen", "--trace", str(trace), "--signatures", str(sigs)]) == 0
        out = capsys.readouterr().out
        assert "TP" not in out  # no metrics without identity


class TestReportCommands:
    def test_report_renders_tables(self, capsys):
        assert main(["report", "--apps", "30", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Table III" in out
        assert "Fig 2" in out

    def test_fig4_runs(self, capsys):
        assert main(["fig4", "--apps", "30", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4" in out


class TestAnalyzeAndRedact:
    def test_analyze_prints_coverage(self, workspace, capsys):
        root, trace, identity = workspace
        sigs = root / "signatures.json"
        if not sigs.exists():
            main(
                [
                    "generate", "--trace", str(trace), "--identity", str(identity),
                    "--sample", "40", "--out", str(sigs),
                ]
            )
            capsys.readouterr()
        code = main(
            [
                "analyze", "--trace", str(trace), "--identity", str(identity),
                "--signatures", str(sigs),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "prompt rate" in out

    def test_redact_produces_clean_trace(self, workspace, capsys):
        root, trace, identity = workspace
        out_path = root / "redacted.jsonl"
        code = main(
            [
                "redact", "--trace", str(trace), "--identity", str(identity),
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert "verified clean" in capsys.readouterr().out
        import json

        from repro.dataset.trace import Trace
        from repro.sensitive.identifiers import DeviceIdentity
        from repro.sensitive.payload_check import PayloadCheck

        identity_obj = DeviceIdentity.from_dict(json.loads(identity.read_text()))
        check = PayloadCheck(identity_obj)
        clean = Trace.load_jsonl(out_path)
        assert not any(check.is_sensitive(p) for p in clean.packets[:200])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_verbs_listed_and_dispatch(self, capsys):
        from repro.cli import (
            build_parser,
            cmd_serve,
            cmd_service,
            cmd_service_bench,
        )

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--help"])
        help_text = capsys.readouterr().out
        for verb in (
            "corpus", "label", "generate", "screen", "risk", "export",
            "analyze", "redact", "report", "fig4", "bench", "stream",
            "serve", "arena", "service", "service-bench", "slo", "chaos",
            "federate", "trace", "metrics",
        ):
            assert verb in help_text, verb
        # serve (offline bench) vs service (network server) stay distinct
        assert "OFFLINE" in help_text
        assert "NETWORK-FACING" in help_text
        assert parser.parse_args(["serve", "--quick"]).func is cmd_serve
        assert parser.parse_args(["service"]).func is cmd_service
        assert parser.parse_args(["service-bench", "--quick"]).func is cmd_service_bench

    def test_service_verb_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["service", "--port", "8080", "--db", "x.db"])
        assert (args.host, args.port, args.db) == ("127.0.0.1", 8080, "x.db")
        assert args.ready_file == ""




class TestExport:
    def test_export_mitmproxy(self, workspace, capsys, tmp_path):
        root, trace, identity = workspace
        sigs = root / "signatures.json"
        if not sigs.exists():
            main(
                [
                    "generate", "--trace", str(trace), "--identity", str(identity),
                    "--sample", "40", "--out", str(sigs),
                ]
            )
            capsys.readouterr()
        out = tmp_path / "addon.py"
        assert main(["export", "--signatures", str(sigs), "--out", str(out)]) == 0
        compile(out.read_text(), str(out), "exec")  # valid python

    def test_export_snort(self, workspace, capsys, tmp_path):
        root, trace, identity = workspace
        sigs = root / "signatures.json"
        if not sigs.exists():
            main(
                [
                    "generate", "--trace", str(trace), "--identity", str(identity),
                    "--sample", "40", "--out", str(sigs),
                ]
            )
            capsys.readouterr()
        out = tmp_path / "leaks.rules"
        assert main(
            ["export", "--signatures", str(sigs), "--format", "snort", "--out", str(out)]
        ) == 0
        assert out.read_text().startswith("alert tcp")


class TestRisk:
    def test_risk_ranks_population(self, capsys):
        assert main(["risk", "--apps", "30", "--seed", "2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "static permission risk" in out
        assert "CRITICAL" in out or "HIGH" in out or "MODERATE" in out


class TestChaos:
    def test_renders_sweep_table(self, capsys):
        code = main(
            [
                "chaos", "--apps", "30", "--seed", "1",
                "--sample", "20", "--devices", "2", "--rates", "0,0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "fault%" in out

    def test_rejects_malformed_rates(self, capsys):
        assert main(["chaos", "--rates", "zero,half"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_pipeline_target_renders_and_exits_zero(self, capsys):
        code = main(
            [
                "chaos", "--target", "pipeline", "--apps", "30", "--seed", "1",
                "--sample", "20", "--rates", "0,0.4",
            ]
        )
        assert code == 0  # exit status IS the recovery-invariant verdict
        out = capsys.readouterr().out
        assert "supervised pipeline" in out
        assert "invariant: holds" in out

    def test_pipeline_target_json_reports_invariant(self, capsys):
        code = main(
            [
                "chaos", "--target", "pipeline", "--apps", "30", "--seed", "1",
                "--sample", "20", "--rates", "0.3", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bench"] == "chaos_pipeline"
        assert data["invariant_holds"] is True
        point = data["points"][0]
        assert point["recovered"] is True
        assert point["matrix_identical"] is True
        assert point["signatures_identical"] is True
        assert point["crash_stages"] == ["payload_check", "distance_matrix", "cut"]

    def test_pipeline_target_rejects_unknown_stage(self, capsys):
        assert (
            main(["chaos", "--target", "pipeline", "--crash-stages", "collect,warp"]) == 2
        )
        assert "warp" in capsys.readouterr().err

    def test_federation_target_renders_and_exits_zero(self, capsys):
        code = main(
            [
                "chaos", "--target", "federation", "--apps", "30", "--seed", "1",
                "--devices", "8", "--reports", "4", "--min-support", "2",
                "--rates", "0,0.4",
            ]
        )
        assert code == 0  # exit status IS the byte-identity verdict
        out = capsys.readouterr().out
        assert "crowdsourced federation" in out
        assert "byte-identity invariant: holds" in out

    def test_federation_target_json_reports_invariant(self, capsys):
        code = main(
            [
                "chaos", "--target", "federation", "--apps", "30", "--seed", "1",
                "--devices", "8", "--reports", "4", "--min-support", "2",
                "--rates", "0.3", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bench"] == "chaos_federation"
        assert data["invariant_holds"] is True
        point = data["points"][0]
        assert point["signatures_identical"] is True
        assert point["tokens_identical"] is True
        assert point["faults_injected"] > 0


class TestServe:
    def test_quick_serve_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serving.json"
        telemetry = tmp_path / "telemetry"
        code = main(
            [
                "serve", "--quick", "--apps", "40", "--events", "600",
                "--sample", "30", "--seed", "4", "--out", str(out),
                "--telemetry", str(telemetry),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Serving bench" in text
        data = json.loads(out.read_text())
        assert data["bench"] == "serving"
        assert data["violations"] == []
        assert {s["name"] for s in data["scenarios"]} == {"steady", "overload"}
        assert all(s["identical"] for s in data["scenarios"])
        jsonl = sorted(telemetry.glob("serving_*.jsonl"))
        assert len(jsonl) == 2
        last = json.loads(jsonl[0].read_text().splitlines()[-1])
        assert last["kind"] == "summary"


class TestServiceBench:
    def test_quick_service_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        code = main(
            [
                "service-bench", "--quick", "--apps", "30", "--clients", "25",
                "--ops", "4", "--sample", "30", "--pool", "8", "--seed", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Service bench" in text
        assert "budget: ok" in text
        data = json.loads(out.read_text())
        assert data["bench"] == "service"
        assert data["ok"] is True
        assert data["identical"] is True
        assert data["n_5xx"] == 0
        assert data["server"]["backend"] == "sqlite"
        assert data["republication"]["stale_status"] == 409
        assert data["slo"]["ok"] is True
        assert data["tracing"] == {"enabled": False}

    def test_trace_dir_enables_tracing_and_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        trace_dir = tmp_path / "service_trace"
        code = main(
            [
                "service-bench", "--quick", "--apps", "30", "--clients", "25",
                "--ops", "4", "--sample", "30", "--pool", "8", "--seed", "2",
                "--out", str(out), "--trace-dir", str(trace_dir),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "tracing:" in text
        data = json.loads(out.read_text())
        assert data["tracing"]["enabled"] is True
        assert data["tracing"]["join"]["complete"] is True
        assert data["checks"]["trace_join_complete"] is True
        for name in (
            "client_spans.jsonl", "server_spans.jsonl", "trace_joined.json",
            "access_log.jsonl", "flight_recorder.jsonl",
        ):
            assert (trace_dir / name).exists(), name
        joined = json.loads((trace_dir / "trace_joined.json").read_text())
        assert joined["otherData"]["joined_processes"] == ["client", "server"]


class TestSloVerb:
    def test_bench_mode(self, tmp_path, capsys):
        section = {
            "bench": "service",
            "slo": {
                "objectives": {
                    "availability": {
                        "kind": "availability", "target": 0.999,
                        "compliance": 1.0,
                        "budget": {"allowed_bad": 1.0, "bad": 0,
                                   "consumed": 0.0, "remaining": 1.0},
                        "alerts": [], "ok": True,
                    }
                },
                "page_alerts": 0,
                "ticket_alerts": 0,
                "ok": True,
            },
        }
        path = tmp_path / "BENCH_service.json"
        path.write_text(json.dumps(section))
        code = main(["slo", "--bench", str(path)])
        assert code == 0
        text = capsys.readouterr().out
        assert "SLO report — OK" in text
        assert "availability" in text

    def test_bench_mode_flags_violations(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench": "service", "slo": {
            "objectives": {}, "page_alerts": 3, "ticket_alerts": 0, "ok": False,
        }}))
        code = main(["slo", "--bench", str(path)])
        assert code == 1
        text = capsys.readouterr().out
        assert "VIOLATED" in text
        assert "problem:" in text

    def test_access_log_mode_replays(self, tmp_path, capsys):
        log = tmp_path / "access_log.jsonl"
        lines = [
            json.dumps({"kind": "access", "route": "fetch", "status": 200,
                        "ms": 3.0, "trace_id": None})
            for _ in range(5)
        ]
        log.write_text("\n".join(lines) + "\n")
        code = main(["slo", "--access-log", str(log), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "slo"
        assert payload["ok"] is True
        assert payload["objectives"]["availability"]["total"] == 5

    def test_requires_exactly_one_source(self, capsys):
        assert main(["slo"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestBench:
    def test_quick_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "bench", "--quick", "--apps", "30", "--sample", "16",
                "--workers", "2", "--seed", "3", "--screen", "200",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Perf bench" in text
        data = json.loads(out.read_text())
        assert data["bench"] == "perf"
        assert data["identical"] is True
        assert data["workers"] == 2
        assert data["violations"] == []


class TestFederate:
    @pytest.fixture(scope="class")
    def quick_run(self, tmp_path_factory):
        # One quick bench shared by the class: the smoke-scale arms still
        # take a few seconds each.
        out = tmp_path_factory.mktemp("federate") / "BENCH_federation.json"
        code = main(["federate", "--quick", "--out", str(out), "--json"])
        return code, out

    def test_quick_federate_writes_report(self, quick_run):
        code, out = quick_run
        assert code == 0
        data = json.loads(out.read_text())
        assert data["bench"] == "federation"
        assert data["violations"] == []
        assert {arm["name"] for arm in data["arms"]} == {"fleet", "single"}

    def test_quick_federate_report_shape(self, quick_run):
        __, out = quick_run
        data = json.loads(out.read_text())
        assert data["ok"] is True
        fleet = next(arm for arm in data["arms"] if arm["name"] == "fleet")
        single = next(arm for arm in data["arms"] if arm["name"] == "single")
        assert fleet["material_fabricated"] == 0  # the k-gate held
        assert fleet["precision"] >= single["precision"]
        assert fleet["ingest"]["accepted"] > 0



class TestJsonFlag:
    """The shared --json report path (bench/serve/chaos/trace/metrics)."""

    def test_bench_json_is_parseable_and_exclusive(self, capsys):
        code = main(
            [
                "bench", "--quick", "--apps", "30", "--sample", "16",
                "--workers", "2", "--seed", "3", "--screen", "200", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bench"] == "perf"
        assert data["ok"] is True
        assert "stages" in data and "cache_counters" in data
        assert data["stages"]["stages"]["matrix_serial"]["count"] == 1
        assert data["cache_counters"]["engine_pair_misses"] > 0

    def test_chaos_json_reports_points(self, capsys):
        code = main(
            [
                "chaos", "--apps", "30", "--seed", "1", "--sample", "20",
                "--devices", "2", "--rates", "0,0.5", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bench"] == "chaos"
        assert data["n_points"] == 2
        assert data["points"][0]["fault_rate"] == 0.0

    def test_serve_json_is_parseable(self, capsys):
        code = main(
            [
                "serve", "--quick", "--apps", "40", "--events", "400",
                "--sample", "30", "--seed", "4", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bench"] == "serving"


class TestTrace:
    def test_writes_artifacts_and_profile(self, tmp_path, capsys):
        out = tmp_path / "trace_out"
        code = main(
            ["trace", "--apps", "15", "--sample", "12", "--seed", "2", "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Stage profile" in text
        for name in ("spans.jsonl", "trace.json", "metrics.prom", "stages.json"):
            assert (out / name).exists(), name
        stages = json.loads((out / "stages.json").read_text())
        assert stages["stages"]["distance_matrix"]["count"] == 1

    def test_trace_json_output(self, tmp_path, capsys):
        out = tmp_path / "trace_out"
        code = main(
            [
                "trace", "--apps", "15", "--sample", "12", "--seed", "2",
                "--out", str(out), "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_signatures"] >= 1
        assert set(data["artifacts"]) == {"chrome", "metrics", "spans", "stages"}


class TestMetrics:
    def test_writes_registry_and_counters(self, tmp_path, capsys):
        out = tmp_path / "metrics_out"
        code = main(
            [
                "metrics", "--apps", "15", "--events", "150", "--sample", "12",
                "--seed", "2", "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Serving metrics" in text
        assert "flow_decisions" in text
        prom = (out / "metrics.prom").read_text()
        assert "repro_channel_publishes 2" in prom
        assert (out / "spans.jsonl").exists()
        assert (out / "serving_spans.jsonl").exists()

    def test_metrics_json_output(self, tmp_path, capsys):
        out = tmp_path / "metrics_out"
        code = main(
            [
                "metrics", "--apps", "15", "--events", "150", "--sample", "12",
                "--seed", "2", "--out", str(out), "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["flow_decisions"] > 0
        assert data["events"] == 150


class TestArena:
    ARGS = [
        "arena", "--apps", "40", "--rounds", "2", "--train", "72",
        "--leak", "32", "--benign", "48", "--families", "padding_chaff",
        "--seed", "5",
    ]

    def test_small_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_arena.json"
        code = main([*self.ARGS, "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "Arena bench" in text
        assert "budget: ok" in text
        report = json.loads(out.read_text())
        assert report["bench"] == "arena"
        assert report["ok"] is True
        assert report["recovered"] is True
        assert list(report["families"]) == ["padding_chaff"]

    def test_arena_json_output(self, capsys):
        code = main([*self.ARGS, "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ground_truth_intact"] is True
        assert data["families"]["padding_chaff"]["rounds"]

    def test_quick_flag_clamps_scale(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["arena", "--quick"])
        assert args.quick
        assert (args.apps, args.rounds) == (120, 6)  # clamped inside cmd_arena


class TestStream:
    def test_quick_run_writes_report_and_audit(self, tmp_path, capsys):
        out = tmp_path / "BENCH_streaming.json"
        audit_out = tmp_path / "AUDIT_streaming.json"
        code = main(
            [
                "stream", "--quick", "--apps", "40", "--base", "40",
                "--batch", "20", "--batches", "2", "--seed", "3",
                "--out", str(out), "--audit-out", str(audit_out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Streaming bench" in text
        assert "budget: ok" in text
        report = json.loads(out.read_text())
        assert report["bench"] == "streaming"
        assert report["identical"] is True
        assert report["ok"] is True
        audit = json.loads(audit_out.read_text())
        assert audit["bench"] == "streaming_audit"
        assert audit["audit"]["signatures_identical"] is True

    def test_stream_json_output(self, capsys):
        code = main(
            [
                "stream", "--quick", "--apps", "40", "--base", "40",
                "--batch", "20", "--batches", "1", "--seed", "3", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mode"] == "exact"
        assert data["audit"]["f1"] == 1.0
        assert data["recompute"]["pairs_evaluated"] < data["recompute"]["full_pairs"]
