"""NCD: edge cases, metric-ish properties, compressor backends, caching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.ncd import Compressor, NcdCalculator, compressed_length, ncd

payload = st.binary(min_size=0, max_size=200)


class TestEdgeCases:
    def test_both_empty_is_zero(self):
        assert ncd(b"", b"") == 0.0

    def test_one_empty_is_one(self):
        assert ncd(b"", b"data") == 1.0
        assert ncd(b"data", b"") == 1.0

    def test_identical_is_small(self):
        data = b"GET /ad?udid=abc123 HTTP/1.1" * 4
        assert ncd(data, data) < 0.2

    def test_disjoint_is_large(self):
        import random

        rng = random.Random(1)
        a = bytes(rng.randrange(256) for __ in range(400))
        b = bytes(rng.randrange(256) for __ in range(400))
        assert ncd(a, b) > 0.8

    def test_similar_closer_than_dissimilar(self):
        base = b"POST /collect?imei=358537041234567&carrier=docomo HTTP/1.1"
        similar = b"POST /collect?imei=358537049999999&carrier=docomo HTTP/1.1"
        different = b"GET /img/logo.png?cache=20120401 HTTP/1.1"
        assert ncd(base, similar) < ncd(base, different)


class TestClamp:
    @given(payload, payload)
    def test_clamped_in_unit_interval(self, x, y):
        assert 0.0 <= ncd(x, y) <= 1.0

    def test_unclamped_can_exceed_one_slightly(self):
        # Tiny incompressible inputs can push NCD just above 1.0.
        value = ncd(b"\x00", b"\xff", clamp=False)
        assert value >= 0.0  # just verify it computes; magnitude is backend-specific


class TestCompressors:
    @pytest.mark.parametrize("compressor", list(Compressor))
    def test_all_backends_work(self, compressor):
        a = b"the quick brown fox jumps over the lazy dog" * 3
        b = b"the quick brown fox jumps over the lazy cat" * 3
        value = ncd(a, b, compressor)
        assert 0.0 <= value <= 1.0

    @pytest.mark.parametrize("compressor", list(Compressor))
    def test_compressed_length_positive(self, compressor):
        assert compressed_length(b"hello", compressor) > 0

    def test_compression_actually_compresses(self):
        data = b"ab" * 500
        assert compressed_length(data) < len(data)


class TestCalculator:
    def test_agrees_with_function(self):
        calc = NcdCalculator()
        a, b = b"aaa bbb ccc" * 5, b"aaa bbb ddd" * 5
        assert calc.distance(a, b) == pytest.approx(ncd(a, b))

    def test_cache_grows_and_clears(self):
        calc = NcdCalculator()
        calc.distance(b"one one one", b"two two two")
        assert calc.cache_size() == 2
        calc.distance(b"one one one", b"three three")
        assert calc.cache_size() == 3  # b"one..." reused
        calc.clear_cache()
        assert calc.cache_size() == 0

    def test_edge_cases_match_function(self):
        calc = NcdCalculator()
        assert calc.distance(b"", b"") == 0.0
        assert calc.distance(b"", b"x") == 1.0

    @given(payload, payload)
    def test_rough_symmetry(self, x, y):
        """NCD is only approximately symmetric: C(xy) != C(yx) in general.
        Adversarial binary blobs can push the gap to ~0.15; text-like
        inputs stay much closer (checked below)."""
        calc = NcdCalculator()
        assert calc.distance(x, y) == pytest.approx(calc.distance(y, x), abs=0.2)

    @given(
        st.text(alphabet="abcdef0123456789&=/", min_size=30, max_size=200),
        st.text(alphabet="abcdef0123456789&=/", min_size=30, max_size=200),
    )
    def test_near_symmetry_on_http_like_text(self, x, y):
        """At realistic request-field lengths (>= 30 chars) the asymmetry
        shrinks well below what could flip a clustering decision.  Tiny
        strings are excluded: compressor framing overhead dominates there
        and the relative gap is unbounded."""
        calc = NcdCalculator()
        a = calc.distance(x.encode(), y.encode())
        b = calc.distance(y.encode(), x.encode())
        assert a == pytest.approx(b, abs=0.12)
