"""Supervised distance-engine dispatch under injected worker faults.

The contract: with any :class:`WorkerFaultPlan` the engine recovers — by
re-dispatching crashed/hung chunks and serially recomputing poisoned or
retry-exhausted ones — and the resulting matrix is **bit-identical** to
the fault-free run, at every rate, worker count, and chunking.
"""

import numpy as np
import pytest

from repro.distance.engine import DistanceEngine
from repro.obs import Observability
from repro.reliability.retry import RetryPolicy
from repro.reliability.workerfaults import WorkerFaultPlan

ITEMS = [float(i) * 1.25 for i in range(40)]


def abs_metric(a, b):
    """Module-level (hence picklable) toy metric."""
    return abs(a - b)


@pytest.fixture(scope="module")
def baseline():
    return DistanceEngine(abs_metric, chunk_pairs=16).matrix(ITEMS)


class TestFaultRecovery:
    @pytest.mark.parametrize("rate", [0.0, 0.1, 0.25, 0.5])
    def test_recovered_matrix_bit_identical(self, baseline, rate):
        plan = WorkerFaultPlan.uniform(rate, seed=11)
        engine = DistanceEngine(abs_metric, chunk_pairs=16, fault_plan=plan)
        built = engine.matrix(ITEMS)
        assert built.values.tobytes() == baseline.values.tobytes()
        assert engine.stats.recovered

    @pytest.mark.parametrize("workers", [1, 2])
    def test_identical_across_worker_counts(self, baseline, workers):
        plan = WorkerFaultPlan.uniform(0.4, seed=23)
        engine = DistanceEngine(abs_metric, chunk_pairs=16, workers=workers, fault_plan=plan)
        built = engine.matrix(ITEMS)
        assert built.values.tobytes() == baseline.values.tobytes()
        assert engine.stats.recovered

    def test_fault_accounting_deterministic_across_worker_counts(self):
        # Faults are a pure function of (seed, chunk, attempt), so the
        # recovery ledger must not depend on the pool size either.
        ledgers = []
        for workers in (1, 2):
            plan = WorkerFaultPlan.uniform(0.5, seed=7)
            engine = DistanceEngine(
                abs_metric, chunk_pairs=16, workers=workers, fault_plan=plan
            )
            engine.matrix(ITEMS)
            ledgers.append(
                (
                    engine.stats.chunks_retried,
                    engine.stats.chunks_quarantined,
                    engine.stats.faults_injected,
                )
            )
        assert ledgers[0] == ledgers[1]

    def test_poison_detected_and_quarantined(self, baseline):
        plan = WorkerFaultPlan(seed=3, poison=1.0)
        engine = DistanceEngine(abs_metric, chunk_pairs=16, fault_plan=plan)
        built = engine.matrix(ITEMS)
        # every chunk is poisoned, every chunk must be caught and recomputed
        assert built.values.tobytes() == baseline.values.tobytes()
        assert engine.stats.chunks_quarantined == engine.stats.chunks
        assert engine.stats.recovered
        assert len(engine.quarantine) > 0

    def test_pure_crash_exhausts_retries_then_recomputes(self, baseline):
        # crash=1.0 means every dispatch attempt fails; the retry budget
        # runs dry and every chunk falls back to parent-side recompute.
        plan = WorkerFaultPlan(seed=5, crash=1.0)
        retry = RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0)
        engine = DistanceEngine(abs_metric, chunk_pairs=16, fault_plan=plan, retry=retry)
        built = engine.matrix(ITEMS)
        assert built.values.tobytes() == baseline.values.tobytes()
        assert engine.stats.chunks_retried == engine.stats.chunks  # one retry each
        assert engine.stats.chunks_quarantined == engine.stats.chunks
        assert engine.stats.recovered

    def test_hang_charges_deadline_ticks(self):
        plan = WorkerFaultPlan(seed=2, hang=1.0, deadline_ticks=50)
        obs = Observability.create(seed=0)
        retry = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
        engine = DistanceEngine(
            abs_metric, chunk_pairs=500, fault_plan=plan, retry=retry, obs=obs
        )
        engine.matrix(ITEMS[:20])  # 190 pairs -> 1 chunk, hangs, recomputed
        spans = obs.tracer.spans_named("engine_chunk_recompute")
        assert len(spans) == 1
        # the hung attempt costs its full deadline on the logical clock
        assert spans[0].start_tick >= 50

    def test_stats_surface_in_to_dict(self):
        plan = WorkerFaultPlan.uniform(0.5, seed=7)
        engine = DistanceEngine(abs_metric, chunk_pairs=16, fault_plan=plan)
        engine.matrix(ITEMS)
        snapshot = engine.stats.to_dict()
        for key in ("chunks_retried", "chunks_quarantined", "faults_injected", "recovered"):
            assert key in snapshot
        assert snapshot["recovered"] is True

    def test_obs_counters_and_retry_spans(self):
        plan = WorkerFaultPlan(seed=5, crash=1.0)
        retry = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0)
        obs = Observability.create(seed=0)
        engine = DistanceEngine(
            abs_metric, chunk_pairs=16, fault_plan=plan, retry=retry, obs=obs
        )
        engine.matrix(ITEMS)
        assert obs.counter("engine_faults_injected") == engine.stats.faults_injected
        assert obs.counter("engine_chunks_retried") == engine.stats.chunks_retried
        assert obs.counter("engine_chunks_quarantined") == engine.stats.chunks_quarantined
        retry_spans = obs.tracer.spans_named("engine_chunk_retry")
        assert len(retry_spans) == engine.stats.chunks_retried
        assert all(span.attrs["reason"] == "crash" for span in retry_spans)

    def test_no_fault_plan_means_no_supervision_overhead(self, baseline):
        engine = DistanceEngine(abs_metric, chunk_pairs=16)
        built = engine.matrix(ITEMS)
        assert engine.quarantine is None
        assert engine.stats.faults_injected == 0
        assert engine.stats.recovered  # vacuously true on the clean path
        assert np.array_equal(built.values, baseline.values)

    def test_packet_metric_under_faults(self, small_corpus):
        # The real paper metric (d_pkt) through the supervised path.
        from repro.dataset.split import sample_packets
        from repro.distance.packet import PacketDistance

        check = small_corpus.payload_check()
        suspicious, _ = check.split(small_corpus.trace)
        sample = sample_packets(suspicious, 24, seed=1)
        clean = DistanceEngine(PacketDistance.paper(), chunk_pairs=32).matrix(sample)
        plan = WorkerFaultPlan.uniform(0.5, seed=13)
        engine = DistanceEngine(
            PacketDistance.paper(), chunk_pairs=32, fault_plan=plan
        )
        built = engine.matrix(sample)
        assert built.values.tobytes() == clean.values.tobytes()
        assert engine.stats.recovered
