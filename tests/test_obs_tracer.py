"""The deterministic tracer: logical ticks, nesting, run ids, rollups."""

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.profile import StageProfile
from repro.obs.tracer import Tracer, deterministic_run_id


class TestRunId:
    def test_same_inputs_same_id(self):
        a = deterministic_run_id(7, {"sample": 40})
        b = deterministic_run_id(7, {"sample": 40})
        assert a == b and len(a) == 16

    def test_config_and_seed_both_matter(self):
        base = deterministic_run_id(7, {"sample": 40})
        assert deterministic_run_id(8, {"sample": 40}) != base
        assert deterministic_run_id(7, {"sample": 41}) != base

    def test_key_order_does_not_matter(self):
        assert deterministic_run_id(0, {"a": 1, "b": 2}) == deterministic_run_id(
            0, {"b": 2, "a": 1}
        )

    def test_non_serializable_config_is_stringified(self):
        assert deterministic_run_id(0, object) == deterministic_run_id(0, object)


class TestSpans:
    def test_nesting_sets_parent_ids(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert t.children_of(outer) == [inner]

    def test_track_inherited_from_parent(self):
        t = Tracer()
        with t.span("outer", track="pipeline"):
            with t.span("inner") as inner:
                pass
            with t.span("elsewhere", track="engine") as other:
                pass
        assert inner.track == "pipeline"
        assert other.track == "engine"

    def test_open_close_each_cost_one_tick(self):
        t = Tracer()
        with t.span("empty") as span:
            pass
        assert span.start_tick == 0
        assert span.end_tick == 2
        assert span.duration_ticks == 2

    def test_advance_counts_work_units(self):
        t = Tracer()
        with t.span("work") as span:
            t.advance(10)
        assert span.duration_ticks == 12

    def test_negative_advance_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.advance(-1)

    def test_span_ids_are_start_ordered(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                pass
        with t.span("c"):
            pass
        assert [s.span_id for s in t.closed_spans] == [1, 2, 3]
        assert [s.name for s in t.spans_named("c")] == ["c"]

    def test_no_wall_clock_by_default(self):
        t = Tracer()
        with t.span("a") as span:
            pass
        assert span.wall_s is None

    def test_wall_clock_opt_in(self):
        t = Tracer(wall_clock=True)
        with t.span("a") as span:
            pass
        assert span.wall_s is not None and span.wall_s >= 0.0


class TestStageProfile:
    def test_self_time_subtracts_direct_children_only(self):
        t = Tracer()
        with t.span("root"):
            t.advance(5)
            with t.span("child"):
                t.advance(3)
                with t.span("grandchild"):
                    t.advance(2)
        profile = StageProfile.from_tracer(t)
        root = profile.stage("root")
        child = profile.stage("child")
        grandchild = profile.stage("grandchild")
        # grandchild: open+close+2 = 4; child: open+close+3+4 = 9
        assert grandchild.total_ticks == 4 and grandchild.self_ticks == 4
        assert child.total_ticks == 9 and child.self_ticks == 5
        assert root.self_ticks == root.total_ticks - child.total_ticks

    def test_repeated_stages_aggregate(self):
        t = Tracer()
        for __ in range(3):
            with t.span("chunk"):
                t.advance(1)
        profile = StageProfile.from_tracer(t)
        assert profile.stage("chunk").count == 3
        assert profile.stage("chunk").total_ticks == 9

    def test_render_lists_heaviest_first(self):
        t = Tracer(run_id="abc")
        with t.span("light"):
            pass
        with t.span("heavy"):
            t.advance(100)
        text = StageProfile.from_tracer(t).render()
        assert text.index("heavy") < text.index("light")
        assert "abc" in text

    def test_to_dict_is_key_sorted(self):
        t = Tracer()
        with t.span("zeta"):
            pass
        with t.span("alpha"):
            pass
        assert list(StageProfile.from_tracer(t).to_dict()["stages"]) == ["alpha", "zeta"]


class TestObservabilityBundle:
    def test_create_seeds_run_id(self):
        a = Observability.create(seed=3, config={"x": 1})
        b = Observability.create(seed=3, config={"x": 1})
        assert a.tracer.run_id == b.tracer.run_id

    def test_delegating_surface(self):
        obs = Observability.create(seed=0)
        with obs.span("stage") as span:
            obs.advance(4)
            obs.inc("widgets", 2)
            obs.observe("sizes", 1.0)
            obs.set_gauge("depth", 7)
        assert span.duration_ticks == 6
        assert obs.metrics.counters["widgets"] == 2
        assert obs.profile().stage("stage").count == 1

    def test_null_obs_is_inert(self):
        with NULL_OBS.span("anything", track="x", attr=1) as span:
            assert span is None
        NULL_OBS.advance(5)
        NULL_OBS.inc("c")
        NULL_OBS.observe("h", 1.0)
        NULL_OBS.set_gauge("g", 2)
        assert NULL_OBS.enabled is False
        with pytest.raises(RuntimeError):
            NULL_OBS.profile()
