"""Suffix automaton and common-substring machinery, checked brute-force."""

from hypothesis import given
from hypothesis import strategies as st

from repro.signatures.lcs import (
    SuffixAutomaton,
    longest_common_substring,
    maximal_common_spans,
)

small_text = st.text(alphabet="abc=&1", max_size=16)


def brute_lcs_length(a, b):
    best = 0
    for i in range(len(a)):
        for j in range(i + 1, len(a) + 1):
            if a[i:j] in b:
                best = max(best, j - i)
    return best


class TestSuffixAutomaton:
    def test_contains_all_substrings(self):
        text = "udid=abc123&x=1"
        automaton = SuffixAutomaton(text)
        for i in range(len(text)):
            for j in range(i + 1, len(text) + 1):
                assert automaton.contains(text[i:j])

    def test_does_not_contain_foreign(self):
        automaton = SuffixAutomaton("aaabbb")
        assert not automaton.contains("ba" * 3)
        assert not automaton.contains("c")

    def test_empty_needle_contained(self):
        assert SuffixAutomaton("xyz").contains("")

    def test_match_lengths_known(self):
        automaton = SuffixAutomaton("abcab")
        # query "zabz": longest matches ending at each position
        assert automaton.match_lengths("zabz") == [0, 1, 2, 0]

    @given(small_text, small_text)
    def test_contains_agrees_with_in(self, text, needle):
        automaton = SuffixAutomaton(text)
        assert automaton.contains(needle) == (needle in text)


class TestLcs:
    def test_known(self):
        assert longest_common_substring("udid=abc123&x=1", "y=9&udid=abc123") == "udid=abc123"

    def test_no_overlap(self):
        assert longest_common_substring("aaa", "bbb") == ""

    def test_empty_operands(self):
        assert longest_common_substring("", "abc") == ""
        assert longest_common_substring("abc", "") == ""

    def test_full_containment(self):
        assert longest_common_substring("abc", "xxabcxx") == "abc"

    @given(small_text, small_text)
    def test_length_matches_brute_force(self, a, b):
        result = longest_common_substring(a, b)
        assert len(result) == brute_lcs_length(a, b)
        if result:
            assert result in a and result in b


class TestMaximalSpans:
    def test_single_common_region(self):
        spans = maximal_common_spans("xxHELLOxx", "yyHELLOyy", 2)
        texts = {"xxHELLOxx"[s.start:s.end] for s in spans}
        assert "HELLO" in texts

    def test_min_length_filters(self):
        spans = maximal_common_spans("ab", "ab", 3)
        assert spans == []

    def test_no_common(self):
        assert maximal_common_spans("aaa", "bbb", 1) == []

    def test_spans_are_maximal(self):
        spans = maximal_common_spans("abcdef", "abcdef", 1)
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (0, 6)

    def test_empty_inputs(self):
        assert maximal_common_spans("", "abc", 1) == []
        assert maximal_common_spans("abc", "", 1) == []

    @given(small_text, small_text)
    def test_every_span_text_occurs_in_other(self, a, b):
        for span in maximal_common_spans(a, b, 2):
            assert a[span.start:span.end] in b
            assert span.length >= 2

    @given(small_text, small_text)
    def test_no_span_contains_another(self, a, b):
        spans = maximal_common_spans(a, b, 1)
        for i, s in enumerate(spans):
            for j, t in enumerate(spans):
                if i != j:
                    assert not (s.start <= t.start and t.end <= s.end)
