"""Shared fixtures: a small deterministic corpus and packet builders."""

from __future__ import annotations

from random import Random

import pytest

from repro.http.message import HttpRequest
from repro.http.packet import Destination, HttpPacket
from repro.sensitive.identifiers import DeviceIdentity
from repro.simulation.corpus import Corpus, mini_corpus


def make_packet(
    host: str = "ads.example.com",
    ip: str = "10.1.2.3",
    port: int = 80,
    method: str = "GET",
    target: str = "/ad?x=1",
    cookie: str = "",
    body: bytes = b"",
    app_id: str = "jp.test.app",
) -> HttpPacket:
    """A hand-built packet for unit tests."""
    headers = [("Host", host), ("User-Agent", "test-agent"), ("Accept", "*/*")]
    if cookie:
        headers.append(("Cookie", cookie))
    if body:
        headers.append(("Content-Type", "application/x-www-form-urlencoded"))
        headers.append(("Content-Length", str(len(body))))
        method = "POST"
    request = HttpRequest(method=method, target=target, headers=headers, body=body)
    return HttpPacket(
        destination=Destination.make(ip, port, host), request=request, app_id=app_id
    )


@pytest.fixture
def identity() -> DeviceIdentity:
    """A fixed coherent device identity."""
    return DeviceIdentity.generate(Random(42))


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """One shared 60-app corpus (built once per test session)."""
    return mini_corpus(seed=11, n_apps=60)


@pytest.fixture(scope="session")
def small_split(small_corpus):
    """The (suspicious, normal) split of the shared corpus."""
    check = small_corpus.payload_check()
    return check.split(small_corpus.trace)
