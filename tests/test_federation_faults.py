"""DeviceFaultPlan: seeded fleet-report fault injection."""

import pytest

from repro.errors import SimulationError
from repro.federation.faults import DeviceFaultKind, DeviceFaultPlan
from repro.federation.report import DeviceReport, decode_report, encode_report, token_for
from repro.errors import ReportValidationError
from tests.conftest import make_packet


def make_report(seq: int = 1, device_id: str = "device-00003") -> DeviceReport:
    packet = make_packet(target="/track?udid=abc")
    return DeviceReport(device_id=device_id, seq=seq, token=token_for(packet), packet=packet)


class TestRates:
    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            DeviceFaultPlan(malform=-0.1)

    def test_rate_above_one_rejected(self):
        with pytest.raises(SimulationError):
            DeviceFaultPlan(poison=1.5)

    def test_sum_above_one_rejected(self):
        with pytest.raises(SimulationError):
            DeviceFaultPlan(malform=0.5, duplicate=0.4, replay=0.3)

    def test_uniform_splits_total_rate(self):
        plan = DeviceFaultPlan.uniform(0.4, seed=3)
        assert plan.total_rate == pytest.approx(0.4)
        assert all(rate > 0 for rate in plan.rates.values())

    def test_uniform_full_rate_always_faults(self):
        plan = DeviceFaultPlan.uniform(1.0)
        outcomes = {plan.outcome("device-00001", seq) for seq in range(1, 200)}
        assert DeviceFaultKind.NONE not in outcomes
        assert len(outcomes) >= 4  # the mix actually spreads across the taxonomy

    def test_zero_rate_never_faults(self):
        plan = DeviceFaultPlan()
        assert all(
            plan.outcome("device-00001", seq) is DeviceFaultKind.NONE
            for seq in range(1, 50)
        )


class TestDeterminism:
    def test_outcome_is_pure_function_of_seed_and_labels(self):
        a = DeviceFaultPlan.uniform(0.5, seed=9)
        b = DeviceFaultPlan.uniform(0.5, seed=9)
        for seq in range(1, 100):
            assert a.outcome("device-00042", seq) is b.outcome("device-00042", seq)

    def test_different_seeds_differ(self):
        a = DeviceFaultPlan.uniform(0.5, seed=1)
        b = DeviceFaultPlan.uniform(0.5, seed=2)
        draws_a = [a.outcome("device-00042", seq) for seq in range(1, 100)]
        draws_b = [b.outcome("device-00042", seq) for seq in range(1, 100)]
        assert draws_a != draws_b

    def test_outcome_independent_of_other_devices(self):
        # Drawing for one device must not perturb another device's stream —
        # the property that keeps fleet-size changes from reshuffling faults.
        a = DeviceFaultPlan.uniform(0.5, seed=9)
        before = [a.outcome("device-00007", seq) for seq in range(1, 30)]
        for seq in range(1, 500):
            a.outcome("device-99999", seq)
        after = [a.outcome("device-00007", seq) for seq in range(1, 30)]
        assert before == after


class TestDraws:
    def test_malform_attempts_bounded(self):
        plan = DeviceFaultPlan.uniform(1.0, seed=5)
        attempts = {plan.malform_attempts("device-00001", seq) for seq in range(1, 100)}
        assert attempts <= {1, 2}
        assert len(attempts) == 2

    def test_replay_target_is_strictly_earlier(self):
        plan = DeviceFaultPlan.uniform(1.0, seed=5)
        for seq in range(2, 60):
            target = plan.replay_target("device-00001", seq)
            assert 1 <= target < seq
        assert plan.replay_target("device-00001", 1) == 1

    def test_flood_copies_bounded(self):
        plan = DeviceFaultPlan.uniform(1.0, seed=5)
        copies = {plan.flood_copies("device-00001", seq) for seq in range(1, 100)}
        assert copies <= {2, 3, 4, 5}

    def test_record_tallies_faults(self):
        plan = DeviceFaultPlan.uniform(0.5)
        plan.record(DeviceFaultKind.NONE)
        plan.record(DeviceFaultKind.POISON)
        plan.record(DeviceFaultKind.POISON)
        plan.record(DeviceFaultKind.FLOOD)
        assert plan.counts[DeviceFaultKind.POISON] == 2
        assert plan.faults_recorded == 3  # NONE is not a fault


class TestMangle:
    def test_every_mangled_envelope_fails_validation(self):
        # The MALFORM contract is "detected garbage": whatever corruption
        # mode the seed picks, validation must catch it.
        plan = DeviceFaultPlan.uniform(1.0, seed=7)
        record = encode_report(make_report(seq=3))
        reasons = set()
        for attempt in range(32):
            mangled = plan.mangle(record, "device-00003", 3, attempt)
            with pytest.raises(ReportValidationError) as err:
                decode_report(mangled)
            reasons.add(err.value.reason)
        # All three rejection categories get exercised across attempts.
        assert reasons == {"checksum", "version", "schema"}

    def test_mangle_does_not_mutate_original(self):
        plan = DeviceFaultPlan.uniform(1.0, seed=7)
        record = encode_report(make_report(seq=3))
        pristine = dict(record)
        for attempt in range(8):
            plan.mangle(record, "device-00003", 3, attempt)
        assert record == pristine
        decode_report(record)  # still valid


class TestFabricate:
    def test_fabrication_validates_cleanly(self):
        # Poison is the "silent lie" arm: the envelope must pass every
        # validation gate and only die at the min-support gate.
        plan = DeviceFaultPlan.uniform(1.0, seed=7)
        fake = plan.fabricate(make_report(seq=4), 9)
        decoded = decode_report(encode_report(fake))
        assert decoded.token == fake.token

    def test_fabrications_never_collide(self):
        plan = DeviceFaultPlan.uniform(1.0, seed=7)
        tokens = set()
        for device in ("device-00001", "device-00002"):
            for seq in range(1, 40):
                fake = plan.fabricate(make_report(seq=1, device_id=device), seq)
                tokens.add(fake.token)
        assert len(tokens) == 2 * 39  # every (device, seq) pair fabricates uniquely

    def test_fabrication_is_structurally_novel(self):
        plan = DeviceFaultPlan.uniform(1.0, seed=7)
        template = make_report(seq=4)
        fake = plan.fabricate(template, 9)
        assert fake.packet.meta.get("fabricated") is True
        assert fake.token.startswith("POISON ")
        assert fake.packet.request.path != template.packet.request.path
        assert fake.packet.wire_bytes() != template.packet.wire_bytes()

    def test_fabrication_is_deterministic(self):
        a = DeviceFaultPlan.uniform(1.0, seed=7)
        b = DeviceFaultPlan.uniform(1.0, seed=7)
        fake_a = a.fabricate(make_report(seq=4), 9)
        fake_b = b.fabricate(make_report(seq=4), 9)
        assert fake_a.token == fake_b.token
        assert fake_a.packet.wire_bytes() == fake_b.packet.wire_bytes()
