"""Trace redaction: completeness, consistency, structure preservation."""

import hashlib

from repro.dataset.redact import TraceRedactor
from repro.dataset.trace import Trace
from repro.sensitive.payload_check import PayloadCheck
from tests.conftest import make_packet


class TestRedaction:
    def test_plain_value_removed(self, identity):
        redactor = TraceRedactor(identity)
        packet = make_packet(target=f"/x?imei={identity.imei}&k=1")
        clean = redactor.redact_packet(packet)
        assert identity.imei not in clean.canonical_text()
        assert "REDACTED_IMEI" in clean.canonical_text()

    def test_hashed_value_removed(self, identity):
        redactor = TraceRedactor(identity)
        digest = hashlib.md5(identity.android_id.encode()).hexdigest()
        packet = make_packet(target=f"/x?u={digest}")
        clean = redactor.redact_packet(packet)
        assert digest not in clean.canonical_text()
        assert "REDACTED_ANDROID_ID_MD5" in clean.canonical_text()

    def test_cookie_and_body_redacted(self, identity):
        redactor = TraceRedactor(identity)
        packet = make_packet(
            cookie=f"muid={identity.android_id}",
            body=f"iccid={identity.sim_serial}".encode(),
        )
        clean = redactor.redact_packet(packet)
        assert identity.android_id not in clean.canonical_text()
        assert identity.sim_serial not in clean.canonical_text()

    def test_consistent_placeholders(self, identity):
        redactor = TraceRedactor(identity)
        a = redactor.redact_packet(make_packet(target=f"/a?imei={identity.imei}"))
        b = redactor.redact_packet(make_packet(target=f"/b?imei={identity.imei}"))
        token_a = a.request.query.get("imei")
        token_b = b.request.query.get("imei")
        assert token_a == token_b

    def test_non_sensitive_content_untouched(self, identity):
        redactor = TraceRedactor(identity)
        packet = make_packet(target="/x?page=3&q=search+term", cookie="sid=abc123")
        clean = redactor.redact_packet(packet)
        assert clean.request.target == packet.request.target
        assert clean.cookie == packet.cookie

    def test_original_packet_untouched(self, identity):
        redactor = TraceRedactor(identity)
        packet = make_packet(target=f"/x?imei={identity.imei}")
        redactor.redact_packet(packet)
        assert identity.imei in packet.canonical_text()

    def test_provenance_preserved(self, identity):
        redactor = TraceRedactor(identity)
        packet = make_packet(target=f"/x?imei={identity.imei}", app_id="jp.app.z")
        packet.meta["service"] = "svc"
        clean = redactor.redact_packet(packet)
        assert clean.app_id == "jp.app.z"
        assert clean.meta == {"service": "svc"}
        assert clean.destination == packet.destination


class TestTraceLevel:
    def test_redacted_corpus_is_clean(self, small_corpus):
        redactor = TraceRedactor(small_corpus.device.identity)
        sample = Trace(small_corpus.trace.packets[:400])
        clean = redactor.redact_trace(sample)
        assert redactor.verify_clean(clean)
        assert len(clean) == len(sample)

    def test_clustering_survives_redaction(self, small_corpus, small_split):
        """Signatures generated from a redacted trace still work —
        placeholders are invariants too."""
        from repro.eval.crossval import generate_from
        from repro.signatures.matcher import SignatureMatcher

        suspicious, __ = small_split
        redactor = TraceRedactor(small_corpus.device.identity)
        redacted = [redactor.redact_packet(p) for p in list(suspicious)[:90]]
        signatures = generate_from(redacted)
        assert signatures
        matcher = SignatureMatcher(signatures)
        fresh = [redactor.redact_packet(p) for p in list(suspicious)[90:180]]
        recall = sum(matcher.is_sensitive(p) for p in fresh) / len(fresh)
        assert recall > 0.4
