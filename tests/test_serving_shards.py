"""Sharded batched matching must be bit-identical to the scalar matcher."""

import pytest

from repro.errors import SignatureError
from repro.serving.shards import ShardedMatcher
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import SignatureMatcher
from tests.conftest import make_packet


def sig(*tokens, scope=""):
    return ConjunctionSignature(tokens=tokens, scope_domain=scope)


def corpus_signatures(corpus, limit=30):
    """Signatures cut from real corpus packets, scoped and unscoped mixed."""
    signatures = []
    for index, packet in enumerate(corpus.trace.packets[::7]):
        text = packet.canonical_text()
        third = len(text) // 3
        first, second = text[third : third + 6], text[2 * third : 2 * third + 6]
        if len(first) < 6 or len(second) < 6:
            continue
        scope = packet.destination.registered_domain if index % 2 else ""
        signatures.append(ConjunctionSignature(tokens=(first, second), scope_domain=scope))
        if len(signatures) >= limit:
            break
    assert len(signatures) >= 10
    return signatures


class TestEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_bit_identical_over_corpus(self, small_corpus, n_shards):
        signatures = corpus_signatures(small_corpus)
        scalar = SignatureMatcher(signatures)
        sharded = ShardedMatcher(signatures, n_shards)
        packets = small_corpus.trace.packets[:400]
        scalar_results = [scalar.match(p) for p in packets]
        sharded_results = sharded.match_batch(packets)
        assert scalar_results == sharded_results
        assert any(r.matched for r in scalar_results)  # the comparison saw hits
        assert any(not r.matched for r in scalar_results)

    def test_more_shards_than_signatures(self):
        signatures = [sig("udid=abc")]
        sharded = ShardedMatcher(signatures, n_shards=8)
        packet = make_packet(target="/p?udid=abc")
        assert sharded.match(packet) == SignatureMatcher(signatures).match(packet)


class TestWinOrder:
    def test_scoped_beats_earlier_unscoped(self):
        # The scalar matcher screens the destination bucket first, so the
        # scoped signature wins even though the unscoped one is listed first.
        signatures = [sig("x=1"), sig("x=1", scope="example.com")]
        packet = make_packet(host="ads.example.com", target="/p?x=1")
        for n_shards in (1, 2):
            winner = ShardedMatcher(signatures, n_shards).match(packet).signature
            assert winner is not None and winner.scope_domain == "example.com"
            assert winner == SignatureMatcher(signatures).match(packet).signature

    def test_first_listed_wins_within_class(self):
        signatures = [sig("x=1", scope="example.com"), sig("=1", scope="example.com")]
        packet = make_packet(host="ads.example.com", target="/p?x=1")
        for n_shards in (1, 2, 3):
            winner = ShardedMatcher(signatures, n_shards).match(packet).signature
            assert winner == signatures[0]

    def test_clean_packet_everywhere(self):
        signatures = [sig("absent-token"), sig("gone", scope="example.com")]
        packet = make_packet(host="ads.example.com", target="/p?x=1")
        result = ShardedMatcher(signatures, 2).match(packet)
        assert not result.matched and result.signature is None


class TestShape:
    def test_round_robin_sizes_balanced(self):
        signatures = [sig(f"tok{i}=v") for i in range(10)]
        sharded = ShardedMatcher(signatures, n_shards=3)
        sizes = sorted(len(shard) for shard in sharded.shards)
        assert sizes == [3, 3, 4]
        assert len(sharded) == 10

    def test_rejects_bad_shard_count(self):
        with pytest.raises(SignatureError):
            ShardedMatcher([sig("a=b")], n_shards=0)
