"""Cookie header parsing and rendering."""

from repro.http.cookies import cookie_names, format_cookies, parse_cookie_header


def test_basic_pairs():
    assert parse_cookie_header("sid=abc; uid=9") == [("sid", "abc"), ("uid", "9")]


def test_order_preserved():
    assert cookie_names("z=1; a=2; m=3") == ["z", "a", "m"]


def test_bare_name():
    assert parse_cookie_header("flag") == [("flag", "")]


def test_quoted_value_unwrapped():
    assert parse_cookie_header('udid="12345"') == [("udid", "12345")]


def test_whitespace_tolerance():
    assert parse_cookie_header("  sid = abc ;uid=9 ") == [("sid", "abc"), ("uid", "9")]


def test_empty_header():
    assert parse_cookie_header("") == []
    assert parse_cookie_header(" ; ; ") == []


def test_value_with_equals_sign():
    assert parse_cookie_header("tok=a=b=c") == [("tok", "a=b=c")]


def test_format_roundtrip():
    pairs = [("sid", "abc"), ("uid", "9")]
    assert parse_cookie_header(format_cookies(pairs)) == pairs


def test_format_bare_value():
    assert format_cookies([("flag", "")]) == "flag="
