"""Blocked matrices and the sparse pair stream.

Two contracts: every within-block entry of a blocked matrix is
bit-identical to the full build (blocking never changes a distance it
keeps), and a threshold cut of the blocked matrix yields the same flat
clusters as the full matrix — the exact-mode losslessness proof made
operational.
"""

import numpy as np
import pytest

from repro.clustering.cut import cut_by_height
from repro.clustering.linkage import Linkage, agglomerate
from repro.distance.blocking import BlockingConfig, BlockingMode
from repro.distance.engine import DistanceEngine, MatrixCache, PairStream
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.errors import DistanceError

THRESHOLD = 1.2


@pytest.fixture(scope="module")
def packets(small_split):
    suspicious, __ = small_split
    return list(suspicious[:80])


@pytest.fixture(scope="module")
def full(packets):
    return DistanceEngine(PacketDistance.paper()).matrix(packets)


def flat_clusters(matrix, linkage=Linkage.GROUP_AVERAGE):
    dendrogram = agglomerate(matrix, linkage)
    return sorted(
        (sorted(dendrogram.leaves(node)) for node in cut_by_height(dendrogram, THRESHOLD)),
        key=lambda cluster: cluster[0],
    )


class TestBlockedMatrix:
    def test_within_block_values_bit_identical(self, packets, full):
        engine = DistanceEngine(PacketDistance.paper())
        blocking = BlockingConfig(threshold=THRESHOLD)
        blocked, assignment = engine.blocked_matrix(packets, blocking=blocking)
        fill = blocking.fill_value(engine.metric)
        for block in assignment.blocks:
            for a in range(len(block)):
                for b in range(a + 1, len(block)):
                    assert blocked.get(block[a], block[b]) == full.get(
                        block[a], block[b]
                    )
        # Cross-block entries are the fill value, nothing else.
        filled = int(np.count_nonzero(blocked.values == fill))
        assert filled >= assignment.stats.pairs_pruned

    @pytest.mark.parametrize(
        "linkage", [Linkage.GROUP_AVERAGE, Linkage.SINGLE, Linkage.COMPLETE]
    )
    def test_threshold_cut_identical_to_full(self, packets, full, linkage):
        engine = DistanceEngine(PacketDistance.paper())
        blocked, __ = engine.blocked_matrix(
            packets, blocking=BlockingConfig(threshold=THRESHOLD)
        )
        assert flat_clusters(blocked, linkage) == flat_clusters(full, linkage)

    def test_lsh_mode_cut_agrees_within_audit_floor(self, packets, full):
        # LSH is approximate — the contract is the audited agreement floor
        # the streaming budget enforces, not identity.
        from repro.eval.streaming import partition_agreement

        engine = DistanceEngine(PacketDistance.paper())
        blocked, assignment = engine.blocked_matrix(
            packets,
            blocking=BlockingConfig(mode=BlockingMode.LSH, threshold=THRESHOLD),
        )
        assert assignment.stats.pairs_pruned > 0
        agreement = partition_agreement(
            flat_clusters(blocked), flat_clusters(full), len(packets)
        )
        assert agreement["f1"] >= 0.97

    def test_stats_surface_pruning(self, packets):
        engine = DistanceEngine(PacketDistance.paper())
        __, assignment = engine.blocked_matrix(
            packets, blocking=BlockingConfig(threshold=THRESHOLD)
        )
        assert engine.stats.n_blocks == assignment.stats.n_blocks > 1
        assert engine.stats.pairs_pruned == assignment.stats.pairs_pruned > 0
        data = engine.stats.to_dict()
        assert data["n_blocks"] == assignment.stats.n_blocks
        assert data["pairs_pruned"] == assignment.stats.pairs_pruned

    def test_parallel_build_bit_identical(self, packets):
        blocking = BlockingConfig(threshold=THRESHOLD)
        serial, __ = DistanceEngine(PacketDistance.paper()).blocked_matrix(
            packets, blocking=blocking
        )
        parallel, __ = DistanceEngine(
            PacketDistance.paper(), workers=2, chunk_pairs=64
        ).blocked_matrix(packets, blocking=blocking)
        assert np.array_equal(serial.values, parallel.values)


class TestSubset:
    def test_subset_matches_direct_build(self, packets, full):
        indices = [3, 11, 12, 40, 41, 77]
        sub = full.subset(indices)
        direct = distance_matrix(
            [packets[i] for i in indices], PacketDistance.paper()
        )
        assert sub.n == len(indices)
        assert np.array_equal(sub.values, direct.values)

    def test_subset_under_two_items_is_empty(self, full):
        assert full.subset([5]).n == 1
        assert full.subset([]).n == 0
        assert full.subset([5]).values.size == 0

    def test_subset_rejects_out_of_range(self, full):
        with pytest.raises(DistanceError):
            full.subset([0, full.n])

    def test_subset_rejects_duplicates(self, full):
        with pytest.raises(DistanceError):
            full.subset([4, 4])


class TestMatrixCachePrune:
    def test_prune_keeps_exact_values_and_extends(self, packets):
        cache = MatrixCache(DistanceEngine(PacketDistance.paper()))
        cache.add(packets[:10])
        cache.prune(range(4, 10))
        reference = DistanceEngine(PacketDistance.paper()).matrix(packets[4:10])
        assert len(cache) == 6
        assert np.array_equal(cache.matrix.values, reference.values)
        # A later add extends from the pruned state, not from scratch.
        cache.add(packets[10:14])
        extended_reference = DistanceEngine(PacketDistance.paper()).matrix(
            packets[4:14]
        )
        assert np.array_equal(cache.matrix.values, extended_reference.values)

    def test_prune_without_matrix_trims_items_only(self, packets):
        cache = MatrixCache(DistanceEngine(PacketDistance.paper()))
        cache.items = list(packets[:6])
        assert cache.prune([2, 3]) is None
        assert len(cache) == 2


class TestPairStream:
    def test_distances_bit_identical_to_full(self, packets, full):
        stream = PairStream(DistanceEngine(PacketDistance.paper()))
        stream.extend(packets)
        pairs = [(0, 1), (5, 40), (79, 3), (17, 17)]
        values = stream.distances(pairs)
        for (i, j), value in zip(pairs, values):
            expected = 0.0 if i == j else full.get(i, j)
            assert value == expected

    def test_pairs_evaluated_at_most_once(self, packets):
        stream = PairStream(DistanceEngine(PacketDistance.paper()))
        stream.extend(packets[:20])
        stream.distances([(0, 1), (2, 3)])
        assert stream.pairs_evaluated == 2
        stream.distances([(1, 0), (2, 3), (4, 5)])  # two repeats, one new
        assert stream.pairs_evaluated == 3
        assert stream.cache_hits == 2

    def test_matrix_over_indices_matches_subset(self, packets, full):
        stream = PairStream(DistanceEngine(PacketDistance.paper()))
        stream.extend(packets)
        indices = [2, 9, 30, 55, 60]
        assert np.array_equal(
            stream.matrix(indices).values, full.subset(indices).values
        )

    def test_incremental_extend_equals_fresh(self, packets, full):
        grown = PairStream(DistanceEngine(PacketDistance.paper()))
        grown.extend(packets[:30])
        grown.extend(packets[30:])
        fresh = PairStream(DistanceEngine(PacketDistance.paper()))
        fresh.extend(packets)
        pairs = [(0, 79), (29, 30), (10, 50)]
        assert np.array_equal(grown.distances(pairs), fresh.distances(pairs))
        for (i, j), value in zip(pairs, grown.distances(pairs)):
            assert value == full.get(i, j)

    def test_large_miss_batches_use_engine_dispatch(self, packets, full):
        stream = PairStream(
            DistanceEngine(PacketDistance.paper(), workers=2, chunk_pairs=16)
        )
        stream.extend(packets)
        pairs = [(i, j) for i in range(10) for j in range(i + 1, 12)]
        values = stream.distances(pairs)
        for (i, j), value in zip(pairs, values):
            assert value == full.get(i, j)


class TestPairStreamEviction:
    """The LRU bound: memory stays flat and no distance ever changes."""

    def test_cache_never_exceeds_the_bound(self, packets, full):
        stream = PairStream(
            DistanceEngine(PacketDistance.paper()), max_cached_pairs=10
        )
        stream.extend(packets)
        pairs = [(i, j) for i in range(8) for j in range(i + 1, 12)]
        values = stream.distances(pairs)
        assert stream.cached_pairs <= 10
        assert stream.evictions == len(pairs) - 10
        for (i, j), value in zip(pairs, values):
            assert value == full.get(i, j)

    def test_evicted_pairs_recompute_to_the_same_value(self, packets, full):
        stream = PairStream(
            DistanceEngine(PacketDistance.paper()), max_cached_pairs=3
        )
        stream.extend(packets)
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]
        first = list(stream.distances(pairs))
        evaluated = stream.pairs_evaluated
        second = list(stream.distances(pairs))
        assert first == second
        assert stream.pairs_evaluated > evaluated  # recomputed, not stale
        for (i, j), value in zip(pairs, second):
            assert value == full.get(i, j)

    def test_hits_refresh_recency(self, packets):
        stream = PairStream(
            DistanceEngine(PacketDistance.paper()), max_cached_pairs=2
        )
        stream.extend(packets)
        stream.distances([(0, 1), (2, 3)])
        stream.distances([(0, 1)])  # (0,1) now most recent
        stream.distances([(4, 5)])  # evicts (2,3), not (0,1)
        evaluated = stream.pairs_evaluated
        stream.distances([(0, 1)])
        assert stream.pairs_evaluated == evaluated  # still a hit

    def test_bound_below_one_is_rejected(self):
        with pytest.raises(ValueError):
            PairStream(DistanceEngine(PacketDistance.paper()), max_cached_pairs=0)

    def test_unbounded_stream_never_evicts(self, packets):
        stream = PairStream(DistanceEngine(PacketDistance.paper()))
        stream.extend(packets)
        stream.distances([(i, j) for i in range(6) for j in range(i + 1, 10)])
        assert stream.evictions == 0

    def test_streaming_partition_unchanged_by_the_bound(self, packets):
        from repro.core.streaming import StreamingClusterer, StreamingConfig

        def run(max_cached_pairs):
            config = StreamingConfig(
                blocking=BlockingConfig(threshold=THRESHOLD),
                compact_every=1,
                max_cached_pairs=max_cached_pairs,
            )
            clusterer = StreamingClusterer(
                PacketDistance.paper(), config,
                engine=DistanceEngine(PacketDistance.paper()),
            )
            for start in range(0, 60, 20):
                clusterer.ingest(packets[start : start + 20])
            return clusterer

        capped = run(max_cached_pairs=50)
        unbounded = run(max_cached_pairs=None)
        assert capped.stream.evictions > 0
        assert capped.stream.cached_pairs <= 50
        assert capped.partition() == unbounded.partition()
