"""The WHOIS-style IP registry and the corrected IP distance (paper §VI)."""

import pytest

from repro.errors import AddressError
from repro.net.ipv4 import IPv4Address
from repro.net.registry import (
    Allocation,
    IpRegistry,
    build_corpus_registry,
    registry_corrected_ip_distance,
)


def ip(text):
    return IPv4Address.parse(text)


class TestAllocation:
    def test_contains(self):
        allocation = Allocation(ip("10.0.0.0"), 8, "TestOrg")
        assert allocation.contains(ip("10.200.3.4"))
        assert not allocation.contains(ip("11.0.0.1"))

    def test_invalid_prefix_rejected(self):
        with pytest.raises(AddressError):
            Allocation(ip("10.0.0.0"), 40, "TestOrg")


class TestRegistry:
    def test_lookup_hits_registered_block(self):
        registry = IpRegistry()
        registry.register("198.51.100.0", 24, "ExampleNet")
        assert registry.organization_of(ip("198.51.100.77")) == "ExampleNet"

    def test_lookup_unregistered_is_none(self):
        registry = IpRegistry()
        registry.register("198.51.100.0", 24, "ExampleNet")
        assert registry.lookup(ip("203.0.113.5")) is None

    def test_most_specific_block_wins(self):
        registry = IpRegistry()
        registry.register("10.0.0.0", 8, "Carrier")
        registry.register("10.5.0.0", 16, "Tenant")
        assert registry.organization_of(ip("10.5.1.1")) == "Tenant"
        assert registry.organization_of(ip("10.9.1.1")) == "Carrier"

    def test_same_organization_verdicts(self):
        registry = IpRegistry()
        registry.register("10.0.0.0", 16, "A")
        registry.register("10.1.0.0", 16, "B")
        registry.register("172.16.0.0", 16, "A")
        assert registry.same_organization(ip("10.0.0.1"), ip("172.16.9.9")) is True
        assert registry.same_organization(ip("10.0.0.1"), ip("10.1.0.1")) is False
        assert registry.same_organization(ip("10.0.0.1"), ip("203.0.113.1")) is None

    def test_len(self):
        registry = IpRegistry()
        registry.register("10.0.0.0", 8, "A")
        assert len(registry) == 1


class TestCorrectedDistance:
    def setup_method(self):
        self.registry = IpRegistry()
        self.registry.register("10.0.0.0", 16, "A")
        self.registry.register("10.1.0.0", 16, "B")
        self.registry.register("172.16.0.0", 16, "A")

    def test_same_org_is_zero_even_far_apart(self):
        assert registry_corrected_ip_distance(self.registry, ip("10.0.0.1"), ip("172.16.1.1")) == 0.0

    def test_different_org_is_one_even_close(self):
        # 10.0.x and 10.1.x share 15 upper bits but different owners —
        # the erroneous-proximity case the paper warns about.
        assert registry_corrected_ip_distance(self.registry, ip("10.0.0.1"), ip("10.1.0.1")) == 1.0

    def test_unregistered_falls_back_to_heuristic(self):
        value = registry_corrected_ip_distance(self.registry, ip("203.0.113.1"), ip("203.0.113.2"))
        assert 0.0 < value < 0.1  # bit-prefix heuristic


class TestCorpusRegistry:
    def test_covers_all_shared_services(self):
        from repro.android.admodules import AD_SERVICES
        from repro.android.webapi import WEB_SERVICES

        registry = build_corpus_registry()
        assert len(registry) == len(AD_SERVICES) + len(WEB_SERVICES)

    def test_google_family_is_one_org(self):
        from repro.android.admodules import ADMOB
        from repro.android.services import Service
        from repro.android.webapi import GOOGLE_ANALYTICS

        registry = build_corpus_registry()
        admob_ip = Service(ADMOB).ip_for(ADMOB.hosts[0])
        analytics_ip = Service(GOOGLE_ANALYTICS).ip_for(GOOGLE_ANALYTICS.hosts[0])
        assert registry.same_organization(admob_ip, analytics_ip) is True

    def test_distinct_networks_are_distinct_orgs(self):
        from repro.android.admodules import ADMAKER, NEND
        from repro.android.services import Service

        registry = build_corpus_registry()
        admaker_ip = Service(ADMAKER).ip_for(ADMAKER.hosts[0])
        nend_ip = Service(NEND).ip_for(NEND.hosts[0])
        assert registry.same_organization(admaker_ip, nend_ip) is False


class TestDistanceIntegration:
    def test_packet_distance_accepts_registry(self):
        from repro.distance.packet import PacketDistance
        from tests.conftest import make_packet

        registry = IpRegistry()
        registry.register("10.0.0.0", 16, "A")
        registry.register("10.1.0.0", 16, "B")
        metric = PacketDistance.whois_verified(registry)
        x = make_packet(host="a.one.com", ip="10.0.0.1")
        y = make_packet(host="a.one.com", ip="10.1.0.1")
        plain = PacketDistance.paper()
        # WHOIS says different owners: the verified metric must be larger.
        assert metric.distance(x, y) > plain.distance(x, y)
