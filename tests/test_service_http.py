"""The network-facing service, exercised over real sockets.

Every test talks to a live :class:`ServiceServer` bound to an ephemeral
loopback port — nothing here calls the endpoint methods directly, so the
HTTP framing (routing, status codes, headers, body limits) is under test
too.  The two headline contracts:

- screening over ``POST /v1/screen`` is **byte-identical** to running the
  same seeded stream through an in-process ``ScreeningGateway``;
- an envelope published then fetched through the sqlite repository comes
  back **byte-identical** to what was posted.
"""

import http.client
import json

import pytest

from repro.serving.gateway import GatewayConfig, ScreeningGateway
from repro.serving.loadgen import ScreeningEvent
from repro.service.server import ServiceConfig, ServiceServer, SignatureService
from repro.service.wire import canonical_decisions, encode_event, encode_results
from repro.federation.report import DeviceReport, encode_report, token_for
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore
from repro.simulation.rng import derive_rng


def boot_signatures():
    return [
        ConjunctionSignature(tokens=("udid=abc", "seq="), scope_domain="admob.com"),
        ConjunctionSignature(tokens=("imei=1234",), label="IMEI"),
    ]


@pytest.fixture()
def live(tmp_path):
    """A live service over sqlite: yields ``(service, request, db_path)``."""
    db_path = str(tmp_path / "service.sqlite3")
    service = SignatureService(boot_signatures(), db_path=db_path)
    server = ServiceServer(service)
    host, port = server.start()

    def request(method, path, body=None):
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read(), dict(response.getheaders())
        finally:
            connection.close()

    yield service, request, db_path
    server.stop()
    if service.store is not None:
        service.store.close()


def events_from(small_corpus, n=12, seed=3):
    rng = derive_rng(seed, "http-test")
    packets = small_corpus.trace.packets
    return [
        ScreeningEvent(
            seq=i,
            tick=float(i),
            device_id="test-device",
            packet=packets[rng.randrange(len(packets))],
        )
        for i in range(n)
    ]


class TestFetch:
    def test_boot_envelope_served_verbatim(self, live):
        __, request, __db = live
        status, body, headers = request("GET", "/v1/signatures")
        assert status == 200
        assert headers["X-Set-Version"] == "1"
        assert body.decode("utf-8") == SignatureStore.dumps_envelope(
            boot_signatures(), 1
        )

    def test_conditional_fetch_304(self, live):
        __, request, __db = live
        status, body, __h = request("GET", "/v1/signatures?since=1")
        assert status == 304
        assert body == b""
        # an older client still gets the document
        status, __b, __h = request("GET", "/v1/signatures?since=0")
        assert status == 200

    def test_bad_since_is_400(self, live):
        __, request, __db = live
        status, __b, __h = request("GET", "/v1/signatures?since=banana")
        assert status == 400

    def test_degraded_header_reports_served_version(self, live):
        service, request, __db = live
        document = SignatureStore.dumps_envelope(boot_signatures()[:1], 2)
        request("POST", "/v1/signatures", document.encode())
        # corrupt version 2 at rest; fetch must degrade to version 1
        service.store.write(
            "UPDATE signature_envelopes SET document = ? WHERE set_version = 2",
            ('{"garbage": true}',),
        )
        status, body, headers = request("GET", "/v1/signatures")
        assert status == 200
        assert headers["X-Set-Version"] == "1"
        assert SignatureStore.loads_envelope(body.decode()).set_version == 1


class TestPublish:
    def test_publish_fetch_roundtrip_byte_identical(self, live):
        __, request, __db = live
        document = SignatureStore.dumps_envelope(boot_signatures()[:1], 7)
        status, body, __h = request("POST", "/v1/signatures", document.encode())
        assert status == 201
        reply = json.loads(body)
        assert reply["set_version"] == 7
        assert reply["reload_applied"] is True
        status, fetched, headers = request("GET", "/v1/signatures")
        assert status == 200
        assert fetched.decode("utf-8") == document  # byte-identical
        assert headers["X-Set-Version"] == "7"

    def test_stale_publish_409_and_state_unchanged(self, live):
        service, request, __db = live
        stale = SignatureStore.dumps_envelope(boot_signatures(), 1)
        status, body, __h = request("POST", "/v1/signatures", stale.encode())
        assert status == 409
        assert json.loads(body)["latest"] == 1
        assert service.gateway.set_version == 1
        assert service.signatures.versions() == [1]

    def test_invalid_envelope_400(self, live):
        __, request, __db = live
        status, __b, __h = request("POST", "/v1/signatures", b'{"not": "envelope"}')
        assert status == 400

    def test_publish_hot_reloads_gateway(self, live):
        service, request, __db = live
        document = SignatureStore.dumps_envelope(boot_signatures()[:1], 2)
        request("POST", "/v1/signatures", document.encode())
        assert service.gateway.set_version == 2
        assert service.gateway.generation == 2


class TestScreen:
    def test_socket_decisions_byte_identical_to_in_process(self, live, small_corpus):
        __, request, __db = live
        events = events_from(small_corpus)
        reference = ScreeningGateway(boot_signatures(), config=GatewayConfig())
        expected = canonical_decisions(encode_results(reference.run(list(events))))
        body = json.dumps({"events": [encode_event(e) for e in events]}).encode()
        status, reply, __h = request("POST", "/v1/screen", body)
        assert status == 200
        decoded = json.loads(reply)
        assert canonical_decisions(decoded["results"]) == expected
        assert decoded["set_version"] == 1

    def test_malformed_event_400(self, live):
        __, request, __db = live
        for bad in (
            b'{"events": []}',
            b'{"events": [{"seq": -1}]}',
            b'{"events": "nope"}',
            b"not json at all",
        ):
            status, __b, __h = request("POST", "/v1/screen", bad)
            assert status == 400

    def test_screen_after_reload_uses_new_version(self, live, small_corpus):
        __, request, __db = live
        document = SignatureStore.dumps_envelope(boot_signatures()[:1], 2)
        request("POST", "/v1/signatures", document.encode())
        events = events_from(small_corpus, n=4)
        body = json.dumps({"events": [encode_event(e) for e in events]}).encode()
        status, reply, __h = request("POST", "/v1/screen", body)
        assert status == 200
        decoded = json.loads(reply)
        assert decoded["set_version"] == 2
        assert all(r["set_version"] == 2 for r in decoded["results"])


class TestReports:
    def reports_body(self, small_corpus, n=3, device="http-dev"):
        packets = small_corpus.trace.packets
        records = [
            encode_report(
                DeviceReport(
                    device_id=device,
                    seq=i + 1,
                    token=token_for(packets[i]),
                    packet=packets[i],
                )
            )
            for i in range(n)
        ]
        return records, json.dumps({"reports": records}).encode()

    def test_valid_reports_accepted_and_stored(self, live, small_corpus):
        service, request, __db = live
        __, body = self.reports_body(small_corpus)
        status, reply, __h = request("POST", "/v1/reports", body)
        assert status == 200
        decoded = json.loads(reply)
        assert decoded["accepted"] == 3
        assert decoded["stored"] == 3
        assert service.reports.count() == 3

    def test_duplicate_rejected_not_an_http_error(self, live, small_corpus):
        __, request, __db = live
        records, body = self.reports_body(small_corpus, n=2)
        request("POST", "/v1/reports", body)
        replay = json.dumps({"reports": [records[0]]}).encode()
        status, reply, __h = request("POST", "/v1/reports", replay)
        assert status == 200  # application verdict, not transport failure
        decoded = json.loads(reply)
        assert decoded["accepted"] == 0
        assert decoded["results"][0]["status"].startswith("rejected")

    def test_garbage_record_rejected_per_report(self, live, small_corpus):
        __, request, __db = live
        records, __ = self.reports_body(small_corpus, n=1)
        mixed = json.dumps({"reports": [{"junk": 1}, records[0]]}).encode()
        status, reply, __h = request("POST", "/v1/reports", mixed)
        assert status == 200
        decoded = json.loads(reply)
        statuses = [r["status"] for r in decoded["results"]]
        assert statuses[0].startswith("rejected")
        assert decoded["accepted"] == 1

    def test_bad_body_400(self, live):
        __, request, __db = live
        status, __b, __h = request("POST", "/v1/reports", b'{"reports": []}')
        assert status == 400


class TestOperationalEndpoints:
    def test_healthz_snapshot(self, live):
        __, request, __db = live
        status, body, __h = request("GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["ok"] is True
        assert health["gateway"]["set_version"] == 1
        assert health["signatures"]["latest_version"] == 1
        assert health["storage"] == {"backend": "sqlite", "schema_version": 2}

    def test_metrics_prometheus_text(self, live, small_corpus):
        __, request, __db = live
        events = events_from(small_corpus, n=3)
        request(
            "POST",
            "/v1/screen",
            json.dumps({"events": [encode_event(e) for e in events]}).encode(),
        )
        status, body, headers = request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "repro_service_requests_screen" in text
        assert "repro_admitted" in text  # gateway counters share the registry

    def test_unknown_route_404(self, live):
        __, request, __db = live
        for method, path in (("GET", "/nope"), ("POST", "/v1/nope")):
            status, __b, __h = request(method, path, b"{}" if method == "POST" else None)
            assert status == 404

    def test_oversized_body_413(self, tmp_path):
        service = SignatureService(
            boot_signatures(), config=ServiceConfig(max_body_bytes=64)
        )
        server = ServiceServer(service)
        host, port = server.start()
        try:
            connection = http.client.HTTPConnection(host, port, timeout=10.0)
            connection.request(
                "POST", "/v1/screen", body=b"x" * 256,
                headers={"Content-Type": "application/json"},
            )
            assert connection.getresponse().status == 413
            connection.close()
        finally:
            server.stop()


class TestRecovery:
    def test_restart_recovers_latest_envelope_from_sqlite(self, live):
        service, request, db_path = live
        document = SignatureStore.dumps_envelope(boot_signatures()[:1], 5)
        request("POST", "/v1/signatures", document.encode())
        service.store.close()

        # a fresh boot with *no* boot signatures must recover version 5
        reborn = SignatureService([], db_path=db_path)
        assert reborn.gateway.set_version == 5
        assert reborn.signatures.latest_version() == 5
        status, payload, version = reborn.fetch()
        assert status == 200 and version == 5
        assert payload == document  # byte-identical across the restart
        reborn.store.close()

    def test_boot_signatures_ignored_when_state_exists(self, live):
        service, __req, db_path = live
        service.store.close()
        reborn = SignatureService(
            [ConjunctionSignature(tokens=("other=1",))], db_path=db_path
        )
        # durable version 1 wins over the new boot set
        assert reborn.gateway.set_version == 1
        assert len(reborn.gateway.matcher) == len(boot_signatures())
        reborn.store.close()
