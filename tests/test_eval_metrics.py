"""The paper's Section V-B equations, verified by hand-built scenarios."""

import pytest

from repro.errors import ReproError
from repro.eval.metrics import compute_metrics
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import SignatureMatcher
from tests.conftest import make_packet


def leaky(i):
    return make_packet(target=f"/x?imei=12345&i={i}")


def clean(i):
    return make_packet(target=f"/y?q={i}")


def matcher_for(token="imei=12345"):
    return SignatureMatcher([ConjunctionSignature(tokens=(token,))])


class TestEquations:
    def test_perfect_detection(self):
        suspicious = [leaky(i) for i in range(10)]
        normal = [clean(i) for i in range(20)]
        m = compute_metrics(matcher_for(), suspicious, normal, n_sample=4)
        # D_s = 10: TP = (10-4)/(10-4) = 1; FN = 0; FP = 0
        assert m.true_positive_rate == 1.0
        assert m.false_negative_rate == 0.0
        assert m.false_positive_rate == 0.0
        assert m.detected_sensitive == 10
        assert m.tp_percent == 100.0

    def test_partial_detection(self):
        # 6 of 10 sensitive carry the token -> D_s = 6, N = 2:
        suspicious = [leaky(i) for i in range(6)] + [
            make_packet(target=f"/other?aid=999&i={i}") for i in range(4)
        ]
        normal = [clean(i) for i in range(20)]
        m = compute_metrics(matcher_for(), suspicious, normal, n_sample=2)
        assert m.true_positive_rate == pytest.approx((6 - 2) / (10 - 2))
        assert m.false_negative_rate == pytest.approx((10 - 6) / (10 - 2))
        assert m.true_positive_rate + m.false_negative_rate == pytest.approx(1.0)

    def test_false_positives(self):
        suspicious = [leaky(i) for i in range(5)]
        # 3 of 13 normal packets carry a colliding token.
        normal = [clean(i) for i in range(10)] + [
            make_packet(target=f"/n?imei=12345&fp={i}") for i in range(3)
        ]
        m = compute_metrics(matcher_for(), suspicious, normal, n_sample=3)
        assert m.detected_normal == 3
        # paper formula: D_b / (B - N) = 3 / (13 - 3)
        assert m.false_positive_rate == pytest.approx(3 / 10)

    def test_fp_percent(self):
        suspicious = [leaky(i) for i in range(5)]
        normal = [clean(i) for i in range(103)] + [make_packet(target="/n?imei=12345")]
        m = compute_metrics(matcher_for(), suspicious, normal, n_sample=4)
        assert m.fp_percent == pytest.approx(100 * 1 / 100)


class TestGuards:
    def test_sample_exhausting_suspicious_rejected(self):
        with pytest.raises(ReproError):
            compute_metrics(matcher_for(), [leaky(1)], [clean(i) for i in range(5)], n_sample=1)

    def test_sample_exhausting_normal_rejected(self):
        with pytest.raises(ReproError):
            compute_metrics(matcher_for(), [leaky(i) for i in range(5)], [clean(1)], n_sample=1)

    def test_rates_clamped(self):
        # Detector misses everything: TP numerator (0 - N) < 0 -> clamp to 0.
        suspicious = [make_packet(target=f"/no-token?i={i}") for i in range(5)]
        normal = [clean(i) for i in range(10)]
        m = compute_metrics(matcher_for(), suspicious, normal, n_sample=2)
        assert m.true_positive_rate == 0.0
        assert m.false_negative_rate == 1.0
