"""The streaming bench harness, its agreement metric, and its gates."""

import json

import pytest

from repro.distance.blocking import BlockingMode
from repro.eval.benchcheck import check_report
from repro.eval.streaming import (
    StreamingBudget,
    StreamingReport,
    partition_agreement,
    run_streaming_bench,
)


class TestPartitionAgreement:
    def test_identical_partitions(self):
        partition = [[0, 1, 2], [3, 4]]
        result = partition_agreement(partition, [[3, 4], [0, 1, 2]], 5)
        assert result["identical"] is True
        assert result["precision"] == result["recall"] == result["f1"] == 1.0
        assert result["rand_index"] == 1.0

    def test_split_cluster_scores(self):
        # ours splits the reference's single 4-cluster into two halves:
        # all our co-pairs are true (precision 1), 2 of 6 survive (recall
        # 1/3), F1 = 0.5, and 2 of 6 pairwise decisions agree.
        result = partition_agreement([[0, 1], [2, 3]], [[0, 1, 2, 3]], 4)
        assert result["identical"] is False
        assert result["precision"] == 1.0
        assert result["recall"] == pytest.approx(1 / 3)
        assert result["f1"] == pytest.approx(0.5)
        assert result["rand_index"] == pytest.approx(1 / 3)

    def test_all_singletons_vs_one_cluster(self):
        result = partition_agreement([[0], [1], [2]], [[0, 1, 2]], 3)
        assert result["precision"] == 1.0  # vacuous: no same-pairs claimed
        assert result["recall"] == 0.0
        assert result["n_clusters_stream"] == 3
        assert result["n_clusters_full"] == 1


def make_report(**overrides) -> StreamingReport:
    """A healthy synthetic report; overrides inject specific failures."""
    values = dict(
        n_apps=300,
        seed=7,
        mode="exact",
        threshold=1.2,
        linkage="average",
        baseline_m=200,
        m_total=2048,
        base=256,
        batch_size=128,
        n_batches=2,
        compact_every=4,
        workers=1,
        cpu_count=8,
        stream_total_s=10.0,
        full_recluster_s=70.0,
        batches=[
            {"batch": 0, "batch_size": 256, "m_before": 0, "m_after": 256,
             "attach_pairs": 2000, "compact_pairs": 5000},
            {"batch": 1, "batch_size": 128, "m_before": 256, "m_after": 384,
             "attach_pairs": 1280, "compact_pairs": 3000},
            {"batch": 2, "batch_size": 128, "m_before": 1920, "m_after": 2048,
             "attach_pairs": 1536, "compact_pairs": 3000},
        ],
        blocking={"n_blocks": 20},
        streaming_stats={"pairs_evaluated": 400_000},
        audit={
            "identical": True,
            "signatures_identical": True,
            "f1": 1.0,
            "n_clusters_stream": 25,
            "n_clusters_full": 25,
        },
        budget=StreamingBudget().to_dict(),
    )
    values.update(overrides)
    return StreamingReport(**values)


class TestStreamingBudget:
    def test_healthy_report_passes(self):
        assert StreamingBudget().violations(make_report()) == []

    def test_exact_mode_divergence_always_fails(self):
        report = make_report(audit={"identical": False, "f1": 1.0,
                                    "signatures_identical": True})
        violations = StreamingBudget(min_agreement_f1=None).violations(report)
        assert any("diverges" in v for v in violations)

    def test_signature_divergence_fails_exact_mode(self):
        report = make_report(audit={"identical": True, "f1": 1.0,
                                    "signatures_identical": False})
        violations = StreamingBudget().violations(report)
        assert any("signatures" in v for v in violations)

    def test_lsh_mode_gates_on_f1_not_identity(self):
        report = make_report(
            mode="lsh",
            audit={"identical": False, "f1": 0.99, "signatures_identical": False},
        )
        assert StreamingBudget().violations(report) == []
        report = make_report(
            mode="lsh",
            audit={"identical": False, "f1": 0.5, "signatures_identical": False},
        )
        assert any("F1" in v for v in StreamingBudget().violations(report))

    def test_scale_floor(self):
        report = make_report(m_total=384)
        assert any("scale" in v for v in StreamingBudget().violations(report))

    def test_attach_tail_ratio_ceiling(self):
        batches = make_report().batches
        batches[-1]["attach_pairs"] = 1280 * 4  # 4x head cost per item
        report = make_report(batches=batches)
        assert any("tail/head" in v for v in StreamingBudget().violations(report))

    def test_attach_tail_fraction_ceiling(self):
        batches = make_report().batches
        batches[-1]["attach_pairs"] = 128 * 1900  # ~M pairs per item
        report = make_report(batches=batches)
        violations = StreamingBudget(max_attach_tail_ratio=None).violations(report)
        assert any("near-linear" in v for v in violations)

    def test_pair_fraction_ceiling(self):
        report = make_report(streaming_stats={"pairs_evaluated": 2_000_000})
        assert any("pair space" in v for v in StreamingBudget().violations(report))

    def test_none_disables_a_gate(self):
        report = make_report(
            m_total=384, streaming_stats={"pairs_evaluated": 30_000}
        )
        assert StreamingBudget(min_scale=None).violations(report) == []


class TestStreamingReport:
    def test_derived_quantities(self):
        report = make_report()
        assert report.scale == pytest.approx(2048 / 200)
        assert report.full_pairs == 2048 * 2047 // 2
        assert report.attach_head_per_item == pytest.approx(10.0)
        assert report.attach_tail_per_item == pytest.approx(12.0)
        assert report.attach_tail_ratio == pytest.approx(1.2)
        assert report.attach_tail_fraction == pytest.approx(12.0 / 1920)
        assert report.naive_recompute_pairs == sum(
            b["m_after"] * (b["m_after"] - 1) // 2 for b in report.batches
        )

    def test_json_round_trip(self, tmp_path):
        report = make_report()
        data = json.loads(report.save(tmp_path / "BENCH_streaming.json").read_text())
        assert data["bench"] == "streaming"
        assert data["identical"] is True
        assert data["scale"] == 10.24
        assert data["recompute"]["pairs_evaluated"] == 400_000
        assert data["ok"] is True
        audit = json.loads(
            report.save_audit(tmp_path / "AUDIT_streaming.json").read_text()
        )
        assert audit["bench"] == "streaming_audit"
        assert audit["identical"] is True

    def test_reports_satisfy_the_drift_schema(self):
        report = make_report()
        assert check_report(report.to_dict()) == []
        assert check_report(report.audit_dict()) == []

    def test_render_mentions_gates(self):
        text = make_report().render()
        assert "audit" in text
        assert "budget: ok" in text
        failing = make_report(m_total=384)
        failing.violations = StreamingBudget().violations(failing)
        assert "BUDGET VIOLATIONS" in failing.render()


class TestRunStreamingBench:
    def test_micro_run_is_exact_and_sublinear(self):
        report = run_streaming_bench(
            n_apps=40,
            base=40,
            batch_size=20,
            batches=2,
            workers=1,
            seed=3,
            budget=StreamingBudget(min_scale=None),
        )
        assert report.m_total == 80
        assert report.audit["identical"] is True
        assert report.audit["signatures_identical"] is True
        assert report.audit["f1"] == 1.0
        assert report.pairs_evaluated < report.full_pairs
        assert report.violations == []
        assert len(report.batches) == 3
        assert report.batches[-1]["m_after"] == 80

    def test_lsh_mode_is_audited_not_assumed(self):
        report = run_streaming_bench(
            n_apps=40,
            base=40,
            batch_size=20,
            batches=1,
            mode=BlockingMode.LSH,
            workers=1,
            seed=3,
            budget=StreamingBudget(min_scale=None, require_exact_identity=False),
        )
        assert report.mode == "lsh"
        assert report.audit["f1"] >= 0.97
        assert report.ok

    def test_too_small_corpus_is_rejected(self):
        with pytest.raises(ValueError):
            run_streaming_bench(n_apps=5, base=4000, batch_size=10, batches=1)
