"""Traffic collector: independence of per-app streams."""

from random import Random

from repro.android.device import Device
from repro.android.market import AppMarket, MarketConfig
from repro.simulation.collector import TrafficCollector


def build(n=12, seed=0):
    apps = AppMarket(MarketConfig(n_apps=n), seed=seed).build()
    device = Device.generate(Random(seed))
    return apps, device


class TestCollect:
    def test_collects_all_apps(self):
        apps, device = build()
        trace = TrafficCollector(device, seed=1).collect(apps)
        assert {p.app_id for p in trace} == {a.package for a in apps}

    def test_progress_callback(self):
        apps, device = build()
        seen = []
        TrafficCollector(device, seed=1).collect(apps, progress=lambda d, t: seen.append((d, t)))
        assert seen[-1] == (len(apps), len(apps))
        assert len(seen) == len(apps)

    def test_per_app_streams_independent(self):
        """Removing one app must not change the others' packets."""
        apps, device = build()
        full = TrafficCollector(device, seed=1).collect(apps)
        subset = TrafficCollector(device, seed=1).collect(apps[1:])
        full_by_app = {}
        for p in full:
            full_by_app.setdefault(p.app_id, []).append(p.request.target)
        subset_by_app = {}
        for p in subset:
            subset_by_app.setdefault(p.app_id, []).append(p.request.target)
        for app in apps[1:]:
            assert full_by_app[app.package] == subset_by_app[app.package]

    def test_seed_changes_traffic(self):
        apps, device = build()
        a = TrafficCollector(device, seed=1).collect(apps)
        b = TrafficCollector(device, seed=2).collect(apps)
        assert [p.request.target for p in a] != [p.request.target for p in b]
