"""Serving telemetry: histograms, counters, spans, JSONL export."""

import json

import pytest

from repro.serving.telemetry import Histogram, ServingTelemetry


class TestHistogram:
    def test_bucketing_and_moments(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            h.observe(value)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]
        assert h.min_value == 0.5 and h.max_value == 8.0
        assert h.mean == pytest.approx(3.25)

    def test_percentiles_are_bucket_upper_edges(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for value in [0.5] * 50 + [1.5] * 40 + [3.0] * 9 + [5.0]:
            h.observe(value)
        assert h.percentile(0.50) == 1.0
        assert h.percentile(0.90) == 2.0
        assert h.percentile(0.99) == 4.0
        assert h.percentile(1.00) == 5.0  # clamped to observed max

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram(bounds=(1.0,))
        h.observe(123.0)
        assert h.percentile(0.99) == 123.0

    def test_empty_histogram(self):
        h = Histogram(bounds=(1.0, 2.0))
        assert h.percentile(0.99) == 0.0
        assert h.mean == 0.0
        assert h.to_dict()["count"] == 0

    def test_empty_histogram_to_dict_fully_defined(self):
        # Regression: every moment/percentile of an empty histogram is a
        # defined zero (never NaN/None), so exports stay diffable.
        d = Histogram(bounds=(1.0, 2.0)).to_dict()
        assert d == {
            "count": 0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "buckets": {"1.0": 0, "2.0": 0, "+inf": 0},
        }
        assert json.dumps(d)  # JSON-clean, no NaN

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        h = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_to_dict_shape(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(0.5)
        d = h.to_dict()
        assert d["buckets"] == {"1.0": 1, "2.0": 0, "+inf": 0}
        assert d["p50"] == 0.5  # bucket edge clamped to observed max


class TestTelemetry:
    def test_counters_monotonic(self):
        t = ServingTelemetry()
        t.increment("admitted")
        t.increment("admitted", 4)
        assert t.counters["admitted"] == 5
        with pytest.raises(ValueError):
            t.increment("admitted", -1)

    def test_spans_of_filters_by_kind(self):
        t = ServingTelemetry()
        t.span("batch", batch_id=0)
        t.span("reload", generation=2)
        t.span("batch", batch_id=1)
        assert [s["batch_id"] for s in t.spans_of("batch")] == [0, 1]
        assert t.spans_of("reload")[0]["generation"] == 2

    def test_snapshot_is_json_serializable(self):
        t = ServingTelemetry()
        t.increment("batches")
        t.observe("latency_ticks", 3.0)
        snapshot = t.snapshot()
        text = json.dumps(snapshot)
        assert "latency_ticks" in text
        assert snapshot["counters"] == {"batches": 1}
        assert snapshot["histograms"]["latency_ticks"]["count"] == 1

    def test_export_jsonl_roundtrip(self, tmp_path):
        t = ServingTelemetry()
        t.span("batch", batch_id=0, size=3)
        t.observe("queue_depth", 2)
        path = t.export_jsonl(tmp_path / "spans.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"kind": "batch", "batch_id": 0, "size": 3}
        assert lines[-1]["kind"] == "summary"
        assert lines[-1]["histograms"]["queue_depth"]["count"] == 1

    def test_snapshot_order_independent_of_insertion(self):
        # Regression: counter insertion order must not leak into the
        # snapshot (or the JSONL summary line built from it).
        a, b = ServingTelemetry(), ServingTelemetry()
        a.increment("zeta")
        a.increment("alpha", 2)
        b.increment("alpha", 2)
        b.increment("zeta")
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())
        assert list(a.snapshot()["counters"]) == ["alpha", "zeta"]

    def test_empty_telemetry_snapshot_defined(self):
        snapshot = ServingTelemetry().snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == 0
        assert set(snapshot["histograms"]) == {
            "batch_size", "latency_ticks", "queue_depth", "shed_latency_ticks",
        }
        for h in snapshot["histograms"].values():
            assert h["count"] == 0 and h["p99"] == 0.0

    def test_observe_requires_registered_histogram(self):
        t = ServingTelemetry()
        with pytest.raises(KeyError):
            t.observe("unregistered", 1.0)

    def test_shared_registry_merges_counters(self):
        from repro.obs.metrics import Metrics

        metrics = Metrics()
        metrics.inc("channel_publishes")
        t = ServingTelemetry(metrics=metrics)
        t.increment("batches")
        assert metrics.counters == {"channel_publishes": 1, "batches": 1}
        assert "repro_batches 1" in metrics.to_prometheus()
