"""Signature-set analytics: coverage, verbosity, overlap, prompt rate."""

import pytest

from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.analysis import (
    coverage_by_label,
    expected_prompt_rate,
    overlap_matrix,
    render_coverage,
    verbosity_report,
)
from repro.signatures.conjunction import ConjunctionSignature
from tests.conftest import make_packet


def sig(*tokens, scope=""):
    return ConjunctionSignature(tokens=tokens, scope_domain=scope)


class TestCoverage:
    def test_per_label_recall(self, identity):
        check = PayloadCheck(identity)
        caught = make_packet(host="ads.adnet.com", target=f"/x?imei={identity.imei}&k=tok")
        missed = make_packet(host="ads.other.jp", target=f"/y?aid={identity.android_id}")
        signatures = [sig(f"imei={identity.imei}")]
        rows = coverage_by_label(signatures, [caught, missed], check)
        by_label = {r.label: r for r in rows}
        assert by_label["IMEI"].recall == 1.0
        assert by_label["ANDROID_ID"].recall == 0.0

    def test_render(self, identity):
        check = PayloadCheck(identity)
        packet = make_packet(target=f"/x?imei={identity.imei}")
        rows = coverage_by_label([sig("nomatch===")], [packet], check)
        text = render_coverage(rows)
        assert "IMEI" in text
        assert "0.0%" in text

    def test_corpus_coverage_improves_with_sample(self, small_corpus, small_split):
        from repro.dataset.split import sample_packets
        from repro.eval.crossval import generate_from

        suspicious, __ = small_split
        check = small_corpus.payload_check()
        small = generate_from(sample_packets(suspicious, 20, seed=8))
        large = generate_from(sample_packets(suspicious, 90, seed=8))
        recall = lambda sigs: sum(
            r.detected for r in coverage_by_label(sigs, list(suspicious), check)
        ) / max(1, sum(r.total for r in coverage_by_label(sigs, list(suspicious), check)))
        assert recall(large) >= recall(small) - 0.05


class TestVerbosity:
    def test_risky_flags_short_unscoped(self):
        risky = sig("ab=cd")
        safe_scoped = sig("ab=cd", scope="x.com")
        safe_long = sig("a-very-long-invariant-token=12345")
        reports = {r.signature: r for r in verbosity_report([risky, safe_scoped, safe_long])}
        assert reports[risky].risky
        assert not reports[safe_scoped].risky
        assert not reports[safe_long].risky

    def test_sorted_by_token_mass(self):
        reports = verbosity_report([sig("longertoken=abc"), sig("tiny1")])
        assert reports[0].total_token_length <= reports[1].total_token_length


class TestOverlap:
    def test_cofiring_counted(self):
        a = sig("alpha=1")
        b = sig("beta=2")
        both = make_packet(target="/x?alpha=1&beta=2")
        only_a = make_packet(target="/y?alpha=1")
        overlaps = overlap_matrix([a, b], [both, only_a, both])
        assert overlaps == {(0, 1): 2}

    def test_no_overlap_empty(self):
        a = sig("alpha=1")
        b = sig("beta=2")
        packets = [make_packet(target="/x?alpha=1"), make_packet(target="/y?beta=2")]
        assert overlap_matrix([a, b], packets) == {}

    def test_scope_respected(self):
        a = sig("alpha=1", scope="one.com")
        b = sig("alpha=1", scope="two.net")
        packet = make_packet(host="x.one.com", target="/p?alpha=1")
        assert overlap_matrix([a, b], [packet]) == {}


class TestPromptRate:
    def test_zero_on_clean_traffic(self):
        signatures = [sig("imei=12345")]
        normal = [make_packet(target=f"/n?q={i}") for i in range(10)]
        assert expected_prompt_rate(signatures, normal) == 0.0

    def test_counts_false_fires(self):
        signatures = [sig("page=")]  # over-broad token
        normal = [make_packet(target=f"/n?page={i}") for i in range(4)] + [
            make_packet(target="/other")
        ]
        assert expected_prompt_rate(signatures, normal) == pytest.approx(0.8)

    def test_empty_traffic(self):
        assert expected_prompt_rate([sig("x=1y")], []) == 0.0
