"""FleetIngest: the quarantine -> admission -> validation -> dedup gauntlet."""

import pytest

from repro.errors import FederationError
from repro.federation.ingest import (
    FleetIngest,
    IngestConfig,
    ReportStatus,
    shard_for,
)
from repro.federation.report import DeviceReport, encode_report, token_for
from repro.serving.gateway import ShedPolicy
from tests.conftest import make_packet


def envelope(seq: int, device_id: str = "device-00001", target: str = "/track?udid=x"):
    packet = make_packet(target=target)
    report = DeviceReport(
        device_id=device_id, seq=seq, token=token_for(packet), packet=packet
    )
    return encode_report(report)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(n_shards=0),
        dict(queue_capacity=0),
        dict(dedup_window=0),
        dict(breaker_threshold=0),
        dict(quarantine_release_ticks=0.0),
        dict(per_report_ticks=-1.0),
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(FederationError):
            IngestConfig(**kwargs)


class TestSharding:
    def test_shard_assignment_is_stable(self):
        assert shard_for("device-00001", 8) == shard_for("device-00001", 8)

    def test_shards_in_range_and_spread(self):
        shards = {shard_for(f"device-{i:05d}", 8) for i in range(200)}
        assert all(0 <= shard < 8 for shard in shards)
        assert len(shards) == 8  # 200 devices cover all 8 shards

    def test_one_device_always_one_shard(self):
        ingest = FleetIngest(IngestConfig(n_shards=4))
        shards = {
            ingest.submit(envelope(seq), tick=float(seq)).shard for seq in range(1, 10)
        }
        assert len(shards) == 1


class TestAcceptance:
    def test_valid_report_accepted(self):
        ingest = FleetIngest()
        result = ingest.submit(envelope(1), tick=0.0)
        assert result.accepted
        assert result.status is ReportStatus.ACCEPTED
        assert result.report is not None
        assert result.report.seq == 1

    def test_gaps_in_sequence_are_fine(self):
        # Devices only report *candidate* leaks; most local traffic never
        # becomes a report, so the server sees gaps, not a dense sequence.
        ingest = FleetIngest()
        for seq in (1, 5, 9):
            assert ingest.submit(envelope(seq), tick=0.0).accepted

    def test_malformed_rejected_with_reason(self):
        ingest = FleetIngest()
        record = envelope(1)
        record["checksum"] = "0" * 64
        result = ingest.submit(record, tick=0.0)
        assert result.status is ReportStatus.REJECTED_MALFORMED
        assert result.reason == "checksum"
        assert ingest.rejection_reasons == {"checksum": 1}

    def test_garbage_submission_does_not_raise(self):
        ingest = FleetIngest()
        assert ingest.submit(None, tick=0.0).status is ReportStatus.REJECTED_MALFORMED
        assert ingest.submit([1, 2], tick=0.0).status is ReportStatus.REJECTED_MALFORMED


class TestReplayDefense:
    def test_duplicate_inside_window_rejected_as_duplicate(self):
        ingest = FleetIngest()
        ingest.submit(envelope(1), tick=0.0)
        result = ingest.submit(envelope(1), tick=1.0)
        assert result.status is ReportStatus.REJECTED_DUPLICATE

    def test_replay_behind_window_rejected_as_replay(self):
        # With a 2-deep window and high watermark 5, seq 4-5 are duplicates
        # (at-least-once redelivery) while seq 1 is a replay (history).
        ingest = FleetIngest(IngestConfig(dedup_window=2))
        for seq in range(1, 6):
            assert ingest.submit(envelope(seq), tick=float(seq)).accepted
        assert (
            ingest.submit(envelope(5), tick=6.0).status
            is ReportStatus.REJECTED_DUPLICATE
        )
        assert (
            ingest.submit(envelope(1), tick=7.0).status is ReportStatus.REJECTED_REPLAY
        )
        assert ingest.counts["rejected_replay"] == 1

    def test_watermark_never_regresses(self):
        ingest = FleetIngest()
        ingest.submit(envelope(3), tick=0.0)
        assert (
            ingest.submit(envelope(2), tick=1.0).status
            is not ReportStatus.ACCEPTED
        )
        assert ingest.submit(envelope(4), tick=2.0).accepted


class TestQuarantineCycle:
    def config(self) -> IngestConfig:
        return IngestConfig(breaker_threshold=3, quarantine_release_ticks=10.0)

    def trip(self, ingest: FleetIngest, tick: float) -> None:
        bad = envelope(1)
        bad["checksum"] = "0" * 64
        for _ in range(ingest.config.breaker_threshold):
            ingest.submit(bad, tick=tick)

    def test_violation_streak_quarantines(self):
        ingest = FleetIngest(self.config())
        self.trip(ingest, tick=0.0)
        result = ingest.submit(envelope(1), tick=1.0)
        assert result.status is ReportStatus.REJECTED_QUARANTINED
        assert result.status.retryable
        assert ingest.quarantine.bans == 1

    def test_cooldown_releases_and_readmits(self):
        ingest = FleetIngest(self.config())
        self.trip(ingest, tick=0.0)
        assert not ingest.submit(envelope(1), tick=5.0).accepted
        # Past the cooldown the ban lifts and the clean report lands.
        result = ingest.submit(envelope(1), tick=11.0)
        assert result.accepted
        assert ingest.quarantine.releases == 1

    def test_readmitted_device_gets_a_fresh_streak(self):
        # Re-admission must not leave the device one violation from a ban:
        # it takes a full threshold of new violations to re-trip.
        ingest = FleetIngest(self.config())
        self.trip(ingest, tick=0.0)
        bad = envelope(2)
        bad["checksum"] = "0" * 64
        ingest.submit(bad, tick=11.0)  # one violation after release
        assert ingest.submit(envelope(2), tick=12.0).accepted
        assert ingest.quarantine.bans == 1

    def test_repeat_offender_retrips(self):
        ingest = FleetIngest(self.config())
        self.trip(ingest, tick=0.0)
        self.trip(ingest, tick=11.0)
        assert (
            ingest.submit(envelope(1), tick=12.0).status
            is ReportStatus.REJECTED_QUARANTINED
        )
        assert ingest.quarantine.bans == 2
        assert ingest.quarantine.releases == 1

    def test_duplicates_count_as_violations(self):
        # A dedup-window hit is a protocol violation too — a device
        # hammering old sequence numbers ends up quarantined.
        ingest = FleetIngest(self.config())
        ingest.submit(envelope(1), tick=0.0)
        for _ in range(ingest.config.breaker_threshold):
            ingest.submit(envelope(1), tick=1.0)
        assert (
            ingest.submit(envelope(2), tick=2.0).status
            is ReportStatus.REJECTED_QUARANTINED
        )


class TestShedding:
    def flood(self, ingest: FleetIngest, n: int) -> list:
        # Same device -> same shard; same tick -> backlog only grows.
        return [ingest.submit(envelope(seq), tick=0.0) for seq in range(1, n + 1)]

    def test_drop_policy_sheds_overflow(self):
        ingest = FleetIngest(
            IngestConfig(queue_capacity=2, shed_policy=ShedPolicy.DROP, n_shards=1)
        )
        results = self.flood(ingest, 6)
        statuses = [result.status for result in results]
        assert ReportStatus.SHED_DROPPED in statuses
        shed = next(result for result in results if result.status is ReportStatus.SHED_DROPPED)
        assert shed.status.retryable

    def test_degrade_policy_validates_inline(self):
        ingest = FleetIngest(
            IngestConfig(queue_capacity=2, shed_policy=ShedPolicy.DEGRADE, n_shards=1)
        )
        results = self.flood(ingest, 6)
        assert all(result.accepted for result in results)
        assert any(result.degraded for result in results)
        assert ingest.counts["shed_degraded"] > 0

    def test_backlog_drains_with_the_clock(self):
        ingest = FleetIngest(
            IngestConfig(queue_capacity=2, shed_policy=ShedPolicy.DROP, n_shards=1)
        )
        self.flood(ingest, 6)
        # Much later the queue has drained; the same device is served again.
        assert ingest.submit(envelope(50), tick=100.0).accepted


class TestStats:
    def test_stats_shape(self):
        ingest = FleetIngest()
        ingest.submit(envelope(1), tick=0.0)
        ingest.submit(envelope(1), tick=1.0)
        bad = envelope(2)
        bad.pop("packet")
        ingest.submit(bad, tick=2.0)
        stats = ingest.stats()
        assert stats["submitted"] == 3
        assert stats["accepted"] == 1
        assert stats["devices_seen"] == 1
        assert stats["counts"]["rejected_duplicate"] == 1
        assert stats["counts"]["rejected_malformed"] == 1
        assert stats["rejection_reasons"] == {"schema": 1}
        assert stats["quarantine"]["bans"] == 0
