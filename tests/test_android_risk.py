"""Static permission-risk assessment."""

import pytest

from repro.android.app import Application
from repro.android.permissions import (
    ACCESS_FINE_LOCATION,
    INTERNET,
    Manifest,
    READ_CONTACTS,
    READ_PHONE_STATE,
    VIBRATE,
)
from repro.android.risk import RiskLevel, assess, rank_population, risk_level, summarize


def manifest(*perms):
    return Manifest(package="jp.test.app", permissions=frozenset(perms))


def app_with(*perms, package="jp.test.app"):
    return Application(package=package, manifest=Manifest(package=package, permissions=frozenset(perms)))


class TestRiskLevel:
    def test_no_network_is_none(self):
        assert risk_level(manifest(READ_PHONE_STATE)) is RiskLevel.NONE

    def test_internet_only_is_low(self):
        assert risk_level(manifest(INTERNET)) is RiskLevel.LOW
        assert risk_level(manifest(INTERNET, VIBRATE)) is RiskLevel.LOW

    def test_one_sensitive_category_is_moderate(self):
        assert risk_level(manifest(INTERNET, READ_PHONE_STATE)) is RiskLevel.MODERATE

    def test_two_categories_is_high(self):
        assert risk_level(manifest(INTERNET, READ_PHONE_STATE, ACCESS_FINE_LOCATION)) is RiskLevel.HIGH

    def test_all_three_is_critical(self):
        level = risk_level(
            manifest(INTERNET, READ_PHONE_STATE, ACCESS_FINE_LOCATION, READ_CONTACTS)
        )
        assert level is RiskLevel.CRITICAL

    def test_ordering(self):
        assert RiskLevel.NONE < RiskLevel.LOW < RiskLevel.MODERATE < RiskLevel.CRITICAL


class TestAssess:
    def test_reasons_mention_capabilities(self):
        assessment = assess(app_with(INTERNET, READ_PHONE_STATE))
        text = " ".join(assessment.reasons)
        assert "IMEI" in text
        assert "network" in text

    def test_internet_only_noted(self):
        assessment = assess(app_with(INTERNET))
        assert any("no permission beyond INTERNET" in r for r in assessment.reasons)

    def test_ad_modules_reported(self):
        from repro.android.admodules import ADMAKER
        from repro.android.services import Service

        app = app_with(INTERNET, READ_PHONE_STATE)
        app.services.append(Service(ADMAKER))
        assessment = assess(app)
        assert any("admaker" in r for r in assessment.reasons)

    def test_is_dangerous_threshold(self):
        assert not assess(app_with(INTERNET)).is_dangerous
        assert assess(app_with(INTERNET, READ_CONTACTS)).is_dangerous


class TestPopulation:
    def test_rank_most_dangerous_first(self):
        apps = [
            app_with(INTERNET, package="jp.low"),
            app_with(INTERNET, READ_PHONE_STATE, ACCESS_FINE_LOCATION, READ_CONTACTS, package="jp.critical"),
            app_with(INTERNET, READ_PHONE_STATE, package="jp.moderate"),
        ]
        ranked = rank_population(apps)
        assert [a.package for a in ranked] == ["jp.critical", "jp.moderate", "jp.low"]

    def test_summarize_matches_table1_proportions(self, small_corpus):
        histogram = summarize(small_corpus.apps)
        total = sum(histogram.values())
        assert total == small_corpus.n_apps
        dangerous = sum(
            count for level, count in histogram.items() if level >= RiskLevel.MODERATE
        )
        # paper: 61% dangerous combinations
        assert dangerous / total == pytest.approx(0.61, abs=0.06)
