"""Cross-cutting property tests added late in development."""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures.tokens import TokenFilter


class TestTokenFilterProperties:
    @given(st.text(alphabet="GETPOST /abc=&?1.HTTPn", max_size=40))
    def test_clean_idempotent(self, token):
        token_filter = TokenFilter()
        once = token_filter.clean(token)
        if once is not None:
            assert token_filter.clean(once) == once

    @given(st.text(max_size=40))
    def test_clean_never_grows(self, token):
        cleaned = TokenFilter().clean(token)
        if cleaned is not None:
            assert len(cleaned) <= len(token)

    @given(st.lists(st.text(max_size=20), max_size=8))
    def test_apply_output_unique_and_clean(self, tokens):
        token_filter = TokenFilter()
        result = token_filter.apply(tokens)
        assert len(result) == len(set(result))
        for token in result:
            assert token_filter.clean(token) == token


class TestStorePipelineProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.text(alphabet="abc=&123", min_size=1, max_size=10), min_size=1, max_size=4),
                st.sampled_from(["", "admob.com", "nend.net"]),
            ),
            min_size=0,
            max_size=5,
        )
    )
    def test_store_roundtrip_any_signature_set(self, raw):
        from repro.signatures.conjunction import ConjunctionSignature
        from repro.signatures.store import SignatureStore

        signatures = [
            ConjunctionSignature(tokens=tuple(tokens), scope_domain=scope)
            for tokens, scope in raw
        ]
        assert SignatureStore.loads(SignatureStore.dumps(signatures)) == signatures


class TestRedactionProperty:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), noise=st.text(alphabet="abc123&=/? ", max_size=40))
    def test_redacted_text_never_contains_identifiers(self, seed, noise):
        from repro.dataset.redact import TraceRedactor
        from repro.sensitive.identifiers import DeviceIdentity

        identity = DeviceIdentity.generate(Random(seed))
        redactor = TraceRedactor(identity)
        text = f"{noise}imei={identity.imei}&aid={identity.android_id}{noise}"
        cleaned = redactor.redact_text(text)
        assert identity.imei not in cleaned
        assert identity.android_id not in cleaned


class TestCorpusScaleInvariance:
    @pytest.mark.parametrize("n_apps", [30, 60, 120])
    def test_sensitive_fraction_scale_invariant(self, n_apps):
        from repro.simulation.corpus import build_corpus

        corpus = build_corpus(n_apps=n_apps, seed=6)
        suspicious, __ = corpus.payload_check().split(corpus.trace)
        fraction = len(suspicious) / len(corpus.trace)
        assert 0.10 < fraction < 0.30


class TestDistanceMetricProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_packet_distance_non_negative_and_bounded(self, seed):
        from repro.distance.packet import PacketDistance
        from repro.simulation.corpus import mini_corpus

        corpus = mini_corpus(seed=3, n_apps=12)
        rng = Random(seed)
        packets = corpus.trace.packets
        x = packets[rng.randrange(len(packets))]
        y = packets[rng.randrange(len(packets))]
        metric = PacketDistance.paper()
        value = metric.distance(x, y)
        assert 0.0 <= value <= metric.max_distance
        if x is y:
            assert value < 1.0  # self-distance is small (NCD overhead only)
