"""Dendrogram structure, traversal, and cophenetic distances."""

import pytest

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.errors import ClusteringError


def simple_tree():
    """4 leaves: (0,1) at h=1 -> node 4; (2,3) at h=2 -> node 5; root h=5."""
    return Dendrogram(
        4,
        [
            Merge(0, 1, 1.0, 2),
            Merge(2, 3, 2.0, 2),
            Merge(4, 5, 5.0, 4),
        ],
    )


class TestStructure:
    def test_root_and_counts(self):
        d = simple_tree()
        assert d.root == 6
        assert d.n_nodes == 7
        assert d.n_leaves == 4

    def test_single_leaf(self):
        d = Dendrogram(1, [])
        assert d.root == 0
        assert d.is_leaf(0)

    def test_children(self):
        d = simple_tree()
        assert d.children(6) == (4, 5)
        assert d.children(4) == (0, 1)

    def test_leaf_has_no_children(self):
        with pytest.raises(ClusteringError):
            simple_tree().children(0)

    def test_heights(self):
        d = simple_tree()
        assert d.height(0) == 0.0
        assert d.height(4) == 1.0
        assert d.height(6) == 5.0

    def test_sizes(self):
        d = simple_tree()
        assert d.size(0) == 1
        assert d.size(4) == 2
        assert d.size(6) == 4

    def test_leaves(self):
        d = simple_tree()
        assert sorted(d.leaves(6)) == [0, 1, 2, 3]
        assert sorted(d.leaves(5)) == [2, 3]
        assert d.leaves(1) == [1]

    def test_wrong_merge_count_rejected(self):
        with pytest.raises(ClusteringError):
            Dendrogram(4, [Merge(0, 1, 1.0, 2)])

    def test_invalid_child_reference_rejected(self):
        with pytest.raises(ClusteringError):
            Dendrogram(2, [Merge(0, 5, 1.0, 2)])

    def test_double_merge_rejected(self):
        with pytest.raises(ClusteringError):
            Dendrogram(3, [Merge(0, 1, 1.0, 2), Merge(0, 2, 2.0, 3)])

    def test_zero_leaves_rejected(self):
        with pytest.raises(ClusteringError):
            Dendrogram(0, [])


class TestTraversal:
    def test_top_down_order(self):
        d = simple_tree()
        order = d.iter_top_down()
        assert order[0] == 6  # root first
        assert set(order) == {4, 5, 6}
        assert order == sorted(order, key=lambda n: (d.height(n), n), reverse=True)

    def test_cophenetic(self):
        d = simple_tree()
        assert d.cophenetic_distance(0, 1) == 1.0
        assert d.cophenetic_distance(2, 3) == 2.0
        assert d.cophenetic_distance(0, 3) == 5.0
        assert d.cophenetic_distance(1, 1) == 0.0

    def test_cophenetic_requires_leaves(self):
        with pytest.raises(ClusteringError):
            simple_tree().cophenetic_distance(4, 0)


class TestExport:
    def test_linkage_array_shape(self):
        arr = simple_tree().to_linkage_array()
        assert len(arr) == 3
        assert arr[0] == [0.0, 1.0, 1.0, 2.0]

    def test_ascii_render(self):
        text = simple_tree().render_ascii(labels=["a", "b", "c", "d"])
        assert "a" in text and "d" in text
        assert "h=5.000" in text

    def test_ascii_render_caps_size(self):
        d = Dendrogram(2, [Merge(0, 1, 1.0, 2)])
        assert "leaf" in d.render_ascii() or "+" in d.render_ascii()
        big = simple_tree()
        assert "too large" in big.render_ascii(max_leaves=2)
