"""The observability determinism contract.

Instrumentation must be *free*: an observed run produces bit-identical
results to an unobserved one (pipeline metrics, signatures, distance
matrices, screening decisions), and the migrated ``ServingTelemetry``
shim must export byte-for-byte what the pre-``repro.obs`` implementation
did.  The legacy implementation is embedded below as the frozen
reference oracle.
"""

import json
from collections import defaultdict
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.distribution import SignatureChannel
from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.distance.engine import DistanceEngine
from repro.distance.packet import PacketDistance
from repro.obs import Observability
from repro.serving.gateway import GatewayConfig, ReloadEvent, ScreeningGateway
from repro.serving.loadgen import FleetLoadGenerator, LoadProfile
from repro.serving.telemetry import DEPTH_BOUNDS, LATENCY_BOUNDS, Histogram, ServingTelemetry
from tests.test_serving_shards import corpus_signatures


class LegacyServingTelemetry:
    """The pre-``repro.obs`` implementation, frozen as a regression oracle.

    Byte-for-byte equivalent output from the shim proves the migration
    changed the plumbing, not the format.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.histograms: dict[str, Histogram] = {
            "latency_ticks": Histogram(LATENCY_BOUNDS),
            "shed_latency_ticks": Histogram(LATENCY_BOUNDS),
            "queue_depth": Histogram(DEPTH_BOUNDS),
            "batch_size": Histogram(DEPTH_BOUNDS),
        }
        self.spans: list[dict[str, Any]] = []

    def increment(self, name: str, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"counters are monotonic; cannot add {by}")
        self.counters[name] += by

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].observe(value)

    def span(self, kind: str, **fields: Any) -> None:
        self.spans.append({"kind": kind, **fields})

    def spans_of(self, kind: str) -> list[dict[str, Any]]:
        return [span for span in self.spans if span["kind"] == kind]

    def snapshot(self) -> dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: h.to_dict() for name, h in sorted(self.histograms.items())},
            "spans": len(self.spans),
        }

    def export_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        lines = [json.dumps(span, sort_keys=True) for span in self.spans]
        lines.append(json.dumps({"kind": "summary", **self.snapshot()}, sort_keys=True))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path


class TestPipelineUnchanged:
    def test_observed_run_is_bit_identical(self, small_corpus):
        check = small_corpus.payload_check()
        plain = DetectionPipeline(small_corpus.trace, check, PipelineConfig())
        obs = Observability.create(seed=0, config={"equivalence": True})
        traced = DetectionPipeline(small_corpus.trace, check, PipelineConfig(), obs=obs)
        for n_sample, seed in ((20, 0), (35, 3)):
            a = plain.run(n_sample, seed=seed)
            b = traced.run(n_sample, seed=seed)
            assert a.metrics == b.metrics
            assert [s.to_dict() for s in a.signatures] == [s.to_dict() for s in b.signatures]
        # ...and the traced run actually recorded something.
        assert obs.tracer.spans_named("distance_matrix")
        assert obs.metrics.counters["pipeline_runs"] == 2


class TestEngineUnchanged:
    def test_matrix_identical_with_observation(self, small_split):
        suspicious, __ = small_split
        packets = suspicious[:24]
        plain = DistanceEngine(PacketDistance.paper(), workers=1).matrix(packets)
        obs = Observability.create(seed=0)
        observed = DistanceEngine(PacketDistance.paper(), workers=1, obs=obs).matrix(packets)
        assert np.array_equal(plain.values, observed.values)
        chunks = obs.tracer.spans_named("engine_chunk")
        assert chunks and sum(s.attrs["pairs"] for s in chunks) == len(packets) * (
            len(packets) - 1
        ) // 2
        assert obs.metrics.counters["engine_pair_misses"] > 0

    def test_parallel_matrix_identical_with_observation(self, small_split):
        suspicious, __ = small_split
        packets = suspicious[:24]
        plain = DistanceEngine(PacketDistance.paper(), workers=2).matrix(packets)
        obs = Observability.create(seed=0)
        observed = DistanceEngine(PacketDistance.paper(), workers=2, obs=obs).matrix(packets)
        assert np.array_equal(plain.values, observed.values)
        assert obs.tracer.spans_named("engine_chunk")


class TestServingTelemetryShim:
    def _run_gateway(self, corpus, telemetry):
        channel = SignatureChannel()
        channel.publish(corpus_signatures(corpus))
        channel.publish(list(reversed(corpus_signatures(corpus, limit=18))))
        stream = FleetLoadGenerator(
            corpus, LoadProfile(mean_interarrival_ticks=0.5), seed=3
        ).events(250)
        boot = channel.envelope(1)
        gateway = ScreeningGateway(
            list(boot.signatures),
            config=GatewayConfig(batch_size=4, n_shards=2),
            telemetry=telemetry,
            set_version=boot.set_version,
        )
        gateway.run(
            stream,
            reloads=[ReloadEvent(tick=stream[125].tick, envelope=channel.envelope(2))],
        )
        return telemetry

    def test_shim_export_byte_identical_to_legacy(self, small_corpus, tmp_path):
        shim = self._run_gateway(small_corpus, ServingTelemetry())
        legacy = self._run_gateway(small_corpus, LegacyServingTelemetry())
        assert shim.snapshot() == legacy.snapshot()
        shim_path = shim.export_jsonl(tmp_path / "shim.jsonl")
        legacy_path = legacy.export_jsonl(tmp_path / "legacy.jsonl")
        assert shim_path.read_bytes() == legacy_path.read_bytes()
