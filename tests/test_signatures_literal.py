"""The literal §IV-E generator vs the cut-based shortcut."""

import pytest

from repro.clustering.linkage import agglomerate
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.errors import SignatureError
from repro.signatures.generator import SignatureGenerator
from repro.signatures.literal import LiteralGenerator
from repro.signatures.matcher import SignatureMatcher
from tests.conftest import make_packet


def module_packet(module, seq):
    return make_packet(
        host=f"ads.{module}.example",
        ip="198.51.100.9",
        target=f"/{module}/imp?sid=PUB&udid=deadbeef1122{module[:4]}&seq={seq}",
    )


@pytest.fixture(scope="module")
def sample():
    return [module_packet("alpha", i) for i in range(5)] + [
        module_packet("betaz", i) for i in range(5)
    ]


@pytest.fixture(scope="module")
def dendrogram(sample):
    return agglomerate(distance_matrix(sample, PacketDistance.paper()))


class TestLiteralGenerator:
    def test_produces_signatures(self, dendrogram, sample):
        signatures = LiteralGenerator().from_dendrogram(dendrogram, sample)
        assert signatures
        domains = {s.scope_domain for s in signatures}
        assert "alpha.example" in domains
        assert "betaz.example" in domains

    def test_covers_everything_cut_based_covers(self, dendrogram, sample):
        literal = SignatureMatcher(LiteralGenerator().from_dendrogram(dendrogram, sample))
        cut = SignatureMatcher(SignatureGenerator().from_dendrogram(dendrogram, sample))
        for packet in sample:
            if cut.is_sensitive(packet):
                assert literal.is_sensitive(packet)

    def test_no_boilerplate_only_output(self, dendrogram, sample):
        signatures = LiteralGenerator().from_dendrogram(dendrogram, sample)
        for signature in signatures:
            assert signature.total_token_length >= 5

    def test_mismatch_rejected(self, dendrogram, sample):
        with pytest.raises(SignatureError):
            LiteralGenerator().from_dendrogram(dendrogram, sample[:-1])

    def test_max_nodes_caps_output(self, dendrogram, sample):
        capped = LiteralGenerator(max_nodes=1).from_dendrogram(dendrogram, sample)
        full = LiteralGenerator().from_dendrogram(dendrogram, sample)
        assert len(capped) <= len(full)

    def test_dedup_applied(self, dendrogram, sample):
        """Parent and child nodes of a homogeneous module produce subsumable
        signatures; the output must not contain redundant pairs."""
        from repro.signatures.generator import _subsumes

        signatures = LiteralGenerator().from_dendrogram(dendrogram, sample)
        for i, a in enumerate(signatures):
            for j, b in enumerate(signatures):
                if i != j:
                    assert not _subsumes(a, b), (a, b)


class TestOnCorpus:
    def test_literal_vs_cut_detection(self, small_corpus, small_split):
        """The literal reading reaches at least the cut-based recall (it
        emits a superset of cluster granularities) at a bounded FP cost."""
        suspicious, normal = small_split
        sample = list(suspicious)[:80]
        matrix = distance_matrix(sample, PacketDistance.paper())
        dendrogram = agglomerate(matrix)
        literal = SignatureMatcher(LiteralGenerator().from_dendrogram(dendrogram, sample))
        cut = SignatureMatcher(SignatureGenerator().from_dendrogram(dendrogram, sample))
        recall = lambda m: sum(m.is_sensitive(p) for p in suspicious) / len(suspicious)
        fp = lambda m: sum(m.is_sensitive(p) for p in list(normal)[:2000]) / 2000
        assert recall(literal) >= recall(cut) - 0.02
        assert fp(literal) <= fp(cut) + 0.05
