"""Location leakage: geometry, tolerance scanning, permission gating."""

from random import Random

import pytest

from repro.sensitive.location import GeoPoint, LocationCheck
from tests.conftest import make_packet


TOKYO = GeoPoint(35.6812, 139.7671)


class TestGeoPoint:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_distance_zero_to_self(self):
        assert TOKYO.distance_metres(TOKYO) == 0.0

    def test_distance_known_pair(self):
        # Tokyo Station to Shinjuku Station is ~6.3 km.
        shinjuku = GeoPoint(35.6896, 139.7006)
        assert TOKYO.distance_metres(shinjuku) == pytest.approx(6100, rel=0.1)

    def test_distance_symmetric(self):
        osaka = GeoPoint(34.7025, 135.4959)
        assert TOKYO.distance_metres(osaka) == pytest.approx(
            osaka.distance_metres(TOKYO), rel=1e-9
        )

    def test_jitter_stays_close(self):
        rng = Random(3)
        for __ in range(20):
            moved = TOKYO.jittered(rng, max_metres=150)
            assert TOKYO.distance_metres(moved) < 350

    def test_wire_format_precision(self):
        lat, lon = TOKYO.wire_format(precision=4)
        assert lat == "35.6812"
        assert lon == "139.7671"

    def test_tokyo_area_sampler(self):
        rng = Random(5)
        point = GeoPoint.tokyo_area(rng)
        assert TOKYO.distance_metres(point) < 60_000


class TestLocationCheck:
    def test_exact_coordinates_detected(self):
        check = LocationCheck(TOKYO)
        assert check.scan_text("lat=35.681200&lon=139.767100")

    def test_jittered_coordinates_detected(self):
        check = LocationCheck(TOKYO)
        moved = TOKYO.jittered(Random(1))
        lat, lon = moved.wire_format()
        assert check.scan_text(f"glat={lat}&glon={lon}")

    def test_truncated_precision_detected(self):
        check = LocationCheck(TOKYO)
        assert check.scan_text("g=35.681,139.767")

    def test_lon_lat_order_detected(self):
        check = LocationCheck(TOKYO)
        assert check.scan_text("point=139.7671,35.6812")

    def test_other_city_rejected(self):
        check = LocationCheck(TOKYO)
        assert not check.scan_text("lat=34.7025&lon=135.4959")  # Osaka

    def test_random_decimals_rejected(self):
        check = LocationCheck(TOKYO)
        assert not check.scan_text("price=12.990&weight=3.500")

    def test_version_strings_rejected(self):
        check = LocationCheck(TOKYO)
        assert not check.scan_text("v=1.2.3&build=4.11.200")

    def test_radius_configurable(self):
        nearby = GeoPoint(35.6900, 139.7671)  # ~1 km north
        tight = LocationCheck(TOKYO, radius_metres=500)
        loose = LocationCheck(TOKYO, radius_metres=2000)
        lat, lon = nearby.wire_format()
        text = f"lat={lat}&lon={lon}"
        assert not tight.scan_text(text)
        assert loose.scan_text(text)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            LocationCheck(TOKYO, radius_metres=0)

    def test_packet_split(self):
        check = LocationCheck(TOKYO)
        lat, lon = TOKYO.wire_format()
        leaking = make_packet(target=f"/ad?lat={lat}&lon={lon}")
        clean = make_packet(target="/ad?x=1")
        found, other = check.split([leaking, clean])
        assert found == [leaking]
        assert other == [clean]

    def test_finding_reports_distance(self):
        check = LocationCheck(TOKYO)
        findings = check.scan_text("lat=35.681200&lon=139.767100")
        assert findings[0].distance_metres < 50


class TestDeviceIntegration:
    def test_location_getter_gated(self):
        from repro.android.device import Device
        from repro.android.permissions import (
            ACCESS_FINE_LOCATION,
            INTERNET,
            Manifest,
        )
        from repro.errors import PermissionDenied

        device = Device.generate(Random(2))
        allowed = Manifest(package="a", permissions=frozenset({INTERNET, ACCESS_FINE_LOCATION}))
        denied = Manifest(package="b", permissions=frozenset({INTERNET}))
        assert device.get_last_known_location(allowed) == device.location
        with pytest.raises(PermissionDenied):
            device.get_last_known_location(denied)

    def test_corpus_leaks_gated_by_permission(self, small_corpus):
        from repro.sensitive.location import LocationCheck

        check = LocationCheck(small_corpus.device.location)
        leaking, __ = check.split(small_corpus.trace)
        apps_with_location = {
            a.package
            for a in small_corpus.apps
            if any(p.name == "ACCESS_FINE_LOCATION" for p in a.manifest.permissions)
        }
        assert all(p.app_id in apps_with_location for p in leaking)

    def test_corpus_has_location_leaks(self, small_corpus):
        check = LocationCheck(small_corpus.device.location)
        leaking, __ = check.split(small_corpus.trace)
        assert leaking  # the AdMob/AMoAd/AdLantis models do send geo params

    def test_signatures_catch_location_leaking_modules(self, small_corpus):
        """Coordinates jitter per session, so they are not invariant tokens;
        detection of the leaking packets still works because the ad request
        carrying them also carries the module's stable structure."""
        from repro.core.pipeline import DetectionPipeline

        check = LocationCheck(small_corpus.device.location)
        leaking, __ = check.split(small_corpus.trace)
        pipeline = DetectionPipeline(small_corpus.trace, small_corpus.payload_check())
        result = pipeline.run(n_sample=80, seed=4)
        from repro.signatures.matcher import SignatureMatcher

        matcher = SignatureMatcher(result.signatures)
        caught = sum(matcher.is_sensitive(p) for p in leaking)
        assert caught / len(leaking) > 0.5
