"""Port validation and the boolean port distance."""

import pytest

from repro.errors import AddressError
from repro.net.ports import MAX_PORT, ports_match, service_name, validate_port


def test_validate_accepts_range_bounds():
    assert validate_port(1) == 1
    assert validate_port(MAX_PORT) == MAX_PORT


@pytest.mark.parametrize("bad", [0, -1, 65536, 100000])
def test_validate_rejects_out_of_range(bad):
    with pytest.raises(AddressError):
        validate_port(bad)


def test_validate_rejects_bool():
    with pytest.raises(AddressError):
        validate_port(True)


def test_validate_rejects_non_int():
    with pytest.raises(AddressError):
        validate_port("80")  # type: ignore[arg-type]


def test_ports_match():
    assert ports_match(80, 80)
    assert not ports_match(80, 443)


def test_ports_match_validates_both_operands():
    with pytest.raises(AddressError):
        ports_match(80, 0)
    with pytest.raises(AddressError):
        ports_match(-1, 80)


def test_service_name_known():
    assert service_name(80) == "http"
    assert service_name(443) == "https"


def test_service_name_unknown_falls_back():
    assert service_name(12345) == "tcp/12345"


def test_service_name_validates():
    with pytest.raises(AddressError):
        service_name(0)
