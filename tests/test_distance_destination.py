"""Destination distance components and their paper orientation."""

import pytest

from repro.distance.destination import (
    destination_distance,
    host_distance,
    ip_distance,
    port_distance,
)
from repro.http.packet import Destination
from repro.net.ipv4 import IPv4Address
from tests.conftest import make_packet


def ip(text):
    return IPv4Address.parse(text)


class TestIpDistance:
    def test_identical_is_zero(self):
        assert ip_distance(ip("10.0.0.1"), ip("10.0.0.1")) == 0.0

    def test_completely_different_is_one(self):
        assert ip_distance(ip("0.0.0.0"), ip("255.0.0.0")) == 1.0

    def test_same_org_block_is_close(self):
        # Two /16-sharing addresses: >= 16 shared bits -> distance <= 0.5
        assert ip_distance(ip("173.194.41.9"), ip("173.194.38.7")) <= 0.5

    def test_similarity_mode_is_papers_literal_formula(self):
        a, b = ip("10.0.0.1"), ip("10.0.0.2")
        assert ip_distance(a, b, similarity=True) == 30 / 32
        assert ip_distance(a, b) == pytest.approx(1 - 30 / 32)


class TestPortDistance:
    def test_matching_ports(self):
        assert port_distance(80, 80) == 0.0
        assert port_distance(80, 80, similarity=True) == 1.0

    def test_different_ports(self):
        assert port_distance(80, 443) == 1.0
        assert port_distance(80, 443, similarity=True) == 0.0


class TestHostDistance:
    def test_identical_hosts(self):
        assert host_distance("ads.admob.com", "ads.admob.com") == 0.0

    def test_normalized_by_longer(self):
        value = host_distance("a.com", "b.com")
        assert value == pytest.approx(1 / 5)

    def test_related_subdomains_close(self):
        assert host_distance("lh3.ggpht.com", "lh4.ggpht.com") < 0.1


class TestCombined:
    def test_range(self):
        a = Destination.make("10.0.0.1", 80, "a.example.com")
        b = Destination.make("200.9.9.9", 443, "zzz.other.net")
        value = destination_distance(a, b)
        assert 0.0 <= value <= 3.0

    def test_identical_destination_is_zero(self):
        a = Destination.make("10.0.0.1", 80, "a.example.com")
        assert destination_distance(a, a) == 0.0

    def test_accepts_packets(self):
        x = make_packet(host="a.example.com", ip="10.0.0.1")
        y = make_packet(host="a.example.com", ip="10.0.0.1")
        assert destination_distance(x, y) == 0.0

    def test_same_service_much_closer_than_unrelated(self):
        ad1 = Destination.make("173.194.41.10", 80, "googleads.g.doubleclick.net")
        ad2 = Destination.make("173.194.41.55", 80, "googleads.g.doubleclick.net")
        other = Destination.make("54.248.92.17", 80, "output.nend.net")
        assert destination_distance(ad1, ad2) < destination_distance(ad1, other)

    def test_symmetry(self):
        a = Destination.make("10.0.0.1", 80, "a.example.com")
        b = Destination.make("200.9.9.9", 443, "zzz.other.net")
        assert destination_distance(a, b) == destination_distance(b, a)
