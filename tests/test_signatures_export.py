"""Signature exporters: regex equivalence, mitmproxy script, Snort rules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.export import (
    matches_via_regex,
    to_mitmproxy_script,
    to_regex,
    to_snort_rules,
)


def sig(*tokens, scope=""):
    return ConjunctionSignature(tokens=tokens, scope_domain=scope)


class TestRegexExport:
    def test_simple(self):
        # re.escape leaves '=' alone on modern Python; the tokens are
        # joined by non-greedy gap wildcards.
        assert to_regex(sig("a=1", "b=2")) == "a=1.*?b=2"

    def test_special_characters_escaped(self):
        pattern = to_regex(sig("path?x=[1]"))
        assert matches_via_regex(sig("path?x=[1]"), "GET /path?x=[1] HTTP")

    def test_matches_newlines(self):
        signature = sig("line1tok", "line2tok")
        assert matches_via_regex(signature, "xx line1tok\ncookie\nline2tok yy")

    @settings(max_examples=200, deadline=None)
    @given(
        tokens=st.lists(st.text(alphabet="ab=&.", min_size=1, max_size=4), min_size=1, max_size=3),
        text=st.text(alphabet="ab=&.\n", max_size=24),
    )
    def test_regex_equivalent_to_matcher(self, tokens, text):
        signature = ConjunctionSignature(tokens=tuple(tokens))
        assert matches_via_regex(signature, text) == signature.matches_text(text)


class TestMitmproxyScript:
    def test_script_is_valid_python(self):
        script = to_mitmproxy_script([sig("udid=abc", scope="admob.com"), sig("imei=1")])
        compiled = compile(script, "<generated>", "exec")
        namespace: dict = {}
        exec(compiled, namespace)  # noqa: S102 - our own generated code
        assert "request" in namespace
        assert len(namespace["SIGNATURES"]) == 2

    def test_generated_domain_helper(self):
        script = to_mitmproxy_script([sig("x=1y")])
        namespace: dict = {}
        exec(compile(script, "<g>", "exec"), namespace)  # noqa: S102
        assert namespace["_registered_domain"]("ads.admob.com") == "admob.com"
        assert namespace["_registered_domain"]("app.rakuten.co.jp") == "rakuten.co.jp"

    def test_generated_matcher_flags_flow(self):
        script = to_mitmproxy_script([sig("udid=abc123", scope="adnet.com")])
        namespace: dict = {}
        exec(compile(script, "<g>", "exec"), namespace)  # noqa: S102

        class FakeHeaders(dict):
            def get(self, key, default=""):
                return super().get(key, default)

        class FakeRequest:
            method = "GET"
            path = "/x?udid=abc123"
            host = "ads.adnet.com"
            headers = FakeHeaders()

            def get_text(self, strict=True):
                return ""

        class FakeFlow:
            request = FakeRequest()
            metadata: dict = {}

        flow = FakeFlow()
        namespace["request"](flow)
        assert flow.metadata.get("sensitive_leak") is True


class TestSnortRules:
    def test_one_rule_per_signature(self):
        rules = to_snort_rules([sig("a=111"), sig("b=222")])
        lines = rules.splitlines()
        assert len(lines) == 2
        assert all(line.startswith("alert tcp") for line in lines)

    def test_sids_sequential(self):
        rules = to_snort_rules([sig("a=111"), sig("b=222")], base_sid=5000)
        assert "sid:5000" in rules
        assert "sid:5001" in rules

    def test_ordered_tokens_chained_with_distance(self):
        rules = to_snort_rules([sig("first=1", "second=2")])
        assert rules.index('content:"first') < rules.index('content:"second')
        assert "distance:0" in rules

    def test_scope_in_header_clause(self):
        rules = to_snort_rules([sig("x=123", scope="admob.com")])
        assert "http_header" in rules
        assert "admob.com" in rules

    def test_nonprintable_bytes_hex_encoded(self):
        rules = to_snort_rules([ConjunctionSignature(tokens=("tok\nen",))])
        assert "|0A|" in rules

    def test_quote_and_semicolon_escaped_as_hex(self):
        rules = to_snort_rules([ConjunctionSignature(tokens=('va"l;ue',))])
        assert "|22|" in rules
        assert "|3B|" in rules
