"""The closed-loop socket load harness, at smoke scale."""

import json

import pytest

from repro.service.loadgen import (
    DEFAULT_MIX,
    ServiceBudget,
    ServiceReport,
    run_service_bench,
)


@pytest.fixture(scope="module")
def small_run():
    return run_service_bench(
        n_apps=30,
        n_clients=24,
        ops_per_client=5,
        sample=30,
        seed=5,
        pool_workers=8,
        budget=ServiceBudget(min_requests=24 * 5),
    )


class TestHarnessRun:
    def test_budget_ok(self, small_run):
        assert small_run.violations == []
        assert small_run.ok

    def test_every_operation_exercised(self, small_run):
        assert small_run.n_requests == 24 * 5
        assert set(small_run.requests) <= set(DEFAULT_MIX)
        assert small_run.requests.get("screen", 0) > 0
        assert small_run.requests.get("fetch", 0) > 0

    def test_identity_checks_pass(self, small_run):
        assert small_run.checks["screen_identical"] is True
        assert small_run.checks["boot_fetch_identical"] is True
        assert small_run.checks["fetch_roundtrip_identical"] is True
        assert small_run.checks["healthz_ok"] is True
        assert small_run.identical

    def test_zero_5xx(self, small_run):
        assert small_run.n_5xx == 0
        assert small_run.error_rate == 0.0

    def test_midrun_republication_happened(self, small_run):
        assert small_run.republication["status"] == 201
        assert small_run.republication["set_version"] == 2
        assert small_run.republication["stale_status"] == 409
        assert small_run.gateway["reloads_applied"] == 1

    def test_bursts_exercise_shedding(self, small_run):
        assert small_run.screen["shed"] > 0
        assert 0.0 < small_run.shed_rate <= 0.25

    def test_latency_percentiles_present(self, small_run):
        stats = small_run.latency_ms["all"]
        assert stats["count"] == small_run.n_requests
        assert 0 < stats["p50"] <= stats["p95"] <= stats["p99"]


class TestReportShape:
    def test_schema_fields(self, small_run):
        payload = small_run.to_dict()
        for field in (
            "bench", "corpus", "server", "workload", "n_clients",
            "requests", "status_counts", "latency_ms", "republication",
            "checks", "gateway", "budget", "violations", "ok", "identical",
        ):
            assert field in payload, field
        assert payload["bench"] == "service"
        assert payload["server"]["backend"] == "sqlite"

    def test_json_roundtrip_and_save(self, small_run, tmp_path):
        path = small_run.save(tmp_path / "BENCH_service.json")
        again = json.loads(path.read_text())
        assert again == small_run.to_dict()

    def test_render_mentions_the_gates(self, small_run):
        text = small_run.render()
        assert "screen_identical=True" in text
        assert "budget: ok" in text


class TestBudget:
    def base_report(self, **overrides):
        report = ServiceReport(
            n_apps=10, seed=0, n_clients=4, ops_per_client=2, pool_workers=2,
            server={"backend": "memory", "unhandled_errors": 0},
            workload={},
        )
        report.requests = {"fetch": 200}
        report.status_counts = {"200": 200}
        report.checks = {"screen_identical": True, "fetch_roundtrip_identical": True}
        report.gateway = {"reloads_applied": 1}
        report.screen = {"decisions": 100, "shed": 0}
        for name, value in overrides.items():
            setattr(report, name, value)
        return report

    def test_clean_report_passes(self):
        assert ServiceBudget().violations(self.base_report()) == []

    def test_identity_failure_always_fatal(self):
        report = self.base_report(
            checks={"screen_identical": False, "fetch_roundtrip_identical": True}
        )
        violations = ServiceBudget().violations(report)
        assert any("diverge" in v for v in violations)

    def test_5xx_gate(self):
        report = self.base_report(status_counts={"200": 199, "500": 1})
        assert any("5xx" in v for v in ServiceBudget().violations(report))
        # server-side unhandled errors count even if no client saw a 500
        report = self.base_report(
            server={"backend": "memory", "unhandled_errors": 2}
        )
        assert report.n_5xx == 2

    def test_shed_rate_gate(self):
        report = self.base_report(screen={"decisions": 100, "shed": 40})
        budget = ServiceBudget(max_screen_shed_rate=0.25)
        assert any("shed rate" in v for v in budget.violations(report))

    def test_planned_conflict_not_an_error(self):
        report = self.base_report(status_counts={"200": 199, "409": 1})
        report.republication = {"stale_conflicts": 1}
        assert report.error_rate == 0.0

    def test_min_requests_gate(self):
        report = self.base_report(requests={"fetch": 3})
        assert any("requests" in v for v in ServiceBudget().violations(report))


class TestBenchcheckIntegration:
    def test_report_passes_committed_schema_gate(self, small_run):
        from repro.eval.benchcheck import check_report

        assert check_report(small_run.to_dict()) == []
