"""Report rendering sanity: every renderer produces the paper's rows."""

from repro.dataset.stats import destination_table, fanout_cdf, fanout_summary, sensitive_table
from repro.eval.experiments import Fig4Point
from repro.eval.report import (
    render_fig2,
    render_fig4,
    render_table1,
    render_table2,
    render_table3,
)


def test_render_table1(small_corpus):
    text = render_table1(small_corpus.apps)
    assert "Table I" in text
    assert "dangerous combinations" in text
    assert "61%" in text  # the paper reference is always shown


def test_render_table2(small_corpus):
    rows = destination_table(small_corpus.trace)
    text = render_table2(rows, scale=small_corpus.n_apps / 1188)
    assert "Table II" in text
    assert "doubleclick.net" in text or "admob.com" in text


def test_render_table3(small_corpus):
    check = small_corpus.payload_check()
    rows = sensitive_table(small_corpus.trace, check)
    text = render_table3(rows, scale=small_corpus.n_apps / 1188)
    assert "Table III" in text
    assert "ANDROID_ID" in text


def test_render_fig2(small_corpus):
    summary = fanout_summary(small_corpus.trace)
    text = render_fig2(summary, fanout_cdf(small_corpus.trace))
    assert "Fig 2" in text
    assert "paper: 7.9" in text
    assert "CDF" in text


def test_render_fig4():
    points = [
        Fig4Point(n_sample=100, tp_percent=85.0, fn_percent=15.0, fp_percent=0.3, n_signatures=12),
        Fig4Point(n_sample=500, tp_percent=94.0, fn_percent=5.0, fp_percent=2.3, n_signatures=20),
    ]
    text = render_fig4(points)
    assert "Fig 4" in text
    assert "85.0" in text
    assert "94.0" in text
    assert "85/15/0.3" in text  # published landmark shown alongside
