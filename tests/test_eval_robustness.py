"""Seed-robustness studies."""

import pytest

from repro.eval.robustness import StudySummary, fig4_point_study, seed_study


class TestStudySummary:
    def test_statistics(self):
        summary = StudySummary(name="x", values=(1.0, 2.0, 3.0))
        assert summary.mean == 2.0
        assert summary.min == 1.0
        assert summary.max == 3.0
        assert summary.stdev == pytest.approx(1.0)

    def test_single_value_stdev_zero(self):
        assert StudySummary(name="x", values=(5.0,)).stdev == 0.0

    def test_describe(self):
        text = StudySummary(name="tp", values=(0.8, 0.9)).describe()
        assert "tp" in text
        assert "n=2" in text


class TestSeedStudy:
    def test_metric_called_per_seed(self):
        seen = []

        def metric(corpus):
            seen.append(corpus.n_apps)
            return {"packets": len(corpus.trace)}

        summaries = seed_study(metric, seeds=(1, 2), n_apps=25)
        assert seen == [25, 25]
        assert summaries[0].name == "packets"
        assert len(summaries[0].values) == 2


class TestFig4Study:
    @pytest.fixture(scope="class")
    def study(self):
        return {s.name: s for s in fig4_point_study(n_sample=60, seeds=(1, 2, 3), n_apps=70)}

    def test_keys_present(self, study):
        assert set(study) == {"tp_rate", "fp_rate", "n_signatures"}

    def test_tp_stable_across_seeds(self, study):
        assert study["tp_rate"].mean > 0.5
        assert study["tp_rate"].stdev < 0.25

    def test_fp_low_on_every_seed(self, study):
        assert study["fp_rate"].max < 0.08
