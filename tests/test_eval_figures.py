"""Plot-data exporters."""

import csv
import io

from repro.eval.crossval import HoldoutResult
from repro.eval.experiments import Fig4Point
from repro.eval.figures import (
    fig2_series,
    fig4_series,
    learning_curve_series,
    save_csv,
    to_csv,
)


def test_fig2_series(small_corpus):
    rows = fig2_series(small_corpus.trace)
    assert rows
    assert rows[0]["destinations"] == 1
    fractions = [r["fraction_of_apps"] for r in rows]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0


def test_fig4_series_columns():
    points = [Fig4Point(n_sample=100, tp_percent=85.0, fn_percent=15.0, fp_percent=0.3, n_signatures=9)]
    rows = fig4_series(points)
    assert rows == [
        {"n_sample": 100, "tp_percent": 85.0, "fn_percent": 15.0, "fp_percent": 0.3, "n_signatures": 9}
    ]


def test_learning_curve_series():
    results = [
        HoldoutResult(n_train=30, n_heldout=100, heldout_recall=0.5, false_positive_rate=0.01, n_signatures=4)
    ]
    rows = learning_curve_series(results)
    assert rows[0]["n_train"] == 30
    assert rows[0]["heldout_recall"] == 0.5


def test_to_csv_roundtrip():
    rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
    text = to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed[0]["a"] == "1"
    assert parsed[1]["b"] == "4.5"


def test_to_csv_empty():
    assert to_csv([]) == ""


def test_save_csv(tmp_path):
    path = tmp_path / "fig.csv"
    save_csv([{"x": 1}], path)
    assert path.read_text().startswith("x")
