"""Restart-with-resume supervision: breaker wiring, budgets, health."""

import pytest

from repro.errors import SupervisionError
from repro.obs import Observability
from repro.reliability.retry import BreakerState, CircuitBreaker
from repro.signatures.store import SignatureStore
from repro.supervision import CrashPlan, StagedPipeline, Supervisor

N_SAMPLE = 24
SEED = 3


@pytest.fixture(scope="module")
def labeler(small_corpus):
    return small_corpus.payload_check()


@pytest.fixture(scope="module")
def baseline_signatures(small_corpus, labeler):
    result = StagedPipeline(small_corpus.trace, labeler).run(N_SAMPLE, seed=SEED)
    return SignatureStore.dumps(result.signatures)


def staged(small_corpus, labeler, **kwargs):
    return StagedPipeline(small_corpus.trace, labeler, **kwargs)


class TestSupervisor:
    def test_clean_run_single_attempt(self, small_corpus, labeler, baseline_signatures):
        outcome = Supervisor(staged(small_corpus, labeler)).run(N_SAMPLE, seed=SEED)
        assert outcome.attempts == 1
        assert outcome.restarts == 0
        assert not outcome.recovered
        assert SignatureStore.dumps(outcome.result.signatures) == baseline_signatures

    def test_absorbs_every_crash_and_matches_baseline(
        self, small_corpus, labeler, baseline_signatures
    ):
        plan = CrashPlan.after("payload_check", "distance_matrix", "cut")
        outcome = Supervisor(staged(small_corpus, labeler, crash_plan=plan)).run(
            N_SAMPLE, seed=SEED
        )
        assert outcome.attempts == 4
        assert outcome.restarts == 3
        assert outcome.recovered
        assert outcome.crashes == ["payload_check", "distance_matrix", "cut"]
        assert SignatureStore.dumps(outcome.result.signatures) == baseline_signatures

    def test_breaker_trips_and_waits_out_cooldown(self, small_corpus, labeler):
        # 4 crashes against a threshold of 2: the breaker must trip and
        # the supervisor must spend cooldown ticks before probing on.
        plan = CrashPlan.after("collect", "payload_check", "sample", "linkage")
        breaker = CircuitBreaker(failure_threshold=2, cooldown=16.0)
        obs = Observability.create(seed=SEED)
        supervisor = Supervisor(
            staged(small_corpus, labeler, crash_plan=plan), breaker=breaker, obs=obs
        )
        outcome = supervisor.run(N_SAMPLE, seed=SEED)
        assert outcome.restarts == 4
        assert breaker.trips >= 1
        assert obs.counter("supervisor_breaker_waits") >= 1
        assert outcome.ticks > 16.0  # at least one cooldown was waited out
        # after success the breaker is closed again
        assert breaker.state(supervisor.tick) is BreakerState.CLOSED

    def test_restart_budget_exhaustion_raises(self, small_corpus, labeler):
        # rate=1.0 crashes after every executed stage, forever outpacing
        # a tiny restart budget.
        plan = CrashPlan(seed=1, rate=1.0)
        supervisor = Supervisor(
            staged(small_corpus, labeler, crash_plan=plan), max_restarts=2
        )
        with pytest.raises(SupervisionError, match="still crashing"):
            supervisor.run(N_SAMPLE, seed=SEED)

    def test_rate_based_crashes_eventually_complete(
        self, small_corpus, labeler, baseline_signatures
    ):
        # Each boundary draws per-occurrence, so repeated resumes pass a
        # rate-based plan with probability approaching 1: checkpoints
        # shrink the exposed surface every attempt.
        plan = CrashPlan(seed=5, rate=0.5)
        outcome = Supervisor(
            staged(small_corpus, labeler, crash_plan=plan), max_restarts=32
        ).run(N_SAMPLE, seed=SEED)
        assert SignatureStore.dumps(outcome.result.signatures) == baseline_signatures

    def test_obs_recovery_counters_and_spans(self, small_corpus, labeler):
        plan = CrashPlan.after("sample", "cut")
        obs = Observability.create(seed=SEED)
        Supervisor(staged(small_corpus, labeler, crash_plan=plan), obs=obs).run(
            N_SAMPLE, seed=SEED
        )
        assert obs.counter("supervisor_restarts") == 2
        assert obs.counter("supervisor_completions") == 1
        attempts = obs.tracer.spans_named("supervisor_attempt")
        assert [span.attrs["attempt"] for span in attempts] == [1, 2, 3]

    def test_health_snapshot(self, small_corpus, labeler):
        supervisor = Supervisor(staged(small_corpus, labeler))
        supervisor.run(N_SAMPLE, seed=SEED)
        health = supervisor.health()
        assert health["breaker_state"] == "closed"
        assert health["consecutive_failures"] == 0
        assert health["trips"] == 0
        assert len(health["checkpointed_stages"]) == 7

    def test_rejects_negative_budget(self, small_corpus, labeler):
        with pytest.raises(SupervisionError):
            Supervisor(staged(small_corpus, labeler), max_restarts=-1)
