"""Silhouette and cophenetic correlation."""

import numpy as np
import pytest

from repro.clustering.cut import cut_by_count
from repro.clustering.linkage import Linkage, agglomerate, cluster_assignments
from repro.clustering.validation import cophenetic_correlation, silhouette_score
from repro.distance.matrix import distance_matrix
from repro.errors import ClusteringError


def matrix_of(points):
    return distance_matrix(points, lambda a, b: abs(a - b))


class TestSilhouette:
    def test_well_separated_scores_high(self):
        points = [0.0, 0.1, 0.2, 50.0, 50.1, 50.2]
        m = matrix_of(points)
        assignment = [0, 0, 0, 1, 1, 1]
        assert silhouette_score(m, assignment) > 0.9

    def test_bad_assignment_scores_low(self):
        points = [0.0, 0.1, 0.2, 50.0, 50.1, 50.2]
        m = matrix_of(points)
        mixed = [0, 1, 0, 1, 0, 1]
        assert silhouette_score(m, mixed) < 0.1

    def test_singleton_contributes_zero(self):
        points = [0.0, 0.1, 99.0]
        m = matrix_of(points)
        score = silhouette_score(m, [0, 0, 1])
        assert 0.0 < score <= 1.0

    def test_single_cluster_rejected(self):
        m = matrix_of([1.0, 2.0])
        with pytest.raises(ClusteringError):
            silhouette_score(m, [0, 0])

    def test_length_mismatch_rejected(self):
        m = matrix_of([1.0, 2.0, 3.0])
        with pytest.raises(ClusteringError):
            silhouette_score(m, [0, 1])


class TestCophenetic:
    def test_matches_scipy(self):
        hierarchy = pytest.importorskip("scipy.cluster.hierarchy")
        rng = np.random.default_rng(11)
        points = list(rng.uniform(0, 30, size=18))
        m = matrix_of(points)
        d = agglomerate(m)
        ours = cophenetic_correlation(m, d)
        Z = hierarchy.linkage(m.values, method="average")
        theirs, __ = hierarchy.cophenet(Z, m.values)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_group_average_beats_single_on_noisy_data(self):
        rng = np.random.default_rng(5)
        points = list(rng.uniform(0, 100, size=24))
        m = matrix_of(points)
        avg = cophenetic_correlation(m, agglomerate(m, Linkage.GROUP_AVERAGE))
        single = cophenetic_correlation(m, agglomerate(m, Linkage.SINGLE))
        assert avg >= single - 0.05  # group average is (weakly) more faithful

    def test_too_few_items_rejected(self):
        m = matrix_of([1.0, 2.0])
        d = agglomerate(m)
        with pytest.raises(ClusteringError):
            cophenetic_correlation(m, d)

    def test_size_mismatch_rejected(self):
        m = matrix_of([1.0, 2.0, 3.0])
        other = agglomerate(matrix_of([1.0, 2.0, 3.0, 4.0]))
        with pytest.raises(ClusteringError):
            cophenetic_correlation(m, other)


def test_end_to_end_cluster_quality():
    """Clustering + cut recovers planted groups with a high silhouette."""
    points = [0.0, 0.5, 1.0, 40.0, 40.5, 41.0, 90.0, 90.5]
    m = matrix_of(points)
    d = agglomerate(m)
    nodes = cut_by_count(d, 3)
    assignment = cluster_assignments(d, nodes)
    assert silhouette_score(m, assignment) > 0.9
