"""Full-system integration: the complete Fig 3 loop on a fresh corpus.

Server side: collect -> payload check -> cluster -> signatures -> publish.
Device side: fetch -> screen every packet -> user policies.
"""

import pytest

from repro.core.flowcontrol import FlowControlApp, PolicyAction
from repro.core.server import SignatureServer
from repro.sensitive.payload_check import PayloadCheck
from repro.simulation.corpus import mini_corpus


@pytest.fixture(scope="module")
def system():
    corpus = mini_corpus(seed=31, n_apps=50)
    check = PayloadCheck(corpus.device.identity)
    server = SignatureServer(check)
    server.ingest(corpus.trace)
    generation = server.generate(n_sample=min(60, len(server.suspicious) - 10), seed=2)
    published = server.publish(generation.signatures)
    device_app = FlowControlApp.fetch(published)
    return corpus, check, server, generation, device_app


class TestServerSide:
    def test_payload_check_found_leaks(self, system):
        __, __, server, __, __ = system
        assert len(server.suspicious) > 50
        assert len(server.normal) > len(server.suspicious)

    def test_signatures_are_module_specific(self, system):
        __, __, __, generation, __ = system
        scoped = [s for s in generation.signatures if s.scope_domain]
        assert len(scoped) >= len(generation.signatures) * 0.5
        ad_domains = {"ad-maker.info", "doubleclick.net", "nend.net", "admob.com",
                      "i-mobile.co.jp", "medibaad.com", "microad.jp", "amoad.com"}
        assert {s.scope_domain for s in scoped} & ad_domains

    def test_no_boilerplate_only_signatures(self, system):
        __, __, __, generation, __ = system
        for signature in generation.signatures:
            assert signature.total_token_length >= 5
            assert all(token not in ("GET", "POST", "HTTP/1.1") for token in signature.tokens)


class TestDeviceSide:
    def test_screening_detects_most_leaks(self, system):
        corpus, check, __, __, device_app = system
        flagged_sensitive = 0
        total_sensitive = 0
        false_alarms = 0
        total_normal = 0
        for packet in corpus.trace:
            decision = device_app.screen(packet)
            if check.is_sensitive(packet):
                total_sensitive += 1
                flagged_sensitive += decision.flagged
            else:
                total_normal += 1
                false_alarms += decision.flagged
        assert flagged_sensitive / total_sensitive > 0.6
        assert false_alarms / total_normal < 0.06

    def test_user_policy_blocks_app(self, system):
        corpus, check, __, generation, __ = system
        device_app = FlowControlApp(generation.signatures)
        from repro.signatures.matcher import SignatureMatcher

        probe = SignatureMatcher(generation.signatures)
        detectable_apps = sorted(
            {
                p.app_id
                for p in corpus.trace
                if check.is_sensitive(p) and probe.is_sensitive(p)
            }
        )
        target_app = detectable_apps[0]
        device_app.policies.set_rule(target_app, PolicyAction.BLOCK)
        leaks = [p for p in corpus.trace if p.app_id == target_app and check.is_sensitive(p)]
        decisions = [device_app.screen(p) for p in leaks]
        flagged = [d for d in decisions if d.flagged]
        assert flagged
        assert all(not d.transmitted for d in flagged)
        assert device_app.prompt_count() == 0  # block rule means no prompting


class TestCrossDevice:
    """Signatures trained on ONE device anchor on that device's identifier
    values (every training packet carries the same UDID, so the value is an
    invariant token) — they do not transfer to another handset.  Training on
    TWO devices removes the values from the invariant set, leaving module
    structure (endpoints, parameter names, even the shared IMEI TAC prefix),
    which does generalize.  This is the paper's polymorphism argument made
    testable."""

    def test_single_device_signatures_do_not_transfer(self):
        corpus_a = mini_corpus(seed=41, n_apps=40)
        corpus_b = mini_corpus(seed=42, n_apps=40)
        check_a = PayloadCheck(corpus_a.device.identity)
        server = SignatureServer(check_a)
        server.ingest(corpus_a.trace)
        generation = server.generate(n_sample=min(50, len(server.suspicious) - 5), seed=0)
        check_b = PayloadCheck(corpus_b.device.identity)
        device_app = FlowControlApp(generation.signatures)
        sensitive_b = [p for p in corpus_b.trace if check_b.is_sensitive(p)]
        caught = sum(1 for p in sensitive_b if device_app.screen(p).flagged)
        assert caught / len(sensitive_b) < 0.1

    def test_multi_device_training_generalizes(self):
        from repro.clustering.linkage import agglomerate
        from repro.dataset.split import sample_packets
        from repro.distance.matrix import distance_matrix
        from repro.distance.packet import PacketDistance
        from repro.signatures.generator import SignatureGenerator
        from repro.signatures.matcher import SignatureMatcher

        corpus_a = mini_corpus(seed=41, n_apps=40)
        corpus_b = mini_corpus(seed=43, n_apps=40)
        suspicious_a, __ = PayloadCheck(corpus_a.device.identity).split(corpus_a.trace)
        suspicious_b, __ = PayloadCheck(corpus_b.device.identity).split(corpus_b.trace)
        sample = sample_packets(suspicious_a, 70, seed=0) + sample_packets(
            suspicious_b, 70, seed=0
        )
        matrix = distance_matrix(sample, PacketDistance.paper())
        signatures = SignatureGenerator().from_dendrogram(agglomerate(matrix), sample)

        corpus_c = mini_corpus(seed=45, n_apps=40)
        check_c = PayloadCheck(corpus_c.device.identity)
        sensitive_c = [p for p in corpus_c.trace if check_c.is_sensitive(p)]
        normal_c = [p for p in corpus_c.trace if not check_c.is_sensitive(p)]
        matcher = SignatureMatcher(signatures)
        recall = sum(matcher.is_sensitive(p) for p in sensitive_c) / len(sensitive_c)
        fp_rate = sum(matcher.is_sensitive(p) for p in normal_c) / len(normal_c)
        assert recall > 0.2
        assert fp_rate < 0.02
