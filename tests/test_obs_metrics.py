"""The shared metrics registry: counters, gauges, histograms, Prometheus."""

import json
import re

import pytest

from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, Metrics, _prom_value

#: One exposition line: ``name`` or ``name{labels}`` then a number.
PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9]+(\.[0-9]+)?(e-?[0-9]+)?$"
)


class TestCounters:
    def test_monotonic_accumulation(self):
        m = Metrics()
        m.inc("requests")
        m.inc("requests", 4)
        assert m.counters["requests"] == 5

    def test_negative_increment_rejected(self):
        m = Metrics()
        with pytest.raises(ValueError):
            m.inc("requests", -1)

    def test_gauge_is_last_write_wins(self):
        m = Metrics()
        m.set_gauge("depth", 3)
        m.set_gauge("depth", 1)
        assert m.gauges["depth"] == 1


class TestHistogramRegistry:
    def test_registers_on_first_use_with_given_bounds(self):
        m = Metrics()
        h = m.histogram("latency", (1.0, 2.0))
        assert h.bounds == (1.0, 2.0)
        assert m.histogram("latency", (9.0,)) is h  # bounds kept

    def test_observe_uses_default_bounds(self):
        m = Metrics()
        m.observe("sizes", 3.0)
        assert m.histograms["sizes"].bounds == DEFAULT_BOUNDS
        assert m.histograms["sizes"].count == 1


class TestSnapshot:
    def test_sorted_and_json_serializable(self):
        m = Metrics()
        m.inc("zebra")
        m.inc("alpha")
        m.set_gauge("gz", 1)
        m.set_gauge("ga", 2)
        m.observe("h", 1.0, bounds=(1.0, 2.0))
        snapshot = m.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zebra"]
        assert list(snapshot["gauges"]) == ["ga", "gz"]
        json.dumps(snapshot)

    def test_empty_registry_has_defined_shape(self):
        snapshot = Metrics().snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_insertion_order_does_not_change_snapshot(self):
        a, b = Metrics(), Metrics()
        a.inc("x")
        a.inc("y", 2)
        b.inc("y", 2)
        b.inc("x")
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )


class TestPrometheus:
    def _registry(self):
        m = Metrics()
        m.inc("events", 7)
        m.set_gauge("queue_depth", 3.5)
        m.observe("latency", 0.4, bounds=(1.0, 2.0))
        m.observe("latency", 1.5, bounds=(1.0, 2.0))
        m.observe("latency", 9.0, bounds=(1.0, 2.0))
        return m

    def test_every_line_parses(self):
        text = self._registry().to_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                assert line.split()[-1] in {"counter", "gauge", "histogram"}
            else:
                assert PROM_LINE.match(line), line

    def test_histogram_buckets_are_cumulative(self):
        text = self._registry().to_prometheus()
        assert 'repro_latency_bucket{le="1"} 1' in text
        assert 'repro_latency_bucket{le="2"} 2' in text
        assert 'repro_latency_bucket{le="+Inf"} 3' in text
        assert "repro_latency_sum 10.9" in text
        assert "repro_latency_count 3" in text

    def test_names_are_sanitized(self):
        m = Metrics()
        m.inc("weird-name.with/chars")
        text = m.to_prometheus()
        assert "repro_weird_name_with_chars 1" in text

    def test_byte_stable_across_insertion_order(self):
        a, b = Metrics(), Metrics()
        a.inc("x")
        a.set_gauge("g", 1)
        b.set_gauge("g", 1)
        b.inc("x")
        assert a.to_prometheus() == b.to_prometheus()

    def test_integral_floats_print_without_decimal(self):
        assert _prom_value(2.0) == "2"
        assert _prom_value(2.5) == "2.5"


class TestHistogramPrimitive:
    """The shared Histogram (also re-exported via repro.serving.telemetry)."""

    def test_empty_percentiles_and_moments_are_zero(self):
        h = Histogram(bounds=(1.0, 2.0))
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 0.0
        assert h.mean == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["p99"] == 0.0

    def test_percentile_clamped_to_observed_max(self):
        h = Histogram(bounds=(10.0,))
        h.observe(3.0)
        assert h.percentile(0.99) == 3.0
