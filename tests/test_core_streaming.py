"""Streaming blocked clustering: attach, compact, and the exactness contract."""

import pytest

from repro.clustering.cut import cut_by_height
from repro.clustering.linkage import Linkage, agglomerate
from repro.core.streaming import StreamingClusterer, StreamingConfig
from repro.distance.blocking import BlockingConfig
from repro.distance.engine import DistanceEngine
from repro.distance.packet import PacketDistance
from repro.errors import ClusteringError
from repro.simulation.corpus import mini_corpus

THRESHOLD = 1.2


def corpus_packets(seed: int, n: int = 90) -> list:
    corpus = mini_corpus(seed=seed, n_apps=30)
    suspicious, __ = corpus.payload_check().split(corpus.trace)
    assert len(suspicious) >= n
    return list(suspicious[:n])


def full_recluster(packets, linkage=Linkage.GROUP_AVERAGE) -> list[list[int]]:
    matrix = DistanceEngine(PacketDistance.paper()).matrix(packets)
    dendrogram = agglomerate(matrix, linkage)
    return sorted(
        (sorted(dendrogram.leaves(node)) for node in cut_by_height(dendrogram, THRESHOLD)),
        key=lambda cluster: cluster[0],
    )


def streamed(packets, *, linkage=Linkage.GROUP_AVERAGE, batch=30, workers=1,
             compact_every=2) -> StreamingClusterer:
    config = StreamingConfig(
        blocking=BlockingConfig(threshold=THRESHOLD),
        linkage=linkage,
        compact_every=compact_every,
    )
    metric = PacketDistance.paper()
    clusterer = StreamingClusterer(
        metric, config, engine=DistanceEngine(metric, workers=workers, chunk_pairs=64)
    )
    for start in range(0, len(packets), batch):
        clusterer.ingest(packets[start : start + batch])
    return clusterer


class TestConfig:
    def test_ward_is_rejected(self):
        with pytest.raises(ClusteringError):
            StreamingConfig(linkage=Linkage.WARD)

    def test_attach_exemplars_must_be_positive(self):
        with pytest.raises(ClusteringError):
            StreamingConfig(attach_exemplars=0)

    def test_negative_compact_cadence_rejected(self):
        with pytest.raises(ClusteringError):
            StreamingConfig(compact_every=-1)

    def test_zero_cadence_means_manual_compaction(self):
        assert StreamingConfig(compact_every=0).compact_every == 0


class TestExactness:
    """Attach-then-compact must equal a full recluster in exact mode."""

    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_streamed_partition_identical_to_full(self, seed):
        packets = corpus_packets(seed)
        clusterer = streamed(packets)
        clusterer.compact(full=True)
        assert clusterer.partition() == full_recluster(packets)

    @pytest.mark.parametrize("linkage", [Linkage.SINGLE, Linkage.COMPLETE])
    def test_holds_for_every_reducible_linkage(self, linkage):
        packets = corpus_packets(7)
        clusterer = streamed(packets, linkage=linkage)
        clusterer.compact(full=True)
        assert clusterer.partition() == full_recluster(packets, linkage)

    @pytest.mark.parametrize("batch", [15, 45])
    def test_batch_boundaries_do_not_matter(self, batch):
        packets = corpus_packets(3)
        clusterer = streamed(packets, batch=batch)
        clusterer.compact(full=True)
        assert clusterer.partition() == full_recluster(packets)


class TestDeterminism:
    def test_identical_across_worker_counts(self):
        packets = corpus_packets(7)
        serial = streamed(packets, workers=1)
        parallel = streamed(packets, workers=2)
        serial.compact(full=True)
        parallel.compact(full=True)
        assert serial.partition() == parallel.partition()
        assert serial.stats.pairs_evaluated == parallel.stats.pairs_evaluated

    def test_repeat_runs_are_identical(self):
        packets = corpus_packets(3)
        first = streamed(packets)
        second = streamed(packets)
        assert first.partition() == second.partition()
        assert first.stats.to_dict() == second.stats.to_dict()


class TestAttach:
    def test_partition_covers_every_item_exactly_once(self):
        packets = corpus_packets(3)
        clusterer = streamed(packets, compact_every=0)  # attach only
        seen = [item for cluster in clusterer.partition() for item in cluster]
        assert sorted(seen) == list(range(len(packets)))
        assert len(clusterer.clusters_of_items()) == len(packets)

    def test_attach_cost_is_bounded_by_probe_cap(self):
        packets = corpus_packets(3)
        clusterer = streamed(packets, compact_every=0)
        # Attach evaluates at most attach_exemplars pairs per candidate
        # cluster — far below the M-1 a naive incremental scheme needs.
        naive = sum(range(len(packets)))
        assert 0 < clusterer.stats.attach_pairs_evaluated < naive

    def test_attached_plus_new_clusters_accounts_for_items(self):
        packets = corpus_packets(7, n=60)
        clusterer = streamed(packets, compact_every=0)
        assert clusterer.stats.attached + clusterer.stats.new_clusters == len(packets)


class TestCompaction:
    def test_cadence_triggers_automatic_compaction(self):
        packets = corpus_packets(3, n=60)
        config = StreamingConfig(
            blocking=BlockingConfig(threshold=THRESHOLD), compact_every=2
        )
        clusterer = StreamingClusterer(PacketDistance.paper(), config)
        first = clusterer.ingest(packets[:30])
        second = clusterer.ingest(packets[30:])
        assert not first.compacted
        assert second.compacted
        assert clusterer.stats.compactions == 1

    def test_dirty_compaction_converges_to_full(self):
        packets = corpus_packets(3)
        clusterer = streamed(packets, compact_every=1)  # compact every batch
        # Every block is compacted as soon as it is dirtied, so the final
        # state needs no full pass to agree with the reference.
        assert clusterer.partition() == full_recluster(packets)

    def test_compaction_reuses_attach_pairs(self):
        packets = corpus_packets(3, n=60)
        clusterer = streamed(packets, compact_every=2)
        total = clusterer.stream.pairs_evaluated
        assert clusterer.stats.pairs_evaluated == total
        assert clusterer.stream.cache_hits > 0  # compaction hit attach probes

    def test_stats_serialize(self):
        packets = corpus_packets(3, n=60)
        clusterer = streamed(packets)
        data = clusterer.stats.to_dict()
        assert data["items"] == 60
        assert data["batches"] == 2
        assert (
            data["pairs_evaluated"]
            == data["attach_pairs_evaluated"] + data["compact_pairs_evaluated"]
        )
