"""The screening gateway: equivalence, shedding, backpressure, hot reload."""

import pytest

from repro.core.distribution import SignatureChannel
from repro.errors import SimulationError
from repro.serving.gateway import (
    GatewayConfig,
    ReloadEvent,
    ScreeningGateway,
    ServeOutcome,
    ShedPolicy,
)
from repro.serving.loadgen import FleetLoadGenerator, LoadProfile, ScreeningEvent
from repro.signatures.matcher import SignatureMatcher
from tests.conftest import make_packet
from tests.test_serving_shards import corpus_signatures


def reload_signatures(corpus):
    """A second, different signature set for hot-reload tests."""
    return list(reversed(corpus_signatures(corpus, limit=18)))


@pytest.fixture(scope="module")
def channel(small_corpus):
    """A channel with versions 1 and 2 published."""
    channel = SignatureChannel()
    channel.publish(corpus_signatures(small_corpus))
    channel.publish(reload_signatures(small_corpus))
    return channel


def run_gateway(corpus, channel, *, batch_size, n_shards, seed=0, n_events=300,
                mean_interarrival=0.5, queue_capacity=64, policy=ShedPolicy.DEGRADE,
                reload_fraction=0.5, with_reload=True):
    """One gateway run with a mid-stream reload; returns (gateway, results, stream)."""
    profile = LoadProfile(mean_interarrival_ticks=mean_interarrival)
    stream = FleetLoadGenerator(corpus, profile, seed=seed).events(n_events)
    boot = channel.envelope(1)
    reloads = []
    if with_reload:
        reloads = [ReloadEvent(tick=stream[int(len(stream) * reload_fraction)].tick,
                               envelope=channel.envelope(2))]
    gateway = ScreeningGateway(
        list(boot.signatures),
        config=GatewayConfig(
            batch_size=batch_size,
            n_shards=n_shards,
            queue_capacity=queue_capacity,
            shed_policy=policy,
        ),
        set_version=boot.set_version,
    )
    results = gateway.run(stream, reloads=reloads)
    return gateway, results, stream


class TestBitIdenticalDecisions:
    """Acceptance: equivalence at >= 2 shard counts and >= 2 batch sizes."""

    @pytest.mark.parametrize("n_shards", [1, 3])
    @pytest.mark.parametrize("batch_size", [1, 4, 8])
    def test_matches_sequential_matcher(self, small_corpus, channel, n_shards, batch_size):
        reference = {
            version: SignatureMatcher(list(channel.envelope(version).signatures))
            for version in (1, 2)
        }
        gateway, results, stream = run_gateway(
            small_corpus, channel, batch_size=batch_size, n_shards=n_shards
        )
        assert len(results) == len(stream)
        assert [r.event.seq for r in results] == [e.seq for e in stream]
        screened = [r for r in results if r.screened]
        assert screened, "scenario must actually screen traffic"
        for result in screened:
            expected = reference[result.set_version].match(result.event.packet)
            assert expected == result.match
        assert {r.set_version for r in screened} == {1, 2}  # reload really happened

    def test_shard_count_never_changes_anything(self, small_corpus, channel):
        # Sharding is pure partitioning: with batching and the reload held
        # fixed, even generations and latencies are identical across counts.
        baseline = None
        for n_shards in (1, 2, 5):
            __, results, __stream = run_gateway(
                small_corpus, channel, batch_size=4, n_shards=n_shards
            )
            verdicts = [(r.event.seq, r.outcome, r.match, r.generation, r.completed_tick)
                        for r in results]
            if baseline is None:
                baseline = verdicts
            else:
                assert verdicts == baseline

    def test_batch_size_never_changes_verdicts(self, small_corpus, channel):
        # Batching changes *when* packets are screened (and hence how a
        # reload lands), so compare pure verdicts on a fixed signature set.
        # arrivals slower than batch_size=1's worst-case cost, so nothing sheds
        baseline = None
        for batch_size in (1, 4, 8):
            __, results, __stream = run_gateway(
                small_corpus, channel, batch_size=batch_size, n_shards=2,
                with_reload=False, mean_interarrival=2.0,
            )
            assert all(r.screened for r in results)
            verdicts = [(r.event.seq, r.outcome, r.match) for r in results if r.screened]
            if baseline is None:
                baseline = verdicts
            else:
                assert verdicts == baseline


class TestSheddingAndBackpressure:
    def overload(self, corpus, channel, policy):
        return run_gateway(
            corpus, channel,
            batch_size=4, n_shards=2, queue_capacity=4,
            mean_interarrival=0.05, n_events=400, policy=policy,
        )

    def test_overload_sheds(self, small_corpus, channel):
        gateway, results, __ = self.overload(small_corpus, channel, ShedPolicy.DEGRADE)
        shed = [r for r in results if not r.screened]
        assert shed
        assert gateway.telemetry.counters["shed"] == len(shed)
        assert gateway.telemetry.counters["admitted"] == len(results) - len(shed)

    def test_degrade_policy_uses_keyword_fallback(self, small_corpus, channel):
        __, results, __stream = self.overload(small_corpus, channel, ShedPolicy.DEGRADE)
        shed_outcomes = {r.outcome for r in results if not r.screened}
        assert shed_outcomes <= {
            ServeOutcome.SHED_DEGRADED_CLEAN, ServeOutcome.SHED_DEGRADED_FLAGGED
        }
        assert ServeOutcome.SHED_DEGRADED_FLAGGED in shed_outcomes  # corpus leaks identifiers

    def test_drop_policy_marks_unscreened(self, small_corpus, channel):
        __, results, __stream = self.overload(small_corpus, channel, ShedPolicy.DROP)
        shed = [r for r in results if not r.screened]
        assert shed and all(r.outcome is ServeOutcome.SHED_DROPPED for r in shed)
        assert all(r.batch_id == -1 and r.latency_ticks == 0.0 for r in shed)

    def test_batches_respect_size_bound(self, small_corpus, channel):
        gateway, __, __stream = self.overload(small_corpus, channel, ShedPolicy.DEGRADE)
        sizes = [span["size"] for span in gateway.telemetry.spans_of("batch")]
        assert sizes and max(sizes) <= 4
        # under sustained overload the queue keeps batches full
        assert sizes.count(4) > len(sizes) // 2

    def test_latency_grows_under_load(self, small_corpus, channel):
        __, calm, __a = run_gateway(
            small_corpus, channel, batch_size=4, n_shards=2, mean_interarrival=2.0
        )
        # same arrivals, 10x the rate, deep queue: waiting dominates
        __, hot, __b = run_gateway(
            small_corpus, channel, batch_size=4, n_shards=2,
            mean_interarrival=0.2, queue_capacity=256,
        )
        mean = lambda rs: sum(r.latency_ticks for r in rs) / len(rs)  # noqa: E731
        calm_screened = [r for r in calm if r.screened]
        hot_screened = [r for r in hot if r.screened]
        assert mean(hot_screened) > 2 * mean(calm_screened)


class TestHotReload:
    def test_generation_swap_mid_stream(self, small_corpus, channel):
        gateway, results, __ = run_gateway(
            small_corpus, channel, batch_size=8, n_shards=2
        )
        assert gateway.generation == 2 and gateway.set_version == 2
        generations = {r.generation for r in results}
        assert generations == {1, 2}

    def test_stale_reload_rejected(self, small_corpus, channel):
        boot = channel.envelope(2)
        gateway = ScreeningGateway(list(boot.signatures), set_version=boot.set_version)
        stream = FleetLoadGenerator(small_corpus, seed=1).events(40)
        stale = [ReloadEvent(tick=stream[10].tick, envelope=channel.envelope(1))]
        gateway.run(stream, reloads=stale)
        assert gateway.set_version == 2 and gateway.generation == 1
        assert gateway.telemetry.counters["reloads_rejected"] == 1
        assert gateway.telemetry.counters.get("reloads_applied", 0) == 0

    def test_reload_after_last_batch_still_applies(self, small_corpus, channel):
        boot = channel.envelope(1)
        gateway = ScreeningGateway(list(boot.signatures), set_version=1)
        stream = FleetLoadGenerator(small_corpus, seed=2).events(20)
        late = [ReloadEvent(tick=stream[-1].tick + 1000.0, envelope=channel.envelope(2))]
        results = gateway.run(stream, reloads=late)
        assert all(r.generation == 1 for r in results)
        assert gateway.set_version == 2  # ready for the next run()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6])
    def test_property_no_batch_mixes_generations_and_no_regression(
        self, small_corpus, channel, seed
    ):
        """Satellite: mid-stream update_signatures never mixes generations
        within one batch and never regresses to an older version."""
        gateway, results, stream = run_gateway(
            small_corpus, channel,
            batch_size=5, n_shards=3, seed=seed,
            mean_interarrival=0.2, queue_capacity=16,
            reload_fraction=0.25 + 0.1 * (seed % 5),
        )
        # every batch carries exactly one generation, for spans and results
        by_batch = {}
        for result in results:
            if result.batch_id >= 0:
                by_batch.setdefault(result.batch_id, set()).add(
                    (result.generation, result.set_version)
                )
        assert by_batch and all(len(gens) == 1 for gens in by_batch.values())
        spans = gateway.telemetry.spans_of("batch")
        assert all(len({s["generation"] for s in spans if s["batch_id"] == b}) == 1
                   for b in by_batch)
        # generations never decrease in dispatch order, and versions track them
        ordered = sorted(spans, key=lambda s: s["started"])
        generations = [s["generation"] for s in ordered]
        versions = [s["set_version"] for s in ordered]
        assert generations == sorted(generations)
        assert versions == sorted(versions)
        # batches dispatched before an applied reload keep the old generation
        for reload_span in gateway.telemetry.spans_of("reload"):
            for span in ordered:
                if span["started"] < reload_span["tick"]:
                    assert span["generation"] < reload_span["generation"]
                else:
                    assert span["generation"] >= reload_span["generation"]


class TestValidationAndTelemetry:
    def test_rejects_unordered_stream(self, small_corpus, channel):
        stream = FleetLoadGenerator(small_corpus, seed=0).events(10)
        shuffled = [stream[1], stream[0], *stream[2:]]
        gateway = ScreeningGateway(list(channel.envelope(1).signatures))
        with pytest.raises(SimulationError):
            gateway.run(shuffled)

    def test_rejects_bad_config(self):
        with pytest.raises(SimulationError):
            GatewayConfig(queue_capacity=0)
        with pytest.raises(SimulationError):
            GatewayConfig(batch_size=0)
        with pytest.raises(SimulationError):
            GatewayConfig(per_packet_ticks=-1.0)

    def test_decision_counters_sum_to_events(self, small_corpus, channel):
        gateway, results, stream = run_gateway(
            small_corpus, channel, batch_size=4, n_shards=2,
            mean_interarrival=0.1, queue_capacity=8,
        )
        counters = gateway.telemetry.counters
        decisions = sum(v for k, v in counters.items() if k.startswith("decisions_"))
        assert decisions == len(stream) == len(results)
        assert counters["admitted"] + counters["shed"] == len(stream)

    def test_single_packet_stream(self, channel):
        packet = make_packet(target="/p?x=1")
        event = ScreeningEvent(seq=0, tick=0.0, device_id="d", packet=packet)
        gateway = ScreeningGateway(list(channel.envelope(1).signatures))
        results = gateway.run([event])
        assert len(results) == 1 and results[0].screened


class TestHealthSnapshot:
    def test_fresh_gateway_snapshot(self, channel):
        gateway = ScreeningGateway(list(channel.envelope(1).signatures))
        snapshot = gateway.health_snapshot()
        assert snapshot["generation"] == 1
        assert snapshot["set_version"] == 1
        assert snapshot["n_signatures"] == len(channel.envelope(1).signatures)
        assert snapshot["admitted"] == 0 and snapshot["shed"] == 0
        assert snapshot["degraded"] is False

    def test_snapshot_consistent_with_counters_under_load(self, small_corpus, channel):
        gateway, results, stream = run_gateway(
            small_corpus, channel, batch_size=4, n_shards=2,
            mean_interarrival=0.1, queue_capacity=8,
        )
        snapshot = gateway.health_snapshot()
        counters = gateway.telemetry.counters
        assert snapshot["admitted"] == counters["admitted"]
        assert snapshot["shed"] == counters["shed"]
        assert snapshot["admitted"] + snapshot["shed"] == len(stream)
        assert snapshot["generation"] == gateway.generation == 2
        assert snapshot["set_version"] == 2
        assert snapshot["reloads_applied"] == 1
        assert snapshot["queue_depth_max"] <= 8
        assert snapshot["queue_depth_p50"] <= snapshot["queue_depth_max"]

    def test_degraded_flag_tracks_shed_policy(self, small_corpus, channel):
        gateway, results, __ = run_gateway(
            small_corpus, channel, batch_size=4, n_shards=2,
            mean_interarrival=0.05, queue_capacity=4,
            policy=ShedPolicy.DEGRADE, with_reload=False,
        )
        snapshot = gateway.health_snapshot()
        assert snapshot["shed"] > 0
        assert snapshot["degraded"] is True
        assert snapshot["shed_degraded"] == snapshot["shed"]
        assert snapshot["shed_dropped"] == 0

    def test_dropped_not_flagged_degraded(self, small_corpus, channel):
        gateway, results, __ = run_gateway(
            small_corpus, channel, batch_size=4, n_shards=2,
            mean_interarrival=0.05, queue_capacity=4,
            policy=ShedPolicy.DROP, with_reload=False,
        )
        snapshot = gateway.health_snapshot()
        assert snapshot["shed"] > 0
        assert snapshot["shed_dropped"] == snapshot["shed"]
        assert snapshot["degraded"] is False

    def test_snapshot_is_stable_and_json_safe(self, small_corpus, channel):
        import json as json_module

        gateway, __, __s = run_gateway(
            small_corpus, channel, batch_size=4, n_shards=2,
            mean_interarrival=0.1, queue_capacity=8,
        )
        first = gateway.health_snapshot()
        second = gateway.health_snapshot()
        assert first == second  # reading health must not mutate state
        json_module.dumps(first)  # and it must serialize as-is
