"""Trace container and JSONL persistence."""

import pytest

from repro.dataset.trace import Trace
from repro.errors import DatasetError
from tests.conftest import make_packet


def build_trace():
    return Trace(
        [
            make_packet(host="a.one.com", app_id="app1", target="/x?a=1"),
            make_packet(host="b.one.com", app_id="app1", target="/y?b=2"),
            make_packet(host="c.two.net", app_id="app2", target="/z?c=3", cookie="s=1"),
        ]
    )


class TestContainer:
    def test_len_iter_getitem(self):
        trace = build_trace()
        assert len(trace) == 3
        assert trace[0].host == "a.one.com"
        assert [p.app_id for p in trace] == ["app1", "app1", "app2"]

    def test_append_extend(self):
        trace = Trace()
        trace.append(make_packet())
        trace.extend([make_packet(), make_packet()])
        assert len(trace) == 3

    def test_filter(self):
        trace = build_trace()
        filtered = trace.filter(lambda p: p.app_id == "app1")
        assert len(filtered) == 2
        assert isinstance(filtered, Trace)

    def test_by_app(self):
        groups = build_trace().by_app()
        assert set(groups) == {"app1", "app2"}
        assert len(groups["app1"]) == 2

    def test_by_domain(self):
        groups = build_trace().by_domain()
        assert set(groups) == {"one.com", "two.net"}
        assert len(groups["one.com"]) == 2

    def test_apps_hosts(self):
        trace = build_trace()
        assert trace.apps() == {"app1", "app2"}
        assert trace.hosts() == {"a.one.com", "b.one.com", "c.two.net"}


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        again = Trace.load_jsonl(path)
        assert len(again) == len(trace)
        for original, loaded in zip(trace, again):
            assert loaded.host == original.host
            assert loaded.request.target == original.request.target
            assert loaded.cookie == original.cookie

    def test_load_skips_blank_lines(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(Trace.load_jsonl(path)) == 3

    def test_load_reports_bad_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ip": "1.2.3.4"}\n')
        with pytest.raises(DatasetError, match="line 1"):
            Trace.load_jsonl(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(DatasetError):
            Trace.load_jsonl(path)

    def test_concatenated_files_loadable(self, tmp_path):
        """Two saved traces concatenated with cat-like append still load."""
        a, b = tmp_path / "a.jsonl", tmp_path / "combined.jsonl"
        build_trace().save_jsonl(a)
        b.write_text(a.read_text() + a.read_text())
        assert len(Trace.load_jsonl(b)) == 6


class TestGzip:
    def test_gzip_roundtrip(self, tmp_path):
        trace = build_trace()
        path = tmp_path / "trace.jsonl.gz"
        trace.save_jsonl(path)
        import gzip

        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("{")
        again = Trace.load_jsonl(path)
        assert len(again) == len(trace)

    def test_gzip_smaller_than_plain(self, tmp_path):
        trace = Trace([make_packet(target=f"/x?i={i}") for i in range(200)])
        plain = tmp_path / "t.jsonl"
        packed = tmp_path / "t.jsonl.gz"
        trace.save_jsonl(plain)
        trace.save_jsonl(packed)
        assert packed.stat().st_size < plain.stat().st_size / 2
