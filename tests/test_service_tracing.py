"""Tracing, access logs, and health over the live service socket.

The contracts under test here:

- a ``traceparent`` request header propagates into the server's route
  span tree; a malformed one is ignored, never rejected;
- tracing adds **zero bytes** to responses — a traced service answers
  byte-identically to an untraced one;
- ``/metrics`` serves the Prometheus exposition content type and carries
  the ``service_request_ms`` histogram series (fed by request
  accounting, not just registered);
- ``/healthz`` exposes the restart-detection pair: a seed-derived
  ``run_id`` that survives restarts and an ``uptime_ticks`` that resets
  with the process.
"""

import http.client
import json
import time

import pytest

from repro.obs.context import TraceContext
from repro.service.server import ServiceConfig, ServiceServer, SignatureService
from repro.service.wire import encode_event
from repro.serving.loadgen import ScreeningEvent
from repro.signatures.conjunction import ConjunctionSignature
from repro.simulation.rng import derive_rng


def boot_signatures():
    return [
        ConjunctionSignature(tokens=("udid=abc", "seq="), scope_domain="admob.com"),
        ConjunctionSignature(tokens=("imei=1234",), label="IMEI"),
    ]


def events_from(small_corpus, n=6, seed=5):
    rng = derive_rng(seed, "tracing-test")
    packets = small_corpus.trace.packets
    return [
        ScreeningEvent(
            seq=i,
            tick=float(i),
            device_id="trace-device",
            packet=packets[rng.randrange(len(packets))],
        )
        for i in range(n)
    ]


@pytest.fixture()
def traced(tmp_path):
    """A live tracing-enabled service writing an access log."""
    access_log = tmp_path / "access_log.jsonl"
    service = SignatureService(
        boot_signatures(),
        db_path=str(tmp_path / "service.sqlite3"),
        config=ServiceConfig(tracing=True, access_log_path=str(access_log)),
    )
    server = ServiceServer(service)
    host, port = server.start()

    def request(method, path, body=None, headers=None):
        # The span closes (and the access log is written) *after* the
        # response bytes reach the client, on the handler thread — wait
        # for the request to be accounted so assertions are race-free.
        before = service._requests_observed
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            sent = dict(headers or {})
            if body is not None:
                sent.setdefault("Content-Type", "application/json")
            connection.request(method, path, body=body, headers=sent)
            response = connection.getresponse()
            result = response.status, response.read(), dict(response.getheaders())
        finally:
            connection.close()
        deadline = time.monotonic() + 5.0
        while service._requests_observed <= before:
            assert time.monotonic() < deadline, "request never accounted"
            time.sleep(0.002)
        return result

    yield service, request, access_log
    server.stop()
    service.close_access_log()
    if service.store is not None:
        service.store.close()


CONTEXT = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)


class TestPropagation:
    def test_traceparent_continues_into_route_span(self, traced):
        service, request, __log = traced
        status, __b, __h = request(
            "GET", "/v1/signatures", headers={"traceparent": CONTEXT.to_traceparent()}
        )
        assert status == 200
        (route,) = service.request_tracer.spans_named("fetch")
        assert route.trace_id == CONTEXT.trace_id
        assert route.parent_span_id == CONTEXT.span_id
        assert route.attrs["status"] == 200
        # the repository read nests under the route span, same trace
        (child,) = service.request_tracer.spans_named("repository_read")
        assert child.trace_id == CONTEXT.trace_id
        assert child.parent_span_id == route.span_id

    def test_malformed_traceparent_is_ignored_not_rejected(self, traced):
        service, request, __log = traced
        status, __b, __h = request(
            "GET", "/v1/signatures", headers={"traceparent": "garbage-header"}
        )
        assert status == 200
        (route,) = service.request_tracer.spans_named("fetch")
        assert route.trace_id != CONTEXT.trace_id
        assert route.parent_span_id is None

    def test_screen_span_tree_carries_gateway_attrs(self, traced, small_corpus):
        service, request, __log = traced
        body = json.dumps(
            {"events": [encode_event(e) for e in events_from(small_corpus)]}
        ).encode()
        status, __b, __h = request(
            "POST", "/v1/screen", body,
            headers={"traceparent": CONTEXT.to_traceparent()},
        )
        assert status == 200
        (route,) = service.request_tracer.spans_named("screen")
        (gateway_span,) = service.request_tracer.spans_named("gateway_screen")
        assert gateway_span.trace_id == CONTEXT.trace_id
        assert gateway_span.parent_span_id == route.span_id
        assert gateway_span.attrs["n_events"] == 6
        assert gateway_span.attrs["set_version"] == 1

    def test_tracing_adds_no_response_headers(self, traced):
        __s, request, __log = traced
        __status, __b, headers = request(
            "GET", "/v1/signatures", headers={"traceparent": CONTEXT.to_traceparent()}
        )
        assert not any(name.lower().startswith("trace") for name in headers)


class TestByteIdentity:
    def test_traced_and_untraced_responses_identical(self, tmp_path, small_corpus):
        """Tracing on vs off: every response body and status matches."""
        screen_body = json.dumps(
            {"events": [encode_event(e) for e in events_from(small_corpus)]}
        ).encode()
        requests = [
            ("GET", "/v1/signatures", None),
            ("POST", "/v1/screen", screen_body),
            ("GET", "/v1/signatures?since=1", None),
            ("GET", "/healthz", None),
        ]

        def run(tracing):
            service = SignatureService(
                boot_signatures(),
                db_path=str(tmp_path / f"svc_{tracing}.sqlite3"),
                config=ServiceConfig(tracing=tracing),
            )
            server = ServiceServer(service)
            host, port = server.start()
            out = []
            try:
                for n, (method, path, body) in enumerate(requests):
                    connection = http.client.HTTPConnection(host, port, timeout=10.0)
                    headers = {"traceparent": CONTEXT.to_traceparent()}
                    if body is not None:
                        headers["Content-Type"] = "application/json"
                    connection.request(method, path, body=body, headers=headers)
                    response = connection.getresponse()
                    out.append((response.status, response.read()))
                    connection.close()
                    deadline = time.monotonic() + 5.0
                    while service._requests_observed <= n:  # healthz reads this
                        assert time.monotonic() < deadline
                        time.sleep(0.002)
            finally:
                server.stop()
                if service.store is not None:
                    service.store.close()
            return out

        assert run(tracing=True) == run(tracing=False)


class TestMetricsEndpoint:
    def test_prometheus_content_type(self, traced):
        __s, request, __log = traced
        __status, __b, headers = request("GET", "/metrics")
        assert headers["Content-Type"] == "text/plain; version=0.0.4"

    def test_request_histogram_series_present_and_fed(self, traced):
        __s, request, __log = traced
        request("GET", "/v1/signatures")
        request("GET", "/healthz")
        status, body, __h = request("GET", "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_service_request_ms_bucket")
        ]
        assert bucket_lines, "histogram buckets missing from exposition"
        assert bucket_lines[-1].startswith('repro_service_request_ms_bucket{le="+Inf"}')
        count = next(
            line for line in text.splitlines()
            if line.startswith("repro_service_request_ms_count")
        )
        assert int(count.split()[-1]) >= 2  # the fetch and healthz above
        assert any(
            line.startswith("repro_service_request_ms_sum") for line in text.splitlines()
        )


class TestHealthz:
    def test_run_id_stable_and_uptime_climbs_under_load(self, traced):
        __s, request, __log = traced
        seen = []
        for _ in range(5):
            request("GET", "/v1/signatures")
            __status, body, __h = request("GET", "/healthz")
            health = json.loads(body)["service"]
            seen.append((health["run_id"], health["uptime_ticks"]))
        run_ids = {run_id for run_id, _ in seen}
        assert len(run_ids) == 1  # one process, one identity
        ticks = [t for _, t in seen]
        assert ticks == sorted(ticks)
        assert ticks[-1] > ticks[0]

    def test_restart_resets_uptime_but_keeps_run_id(self, tmp_path):
        db = str(tmp_path / "svc.sqlite3")

        def boot_and_probe():
            service = SignatureService(
                boot_signatures(), db_path=db, config=ServiceConfig(seed=7)
            )
            server = ServiceServer(service)
            host, port = server.start()
            try:
                for _ in range(3):
                    connection = http.client.HTTPConnection(host, port, timeout=10.0)
                    connection.request("GET", "/v1/signatures")
                    connection.getresponse().read()
                    connection.close()
                deadline = time.monotonic() + 5.0
                while service._requests_observed < 3:
                    assert time.monotonic() < deadline
                    time.sleep(0.002)
                connection = http.client.HTTPConnection(host, port, timeout=10.0)
                connection.request("GET", "/healthz")
                payload = json.loads(connection.getresponse().read())["service"]
                connection.close()
            finally:
                server.stop()
                if service.store is not None:
                    service.store.close()
            return payload

        first = boot_and_probe()
        second = boot_and_probe()
        assert first["run_id"] == second["run_id"]  # seed-derived, survives
        assert first["uptime_ticks"] == second["uptime_ticks"] == 3
        # a restarted process starts counting from zero — detectable even
        # though the identity is unchanged


class TestAccessLog:
    def test_jsonl_lines_carry_route_status_ms_trace(self, traced):
        __s, request, access_log = traced
        request(
            "GET", "/v1/signatures", headers={"traceparent": CONTEXT.to_traceparent()}
        )
        request("GET", "/healthz")
        lines = [
            json.loads(line) for line in access_log.read_text().splitlines() if line
        ]
        assert [line["kind"] for line in lines] == ["access", "access"]
        fetch, health = lines
        assert fetch["route"] == "fetch"
        assert fetch["status"] == 200
        assert fetch["trace_id"] == CONTEXT.trace_id
        assert fetch["ms"] >= 0.0
        assert health["route"] == "healthz"
        # no traceparent sent: the route span roots a fresh server-side
        # trace, so the logged id is real but not the client's
        assert health["trace_id"] is not None
        assert health["trace_id"] != CONTEXT.trace_id

    def test_disabled_by_default(self, tmp_path):
        service = SignatureService(boot_signatures(), config=ServiceConfig())
        record = service.observe_request("fetch", 200, 1.0)
        assert record["kind"] == "access"
        assert service._access_log is None
