"""Binder reference monitor: grants, denials, and auditing."""

import pytest

from repro.android.binder import Binder
from repro.android.permissions import (
    ACCESS_FINE_LOCATION,
    INTERNET,
    Manifest,
    READ_PHONE_STATE,
)
from repro.errors import PermissionDenied


def manifest(*perms):
    return Manifest(package="jp.test.app", permissions=frozenset(perms))


class TestChecks:
    def test_phone_state_resources_gated(self):
        binder = Binder()
        with_perm = manifest(INTERNET, READ_PHONE_STATE)
        without = manifest(INTERNET)
        for resource in ("imei", "imsi", "sim_serial", "carrier"):
            assert binder.check(with_perm, resource)
            assert not binder.check(without, resource)

    def test_android_id_free(self):
        binder = Binder()
        assert binder.check(manifest(), "android_id")

    def test_location_gated(self):
        binder = Binder()
        assert binder.check(manifest(ACCESS_FINE_LOCATION), "location")
        assert not binder.check(manifest(INTERNET), "location")

    def test_network_gated_by_internet(self):
        binder = Binder()
        assert binder.check(manifest(INTERNET), "network")
        assert not binder.check(manifest(), "network")

    def test_unknown_resource_raises(self):
        binder = Binder()
        with pytest.raises(PermissionDenied):
            binder.check(manifest(INTERNET), "teleportation")


class TestRequire:
    def test_require_passes_silently(self):
        Binder().require(manifest(INTERNET, READ_PHONE_STATE), "imei")

    def test_require_raises_with_context(self):
        with pytest.raises(PermissionDenied) as exc_info:
            Binder().require(manifest(INTERNET), "imei")
        assert exc_info.value.app == "jp.test.app"
        assert "READ_PHONE_STATE" in exc_info.value.permission


class TestAudit:
    def test_audit_records_all_checks(self):
        binder = Binder(audit=True)
        binder.check(manifest(INTERNET, READ_PHONE_STATE), "imei")
        binder.check(manifest(INTERNET), "imei")
        assert len(binder.log) == 2
        assert binder.log[0].granted
        assert not binder.log[1].granted

    def test_denials_filter(self):
        binder = Binder(audit=True)
        binder.check(manifest(INTERNET), "imei")
        binder.check(manifest(INTERNET), "android_id")
        denials = binder.denials()
        assert len(denials) == 1
        assert denials[0].resource == "imei"

    def test_no_audit_by_default(self):
        binder = Binder()
        binder.check(manifest(INTERNET), "imei")
        assert binder.log == []
