"""Signature set JSON persistence."""

import json

import pytest

from repro.errors import SignatureError
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore


def sigs():
    return [
        ConjunctionSignature(tokens=("udid=abc", "seq="), scope_domain="admob.com"),
        ConjunctionSignature(tokens=("imei=1234",), label="IMEI"),
    ]


class TestRoundtrip:
    def test_dumps_loads(self):
        text = SignatureStore.dumps(sigs())
        again = SignatureStore.loads(text)
        assert again == sigs()

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "signatures.json"
        SignatureStore.save(sigs(), path)
        assert SignatureStore.load(path) == sigs()

    def test_dumps_is_stable(self):
        assert SignatureStore.dumps(sigs()) == SignatureStore.dumps(sigs())

    def test_empty_set(self):
        assert SignatureStore.loads(SignatureStore.dumps([])) == []


class TestValidation:
    def test_rejects_invalid_json(self):
        with pytest.raises(SignatureError):
            SignatureStore.loads("{not json")

    def test_rejects_non_object(self):
        with pytest.raises(SignatureError):
            SignatureStore.loads("[1, 2]")

    def test_rejects_wrong_version(self):
        document = json.loads(SignatureStore.dumps(sigs()))
        document["format_version"] = 99
        with pytest.raises(SignatureError):
            SignatureStore.loads(json.dumps(document))

    def test_rejects_count_mismatch(self):
        document = json.loads(SignatureStore.dumps(sigs()))
        document["count"] = 5
        with pytest.raises(SignatureError):
            SignatureStore.loads(json.dumps(document))

    def test_rejects_missing_signatures_key(self):
        with pytest.raises(SignatureError):
            SignatureStore.loads(json.dumps({"format_version": 1, "count": 0}))
