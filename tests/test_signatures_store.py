"""Signature set JSON persistence."""

import json

import pytest

from repro.errors import SignatureError
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore


def sigs():
    return [
        ConjunctionSignature(tokens=("udid=abc", "seq="), scope_domain="admob.com"),
        ConjunctionSignature(tokens=("imei=1234",), label="IMEI"),
    ]


class TestRoundtrip:
    def test_dumps_loads(self):
        text = SignatureStore.dumps(sigs())
        again = SignatureStore.loads(text)
        assert again == sigs()

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "signatures.json"
        SignatureStore.save(sigs(), path)
        assert SignatureStore.load(path) == sigs()

    def test_dumps_is_stable(self):
        assert SignatureStore.dumps(sigs()) == SignatureStore.dumps(sigs())

    def test_empty_set(self):
        assert SignatureStore.loads(SignatureStore.dumps([])) == []


class TestValidation:
    def test_rejects_invalid_json(self):
        with pytest.raises(SignatureError):
            SignatureStore.loads("{not json")

    def test_rejects_non_object(self):
        with pytest.raises(SignatureError):
            SignatureStore.loads("[1, 2]")

    def test_rejects_wrong_version(self):
        document = json.loads(SignatureStore.dumps(sigs()))
        document["format_version"] = 99
        with pytest.raises(SignatureError):
            SignatureStore.loads(json.dumps(document))

    def test_rejects_count_mismatch(self):
        document = json.loads(SignatureStore.dumps(sigs()))
        document["count"] = 5
        with pytest.raises(SignatureError):
            SignatureStore.loads(json.dumps(document))

    def test_rejects_missing_signatures_key(self):
        with pytest.raises(SignatureError):
            SignatureStore.loads(json.dumps({"format_version": 1, "count": 0}))


class TestTypedErrors:
    """All decode/validation failures surface as SignatureStoreError."""

    def test_invalid_json_is_store_error(self):
        from repro.errors import SignatureStoreError

        with pytest.raises(SignatureStoreError):
            SignatureStore.loads("{not json")

    def test_malformed_record_is_store_error_not_keyerror(self):
        from repro.errors import SignatureStoreError

        document = json.loads(SignatureStore.dumps(sigs()))
        document["signatures"][0] = {"no_tokens_key": True}
        with pytest.raises(SignatureStoreError):
            SignatureStore.loads(json.dumps(document))

    def test_non_dict_record_is_store_error(self):
        from repro.errors import SignatureStoreError

        document = json.loads(SignatureStore.dumps(sigs()))
        document["signatures"][1] = "not-a-dict"
        with pytest.raises(SignatureStoreError):
            SignatureStore.loads(json.dumps(document))

    def test_store_error_is_a_signature_error(self):
        from repro.errors import SignatureStoreError

        assert issubclass(SignatureStoreError, SignatureError)


class TestEnvelope:
    def test_roundtrip_preserves_set_and_version(self):
        from repro.signatures.store import SignatureStore as Store

        text = Store.dumps_envelope(sigs(), set_version=7)
        envelope = Store.loads_envelope(text)
        assert envelope.set_version == 7
        assert list(envelope.signatures) == sigs()

    def test_checksum_is_stable(self):
        assert SignatureStore.dumps_envelope(sigs(), 1) == SignatureStore.dumps_envelope(sigs(), 1)

    def test_bit_flip_fails_checksum(self):
        from repro.errors import SignatureStoreError

        text = SignatureStore.dumps_envelope(sigs(), 1)
        position = text.index("udid")
        mangled = text[:position] + "Xdid" + text[position + 4:]
        with pytest.raises(SignatureStoreError):
            SignatureStore.loads_envelope(mangled)

    def test_truncation_rejected(self):
        from repro.errors import SignatureStoreError

        text = SignatureStore.dumps_envelope(sigs(), 1)
        with pytest.raises(SignatureStoreError):
            SignatureStore.loads_envelope(text[: len(text) // 2])

    def test_plain_document_rejected_by_envelope_loader(self):
        from repro.errors import SignatureStoreError

        with pytest.raises(SignatureStoreError):
            SignatureStore.loads_envelope(SignatureStore.dumps(sigs()))

    def test_envelope_rejected_by_plain_loader(self):
        from repro.errors import SignatureStoreError

        with pytest.raises(SignatureStoreError):
            SignatureStore.loads(SignatureStore.dumps_envelope(sigs(), 1))

    def test_tampered_version_rejected(self):
        from repro.errors import SignatureStoreError

        document = json.loads(SignatureStore.dumps_envelope(sigs(), 1))
        document["set_version"] = 0
        with pytest.raises(SignatureStoreError):
            SignatureStore.loads_envelope(json.dumps(document))

    def test_count_mismatch_rejected(self):
        from repro.errors import SignatureStoreError

        document = json.loads(SignatureStore.dumps_envelope(sigs(), 1))
        document["count"] = 9
        with pytest.raises(SignatureStoreError):
            SignatureStore.loads_envelope(json.dumps(document))

    def test_empty_set_envelope_roundtrips(self):
        envelope = SignatureStore.loads_envelope(SignatureStore.dumps_envelope([], 1))
        assert envelope.signatures == ()
