"""The checkpointed staged pipeline: crash, resume, bit-identity.

The acceptance invariant lives here: a resumed run re-executes only
stages downstream of the last checkpoint (asserted via obs span counts)
and its outputs are byte-identical to an uninterrupted run.
"""

import pytest

from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.errors import SignatureError
from repro.obs import Observability
from repro.reliability.workerfaults import WorkerFaultPlan
from repro.signatures.store import SignatureStore
from repro.supervision import (
    PIPELINE_STAGES,
    CheckpointStore,
    CrashPlan,
    InjectedCrash,
    StagedPipeline,
    config_fingerprint,
)

N_SAMPLE = 24
SEED = 3


@pytest.fixture(scope="module")
def labeler(small_corpus):
    return small_corpus.payload_check()


@pytest.fixture(scope="module")
def baseline(small_corpus, labeler):
    result = DetectionPipeline(small_corpus.trace, labeler).run(N_SAMPLE, seed=SEED)
    return SignatureStore.dumps(result.signatures), result.metrics


class TestStagedRun:
    def test_matches_plain_pipeline(self, small_corpus, labeler, baseline):
        result = StagedPipeline(small_corpus.trace, labeler).run(N_SAMPLE, seed=SEED)
        assert SignatureStore.dumps(result.signatures) == baseline[0]
        assert result.metrics == baseline[1]
        assert result.stages_executed == list(PIPELINE_STAGES)
        assert result.stages_replayed == []

    def test_second_run_replays_everything(self, small_corpus, labeler):
        pipeline = StagedPipeline(small_corpus.trace, labeler)
        first = pipeline.run(N_SAMPLE, seed=SEED)
        second = pipeline.run(N_SAMPLE, seed=SEED)
        assert second.stages_executed == []
        assert second.stages_replayed == list(PIPELINE_STAGES)
        assert SignatureStore.dumps(second.signatures) == SignatureStore.dumps(
            first.signatures
        )

    def test_different_seed_misses_checkpoints(self, small_corpus, labeler):
        pipeline = StagedPipeline(small_corpus.trace, labeler)
        pipeline.run(N_SAMPLE, seed=SEED)
        other = pipeline.run(N_SAMPLE, seed=SEED + 1)
        assert other.stages_executed == list(PIPELINE_STAGES)

    def test_rejects_bad_sample_size(self, small_corpus, labeler):
        with pytest.raises(SignatureError):
            StagedPipeline(small_corpus.trace, labeler).run(0)


class TestCrashAndResume:
    @pytest.mark.parametrize("crash_stage", ["payload_check", "distance_matrix", "cut"])
    def test_resume_equals_uninterrupted(self, small_corpus, labeler, baseline, crash_stage):
        store = CheckpointStore()
        pipeline = StagedPipeline(
            small_corpus.trace,
            labeler,
            store=store,
            crash_plan=CrashPlan.after(crash_stage),
        )
        with pytest.raises(InjectedCrash) as exc:
            pipeline.run(N_SAMPLE, seed=SEED)
        assert exc.value.stage == crash_stage
        # the crashed stage's own output made it into the journal
        assert store.stages[-1] == crash_stage
        result = pipeline.resume(N_SAMPLE, seed=SEED)
        assert SignatureStore.dumps(result.signatures) == baseline[0]
        assert result.metrics == baseline[1]

    def test_resume_recomputes_only_downstream(self, small_corpus, labeler):
        # The span-count assertion from the acceptance criteria: after a
        # crash past distance_matrix, resume must not re-open spans for
        # any completed stage — each stage span appears exactly once
        # across both attempts.
        obs = Observability.create(seed=SEED)
        pipeline = StagedPipeline(
            small_corpus.trace,
            labeler,
            crash_plan=CrashPlan.after("distance_matrix"),
            obs=obs,
        )
        with pytest.raises(InjectedCrash):
            pipeline.run(N_SAMPLE, seed=SEED)
        result = pipeline.resume(N_SAMPLE, seed=SEED)
        assert result.stages_replayed == ["collect", "payload_check", "sample", "distance_matrix"]
        assert result.stages_executed == ["linkage", "cut", "signature_gen"]
        for stage in PIPELINE_STAGES:
            assert len(obs.tracer.spans_named(stage)) == 1, f"{stage} ran twice"
        assert obs.counter("pipeline_stage_executed") == len(PIPELINE_STAGES)
        assert obs.counter("pipeline_stage_replayed") == 4
        assert obs.counter("pipeline_injected_crashes") == 1

    def test_cross_instance_resume_via_shared_store(self, small_corpus, labeler, baseline):
        store = CheckpointStore()
        crashy = StagedPipeline(
            small_corpus.trace, labeler, store=store, crash_plan=CrashPlan.after("sample")
        )
        with pytest.raises(InjectedCrash):
            crashy.run(N_SAMPLE, seed=SEED)
        fresh = StagedPipeline(small_corpus.trace, labeler, store=store)
        result = fresh.resume(N_SAMPLE, seed=SEED)
        assert result.stages_replayed == ["collect", "payload_check", "sample"]
        assert SignatureStore.dumps(result.signatures) == baseline[0]

    def test_disk_backed_resume_across_store_objects(
        self, small_corpus, labeler, baseline, tmp_path
    ):
        crashy = StagedPipeline(
            small_corpus.trace,
            labeler,
            store=CheckpointStore(root=tmp_path),
            crash_plan=CrashPlan.after("linkage"),
        )
        with pytest.raises(InjectedCrash):
            crashy.run(N_SAMPLE, seed=SEED)
        # a brand-new store object replays journal.jsonl from disk
        fresh = StagedPipeline(
            small_corpus.trace, labeler, store=CheckpointStore(root=tmp_path)
        )
        result = fresh.resume(N_SAMPLE, seed=SEED)
        assert result.stages_executed == ["cut", "signature_gen"]
        assert SignatureStore.dumps(result.signatures) == baseline[0]


class TestComposition:
    def test_worker_faults_inside_checkpointed_run(self, small_corpus, labeler, baseline):
        pipeline = StagedPipeline(
            small_corpus.trace,
            labeler,
            crash_plan=CrashPlan.after("distance_matrix"),
            fault_plan=WorkerFaultPlan.uniform(0.5, seed=7),
            chunk_pairs=16,
        )
        with pytest.raises(InjectedCrash):
            pipeline.run(N_SAMPLE, seed=SEED)
        result = pipeline.resume(N_SAMPLE, seed=SEED)
        assert SignatureStore.dumps(result.signatures) == baseline[0]
        assert result.engine_stats is not None
        assert result.engine_stats.recovered

    def test_detection_pipeline_supervised_hook(self, small_corpus, labeler, baseline):
        plain = DetectionPipeline(small_corpus.trace, labeler, PipelineConfig())
        staged = plain.supervised()
        assert isinstance(staged, StagedPipeline)
        result = staged.run(N_SAMPLE, seed=SEED)
        assert SignatureStore.dumps(result.signatures) == baseline[0]

    def test_fingerprint_excludes_workers(self, small_corpus):
        serial = config_fingerprint(PipelineConfig(workers=1), N_SAMPLE)
        pooled = config_fingerprint(PipelineConfig(workers=4), N_SAMPLE)
        assert serial == pooled  # worker count never changes outputs
        assert config_fingerprint(PipelineConfig(), N_SAMPLE + 1) != serial
