"""The ad/analytics catalog: wire-format fidelity per network."""

from random import Random

import pytest

from repro.android.admodules import (
    AD_SERVICES,
    ADMAKER,
    ADMOB,
    FLURRY,
    MICROAD,
    ZQAPK,
    build_ad_services,
)
from repro.android.app import Application
from repro.android.device import Device
from repro.android.permissions import INTERNET, Manifest, READ_PHONE_STATE
from repro.android.services import Service


@pytest.fixture
def device():
    return Device.generate(Random(21))


def app_with_phone():
    m = Manifest(package="jp.test.leaky", permissions=frozenset({INTERNET, READ_PHONE_STATE}))
    return Application(package="jp.test.leaky", manifest=m)


def app_plain():
    m = Manifest(package="jp.test.plain", permissions=frozenset({INTERNET}))
    return Application(package="jp.test.plain", manifest=m)


def session(spec, app, device, n=40, seed=0):
    return Service(spec).session_packets(app, device, Random(seed), n)


class TestCatalog:
    def test_all_services_instantiate(self):
        services = build_ad_services()
        assert len(services) == len(AD_SERVICES)

    def test_names_unique(self):
        names = [spec.name for spec in AD_SERVICES]
        assert len(names) == len(set(names))

    def test_hosts_unique_across_catalog(self):
        hosts = [h for spec in AD_SERVICES for h in spec.hosts]
        assert len(hosts) == len(set(hosts))

    def test_adoption_targets_positive(self):
        assert all(spec.adoption_target > 0 for spec in AD_SERVICES)


class TestAdmob:
    def test_hashed_android_id_in_ad_requests(self, device):
        import hashlib

        digest = hashlib.md5(device.identity.android_id.encode()).hexdigest()
        packets = session(ADMOB, app_plain(), device)
        leaking = [p for p in packets if digest in p.canonical_text()]
        assert len(leaking) > len(packets) // 2

    def test_never_sends_plain_android_id(self, device):
        packets = session(ADMOB, app_plain(), device)
        for p in packets:
            assert device.identity.android_id not in p.canonical_text()

    def test_spans_google_domains(self, device):
        packets = session(ADMOB, app_plain(), device, n=60)
        domains = {p.destination.registered_domain for p in packets}
        assert "doubleclick.net" in domains
        assert "admob.com" in domains

    def test_google_family_ips_share_prefix(self):
        from repro.net.ipv4 import common_prefix_length

        admob = Service(ADMOB)
        ips = [admob.ip_for(h) for h in ADMOB.hosts]
        assert all(common_prefix_length(ips[0], ip) >= 16 for ip in ips[1:])


class TestAdmaker:
    def test_sends_imei_and_android_id_with_permission(self, device):
        packets = session(ADMAKER, app_with_phone(), device)
        text = "\n".join(p.canonical_text() for p in packets)
        assert device.identity.imei in text
        assert device.identity.android_id in text

    def test_omits_imei_without_permission(self, device):
        packets = session(ADMAKER, app_plain(), device)
        text = "\n".join(p.canonical_text() for p in packets)
        assert device.identity.imei not in text
        assert device.identity.android_id in text  # no permission needed


class TestMicroad:
    def test_android_id_travels_in_cookie(self, device):
        packets = session(MICROAD, app_plain(), device, n=30)
        cookie_leaks = [p for p in packets if device.identity.android_id in p.cookie]
        assert cookie_leaks


class TestFlurry:
    def test_posts_form_body(self, device):
        packets = session(FLURRY, app_with_phone(), device, n=10)
        assert all(p.request.method == "POST" for p in packets)
        assert all(p.body for p in packets)

    def test_carrier_reported_with_permission(self, device):
        packets = session(FLURRY, app_with_phone(), device, n=30)
        text = "\n".join(p.canonical_text() for p in packets)
        assert device.identity.carrier.replace(" ", "+") in text or device.identity.carrier in text


class TestZqapk:
    def test_full_identifier_harvest(self, device):
        packets = session(ZQAPK, app_with_phone(), device, n=40)
        text = "\n".join(p.canonical_text() for p in packets)
        assert device.identity.imei in text
        assert device.identity.sim_serial in text
        assert device.identity.imsi in text

    def test_harvest_blocked_without_permission(self, device):
        packets = session(ZQAPK, app_plain(), device, n=40)
        text = "\n".join(p.canonical_text() for p in packets)
        assert device.identity.imei not in text
        assert device.identity.sim_serial not in text
