"""HttpRequest model: header access, the paper's three content fields."""

import pytest

from repro.errors import HttpParseError
from repro.http.message import HttpRequest


def make(method="GET", target="/p?a=1", headers=None, body=b""):
    return HttpRequest(
        method=method,
        target=target,
        headers=headers if headers is not None else [("Host", "h.example.com")],
        body=body,
    )


class TestConstruction:
    def test_method_uppercased(self):
        assert make(method="get").method == "GET"

    def test_unknown_method_rejected(self):
        with pytest.raises(HttpParseError):
            make(method="BREW")

    def test_empty_target_rejected(self):
        with pytest.raises(HttpParseError):
            make(target="")


class TestHeaders:
    def test_case_insensitive_lookup(self):
        req = make(headers=[("HOST", "h"), ("X-One", "1")])
        assert req.header("host") == "h"
        assert req.header("x-one") == "1"

    def test_missing_header_default(self):
        assert make().header("X-Missing") == ""
        assert make().header("X-Missing", "d") == "d"

    def test_header_all(self):
        req = make(headers=[("X", "1"), ("x", "2")])
        assert req.header_all("X") == ["1", "2"]

    def test_has_header(self):
        assert make().has_header("host")
        assert not make().has_header("cookie")

    def test_set_header_replaces_first(self):
        req = make(headers=[("X", "1"), ("X", "2")])
        req.set_header("x", "9")
        assert req.header_all("X") == ["9", "2"]

    def test_set_header_appends_when_missing(self):
        req = make()
        req.set_header("X-New", "v")
        assert req.header("X-New") == "v"


class TestContentFields:
    def test_request_line(self):
        assert make().request_line == "GET /p?a=1 HTTP/1.1"

    def test_cookie_field(self):
        req = make(headers=[("Host", "h"), ("Cookie", "sid=1")])
        assert req.cookie == "sid=1"

    def test_cookie_absent_is_empty(self):
        assert make().cookie == ""

    def test_content_text_contains_all_fields(self):
        req = make(headers=[("Host", "h"), ("Cookie", "sid=1")], body=b"x=2")
        text = req.content_text()
        assert "GET /p?a=1 HTTP/1.1" in text
        assert "sid=1" in text
        assert "x=2" in text


class TestViews:
    def test_host(self):
        assert make().host == "h.example.com"

    def test_path_and_query(self):
        req = make(target="/a/b?k=v&k2=v2")
        assert req.path == "/a/b"
        assert req.query.get("k") == "v"
        assert req.query.get("k2") == "v2"

    def test_form_requires_content_type(self):
        req = make(body=b"a=1&b=2")
        assert len(req.form()) == 0

    def test_form_parses_urlencoded(self):
        req = make(
            headers=[("Host", "h"), ("Content-Type", "application/x-www-form-urlencoded")],
            body=b"a=1&b=two+words",
        )
        assert req.form().get("b") == "two words"

    def test_copy_is_independent(self):
        req = make()
        clone = req.copy()
        clone.set_header("X", "1")
        assert not req.has_header("X")
        assert clone.has_header("X")
