"""Population sampling: Table I mix, adoption, structure."""

import pytest

from repro.android.market import (
    PERMISSION_ROWS,
    REFERENCE_APP_COUNT,
    AppMarket,
    MarketConfig,
)
from repro.android.permissions import table1_counts
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def population():
    return AppMarket(MarketConfig(n_apps=240), seed=5).build()


class TestPermissionMix:
    def test_full_scale_matches_table1_exactly(self):
        from repro.android.permissions import internet_only_count

        apps = AppMarket(MarketConfig(n_apps=REFERENCE_APP_COUNT), seed=1).build()
        counts = table1_counts([a.manifest for a in apps])
        # Strict "only INTERNET" (the paper's 302) plus the benign-extra
        # apps occupy the same four-flag row.
        assert internet_only_count([a.manifest for a in apps]) == 302
        extras = REFERENCE_APP_COUNT - sum(c for __, c in PERMISSION_ROWS)
        assert counts[(True, False, False, False)] == 302 + extras
        assert counts[(True, True, False, False)] == 329
        assert counts[(True, True, True, False)] == 153
        assert counts[(True, False, True, False)] == 148
        assert counts[(True, True, True, True)] == 23

    def test_dangerous_fraction_near_61_percent(self):
        apps = AppMarket(MarketConfig(n_apps=REFERENCE_APP_COUNT), seed=1).build()
        dangerous = sum(1 for a in apps if a.manifest.is_dangerous_combination)
        assert dangerous / len(apps) == pytest.approx(0.61, abs=0.01)

    def test_all_apps_have_internet(self, population):
        assert all(a.manifest.has_internet for a in population)

    def test_scaled_mix_proportional(self, population):
        counts = table1_counts([a.manifest for a in population])
        scale = 240 / REFERENCE_APP_COUNT
        assert counts[(True, True, False, False)] == pytest.approx(329 * scale, abs=2)


class TestStructure:
    def test_population_size(self, population):
        assert len(population) == 240

    def test_unique_packages(self, population):
        packages = [a.package for a in population]
        assert len(packages) == len(set(packages))

    def test_manifest_package_matches_app(self, population):
        assert all(a.manifest.package == a.package for a in population)

    def test_loners_have_single_host(self, population):
        loners = [
            a for a in population
            if not a.services and not a.browser_services and len(a.own_services) == 1
        ]
        single_host_loners = [a for a in loners if len(a.destination_hosts()) == 1]
        assert single_host_loners  # some loner apps exist

    def test_browser_app_has_many_sites(self, population):
        browser_apps = [a for a in population if a.browser_services]
        assert len(browser_apps) == 1
        assert len(browser_apps[0].browser_services) >= 60

    def test_adoption_counts_scale(self, population):
        from repro.android.admodules import ADMOB

        adopters = [a for a in population if any(s.name == "admob" for s in a.services)]
        expected = ADMOB.adoption_target * 240 / REFERENCE_APP_COUNT
        assert len(adopters) == pytest.approx(expected, abs=2)

    def test_phone_biased_services_prefer_phone_apps(self, population):
        adopters = [a for a in population if any(s.name == "admaker" for s in a.services)]
        assert adopters
        with_phone = sum(
            1 for a in adopters
            if any(p.name == "READ_PHONE_STATE" for p in a.manifest.permissions)
        )
        # Population base rate is ~27%; the bias should push well above it.
        assert with_phone / len(adopters) > 0.45

    def test_deterministic(self):
        a = AppMarket(MarketConfig(n_apps=50), seed=3).build()
        b = AppMarket(MarketConfig(n_apps=50), seed=3).build()
        assert [x.package for x in a] == [x.package for x in b]
        assert [len(x.services) for x in a] == [len(x.services) for x in b]

    def test_seeds_differ(self):
        a = AppMarket(MarketConfig(n_apps=50), seed=3).build()
        b = AppMarket(MarketConfig(n_apps=50), seed=4).build()
        assert [len(x.services) for x in a] != [len(x.services) for x in b]


class TestConfigValidation:
    def test_zero_apps_rejected(self):
        with pytest.raises(SimulationError):
            MarketConfig(n_apps=0)

    def test_bad_loner_fraction_rejected(self):
        with pytest.raises(SimulationError):
            MarketConfig(loner_fraction=1.5)
