"""The perf bench harness and its budget gates."""

import json

from repro.eval.perf import PerfBudget, PerfReport, run_perf_bench


def make_report(**overrides) -> PerfReport:
    """A healthy synthetic report; overrides inject specific failures."""
    values = dict(
        n_apps=40,
        m=24,
        n_pairs=276,
        workers=2,
        cpu_count=8,
        seed=7,
        matrix_naive_s=2.0,
        matrix_serial_s=0.4,
        matrix_parallel_s=0.15,
        linkage_s=0.05,
        screen_s=0.1,
        screened_packets=500,
        n_signatures=6,
        identical=True,
        engine_stats={"pair_hit_rate": 0.8},
    )
    values.update(overrides)
    return PerfReport(**values)


class TestPerfBudget:
    def test_healthy_report_passes(self):
        assert PerfBudget().violations(make_report()) == []

    def test_divergence_always_fails(self):
        budget = PerfBudget(
            min_parallel_speedup=None, min_engine_speedup=None, min_pair_hit_rate=None
        )
        violations = budget.violations(make_report(identical=False))
        assert any("diverges" in v for v in violations)

    def test_parallel_floor_enforced_when_cpus_allow(self):
        report = make_report(matrix_parallel_s=0.35, cpu_count=8)
        assert any("parallel speedup" in v for v in PerfBudget().violations(report))

    def test_parallel_floor_waived_without_cpus(self):
        report = make_report(matrix_parallel_s=0.5, cpu_count=1)
        assert not any("parallel speedup" in v for v in PerfBudget().violations(report))

    def test_engine_floor(self):
        report = make_report(matrix_naive_s=0.41)
        assert any("engine speedup" in v for v in PerfBudget().violations(report))

    def test_hit_rate_floor(self):
        report = make_report(engine_stats={"pair_hit_rate": 0.1})
        assert any("hit rate" in v for v in PerfBudget().violations(report))

    def test_wall_clock_ceiling(self):
        budget = PerfBudget(max_matrix_seconds=0.1)
        assert any("budget" in v for v in budget.violations(make_report()))


class TestPerfReport:
    def test_speedups(self):
        report = make_report()
        assert report.parallel_speedup == 0.4 / 0.15
        assert report.engine_speedup == 5.0
        assert report.ok

    def test_json_round_trip(self, tmp_path):
        report = make_report()
        path = report.save(tmp_path / "BENCH_perf.json")
        data = json.loads(path.read_text())
        assert data["bench"] == "perf"
        assert data["identical"] is True
        assert data["speedup"]["engine_vs_naive"] == 5.0
        assert data["cpu_count"] == 8
        assert data["ok"] is True

    def test_render_mentions_gates(self):
        text = make_report().render()
        assert "matrices identical" in text
        assert "budget: ok" in text
        failing = make_report(identical=False)
        failing.violations = PerfBudget().violations(failing)
        assert "BUDGET VIOLATIONS" in failing.render()


class TestRunPerfBench:
    def test_smoke_run_is_correct_and_complete(self, tmp_path):
        budget = PerfBudget(
            min_parallel_speedup=None, min_engine_speedup=None, min_pair_hit_rate=None
        )
        report = run_perf_bench(
            n_apps=30, sample=16, workers=2, seed=3, screen_packets=300, budget=budget
        )
        assert report.identical
        assert report.m == 16
        assert report.n_pairs == 120
        assert report.n_signatures > 0
        assert report.violations == []
        data = report.to_dict()
        assert data["cache"]["mode"] == "packet"
        assert data["timings_s"]["matrix_parallel"] > 0
