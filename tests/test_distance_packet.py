"""The combined d_pkt metric and its ablation factories."""

import pytest

from repro.distance.packet import PacketDistance
from repro.errors import DistanceError
from tests.conftest import make_packet


class TestPaperMetric:
    def test_max_distance(self):
        assert PacketDistance.paper().max_distance == 6.0

    def test_identical_packets_near_zero(self):
        p = make_packet(target="/ad?u=abcdef123456", body=b"k=v&l=w")
        q = make_packet(target="/ad?u=abcdef123456", body=b"k=v&l=w")
        assert PacketDistance.paper().distance(p, q) < 1.0

    def test_same_module_closer_than_cross_module(self):
        metric = PacketDistance.paper()
        a1 = make_packet(
            host="api.ad-maker.info", ip="219.94.128.7",
            target="/api/v2/imp?sid=tok1&imei=358537041234567&aid=aabbccdd11223344",
        )
        a2 = make_packet(
            host="api.ad-maker.info", ip="219.94.128.7",
            target="/api/v2/imp?sid=tok2&imei=358537041234567&aid=aabbccdd11223344",
        )
        other = make_packet(
            host="m.naver.jp", ip="125.209.222.10", target="/matome/feed?page=3&fmt=json",
        )
        assert metric.distance(a1, a2) < metric.distance(a1, other)

    def test_symmetry(self):
        metric = PacketDistance.paper()
        p = make_packet(target="/x?a=1", body=b"one")
        q = make_packet(host="other.net", ip="200.1.1.1", target="/y?b=2", body=b"two")
        assert metric.distance(p, q) == pytest.approx(metric.distance(q, p), abs=0.1)

    def test_callable(self):
        metric = PacketDistance.paper()
        p, q = make_packet(), make_packet()
        assert metric(p, q) == metric.distance(p, q)


class TestAblations:
    def test_destination_only_ignores_content(self):
        metric = PacketDistance.destination_only()
        p = make_packet(target="/completely?different=1", body=b"AAAA")
        q = make_packet(target="/other/path", body=b"ZZZZ")
        assert metric.distance(p, q) == 0.0  # same destination
        assert metric.max_distance == 3.0

    def test_content_only_ignores_destination(self):
        metric = PacketDistance.content_only()
        p = make_packet(host="a.one.com", ip="1.1.1.1", target="/same?x=1")
        q = make_packet(host="z.two.net", ip="200.2.2.2", target="/same?x=1")
        dest_metric = PacketDistance.destination_only()
        assert metric.distance(p, q) < dest_metric.distance(p, q)

    def test_weights_scale(self):
        p = make_packet(target="/a?x=1")
        q = make_packet(host="other.net", ip="99.9.9.9", target="/b?y=2")
        base = PacketDistance.paper().distance(p, q)
        doubled = PacketDistance(destination_weight=2.0, content_weight=2.0).distance(p, q)
        assert doubled == pytest.approx(2 * base, rel=1e-9)

    def test_negative_weight_rejected(self):
        with pytest.raises(DistanceError):
            PacketDistance(destination_weight=-1.0)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(DistanceError):
            PacketDistance(destination_weight=0.0, content_weight=0.0)
