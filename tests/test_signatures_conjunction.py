"""Conjunction signature semantics."""

import pytest

from repro.errors import SignatureError
from repro.signatures.conjunction import ConjunctionSignature
from tests.conftest import make_packet


def sig(*tokens, scope=""):
    return ConjunctionSignature(tokens=tokens, scope_domain=scope)


class TestConstruction:
    def test_requires_tokens(self):
        with pytest.raises(SignatureError):
            ConjunctionSignature(tokens=())

    def test_rejects_empty_token(self):
        with pytest.raises(SignatureError):
            ConjunctionSignature(tokens=("ok", ""))

    def test_total_token_length(self):
        assert sig("abc", "de").total_token_length == 5


class TestTextMatching:
    def test_all_tokens_in_order(self):
        assert sig("alpha", "beta").matches_text("..alpha..beta..")

    def test_order_violation_fails(self):
        assert not sig("alpha", "beta").matches_text("beta..alpha")

    def test_missing_token_fails(self):
        assert not sig("alpha", "beta").matches_text("alpha only")

    def test_overlap_not_allowed(self):
        # Tokens must occupy disjoint, ordered regions.
        assert not sig("abcd", "cdef").matches_text("abcdef")
        assert sig("abcd", "cdef").matches_text("abcd..cdef")

    def test_token_hits_partial(self):
        s = sig("alpha", "beta", "gamma")
        assert s.token_hits("alpha beta") == 2
        assert s.token_hits("gamma") == 0  # order: alpha missing stops the scan
        assert s.token_hits("alpha beta gamma") == 3


class TestPacketMatching:
    def test_unscoped_matches_any_destination(self):
        s = sig("udid=abc")
        p = make_packet(host="x.anything.net", target="/p?udid=abc")
        assert s.matches(p)

    def test_scope_restricts_domain(self):
        s = sig("udid=abc", scope="admob.com")
        hit = make_packet(host="r.admob.com", target="/p?udid=abc")
        miss = make_packet(host="x.other.net", target="/p?udid=abc")
        assert s.matches(hit)
        assert not s.matches(miss)

    def test_scope_is_registered_domain(self):
        s = sig("udid=abc", scope="doubleclick.net")
        p = make_packet(host="googleads.g.doubleclick.net", target="/p?udid=abc")
        assert s.matches(p)

    def test_matches_cookie_and_body(self):
        s = sig("muid=ffff", "imei=1234567")
        p = make_packet(cookie="muid=ffff", body=b"imei=1234567")
        assert s.matches(p)


class TestSerialization:
    def test_roundtrip(self):
        s = ConjunctionSignature(
            tokens=("a=1x", "b=2y"), scope_domain="nend.net", source_cluster=7, label="AID"
        )
        again = ConjunctionSignature.from_dict(s.to_dict())
        assert again == s

    def test_from_dict_missing_tokens(self):
        with pytest.raises(SignatureError):
            ConjunctionSignature.from_dict({"scope_domain": "x.com"})

    def test_describe_readable(self):
        s = sig("averyveryverylongtokenvaluehere123", scope="admob.com")
        text = s.describe()
        assert "admob.com" in text
        assert "..." in text  # long token truncated
