"""Corpus builder: determinism and paper-shape calibration bands.

The bench files assert the full-scale numbers; these tests run on the
shared 60-app corpus plus a slightly larger one and check the *shape*
invariants that must hold at any scale.
"""

import pytest

from repro.dataset.stats import fanout_summary, sensitive_table
from repro.simulation.corpus import (
    PAPER_SENSITIVE_FRACTION,
    PAPER_TABLE2,
    PAPER_TABLE3,
    build_corpus,
    mini_corpus,
)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = mini_corpus(seed=3, n_apps=30)
        b = mini_corpus(seed=3, n_apps=30)
        assert len(a.trace) == len(b.trace)
        assert [p.request.target for p in a.trace] == [p.request.target for p in b.trace]
        assert a.device.identity == b.device.identity

    def test_different_seed_different_corpus(self):
        a = mini_corpus(seed=3, n_apps=30)
        b = mini_corpus(seed=4, n_apps=30)
        assert [p.request.target for p in a.trace] != [p.request.target for p in b.trace]


class TestShape:
    def test_every_app_sends_traffic(self, small_corpus):
        assert len(small_corpus.trace.apps()) == small_corpus.n_apps

    def test_sensitive_fraction_band(self, small_corpus, small_split):
        suspicious, __ = small_split
        fraction = len(suspicious) / len(small_corpus.trace)
        assert fraction == pytest.approx(PAPER_SENSITIVE_FRACTION, abs=0.08)

    def test_packet_volume_scales(self, small_corpus):
        per_app = len(small_corpus.trace) / small_corpus.n_apps
        # paper: 107859 / 1188 = 90.8 packets per app
        assert per_app == pytest.approx(90.8, rel=0.25)

    def test_fanout_mean_band(self, small_corpus):
        summary = fanout_summary(small_corpus.trace)
        assert summary.mean == pytest.approx(7.9, abs=2.0)

    def test_multi_destination_dominates(self, small_corpus):
        summary = fanout_summary(small_corpus.trace)
        # paper: 93% of apps connect to multiple destinations
        assert summary.single_fraction < 0.2

    def test_hashed_android_id_is_top_leak(self, small_corpus, small_split):
        check = small_corpus.payload_check()
        rows = {r.label: r.packets for r in sensitive_table(small_corpus.trace, check)}
        assert rows.get("ANDROID_ID MD5", 0) >= max(
            rows.get("IMSI", 0), rows.get("SIM_SERIAL", 0)
        )
        assert rows.get("ANDROID_ID", 0) > rows.get("SIM_SERIAL", 0)

    def test_ad_domains_receive_sensitive_traffic(self, small_corpus, small_split):
        suspicious, __ = small_split
        domains = {p.destination.registered_domain for p in suspicious}
        assert domains & {"ad-maker.info", "doubleclick.net", "admob.com", "nend.net"}

    def test_table2_domains_present(self, small_corpus):
        domains = {p.destination.registered_domain for p in small_corpus.trace}
        expected = set(PAPER_TABLE2)
        # At 5% scale the rarest services may miss a draw; most must appear.
        assert len(domains & expected) >= len(expected) * 0.7

    def test_table3_labels_covered_at_scale(self):
        corpus = build_corpus(n_apps=240, seed=2)
        check = corpus.payload_check()
        labels = {r.label for r in sensitive_table(corpus.trace, check)}
        assert labels >= set(PAPER_TABLE3) - {"IMSI", "SIM_SERIAL"}  # rarest may need full scale

    def test_payload_check_bound_to_device(self, small_corpus):
        check = small_corpus.payload_check()
        assert check.identity == small_corpus.device.identity
