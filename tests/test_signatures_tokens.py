"""Invariant-token extraction and boilerplate filtering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.signatures.tokens import (
    TokenFilter,
    common_substrings,
    invariant_tokens,
    ordered_in_all,
)


class TestCommonSubstrings:
    def test_two_texts(self):
        result = common_substrings(["x=1&udid=abcdef&t=9", "udid=abcdef&t=10&x=2"])
        assert "udid=abcdef&t=" in result

    def test_three_texts_intersection_shrinks(self):
        texts = [
            "a=1&udid=SECRET&b=2",
            "udid=SECRET&c=3",
            "zz&udid=SECRET",
        ]
        result = common_substrings(texts)
        assert any("udid=SECRET" in token for token in result)
        assert not any("a=1" in token for token in result)

    def test_single_text_returns_itself(self):
        assert common_substrings(["whole text"]) == ["whole text"]

    def test_empty_input(self):
        assert common_substrings([]) == []

    def test_nothing_in_common(self):
        assert common_substrings(["aaaa", "bbbb"]) == []

    def test_ordered_by_position_in_first(self):
        result = common_substrings(["AAA...BBB", "BBBxAAA"], min_length=3)
        assert result.index("AAA") < result.index("BBB")

    @given(st.lists(st.text(alphabet="ab=&12", min_size=1, max_size=20), min_size=2, max_size=4))
    def test_every_token_occurs_in_every_text(self, texts):
        for token in common_substrings(texts, min_length=2):
            assert all(token in text for text in texts)


class TestTokenFilter:
    def test_boilerplate_only_token_dropped(self):
        assert TokenFilter().clean("GET /") is None
        assert TokenFilter().clean(" HTTP/1.1") is None

    def test_boilerplate_edges_stripped(self):
        cleaned = TokenFilter().clean("GET /api/v2/imp?sid=")
        assert cleaned == "api/v2/imp?sid="

    def test_short_tokens_dropped(self):
        assert TokenFilter(min_length=5).clean("ab=c") is None

    def test_numeric_only_dropped(self):
        assert TokenFilter().clean("1330000000000") is None
        assert TokenFilter(reject_numeric_only=False).clean("1330000000") == "1330000000"

    def test_good_token_kept(self):
        assert TokenFilter().clean("udid=abc123def") == "udid=abc123def"

    def test_apply_dedupes_preserving_order(self):
        tokens = ["udid=abc123", "GET /", "udid=abc123", "carrier=docomo"]
        assert TokenFilter().apply(tokens) == ["udid=abc123", "carrier=docomo"]


class TestInvariantTokens:
    def test_extracts_identifier_token(self):
        texts = [
            "GET /ad?udid=deadbeef12345678&r=111 HTTP/1.1\n\n",
            "GET /ad?udid=deadbeef12345678&r=222 HTTP/1.1\n\n",
        ]
        tokens = invariant_tokens(texts)
        assert any("udid=deadbeef12345678" in t for t in tokens)

    def test_no_boilerplate_in_result(self):
        texts = ["GET /a?x=11111 HTTP/1.1\n\n", "GET /b?y=22222 HTTP/1.1\n\n"]
        tokens = invariant_tokens(texts)
        for token in tokens:
            assert "HTTP/1.1" not in token
            assert token != "GET /"

    def test_disjoint_texts_no_tokens(self):
        assert invariant_tokens(["aaaaaaaa", "bbbbbbbb"]) == []


class TestOrderedInAll:
    def test_keeps_in_order_tokens(self):
        texts = ["..alpha..beta..", "xxalphayybeta"]
        assert ordered_in_all(["alpha", "beta"], texts) == ["alpha", "beta"]

    def test_drops_order_violator(self):
        texts = ["alpha..beta", "beta..alpha"]
        kept = ordered_in_all(["alpha", "beta"], texts)
        assert kept == ["alpha"]

    def test_non_overlapping_requirement(self):
        # "aaa" twice needs 6 chars of 'a'; text two has only 4.
        kept = ordered_in_all(["aaa", "aaa"], ["aaaaaaaa", "aaaa"])
        assert kept == ["aaa"]

    def test_empty_tokens(self):
        assert ordered_in_all([], ["anything"]) == []
