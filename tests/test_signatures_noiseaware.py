"""Noise-aware (Hamsa-style) generation."""

import pytest

from repro.errors import SignatureError
from repro.signatures.noiseaware import NoiseAwareGenerator
from tests.conftest import make_packet


def normal_pool():
    return [make_packet(target=f"/feed?v=1&session=tok{i}&page={i}") for i in range(50)]


def leak_cluster():
    return [
        make_packet(
            host="ads.adnet.com",
            target=f"/feed?v=1&session=tok{i}&udid=deadbeef11223344",
        )
        for i in range(4)
    ]


class TestConstruction:
    def test_needs_normal_pool(self):
        with pytest.raises(SignatureError):
            NoiseAwareGenerator([])

    def test_budget_validated(self):
        with pytest.raises(SignatureError):
            NoiseAwareGenerator(normal_pool(), max_token_fp=1.5)


class TestTokenNoise:
    def test_ubiquitous_token_noise_one(self):
        generator = NoiseAwareGenerator(normal_pool())
        assert generator.token_noise("/feed?v=1&session=") == 1.0

    def test_absent_token_noise_zero(self):
        generator = NoiseAwareGenerator(normal_pool())
        assert generator.token_noise("udid=deadbeef11223344") == 0.0


class TestGeneration:
    def test_noisy_tokens_stripped(self):
        generator = NoiseAwareGenerator(normal_pool(), max_token_fp=0.01)
        signature = generator.signature_for_cluster(leak_cluster())
        assert signature is not None
        for token in signature.tokens:
            assert "/feed?v=1" not in token  # ubiquitous REST idiom removed
        assert any("udid=deadbeef11223344" in token for token in signature.tokens)

    def test_all_noisy_cluster_rejected(self):
        """A cluster whose only common content is HTTP boilerplate must
        produce nothing."""
        generator = NoiseAwareGenerator(normal_pool(), max_token_fp=0.01)
        # Session values share no substring with each other, so the only
        # cluster-common content is the ubiquitous REST idiom.
        cluster = [
            make_packet(target=f"/feed?v=1&session={value}")
            for value in ("qqqq11", "wwww22", "rrrr33")
        ]
        assert generator.signature_for_cluster(cluster) is None

    def test_quiet_signature_untouched(self):
        generator = NoiseAwareGenerator(normal_pool(), max_token_fp=0.01)
        from repro.signatures.generator import SignatureGenerator

        plain = SignatureGenerator().signature_for_cluster(leak_cluster())
        noise_aware = generator.signature_for_cluster(leak_cluster())
        # The leak token survives either way.
        assert any("udid=" in t for t in plain.tokens)
        assert any("udid=" in t for t in noise_aware.tokens)

    def test_generous_budget_keeps_everything(self):
        generator = NoiseAwareGenerator(normal_pool(), max_token_fp=1.0)
        from repro.signatures.generator import SignatureGenerator

        assert generator.signature_for_cluster(leak_cluster()) == SignatureGenerator(
        ).signature_for_cluster(leak_cluster())


class TestOnCorpus:
    def test_fixes_pathological_cut(self, small_corpus, small_split):
        """At the pathological 0.6 cut, plain generation admits a
        match-most signature; the noise budget removes it."""
        from repro.clustering.linkage import agglomerate
        from repro.dataset.split import sample_packets
        from repro.distance.matrix import distance_matrix
        from repro.distance.packet import PacketDistance
        from repro.signatures.generator import GeneratorConfig, SignatureGenerator
        from repro.signatures.matcher import SignatureMatcher

        suspicious, normal = small_split
        sample = sample_packets(suspicious, 80, seed=2)
        matrix = distance_matrix(sample, PacketDistance.paper())
        dendrogram = agglomerate(matrix)
        config = GeneratorConfig(cut_fraction=0.6)

        plain = SignatureGenerator(config).from_dendrogram(dendrogram, sample)
        noise_pool = sample_packets(normal, 400, seed=3)
        aware = NoiseAwareGenerator(noise_pool, max_token_fp=0.01, config=config)
        safe = aware.from_dendrogram(dendrogram, sample)

        normal_eval = list(normal)[:2000]
        fp = lambda sigs: sum(
            SignatureMatcher(sigs).is_sensitive(p) for p in normal_eval
        ) / len(normal_eval)
        assert fp(safe) <= fp(plain)
        assert fp(safe) < 0.05
