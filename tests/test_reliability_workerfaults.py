"""Seeded chunk-level worker fault injection (crash / hang / poison)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.reliability.workerfaults import ChunkFaultKind, WorkerFaultPlan


class TestWorkerFaultPlan:
    def test_outcome_is_pure_function_of_chunk_and_attempt(self):
        plan = WorkerFaultPlan(seed=3, crash=0.2, hang=0.2, poison=0.2)
        first = [plan.outcome(chunk, attempt) for chunk in range(20) for attempt in range(3)]
        again = [plan.outcome(chunk, attempt) for chunk in range(20) for attempt in range(3)]
        assert first == again

    def test_same_seed_same_plan(self):
        a = WorkerFaultPlan(seed=9, crash=0.3, hang=0.1, poison=0.1)
        b = WorkerFaultPlan(seed=9, crash=0.3, hang=0.1, poison=0.1)
        assert [a.outcome(c, 0) for c in range(50)] == [b.outcome(c, 0) for c in range(50)]

    def test_different_attempts_draw_independently(self):
        # A chunk that faults on attempt 0 need not fault on attempt 1 —
        # that independence is what makes retry effective.
        plan = WorkerFaultPlan(seed=1, crash=0.5)
        outcomes = {plan.outcome(chunk, attempt) for chunk in range(30) for attempt in range(4)}
        assert ChunkFaultKind.NONE in outcomes
        assert ChunkFaultKind.CRASH in outcomes

    def test_zero_rates_never_fault(self):
        plan = WorkerFaultPlan(seed=5)
        assert all(
            plan.outcome(chunk, attempt) is ChunkFaultKind.NONE
            for chunk in range(40)
            for attempt in range(3)
        )

    def test_rates_roughly_respected(self):
        plan = WorkerFaultPlan(seed=2, crash=0.5)
        n = 400
        crashes = sum(plan.outcome(chunk, 0) is ChunkFaultKind.CRASH for chunk in range(n))
        assert 0.35 * n <= crashes <= 0.65 * n

    def test_uniform_mixes_all_kinds(self):
        plan = WorkerFaultPlan.uniform(0.9, seed=4)
        kinds = {plan.outcome(chunk, 0) for chunk in range(200)}
        assert {ChunkFaultKind.CRASH, ChunkFaultKind.HANG, ChunkFaultKind.POISON} <= kinds
        assert plan.total_rate == pytest.approx(0.9)

    def test_corrupt_changes_values_but_stays_finite(self):
        plan = WorkerFaultPlan(seed=6, poison=1.0)
        values = np.linspace(0.0, 1.0, 32)
        mangled = plan.corrupt(values, chunk_index=0, attempt=0)
        assert mangled.shape == values.shape
        assert not np.array_equal(mangled, values)
        assert np.isfinite(mangled).all()
        # deterministic corruption: same (chunk, attempt) -> same bytes
        again = plan.corrupt(np.linspace(0.0, 1.0, 32), chunk_index=0, attempt=0)
        assert np.array_equal(mangled, again)

    def test_record_counts_by_kind(self):
        plan = WorkerFaultPlan(seed=0, crash=0.1)
        plan.record(ChunkFaultKind.CRASH)
        plan.record(ChunkFaultKind.CRASH)
        plan.record(ChunkFaultKind.POISON)
        plan.record(ChunkFaultKind.NONE)
        assert plan.faults_recorded == 3  # NONE is not a fault
        assert plan.counts[ChunkFaultKind.CRASH] == 2
        assert plan.counts[ChunkFaultKind.POISON] == 1
        assert plan.counts[ChunkFaultKind.NONE] == 1

    def test_rejects_bad_rates(self):
        with pytest.raises(SimulationError):
            WorkerFaultPlan(crash=-0.1)
        with pytest.raises(SimulationError):
            WorkerFaultPlan(crash=0.6, hang=0.6)
        with pytest.raises(SimulationError):
            WorkerFaultPlan(poison=1.5)
        with pytest.raises(SimulationError):
            WorkerFaultPlan(deadline_ticks=0)
