"""Edit distance: exact values, the banded variant, and metric properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.editdist import levenshtein, levenshtein_within, normalized_levenshtein

short_text = st.text(alphabet="abcdz.", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("admob.com", "amoad.com", 3),
            ("a", "b", 1),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_works_on_sequences(self):
        assert levenshtein([1, 2, 3], [1, 3]) == 1


class TestBanded:
    def test_within_cutoff_agrees_with_exact(self):
        assert levenshtein_within("kitten", "sitting", 3) == 3

    def test_exceeding_cutoff_returns_none(self):
        assert levenshtein_within("kitten", "sitting", 2) is None

    def test_length_gap_short_circuits(self):
        assert levenshtein_within("a", "abcdefgh", 3) is None

    def test_zero_cutoff(self):
        assert levenshtein_within("same", "same", 0) == 0
        assert levenshtein_within("same", "sane", 0) is None

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            levenshtein_within("a", "b", -1)

    @given(short_text, short_text, st.integers(0, 6))
    def test_matches_exact_within_band(self, a, b, cutoff):
        exact = levenshtein(a, b)
        banded = levenshtein_within(a, b, cutoff)
        if exact <= cutoff:
            assert banded == exact
        else:
            assert banded is None


class TestNormalized:
    def test_identical_is_zero(self):
        assert normalized_levenshtein("host.com", "host.com") == 0.0

    def test_empty_pair_is_zero(self):
        assert normalized_levenshtein("", "") == 0.0

    def test_disjoint_is_one(self):
        assert normalized_levenshtein("aaa", "bbb") == 1.0

    def test_paper_formula(self):
        # ed / max(len) exactly
        assert normalized_levenshtein("kitten", "sitting") == 3 / 7


@given(short_text, short_text)
def test_symmetry(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@given(short_text, short_text, short_text)
def test_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@given(short_text, short_text)
def test_bounds(a, b):
    d = levenshtein(a, b)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


@given(short_text, short_text)
def test_normalized_in_unit_interval(a, b):
    assert 0.0 <= normalized_levenshtein(a, b) <= 1.0
