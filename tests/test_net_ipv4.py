"""IPv4 parsing and prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net.ipv4 import ADDRESS_BITS, IPv4Address, common_prefix_length


class TestParsing:
    def test_parse_roundtrip(self):
        assert str(IPv4Address.parse("192.168.0.1")) == "192.168.0.1"

    def test_parse_value(self):
        assert IPv4Address.parse("0.0.0.1").value == 1
        assert IPv4Address.parse("255.255.255.255").value == 2**32 - 1

    def test_parse_leading_zeros_are_decimal(self):
        assert IPv4Address.parse("010.001.000.009") == IPv4Address.parse("10.1.0.9")

    def test_parse_strips_whitespace(self):
        assert IPv4Address.parse(" 10.0.0.1 ").value == IPv4Address.parse("10.0.0.1").value

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.-4", "1..2.3"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_from_octets(self):
        assert IPv4Address.from_octets(10, 0, 0, 1) == IPv4Address.parse("10.0.0.1")

    def test_from_octets_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address.from_octets(10, 0, 0, 256)

    def test_value_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(2**32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_octets_property(self):
        assert IPv4Address.parse("1.2.3.4").octets == (1, 2, 3, 4)

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.0") < IPv4Address.parse("2.0.0.0")

    def test_hashable(self):
        a = IPv4Address.parse("10.0.0.1")
        assert {a: 1}[IPv4Address.parse("10.0.0.1")] == 1

    def test_bits(self):
        assert IPv4Address.parse("128.0.0.0").bits() == "1" + "0" * 31


class TestPrefix:
    def test_identical_addresses_share_all_bits(self):
        a = IPv4Address.parse("10.20.30.40")
        assert common_prefix_length(a, a) == ADDRESS_BITS

    def test_first_bit_differs(self):
        a = IPv4Address.parse("0.0.0.0")
        b = IPv4Address.parse("128.0.0.0")
        assert common_prefix_length(a, b) == 0

    def test_same_slash_24(self):
        a = IPv4Address.parse("10.0.0.1")
        b = IPv4Address.parse("10.0.0.254")
        assert common_prefix_length(a, b) >= 24

    def test_known_value(self):
        a = IPv4Address.parse("10.0.0.1")  # ...0001
        b = IPv4Address.parse("10.0.0.2")  # ...0010
        assert common_prefix_length(a, b) == 30

    def test_symmetric(self):
        a = IPv4Address.parse("173.194.41.9")
        b = IPv4Address.parse("173.194.38.100")
        assert common_prefix_length(a, b) == common_prefix_length(b, a)

    def test_in_network(self):
        a = IPv4Address.parse("10.0.5.7")
        net = IPv4Address.parse("10.0.0.0")
        assert a.in_network(net, 16)
        assert not a.in_network(net, 24)
        assert a.in_network(net, 0)

    def test_in_network_rejects_bad_prefix(self):
        a = IPv4Address.parse("10.0.0.1")
        with pytest.raises(AddressError):
            a.in_network(a, 33)


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_prefix_length_matches_xor_definition(x, y):
    a, b = IPv4Address(x), IPv4Address(y)
    length = common_prefix_length(a, b)
    if x == y:
        assert length == 32
    else:
        # The first differing bit is exactly at position `length`.
        assert (x >> (32 - length)) == (y >> (32 - length))
        assert (x >> (31 - length)) != (y >> (31 - length))


@given(st.integers(0, 2**32 - 1))
def test_parse_str_roundtrip(value):
    a = IPv4Address(value)
    assert IPv4Address.parse(str(a)) == a
