"""Fig 4 sweep runner and the scaled-sweep helper."""

import pytest

from repro.eval.experiments import PAPER_SWEEP, run_fig4_sweep, scaled_sweep


class TestScaledSweep:
    def test_full_population_unscaled(self):
        assert scaled_sweep(24000) == PAPER_SWEEP

    def test_small_population_scaled_down(self):
        sizes = scaled_sweep(300)
        assert max(sizes) <= 180  # 60% of 300
        assert len(sizes) >= 3
        assert sizes == tuple(sorted(sizes))

    def test_tiny_population(self):
        sizes = scaled_sweep(10)
        assert max(sizes) <= 6
        assert min(sizes) >= 2


class TestFig4Sweep:
    @pytest.fixture(scope="class")
    def points(self, request):
        small_corpus = request.getfixturevalue("small_corpus")
        check = small_corpus.payload_check()
        sizes = scaled_sweep(len([p for p in small_corpus.trace if check.is_sensitive(p)]))
        return run_fig4_sweep(small_corpus.trace, check, sizes[:3], seed=5)

    def test_one_point_per_size(self, points):
        assert len(points) == 3

    def test_rates_in_percent_range(self, points):
        for point in points:
            assert 0.0 <= point.tp_percent <= 100.0
            assert 0.0 <= point.fn_percent <= 100.0
            assert 0.0 <= point.fp_percent <= 100.0

    def test_tp_fn_complementary(self, points):
        for point in points:
            assert point.tp_percent + point.fn_percent == pytest.approx(100.0, abs=1.0)

    def test_fp_stays_low(self, points):
        assert all(point.fp_percent < 10.0 for point in points)

    def test_signatures_generated(self, points):
        assert all(point.n_signatures > 0 for point in points)
