"""Edge cases and failure-injection across modules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http.message import HttpRequest
from repro.http.serializer import serialize_request
from tests.conftest import make_packet


class TestSerializerEdges:
    def test_no_content_length_update_when_disabled(self):
        request = HttpRequest(
            method="POST",
            target="/t",
            headers=[("Host", "h"), ("Content-Length", "999")],
            body=b"abc",
        )
        raw = serialize_request(request, update_content_length=False)
        assert b"Content-Length: 999" in raw

    def test_content_length_updated_by_default(self):
        request = HttpRequest(
            method="POST",
            target="/t",
            headers=[("Host", "h"), ("Content-Length", "999")],
            body=b"abc",
        )
        raw = serialize_request(request)
        assert b"Content-Length: 3" in raw

    def test_get_without_body_gets_no_content_length(self):
        request = HttpRequest(method="GET", target="/t", headers=[("Host", "h")])
        raw = serialize_request(request)
        assert b"Content-Length" not in raw

    def test_serialization_does_not_mutate_original(self):
        request = HttpRequest(
            method="POST", target="/t", headers=[("Host", "h")], body=b"abc"
        )
        serialize_request(request)
        assert not request.has_header("Content-Length")


class TestPayloadCheckShadowing:
    def test_encoded_spelling_not_double_counted(self, identity):
        """A value whose url-encoded form equals its plain form must yield
        one finding per occurrence, not one per spelling."""
        from repro.sensitive.payload_check import PayloadCheck
        from repro.sensitive.transforms import Transform

        check = PayloadCheck(identity)
        findings = [
            f
            for f in check.scan_text(f"x={identity.imei}")
            if f.transform is Transform.PLAIN and f.kind.value == "IMEI"
        ]
        assert len(findings) == 1


class TestServiceValueSources:
    def test_locale_and_timestamp(self):
        from random import Random

        from repro.android.app import Application
        from repro.android.device import Device
        from repro.android.permissions import INTERNET, Manifest
        from repro.android.services import Param, RequestTemplate, Service, ServiceSpec

        spec = ServiceSpec(
            name="svc",
            category="webapi",
            hosts=("api.svc.example",),
            ip_base="203.0.113.0",
            templates=(
                RequestTemplate(
                    name="t",
                    method="GET",
                    path="/p",
                    query=(Param("hl", "locale"), Param("ts", "timestamp")),
                ),
            ),
        )
        app = Application(
            package="jp.t.app",
            manifest=Manifest(package="jp.t.app", permissions=frozenset({INTERNET})),
        )
        device = Device.generate(Random(1))
        packet = Service(spec).session_packets(app, device, Random(2), 1)[0]
        assert packet.request.query.get("hl") == "ja_JP"
        assert packet.request.query.get("ts").startswith("13300")

    def test_unknown_value_source_rejected(self):
        from random import Random

        from repro.android.app import Application
        from repro.android.device import Device
        from repro.android.permissions import INTERNET, Manifest
        from repro.android.services import Param, RequestTemplate, Service, ServiceSpec
        from repro.errors import SimulationError

        spec = ServiceSpec(
            name="svc",
            category="webapi",
            hosts=("api.svc.example",),
            ip_base="203.0.113.0",
            templates=(
                RequestTemplate(
                    name="t", method="GET", path="/p", query=(Param("x", "teleport"),)
                ),
            ),
        )
        app = Application(
            package="jp.t.app",
            manifest=Manifest(package="jp.t.app", permissions=frozenset({INTERNET})),
        )
        device = Device.generate(Random(1))
        with pytest.raises(SimulationError):
            Service(spec).session_packets(app, device, Random(2), 1)


class TestOwnBackends:
    def test_own_backend_unique_per_app(self):
        from random import Random

        from repro.android.webapi import make_own_backend

        a = make_own_backend("jp.co.soft1.puzzle", Random(1))
        b = make_own_backend("jp.co.soft2.camera", Random(2))
        assert not (set(a.hosts) & set(b.hosts))

    def test_browser_service_single_host(self):
        from random import Random

        from repro.android.webapi import make_browser_service

        service = make_browser_service(7, Random(3))
        assert len(service.hosts) == 1
        assert service.category == "browser"


class TestIncrementalEdges:
    def test_consolidate_with_no_material_is_noop(self):
        from repro.core.incremental import IncrementalSignatureSet
        from repro.signatures.conjunction import ConjunctionSignature

        sig = ConjunctionSignature(tokens=("keepme=1",))
        incset = IncrementalSignatureSet([sig])
        assert incset.consolidate() == 1
        assert incset.signatures == [sig]

    def test_empty_batch(self):
        from repro.core.incremental import IncrementalSignatureSet

        incset = IncrementalSignatureSet()
        report = incset.update([])
        assert report.batch_size == 0
        assert len(incset) == 0


class TestCliErrors:
    def test_generate_with_no_sensitive_traffic(self, tmp_path, identity, capsys):
        import json

        from repro.cli import main
        from repro.dataset.trace import Trace

        trace_path = tmp_path / "clean.jsonl"
        Trace([make_packet(target=f"/n?q={i}") for i in range(5)]).save_jsonl(trace_path)
        identity_path = tmp_path / "id.json"
        identity_path.write_text(json.dumps(identity.to_dict()))
        code = main(
            [
                "generate", "--trace", str(trace_path), "--identity", str(identity_path),
                "--sample", "10", "--out", str(tmp_path / "s.json"),
            ]
        )
        assert code == 1
        assert "no sensitive packets" in capsys.readouterr().err


@given(st.text(alphabet="abc012.-", min_size=1, max_size=20))
def test_fqdn_normalize_never_crashes_on_plausible_hosts(text):
    """normalize_host either returns a cleaned host or raises ParseError —
    never anything else."""
    from repro.errors import ParseError
    from repro.net.fqdn import normalize_host

    try:
        result = normalize_host(text)
    except ParseError:
        return
    assert result == result.strip().lower()


@given(st.binary(max_size=120))
def test_parser_never_crashes_unexpectedly(raw):
    """parse_request either parses or raises HttpParseError — no other
    exception may escape on arbitrary bytes."""
    from repro.errors import HttpParseError
    from repro.http.parser import parse_request

    try:
        parse_request(raw)
    except HttpParseError:
        pass
