"""Candidate-pair blocking: exact losslessness, LSH recall, determinism."""

import pytest

from repro.distance.blocking import (
    BlockAssignment,
    BlockingConfig,
    BlockingMode,
    ExactBlocker,
    LshBlocker,
    MinHasher,
    UnionFind,
    assign_blocks,
    destination_block_key,
    header_shingles,
    header_tokens,
    make_blocker,
)
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.errors import DistanceError
from repro.simulation.corpus import mini_corpus
from tests.conftest import make_packet


def corpus_packets(seed: int, n: int = 70) -> list:
    """Deterministic suspicious packets for property tests."""
    corpus = mini_corpus(seed=seed, n_apps=30)
    suspicious, __ = corpus.payload_check().split(corpus.trace)
    assert len(suspicious) >= n
    return list(suspicious[:n])


def block_of(assignment: BlockAssignment) -> dict[int, int]:
    """Item index -> block ordinal."""
    return {
        member: ordinal
        for ordinal, block in enumerate(assignment.blocks)
        for member in block
    }


class TestConfig:
    def test_defaults_valid(self):
        config = BlockingConfig()
        assert config.mode is BlockingMode.EXACT
        assert config.threshold > 0

    def test_threshold_must_be_positive(self):
        with pytest.raises(DistanceError):
            BlockingConfig(threshold=0.0)

    def test_bands_must_divide_hashes(self):
        with pytest.raises(DistanceError):
            BlockingConfig(num_hashes=32, bands=7)

    def test_shingle_must_be_positive(self):
        with pytest.raises(DistanceError):
            BlockingConfig(shingle=0)

    def test_fill_value_clears_both_ceilings(self):
        config = BlockingConfig(threshold=1.2)
        metric = PacketDistance.paper()
        fill = config.fill_value(metric)
        assert fill > config.threshold
        assert fill >= metric.max_distance

    def test_to_dict_round_trips_policy(self):
        data = BlockingConfig(mode=BlockingMode.LSH, threshold=0.9).to_dict()
        assert data["mode"] == "lsh"
        assert data["threshold"] == 0.9
        assert data["num_hashes"] % data["bands"] == 0


class TestUnionFind:
    def test_components_are_order_independent(self):
        edges = [(0, 3), (3, 5), (1, 2), (4, 4)]
        forward, backward = UnionFind(), UnionFind()
        for index in range(6):
            forward.add(index)
            backward.add(index)
        for a, b in edges:
            forward.union(a, b)
        for a, b in reversed(edges):
            backward.union(b, a)
        assert forward.components() == backward.components()
        assert forward.components() == [[0, 3, 5], [1, 2], [4]]

    def test_canonical_root_is_smallest_member(self):
        uf = UnionFind()
        for index in (7, 2, 9):
            uf.add(index)
        uf.union(9, 7)
        uf.union(7, 2)
        assert uf.find(9) == 2
        assert sorted(uf.members(7)) == [2, 7, 9]

    def test_union_reports_whether_it_merged(self):
        uf = UnionFind()
        uf.add(0)
        uf.add(1)
        assert uf.union(0, 1) == (0, True)
        assert uf.union(1, 0) == (0, False)


class TestHeaderFeatures:
    def test_tokens_cover_request_line_and_cookie(self):
        packet = make_packet(target="/imp?sid=abc", cookie="uid=xyz9")
        tokens = header_tokens(packet)
        assert "imp" in tokens and "abc" in tokens
        assert "uid" in tokens and "xyz9" in tokens

    def test_shingle_window_count(self):
        packet = make_packet(target="/a?b=c&d=e&f=g")
        tokens = header_tokens(packet)
        shingles = header_shingles(packet, 3)
        assert len(shingles) <= len(tokens) - 2  # distinct 3-windows

    def test_short_input_yields_single_full_window(self):
        packet = make_packet(target="/x")
        tokens = header_tokens(packet)
        assert len(header_shingles(packet, len(tokens) + 5)) == 1

    def test_destination_key_includes_path_not_query(self):
        packet = make_packet(host="h.example.com", port=8080, target="/p/q?x=1")
        assert destination_block_key(packet) == "h.example.com:8080/p/q"


class TestMinHasher:
    def test_signatures_stable_across_instances(self):
        shingles = {b"alpha", b"beta", b"gamma"}
        assert (
            MinHasher(16, seed=4).signature(shingles)
            == MinHasher(16, seed=4).signature(shingles)
        )

    def test_seed_changes_signature(self):
        shingles = {b"alpha", b"beta"}
        assert MinHasher(16, seed=1).signature(shingles) != MinHasher(
            16, seed=2
        ).signature(shingles)

    def test_empty_sets_collide(self):
        hasher = MinHasher(8, seed=0)
        assert hasher.signature(set()) == hasher.signature(set())

    def test_signature_length(self):
        assert len(MinHasher(24, seed=0).signature({b"x"})) == 24


class TestExactBlocking:
    """The losslessness property the whole streaming design rests on."""

    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_true_merge_pairs_never_cross_blocks(self, seed):
        """Recall of true merge pairs is exactly 1: every pair within the
        linkage threshold shares a block."""
        packets = corpus_packets(seed)
        metric = PacketDistance.paper()
        config = BlockingConfig(threshold=1.2)
        assignment = assign_blocks(packets, metric, config)
        matrix = distance_matrix(packets, metric)
        owner = block_of(assignment)
        true_pairs = 0
        for i in range(len(packets)):
            for j in range(i + 1, len(packets)):
                if matrix.get(i, j) <= config.threshold:
                    true_pairs += 1
                    assert owner[i] == owner[j], (i, j, matrix.get(i, j))
        assert true_pairs > 0  # the property must not hold vacuously

    @pytest.mark.parametrize("seed", [3, 7])
    def test_cross_block_pairs_exceed_threshold(self, seed):
        packets = corpus_packets(seed)
        metric = PacketDistance.paper()
        config = BlockingConfig(threshold=1.2)
        owner = block_of(assign_blocks(packets, metric, config))
        matrix = distance_matrix(packets, metric)
        crossings = 0
        for i in range(len(packets)):
            for j in range(i + 1, len(packets)):
                if owner[i] != owner[j]:
                    crossings += 1
                    assert matrix.get(i, j) > config.threshold
        assert crossings > 0  # blocking must actually prune something

    def test_stats_account_for_the_pair_space(self):
        packets = corpus_packets(3)
        assignment = assign_blocks(
            packets, PacketDistance.paper(), BlockingConfig()
        )
        stats = assignment.stats
        n = len(packets)
        assert stats.n_items == n
        assert stats.pairs_total == n * (n - 1) // 2
        assert stats.pairs_within == sum(
            len(b) * (len(b) - 1) // 2 for b in assignment.blocks
        )
        assert stats.pairs_pruned == stats.pairs_total - stats.pairs_within
        assert 0.0 < stats.pruned_fraction < 1.0
        assert stats.largest_block == max(len(b) for b in assignment.blocks)
        assert sorted(stats.to_dict()) == sorted(
            [
                "n_items", "n_blocks", "largest_block", "pairs_total",
                "pairs_within", "pairs_pruned", "pruned_fraction",
            ]
        )

    def test_zero_destination_weight_is_one_vacuous_block(self):
        packets = corpus_packets(3, n=20)
        assignment = assign_blocks(
            packets, PacketDistance.content_only(), BlockingConfig()
        )
        assert assignment.stats.n_blocks == 1
        assert assignment.stats.pairs_pruned == 0

    def test_incremental_add_matches_one_shot(self):
        packets = corpus_packets(7, n=40)
        metric = PacketDistance.paper()
        config = BlockingConfig()
        blocker = make_blocker(metric, config)
        for index, packet in enumerate(packets):
            blocker.add(index, packet)
        assert blocker.components() == assign_blocks(packets, metric, config).blocks

    def test_exact_mode_requires_packet_metric(self):
        with pytest.raises(DistanceError):
            make_blocker(lambda a, b: abs(a - b), BlockingConfig())
        assert isinstance(
            make_blocker(PacketDistance.paper(), BlockingConfig()), ExactBlocker
        )


class TestLshBlocking:
    @pytest.mark.parametrize("seed", [3, 7])
    def test_recall_of_true_merge_pairs(self, seed):
        """LSH is approximate; the bench audits it, the test floors it."""
        packets = corpus_packets(seed)
        metric = PacketDistance.paper()
        config = BlockingConfig(mode=BlockingMode.LSH, threshold=1.2)
        owner = block_of(assign_blocks(packets, metric, config))
        matrix = distance_matrix(packets, metric)
        caught = missed = 0
        for i in range(len(packets)):
            for j in range(i + 1, len(packets)):
                if matrix.get(i, j) <= config.threshold:
                    if owner[i] == owner[j]:
                        caught += 1
                    else:
                        missed += 1
        assert caught + missed > 0
        assert caught / (caught + missed) >= 0.9

    def test_generic_metric_allowed(self):
        blocker = make_blocker(lambda a, b: abs(a - b), BlockingConfig(mode=BlockingMode.LSH))
        assert isinstance(blocker, LshBlocker)

    def test_shared_destination_key_joins_a_block(self):
        config = BlockingConfig(mode=BlockingMode.LSH)
        blocker = LshBlocker(config)
        blocker.add(0, make_packet(target="/same/path?a=1"))
        blocker.add(1, make_packet(target="/same/path?b=2"))
        assert blocker.find(0) == blocker.find(1)
