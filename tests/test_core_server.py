"""SignatureServer: ingest -> cluster -> generate."""

import pytest

from repro.core.server import ServerConfig, SignatureServer
from repro.dataset.trace import Trace
from repro.errors import SignatureError
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.store import SignatureStore
from tests.conftest import make_packet


def leaky_packet(identity, seq):
    return make_packet(
        host="ads.adnet.com",
        ip="198.51.100.9",
        target=f"/imp?sid=PUB&imei={identity.imei}&seq={seq}",
    )


def clean_packet(seq):
    return make_packet(host="img.other.jp", ip="203.0.113.4", target=f"/img?i={seq}")


@pytest.fixture
def server(identity):
    return SignatureServer(PayloadCheck(identity))


class TestIngest:
    def test_splits_groups(self, server, identity):
        trace = Trace([leaky_packet(identity, i) for i in range(4)] + [clean_packet(9)])
        n_suspicious, n_normal = server.ingest(trace)
        assert n_suspicious == 4
        assert n_normal == 1
        assert len(server.suspicious) == 4
        assert len(server.normal) == 1

    def test_ingest_accumulates(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, 1)]))
        server.ingest(Trace([leaky_packet(identity, 2)]))
        assert len(server.suspicious) == 2


class TestGenerate:
    def test_generates_matching_signatures(self, server, identity):
        trace = Trace([leaky_packet(identity, i) for i in range(8)])
        server.ingest(trace)
        result = server.generate(n_sample=6, seed=1)
        assert result.signatures
        assert result.dendrogram.n_leaves == 6
        assert len(result.sample) == 6
        # The signature should recognize a fresh packet from the module.
        fresh = leaky_packet(identity, 999)
        assert any(s.matches(fresh) for s in result.signatures)

    def test_sample_clamped_to_population(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, i) for i in range(3)]))
        result = server.generate(n_sample=50)
        assert len(result.sample) == 3

    def test_generate_without_ingest_rejected(self, server):
        with pytest.raises(SignatureError):
            server.generate(10)

    def test_non_positive_sample_rejected(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, 1)]))
        with pytest.raises(SignatureError):
            server.generate(0)

    def test_generation_deterministic(self, identity):
        trace = Trace([leaky_packet(identity, i) for i in range(8)])
        a = SignatureServer(PayloadCheck(identity))
        b = SignatureServer(PayloadCheck(identity))
        a.ingest(trace)
        b.ingest(trace)
        assert a.generate(5, seed=3).signatures == b.generate(5, seed=3).signatures


class TestPublish:
    def test_publish_roundtrips_through_store(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, i) for i in range(6)]))
        result = server.generate(4)
        published = server.publish(result.signatures)
        assert SignatureStore.loads(published) == result.signatures


class TestQuarantine:
    def test_ingest_raw_parses_good_records(self, server, identity):
        records = [leaky_packet(identity, i).to_dict() for i in range(3)]
        records.append(clean_packet(7).to_dict())
        n_suspicious, n_normal = server.ingest_raw(records)
        assert (n_suspicious, n_normal) == (3, 1)
        assert server.quarantine.total == 0

    def test_malformed_records_quarantined_not_fatal(self, server, identity):
        good = leaky_packet(identity, 1).to_dict()
        truncated = dict(good, raw=good["raw"][:3])  # mid request-line
        missing_key = {k: v for k, v in good.items() if k != "raw"}
        bad_ip = dict(good, ip="999.999.1.1")
        not_a_dict = "garbage"
        n_suspicious, n_normal = server.ingest_raw(
            [good, truncated, missing_key, bad_ip, not_a_dict]
        )
        assert (n_suspicious, n_normal) == (1, 0)
        assert server.quarantine.total == 3 + 1
        assert len(server.suspicious) == 1

    def test_quarantine_counters_by_reason(self, server, identity):
        good = leaky_packet(identity, 1).to_dict()
        server.ingest_raw([dict(good, raw="")])
        assert server.quarantine.total == 1
        assert sum(server.quarantine.summary().values()) == 1

    def test_quarantine_is_bounded(self, identity):
        small = SignatureServer(PayloadCheck(identity), quarantine_capacity=2)
        good = leaky_packet(identity, 1).to_dict()
        small.ingest_raw([dict(good, raw="") for __ in range(5)])
        assert len(small.quarantine) == 2
        assert small.quarantine.total == 5

    def test_split_quarantines_canonicalization_failures(self, identity):
        from repro.errors import HttpParseError
        from repro.reliability.quarantine import Quarantine

        class ExplodingPacket:
            app_id = "jp.bad.app"

            def canonical_text(self):
                raise HttpParseError("mangled capture")

        check = PayloadCheck(identity)
        quarantine = Quarantine()
        suspicious, normal = check.split(
            [leaky_packet(identity, 1), ExplodingPacket(), clean_packet(2)],
            quarantine=quarantine,
        )
        assert len(suspicious) == 1 and len(normal) == 1
        assert quarantine.total == 1
        assert quarantine.summary() == {"HttpParseError": 1}

    def test_split_without_quarantine_still_raises(self, identity):
        from repro.errors import HttpParseError

        class ExplodingPacket:
            def canonical_text(self):
                raise HttpParseError("mangled capture")

        with pytest.raises(HttpParseError):
            PayloadCheck(identity).split([ExplodingPacket()])
