"""SignatureServer: ingest -> cluster -> generate."""

import pytest

from repro.core.server import ServerConfig, SignatureServer
from repro.dataset.trace import Trace
from repro.errors import SignatureError
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.store import SignatureStore
from tests.conftest import make_packet


def leaky_packet(identity, seq):
    return make_packet(
        host="ads.adnet.com",
        ip="198.51.100.9",
        target=f"/imp?sid=PUB&imei={identity.imei}&seq={seq}",
    )


def clean_packet(seq):
    return make_packet(host="img.other.jp", ip="203.0.113.4", target=f"/img?i={seq}")


@pytest.fixture
def server(identity):
    return SignatureServer(PayloadCheck(identity))


class TestIngest:
    def test_splits_groups(self, server, identity):
        trace = Trace([leaky_packet(identity, i) for i in range(4)] + [clean_packet(9)])
        n_suspicious, n_normal = server.ingest(trace)
        assert n_suspicious == 4
        assert n_normal == 1
        assert len(server.suspicious) == 4
        assert len(server.normal) == 1

    def test_ingest_accumulates(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, 1)]))
        server.ingest(Trace([leaky_packet(identity, 2)]))
        assert len(server.suspicious) == 2


class TestGenerate:
    def test_generates_matching_signatures(self, server, identity):
        trace = Trace([leaky_packet(identity, i) for i in range(8)])
        server.ingest(trace)
        result = server.generate(n_sample=6, seed=1)
        assert result.signatures
        assert result.dendrogram.n_leaves == 6
        assert len(result.sample) == 6
        # The signature should recognize a fresh packet from the module.
        fresh = leaky_packet(identity, 999)
        assert any(s.matches(fresh) for s in result.signatures)

    def test_sample_clamped_to_population(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, i) for i in range(3)]))
        result = server.generate(n_sample=50)
        assert len(result.sample) == 3

    def test_generate_without_ingest_rejected(self, server):
        with pytest.raises(SignatureError):
            server.generate(10)

    def test_non_positive_sample_rejected(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, 1)]))
        with pytest.raises(SignatureError):
            server.generate(0)

    def test_generation_deterministic(self, identity):
        trace = Trace([leaky_packet(identity, i) for i in range(8)])
        a = SignatureServer(PayloadCheck(identity))
        b = SignatureServer(PayloadCheck(identity))
        a.ingest(trace)
        b.ingest(trace)
        assert a.generate(5, seed=3).signatures == b.generate(5, seed=3).signatures


class TestPublish:
    def test_publish_roundtrips_through_store(self, server, identity):
        server.ingest(Trace([leaky_packet(identity, i) for i in range(6)]))
        result = server.generate(4)
        published = server.publish(result.signatures)
        assert SignatureStore.loads(published) == result.signatures
