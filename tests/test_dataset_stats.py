"""Corpus statistics: the Table II/III and Fig 2 analyses."""

import pytest

from repro.dataset.stats import (
    destination_fanout,
    destination_table,
    fanout_cdf,
    fanout_summary,
    sensitive_table,
)
from repro.dataset.trace import Trace
from repro.sensitive.payload_check import PayloadCheck
from tests.conftest import make_packet


def build_trace(identity):
    return Trace(
        [
            make_packet(host="ads.adnet.com", app_id="a", target=f"/x?imei={identity.imei}"),
            make_packet(host="ads.adnet.com", app_id="a", target="/x?q=1"),
            make_packet(host="api.adnet.com", app_id="b", target=f"/y?aid={identity.android_id}"),
            make_packet(host="img.other.jp", app_id="b", target="/z.png"),
            make_packet(host="img.other.jp", app_id="c", target="/w.png"),
        ]
    )


class TestDestinationTable:
    def test_counts(self, identity):
        rows = destination_table(build_trace(identity))
        by_domain = {r.domain: r for r in rows}
        assert by_domain["adnet.com"].packets == 3
        assert by_domain["adnet.com"].apps == 2
        assert by_domain["other.jp"].packets == 2
        assert by_domain["other.jp"].apps == 2

    def test_ordering_by_apps_then_packets(self, identity):
        rows = destination_table(build_trace(identity))
        assert rows[0].domain == "adnet.com"  # 2 apps, 3 packets beats 2/2

    def test_min_apps_filter(self, identity):
        trace = build_trace(identity)
        trace.append(make_packet(host="once.example.com", app_id="a"))
        rows = destination_table(trace, min_apps=2)
        assert all(r.apps >= 2 for r in rows)


class TestSensitiveTable:
    def test_rows(self, identity):
        check = PayloadCheck(identity)
        rows = sensitive_table(build_trace(identity), check)
        by_label = {r.label: r for r in rows}
        assert by_label["IMEI"].packets == 1
        assert by_label["IMEI"].apps == 1
        assert by_label["IMEI"].destinations == 1
        assert by_label["ANDROID_ID"].packets == 1

    def test_multi_label_packet_counted_in_each_row(self, identity):
        check = PayloadCheck(identity)
        trace = Trace(
            [make_packet(target=f"/x?imei={identity.imei}&aid={identity.android_id}")]
        )
        rows = {r.label: r.packets for r in sensitive_table(trace, check)}
        assert rows["IMEI"] == 1
        assert rows["ANDROID_ID"] == 1

    def test_empty_trace(self, identity):
        assert sensitive_table(Trace(), PayloadCheck(identity)) == []


class TestFanout:
    def test_destination_fanout(self, identity):
        fanout = destination_fanout(build_trace(identity))
        assert fanout == {"a": 1, "b": 2, "c": 1}

    def test_summary(self, identity):
        summary = fanout_summary(build_trace(identity))
        assert summary.n_apps == 3
        assert summary.mean == pytest.approx(4 / 3)
        assert summary.max == 2
        assert summary.single_destination == 2
        assert summary.single_fraction == pytest.approx(2 / 3)
        assert summary.up_to_10 == 3

    def test_summary_empty(self):
        summary = fanout_summary(Trace())
        assert summary.n_apps == 0
        assert summary.single_fraction == 0.0

    def test_cdf_monotone_and_complete(self, identity):
        points = fanout_cdf(build_trace(identity))
        fractions = [f for __, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        assert points[0] == (1, pytest.approx(2 / 3))

    def test_cdf_empty(self):
        assert fanout_cdf(Trace()) == []
