"""Seeded samplers."""

import math
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.rng import derive_rng, poisson, zipf_sample


class TestPoisson:
    def test_zero_mean(self):
        assert poisson(Random(1), 0.0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson(Random(1), -1.0)

    def test_mean_converges_small(self):
        rng = Random(7)
        samples = [poisson(rng, 4.0) for __ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(4.0, rel=0.08)

    def test_mean_converges_large(self):
        rng = Random(7)
        samples = [poisson(rng, 60.0) for __ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(60.0, rel=0.05)

    def test_variance_roughly_mean(self):
        rng = Random(3)
        mean = 9.0
        samples = [poisson(rng, mean) for __ in range(5000)]
        m = sum(samples) / len(samples)
        var = sum((s - m) ** 2 for s in samples) / len(samples)
        assert var == pytest.approx(mean, rel=0.15)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 100.0), st.integers(0, 2**30))
    def test_non_negative_integers(self, mean, seed):
        value = poisson(Random(seed), mean)
        assert isinstance(value, int)
        assert value >= 0


class TestZipf:
    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            zipf_sample(Random(1), 0)

    def test_in_range(self):
        rng = Random(5)
        for __ in range(200):
            assert 0 <= zipf_sample(rng, 7) < 7

    def test_rank_zero_most_popular(self):
        rng = Random(5)
        counts = [0] * 5
        for __ in range(3000):
            counts[zipf_sample(rng, 5)] += 1
        assert counts[0] > counts[1] > counts[3]

    def test_exponent_flattens(self):
        rng = Random(5)
        flat_counts = [0] * 5
        for __ in range(3000):
            flat_counts[zipf_sample(rng, 5, exponent=0.0)] += 1
        # With exponent 0 the distribution is uniform-ish.
        assert max(flat_counts) < 2 * min(flat_counts)


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        assert derive_rng(1, "a", "b").random() == derive_rng(1, "a", "b").random()

    def test_different_labels_different_stream(self):
        assert derive_rng(1, "a").random() != derive_rng(1, "b").random()

    def test_different_seeds_different_stream(self):
        assert derive_rng(1, "a").random() != derive_rng(2, "a").random()
