"""Payload check: plain, hashed, and encoded leak detection."""

import hashlib

from repro.sensitive.identifiers import IdentifierKind
from repro.sensitive.payload_check import PayloadCheck
from repro.sensitive.transforms import Transform
from tests.conftest import make_packet


class TestScanText:
    def test_plain_imei_found(self, identity):
        check = PayloadCheck(identity)
        findings = check.scan_text(f"GET /x?imei={identity.imei} HTTP/1.1")
        assert any(f.kind is IdentifierKind.IMEI and f.transform is Transform.PLAIN for f in findings)

    def test_md5_android_id_found(self, identity):
        check = PayloadCheck(identity)
        digest = hashlib.md5(identity.android_id.encode()).hexdigest()
        findings = check.scan_text(f"udid={digest}")
        assert any(
            f.kind is IdentifierKind.ANDROID_ID and f.transform is Transform.MD5
            for f in findings
        )

    def test_sha1_imei_found(self, identity):
        check = PayloadCheck(identity)
        digest = hashlib.sha1(identity.imei.encode()).hexdigest()
        assert any(f.label == "IMEI SHA1" for f in check.scan_text(f"d={digest}"))

    def test_uppercase_hex_found(self, identity):
        check = PayloadCheck(identity)
        assert check.scan_text(f"aid={identity.android_id.upper()}")

    def test_carrier_name_found(self, identity):
        check = PayloadCheck(identity)
        assert any(f.kind is IdentifierKind.CARRIER for f in check.scan_text(f"op={identity.carrier}"))

    def test_carrier_lowercase_found(self, identity):
        check = PayloadCheck(identity)
        assert check.scan_text(f"op={identity.carrier.lower()}")

    def test_carrier_hash_not_tracked(self, identity):
        check = PayloadCheck(identity)
        digest = hashlib.md5(identity.carrier.encode()).hexdigest()
        assert not any(f.kind is IdentifierKind.CARRIER for f in check.scan_text(digest))

    def test_clean_text_no_findings(self, identity):
        check = PayloadCheck(identity)
        assert check.scan_text("GET /news?page=3 HTTP/1.1\nsid=a1b2c3") == []

    def test_offsets_reported(self, identity):
        check = PayloadCheck(identity)
        text = f"xx{identity.imei}"
        findings = [f for f in check.scan_text(text) if f.transform is Transform.PLAIN]
        assert findings[0].offset == 2

    def test_multiple_occurrences_counted(self, identity):
        check = PayloadCheck(identity)
        text = f"{identity.imei}&again={identity.imei}"
        imei_findings = [f for f in check.scan_text(text) if f.label == "IMEI"]
        assert len(imei_findings) == 2

    def test_labels(self, identity):
        check = PayloadCheck(identity)
        findings = check.scan_text(identity.imei)
        assert findings[0].label == "IMEI"
        digest = hashlib.md5(identity.imei.encode()).hexdigest()
        findings = check.scan_text(digest)
        assert findings[0].label == "IMEI MD5"


class TestPackets:
    def test_leak_in_query(self, identity):
        check = PayloadCheck(identity)
        packet = make_packet(target=f"/ad?imei={identity.imei}")
        assert check.is_sensitive(packet)

    def test_leak_in_cookie(self, identity):
        check = PayloadCheck(identity)
        packet = make_packet(cookie=f"muid={identity.android_id}")
        assert check.is_sensitive(packet)

    def test_leak_in_body(self, identity):
        check = PayloadCheck(identity)
        packet = make_packet(body=f"iccid={identity.sim_serial}".encode())
        assert check.is_sensitive(packet)

    def test_clean_packet(self, identity):
        check = PayloadCheck(identity)
        assert not check.is_sensitive(make_packet(target="/img/banner.png?t=123"))

    def test_leak_labels(self, identity):
        check = PayloadCheck(identity)
        packet = make_packet(target=f"/x?imei={identity.imei}&aid={identity.android_id}")
        assert check.leak_labels(packet) == {"IMEI", "ANDROID_ID"}

    def test_split_partitions(self, identity):
        check = PayloadCheck(identity)
        leaky = make_packet(target=f"/x?imei={identity.imei}")
        clean = make_packet(target="/x?q=1")
        suspicious, normal = check.split([leaky, clean, clean])
        assert suspicious == [leaky]
        assert len(normal) == 2

    def test_iter_findings_skips_clean(self, identity):
        check = PayloadCheck(identity)
        leaky = make_packet(target=f"/x?imei={identity.imei}")
        clean = make_packet(target="/x?q=1")
        results = list(check.iter_findings([clean, leaky, clean]))
        assert len(results) == 1
        assert results[0][0] is leaky


class TestTransformsConfig:
    def test_plain_only_misses_hashes(self, identity):
        check = PayloadCheck(identity, transforms=(Transform.PLAIN,))
        digest = hashlib.md5(identity.imei.encode()).hexdigest()
        assert not check.scan_text(digest)
        assert check.scan_text(identity.imei)

    def test_another_devices_ids_not_flagged(self, identity):
        from random import Random

        from repro.sensitive.identifiers import DeviceIdentity

        other = DeviceIdentity.generate(Random(999))
        check = PayloadCheck(identity)
        findings = [
            f for f in check.scan_text(f"imei={other.imei}&aid={other.android_id}")
            if f.kind is not IdentifierKind.CARRIER  # carriers may coincide
        ]
        assert not findings
