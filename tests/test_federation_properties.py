"""Property tests for the federation invariants the chaos sweep leans on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.aggregate import FederatedAggregator, InMemorySupportStore
from repro.federation.ingest import FleetIngest, IngestConfig, ReportStatus
from repro.federation.report import DeviceReport, encode_report, token_for
from tests.conftest import make_packet


def envelope(seq: int, device_id: str = "device-00001"):
    packet = make_packet(target="/track?udid=x")
    report = DeviceReport(
        device_id=device_id, seq=seq, token=token_for(packet), packet=packet
    )
    return encode_report(report)


#: An arbitrary per-device submission stream: sequence numbers with
#: duplicates, replays, gaps, and disorder all on the table.
seq_streams = st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=60)


class TestLedgerDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(seqs=seq_streams, window=st.integers(min_value=1, max_value=8))
    def test_same_stream_same_ledger(self, seqs, window):
        # Replay defense is a pure function of the submitted stream: two
        # ingests fed identical streams agree on every verdict and counter.
        config = IngestConfig(dedup_window=window)
        a, b = FleetIngest(config), FleetIngest(config)
        verdicts_a = [a.submit(envelope(seq), tick=float(i)).status for i, seq in enumerate(seqs)]
        verdicts_b = [b.submit(envelope(seq), tick=float(i)).status for i, seq in enumerate(seqs)]
        assert verdicts_a == verdicts_b
        assert a.stats() == b.stats()

    @settings(max_examples=40, deadline=None)
    @given(seqs=seq_streams, window=st.integers(min_value=1, max_value=8))
    def test_repeat_rejections_classified_by_window(self, seqs, window):
        # Every re-submission of an already-seen number is rejected, and
        # the window decides the label: recent -> DUPLICATE, old -> REPLAY.
        ingest = FleetIngest(IngestConfig(dedup_window=window, breaker_threshold=10_000))
        accepted: list[int] = []
        for i, seq in enumerate(seqs):
            result = ingest.submit(envelope(seq), tick=float(i))
            if result.accepted:
                accepted.append(seq)
            elif seq in accepted:
                recent = set(accepted[-window:])
                expected = (
                    ReportStatus.REJECTED_DUPLICATE
                    if seq in recent
                    else ReportStatus.REJECTED_REPLAY
                )
                assert result.status is expected


class TestSequenceMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(seqs=seq_streams)
    def test_accepted_seqs_strictly_increase(self, seqs):
        # Whatever a device throws at ingest, the accepted subsequence is
        # strictly increasing and never admits the same number twice.
        ingest = FleetIngest(IngestConfig(breaker_threshold=10_000))
        accepted = [
            seq
            for i, seq in enumerate(seqs)
            if ingest.submit(envelope(seq), tick=float(i)).accepted
        ]
        assert accepted == sorted(set(accepted))

    @settings(max_examples=40, deadline=None)
    @given(seqs=seq_streams)
    def test_first_occurrence_of_new_maximum_always_lands(self, seqs):
        # The flip side: monotonicity only ever discards stale numbers —
        # every new per-device maximum is accepted (liveness).
        ingest = FleetIngest(IngestConfig(breaker_threshold=10_000))
        watermark = 0
        for i, seq in enumerate(seqs):
            result = ingest.submit(envelope(seq), tick=float(i))
            if seq > watermark:
                assert result.accepted
                watermark = seq


contribution_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),  # device index
        st.integers(min_value=0, max_value=9),  # token index
    ),
    min_size=1,
    max_size=80,
)


class TestContributionCap:
    @settings(max_examples=40, deadline=None)
    @given(stream=contribution_streams, cap=st.integers(min_value=1, max_value=4))
    def test_no_device_exceeds_cap(self, stream, cap):
        store = InMemorySupportStore()
        agg = FederatedAggregator(store, contribution_cap=cap)
        for i, (device, token) in enumerate(stream):
            agg.accept(
                DeviceReport(
                    device_id=f"device-{device:05d}",
                    seq=i + 1,
                    token=f"token-{token}",
                    packet=make_packet(),
                )
            )
        for device in range(6):
            assert store.device_token_count(f"device-{device:05d}") <= cap

    @settings(max_examples=40, deadline=None)
    @given(stream=contribution_streams, cap=st.integers(min_value=1, max_value=4))
    def test_support_never_exceeds_distinct_contributors(self, stream, cap):
        agg = FederatedAggregator(contribution_cap=cap)
        for i, (device, token) in enumerate(stream):
            agg.accept(
                DeviceReport(
                    device_id=f"device-{device:05d}",
                    seq=i + 1,
                    token=f"token-{token}",
                    packet=make_packet(),
                )
            )
        devices_per_token: dict[str, set[str]] = {}
        for device, token in stream:
            devices_per_token.setdefault(f"token-{token}", set()).add(f"device-{device:05d}")
        for token, devices in devices_per_token.items():
            assert agg.support(token) <= len(devices)
