"""Obfuscation transforms, wire encodings, and their stability classes."""

from random import Random

import pytest

from repro.sensitive.obfuscation import (
    DETECTABLE_WIRE_ENCODINGS,
    Obfuscation,
    WireEncoding,
    decode_chain,
    decode_wire,
    encode_chain,
    encode_wire,
    obfuscate,
    obfuscated_leak_packets,
)


class TestTransforms:
    def test_none_identity(self):
        assert obfuscate("abc123", Obfuscation.NONE) == "abc123"

    def test_reversed(self):
        assert obfuscate("abc123", Obfuscation.REVERSED) == "321cba"

    def test_rot13_hex_is_deterministic_bijection_ish(self):
        a = obfuscate("deadbeef00", Obfuscation.ROT13_HEX)
        b = obfuscate("deadbeef00", Obfuscation.ROT13_HEX)
        assert a == b
        assert a != "deadbeef00"

    def test_xor_fixed_key_stable(self):
        a = obfuscate("358537041234567", Obfuscation.XOR_FIXED_KEY)
        b = obfuscate("358537041234567", Obfuscation.XOR_FIXED_KEY)
        assert a == b
        assert all(c in "0123456789abcdef" for c in a)

    def test_salted_hash_differs_across_apps(self):
        a = obfuscate("value", Obfuscation.SALTED_HASH_PER_APP, app_id="jp.a")
        b = obfuscate("value", Obfuscation.SALTED_HASH_PER_APP, app_id="jp.b")
        same = obfuscate("value", Obfuscation.SALTED_HASH_PER_APP, app_id="jp.a")
        assert a != b
        assert a == same

    def test_salted_hash_requires_app_id(self):
        with pytest.raises(ValueError):
            obfuscate("value", Obfuscation.SALTED_HASH_PER_APP)

    def test_nonce_hash_differs_every_call(self):
        rng = Random(1)
        a = obfuscate("value", Obfuscation.RANDOM_NONCE_HASH, rng=rng)
        b = obfuscate("value", Obfuscation.RANDOM_NONCE_HASH, rng=rng)
        assert a != b

    def test_nonce_hash_requires_rng(self):
        with pytest.raises(ValueError):
            obfuscate("value", Obfuscation.RANDOM_NONCE_HASH)

    def test_stability_classes(self):
        stable = {m for m in Obfuscation if m.stable_per_device}
        assert Obfuscation.XOR_FIXED_KEY in stable
        assert Obfuscation.SALTED_HASH_PER_APP not in stable
        assert Obfuscation.RANDOM_NONCE_HASH not in stable


class TestWireEncodings:
    """Every WireEncoding is a bijection; chains compose and invert."""

    VALUES = ("deadbeefcafe0123", "358537041234567", "value with spaces=&?")

    @pytest.mark.parametrize("encoding", list(WireEncoding))
    def test_single_round_trip(self, encoding):
        for value in self.VALUES:
            if encoding is WireEncoding.UPPER_HEX and value != "deadbeefcafe0123":
                continue
            assert decode_wire(encode_wire(value, encoding), encoding) == value

    def test_upper_hex_rejects_non_hex(self):
        with pytest.raises(ValueError):
            encode_wire("not hex!", WireEncoding.UPPER_HEX)

    @pytest.mark.parametrize(
        "chain",
        [
            (WireEncoding.BASE64, WireEncoding.GZIP_BASE64),
            (WireEncoding.UPPER_HEX, WireEncoding.PERCENT),
            (WireEncoding.HEX_BYTES, WireEncoding.BASE64),
            (WireEncoding.PERCENT, WireEncoding.BASE64, WireEncoding.GZIP_BASE64),
        ],
    )
    def test_composed_chain_round_trips(self, chain):
        value = "deadbeefcafe0123"
        encoded = encode_chain(value, chain)
        assert encoded != value
        assert decode_chain(encoded, chain) == value

    def test_gzip_output_is_deterministic(self):
        a = encode_wire("deadbeefcafe0123", WireEncoding.GZIP_BASE64)
        b = encode_wire("deadbeefcafe0123", WireEncoding.GZIP_BASE64)
        assert a == b  # mtime pinned to 0: replayable across runs

    def test_hex_then_split_reassembles(self):
        """The arena's split-then-exfiltrate shape: a hex-encoded value cut
        into chunks still decodes once the chunks are rejoined."""
        value = "358537041234567"
        encoded = encode_wire(value, WireEncoding.HEX_BYTES)
        parts = [encoded[:8], encoded[8:20], encoded[20:]]
        assert decode_wire("".join(parts), WireEncoding.HEX_BYTES) == value

    def test_detectable_subset_stays_in_the_spelling_table(self):
        """Encoding churn is only leak-preserving because every detectable
        encoding of a canonical value is in ``wire_spellings``."""
        from repro.sensitive.transforms import wire_spellings

        value = "deadbeefcafe0123"
        spellings = set(wire_spellings(value))
        for encoding in DETECTABLE_WIRE_ENCODINGS:
            encoded = encode_wire(value, encoding)
            if encoded != value:
                assert encoded in spellings, encoding
        # ...and the reserved encodings indeed escape the table.
        for encoding in (WireEncoding.HEX_BYTES, WireEncoding.GZIP_BASE64):
            assert encode_wire(value, encoding) not in spellings


class TestLeakPackets:
    def test_packets_carry_obfuscated_value(self):
        rng = Random(3)
        packets = obfuscated_leak_packets("deadbeefcafe0123", Obfuscation.XOR_FIXED_KEY, 5, rng)
        wire = obfuscate("deadbeefcafe0123", Obfuscation.XOR_FIXED_KEY)
        assert len(packets) == 5
        assert all(wire in p.canonical_text() for p in packets)
        assert all("deadbeefcafe0123" not in p.canonical_text() for p in packets)

    def test_request_ids_fresh(self):
        rng = Random(3)
        packets = obfuscated_leak_packets("deadbeefcafe0123", Obfuscation.NONE, 6, rng)
        rids = {p.request.query.get("rid") for p in packets}
        assert len(rids) == 6

    def test_signatures_survive_stable_obfuscation(self):
        """The paper's claim: a fixed key/hash across packets is still
        detectable, because the ciphertext itself becomes invariant."""
        from repro.eval.crossval import generate_from
        from repro.signatures.matcher import SignatureMatcher

        rng = Random(5)
        packets = obfuscated_leak_packets(
            "deadbeefcafe0123", Obfuscation.XOR_FIXED_KEY, 12, rng
        )
        signatures = generate_from(packets[:8])
        matcher = SignatureMatcher(signatures)
        fresh = packets[8:]
        assert all(matcher.is_sensitive(p) for p in fresh)

    def test_nonce_hash_defeats_value_anchoring(self):
        """The flip side: per-request nonces leave only structural tokens."""
        from repro.eval.crossval import generate_from

        rng = Random(5)
        packets = obfuscated_leak_packets(
            "deadbeefcafe0123", Obfuscation.RANDOM_NONCE_HASH, 12, rng
        )
        signatures = generate_from(packets[:8])
        # Whatever tokens remain cannot include the identifier value in any
        # stable form: every signature token must appear in all packets, so
        # tokens are endpoint/parameter structure only.
        for signature in signatures:
            for token in signature.tokens:
                assert "deadbeefcafe0123" not in token
