"""Obfuscation transforms and their stability classes."""

from random import Random

import pytest

from repro.sensitive.obfuscation import Obfuscation, obfuscate, obfuscated_leak_packets


class TestTransforms:
    def test_none_identity(self):
        assert obfuscate("abc123", Obfuscation.NONE) == "abc123"

    def test_reversed(self):
        assert obfuscate("abc123", Obfuscation.REVERSED) == "321cba"

    def test_rot13_hex_is_deterministic_bijection_ish(self):
        a = obfuscate("deadbeef00", Obfuscation.ROT13_HEX)
        b = obfuscate("deadbeef00", Obfuscation.ROT13_HEX)
        assert a == b
        assert a != "deadbeef00"

    def test_xor_fixed_key_stable(self):
        a = obfuscate("358537041234567", Obfuscation.XOR_FIXED_KEY)
        b = obfuscate("358537041234567", Obfuscation.XOR_FIXED_KEY)
        assert a == b
        assert all(c in "0123456789abcdef" for c in a)

    def test_salted_hash_differs_across_apps(self):
        a = obfuscate("value", Obfuscation.SALTED_HASH_PER_APP, app_id="jp.a")
        b = obfuscate("value", Obfuscation.SALTED_HASH_PER_APP, app_id="jp.b")
        same = obfuscate("value", Obfuscation.SALTED_HASH_PER_APP, app_id="jp.a")
        assert a != b
        assert a == same

    def test_salted_hash_requires_app_id(self):
        with pytest.raises(ValueError):
            obfuscate("value", Obfuscation.SALTED_HASH_PER_APP)

    def test_nonce_hash_differs_every_call(self):
        rng = Random(1)
        a = obfuscate("value", Obfuscation.RANDOM_NONCE_HASH, rng=rng)
        b = obfuscate("value", Obfuscation.RANDOM_NONCE_HASH, rng=rng)
        assert a != b

    def test_nonce_hash_requires_rng(self):
        with pytest.raises(ValueError):
            obfuscate("value", Obfuscation.RANDOM_NONCE_HASH)

    def test_stability_classes(self):
        stable = {m for m in Obfuscation if m.stable_per_device}
        assert Obfuscation.XOR_FIXED_KEY in stable
        assert Obfuscation.SALTED_HASH_PER_APP not in stable
        assert Obfuscation.RANDOM_NONCE_HASH not in stable


class TestLeakPackets:
    def test_packets_carry_obfuscated_value(self):
        rng = Random(3)
        packets = obfuscated_leak_packets("deadbeefcafe0123", Obfuscation.XOR_FIXED_KEY, 5, rng)
        wire = obfuscate("deadbeefcafe0123", Obfuscation.XOR_FIXED_KEY)
        assert len(packets) == 5
        assert all(wire in p.canonical_text() for p in packets)
        assert all("deadbeefcafe0123" not in p.canonical_text() for p in packets)

    def test_request_ids_fresh(self):
        rng = Random(3)
        packets = obfuscated_leak_packets("deadbeefcafe0123", Obfuscation.NONE, 6, rng)
        rids = {p.request.query.get("rid") for p in packets}
        assert len(rids) == 6

    def test_signatures_survive_stable_obfuscation(self):
        """The paper's claim: a fixed key/hash across packets is still
        detectable, because the ciphertext itself becomes invariant."""
        from repro.eval.crossval import generate_from
        from repro.signatures.matcher import SignatureMatcher

        rng = Random(5)
        packets = obfuscated_leak_packets(
            "deadbeefcafe0123", Obfuscation.XOR_FIXED_KEY, 12, rng
        )
        signatures = generate_from(packets[:8])
        matcher = SignatureMatcher(signatures)
        fresh = packets[8:]
        assert all(matcher.is_sensitive(p) for p in fresh)

    def test_nonce_hash_defeats_value_anchoring(self):
        """The flip side: per-request nonces leave only structural tokens."""
        from repro.eval.crossval import generate_from

        rng = Random(5)
        packets = obfuscated_leak_packets(
            "deadbeefcafe0123", Obfuscation.RANDOM_NONCE_HASH, 12, rng
        )
        signatures = generate_from(packets[:8])
        # Whatever tokens remain cannot include the identifier value in any
        # stable form: every signature token must appear in all packets, so
        # tokens are endpoint/parameter structure only.
        for signature in signatures:
            for token in signature.tokens:
                assert "deadbeefcafe0123" not in token
