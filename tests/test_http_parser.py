"""Raw request parsing: happy paths, tolerance, rejection, roundtrip."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HttpParseError
from repro.http.message import HttpRequest
from repro.http.parser import parse_request
from repro.http.serializer import serialize_request


class TestBasic:
    def test_get(self):
        req = parse_request(b"GET /p?a=1 HTTP/1.1\r\nHost: h.example.com\r\n\r\n")
        assert req.method == "GET"
        assert req.target == "/p?a=1"
        assert req.version == "HTTP/1.1"
        assert req.host == "h.example.com"
        assert req.body == b""

    def test_post_with_body(self):
        raw = (
            b"POST /t HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\n\r\nudid=99"
        )
        req = parse_request(raw)
        assert req.method == "POST"
        assert req.body == b"udid=99"

    def test_bare_lf_line_endings(self):
        req = parse_request(b"GET / HTTP/1.1\nHost: h\n\nignored-no-length")
        assert req.host == "h"

    def test_missing_version_defaults(self):
        req = parse_request(b"GET /old\r\nHost: h\r\n\r\n")
        assert req.version == "HTTP/1.0"

    def test_content_length_truncates_pipelined_data(self):
        raw = b"POST /t HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabcEXTRA"
        assert parse_request(raw).body == b"abc"

    def test_body_shorter_than_content_length_kept(self):
        raw = b"POST /t HTTP/1.1\r\nHost: h\r\nContent-Length: 100\r\n\r\nabc"
        assert parse_request(raw).body == b"abc"


class TestTolerance:
    def test_header_value_colons(self):
        req = parse_request(b"GET / HTTP/1.1\r\nReferer: http://x/y\r\n\r\n")
        assert req.header("Referer") == "http://x/y"

    def test_obsolete_folding(self):
        raw = b"GET / HTTP/1.1\r\nX-Long: part1\r\n  part2\r\n\r\n"
        assert parse_request(raw).header("X-Long") == "part1 part2"

    def test_lowercase_method(self):
        assert parse_request(b"get / HTTP/1.1\r\nHost: h\r\n\r\n").method == "GET"

    def test_blank_header_lines_skipped(self):
        raw = b"GET / HTTP/1.1\r\nHost: h\r\n   \r\nX: 1\r\n\r\n"
        # The padded blank line is the head/body split in the worst case;
        # here it has spaces so it is treated as a continuation-free skip.
        req = parse_request(raw)
        assert req.host == "h"


class TestHeadBodySplit:
    """Regression: the *earliest* blank line wins, regardless of flavour."""

    def test_lf_head_with_crlf_sequence_in_body(self):
        # Old first-match-wins searched \r\n\r\n first and split inside the
        # body, making "line1" parse as a (colonless) header line.
        raw = b"POST /u HTTP/1.1\nHost: x.com\n\nline1\r\n\r\nline2"
        req = parse_request(raw)
        assert req.host == "x.com"
        assert req.body == b"line1\r\n\r\nline2"

    def test_crlf_head_with_bare_lf_pair_in_body(self):
        raw = b"POST /u HTTP/1.1\r\nHost: x.com\r\n\r\na\n\nb"
        req = parse_request(raw)
        assert req.body == b"a\n\nb"

    def test_mixed_line_endings_in_head(self):
        raw = b"POST /u HTTP/1.1\r\nHost: x.com\nX-A: 1\r\n\r\nbody"
        req = parse_request(raw)
        assert req.header("X-A") == "1"
        assert req.body == b"body"

    def test_no_separator_means_no_body(self):
        req = parse_request(b"GET / HTTP/1.1\r\nHost: h")
        assert req.body == b""


class TestRejection:
    @pytest.mark.parametrize(
        "raw",
        [
            b"",
            b"   \r\n\r\n",
            b"GARBAGE\r\n\r\n",
            b"ONE TWO THREE FOUR\r\n\r\n",
            b"BREW / HTTP/1.1\r\n\r\n",
            b"GET / NOTHTTP\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",
            b"GET / HTTP/1.1\r\n  orphan continuation\r\n\r\n",
        ],
    )
    def test_rejects(self, raw):
        with pytest.raises(HttpParseError):
            parse_request(raw)


class TestRoundtrip:
    def test_serialize_parse_identity(self):
        req = HttpRequest(
            method="POST",
            target="/ad?udid=123",
            headers=[("Host", "ads.x.com"), ("Cookie", "sid=9")],
            body=b"k=v&k2=v2",
        )
        again = parse_request(serialize_request(req))
        assert again.method == req.method
        assert again.target == req.target
        assert again.cookie == req.cookie
        assert again.body == req.body

    @given(
        method=st.sampled_from(["GET", "POST"]),
        path=st.text(alphabet="abc/123", min_size=1, max_size=12),
        value=st.text(alphabet="abcdef0123456789", max_size=20),
        body=st.binary(max_size=40).filter(lambda b: b.strip() or not b),
    )
    def test_roundtrip_property(self, method, path, value, body):
        target = "/" + path.lstrip("/")
        headers = [("Host", "h.example.com"), ("X-Token", value)]
        req = HttpRequest(method=method, target=target, headers=headers, body=body)
        again = parse_request(serialize_request(req))
        assert again.target == target
        assert again.header("X-Token") == value.strip()
        assert again.body == body
