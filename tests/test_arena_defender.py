"""The defender loop: publish-on-change, version monotonicity, never-regress."""

import pytest

from repro.arena.defender import DefenderConfig, DefenderLoop
from repro.arena.mutations import MutationFamily, plans_for
from repro.eval.crossval import generate_from
from repro.signatures.matcher import SignatureMatcher


@pytest.fixture(scope="module")
def check(small_corpus):
    return small_corpus.payload_check()


@pytest.fixture(scope="module")
def split_packets(small_corpus, check):
    suspicious, __ = check.split(small_corpus.trace)
    return list(suspicious[:60]), list(suspicious[60:100])


@pytest.fixture(scope="module")
def boot(split_packets):
    train, __ = split_packets
    return generate_from(train)


@pytest.fixture(scope="module")
def evading_misses(check, split_packets):
    """Held-out leaks reshaped by one attacker family (clusterable misses)."""
    __, held_out = split_packets
    (plan,) = plans_for(
        check, seed=3, families=[MutationFamily.PADDING_CHAFF]
    )
    return plan.mutate_all(held_out, 1)


class TestPublication:
    def test_base_set_published_as_version_one(self, boot):
        defender = DefenderLoop(boot)
        assert defender.channel.latest_version == 1
        envelope = defender.latest_envelope
        assert envelope.set_version == 1
        assert len(envelope.signatures) == len(boot)

    def test_no_misses_no_republish(self, boot):
        defender = DefenderLoop(boot)
        outcome = defender.observe_misses([], round_no=1)
        assert outcome.published_version is None
        assert outcome.misses_ingested == 0
        assert defender.channel.latest_version == 1

    def test_misses_regenerate_and_republish(self, boot, evading_misses):
        defender = DefenderLoop(boot)
        outcome = defender.observe_misses(evading_misses, round_no=1)
        assert outcome.misses_ingested == len(evading_misses)
        assert outcome.miss_clusters >= 1
        assert outcome.regenerated >= 1
        assert outcome.published_version == 2
        assert defender.channel.latest_version == 2

    def test_unchanged_set_is_not_republished_again(self, boot, evading_misses):
        defender = DefenderLoop(boot)
        defender.observe_misses(evading_misses, round_no=1)
        version = defender.channel.latest_version
        # Same cumulative miss population => same merged set => no publish.
        again = defender.observe_misses([], round_no=2)
        assert again.published_version is None
        assert defender.channel.latest_version == version

    def test_versions_advance_monotonically(self, boot, check, split_packets):
        __, held_out = split_packets
        defender = DefenderLoop(boot)
        versions = []
        for round_no, family in enumerate(
            (MutationFamily.PADDING_CHAFF, MutationFamily.HEADER_REORDER), start=1
        ):
            (plan,) = plans_for(check, seed=3, families=[family])
            outcome = defender.observe_misses(
                plan.mutate_all(held_out, round_no), round_no
            )
            if outcome.published_version is not None:
                versions.append(outcome.published_version)
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)
        assert defender.channel.latest_version == versions[-1]


class TestNeverRegress:
    def test_merged_set_keeps_base_coverage(self, boot, evading_misses, check,
                                            small_corpus):
        """Regeneration must not lose packets the base set already caught."""
        defender = DefenderLoop(boot)
        defender.observe_misses(evading_misses, round_no=1)
        suspicious, __ = check.split(small_corpus.trace)
        base_matcher = SignatureMatcher(boot)
        merged_matcher = SignatureMatcher(defender.signatures)
        for packet in suspicious[:120]:
            if base_matcher.is_sensitive(packet):
                assert merged_matcher.is_sensitive(packet)

    def test_regenerated_set_catches_the_misses_it_learned_from(
        self, boot, evading_misses
    ):
        defender = DefenderLoop(boot)
        defender.observe_misses(evading_misses, round_no=1)
        matcher = SignatureMatcher(defender.signatures)
        caught = sum(1 for m in evading_misses if matcher.is_sensitive(m))
        assert caught / len(evading_misses) >= 0.8


class TestBoundedMemory:
    def test_pair_cache_respects_the_configured_bound(
        self, boot, check, split_packets
    ):
        __, held_out = split_packets
        defender = DefenderLoop(boot, DefenderConfig(max_cached_pairs=64))
        (plan,) = plans_for(
            check, seed=3, families=[MutationFamily.PADDING_CHAFF]
        )
        for round_no in (1, 2, 3):
            outcome = defender.observe_misses(
                plan.mutate_all(held_out, round_no), round_no
            )
            assert outcome.pair_cache_size <= 64
        assert outcome.pair_cache_evictions > 0
