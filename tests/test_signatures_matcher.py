"""Exact and probabilistic signature matching."""

import pytest

from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import MatchResult, ProbabilisticMatcher, SignatureMatcher
from tests.conftest import make_packet


def sig(*tokens, scope=""):
    return ConjunctionSignature(tokens=tokens, scope_domain=scope)


class TestExactMatcher:
    def test_first_firing_signature_reported(self):
        matcher = SignatureMatcher([sig("nomatch==="), sig("udid=abc")])
        result = matcher.match(make_packet(target="/p?udid=abc"))
        assert result.matched
        assert result.signature.tokens == ("udid=abc",)
        assert result.score == 1.0

    def test_clean_packet(self):
        matcher = SignatureMatcher([sig("udid=abc")])
        result = matcher.match(make_packet(target="/p?x=1"))
        assert not result.matched
        assert result.signature is None

    def test_domain_index_scopes_candidates(self):
        matcher = SignatureMatcher(
            [sig("token=one", scope="admob.com"), sig("token=one", scope="nend.net")]
        )
        p = make_packet(host="r.admob.com", target="/p?token=one")
        candidates = matcher.candidates_for(p)
        assert len(candidates) == 1
        assert candidates[0].scope_domain == "admob.com"

    def test_unscoped_always_candidate(self):
        matcher = SignatureMatcher([sig("anything=x")])
        p = make_packet(host="whatever.org")
        assert len(matcher.candidates_for(p)) == 1

    def test_screen_order(self):
        matcher = SignatureMatcher([sig("udid=abc")])
        packets = [make_packet(target="/p?udid=abc"), make_packet(target="/q?x=1")]
        results = matcher.screen(packets)
        assert [r.matched for r in results] == [True, False]

    def test_detected_filters(self):
        matcher = SignatureMatcher([sig("udid=abc")])
        leaky = make_packet(target="/p?udid=abc")
        clean = make_packet(target="/q?x=1")
        assert matcher.detected([leaky, clean, leaky]) == [leaky, leaky]

    def test_len(self):
        assert len(SignatureMatcher([sig("a=bcd"), sig("e=fgh")])) == 2


class TestProbabilisticMatcher:
    def test_threshold_one_equals_exact(self):
        signatures = [sig("alpha=1", "beta=2")]
        exact = SignatureMatcher(signatures)
        prob = ProbabilisticMatcher(signatures, threshold=1.0)
        full = make_packet(target="/p?alpha=1&beta=2")
        partial = make_packet(target="/p?alpha=1")
        assert exact.match(full).matched == prob.match(full).matched is True
        assert exact.match(partial).matched == prob.match(partial).matched is False

    def test_partial_match_above_threshold(self):
        # "alpha=1" is 7 of 14 total chars -> score 0.5
        matcher = ProbabilisticMatcher([sig("alpha=1", "beta=2x")], threshold=0.5)
        result = matcher.match(make_packet(target="/p?alpha=1"))
        assert result.matched
        assert result.score == pytest.approx(0.5)

    def test_partial_match_below_threshold(self):
        matcher = ProbabilisticMatcher([sig("alpha=1", "beta=2x")], threshold=0.8)
        assert not matcher.match(make_packet(target="/p?alpha=1")).matched

    def test_score_weighs_token_length(self):
        s = sig("zq", "longtoken=abcdef")
        matcher = ProbabilisticMatcher([s], threshold=0.5)
        # only the long token matches: score 16/18
        result = matcher.match(make_packet(target="/p?longtoken=abcdef"))
        assert result.matched
        assert result.score > 0.8

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ProbabilisticMatcher([sig("x=yz")], threshold=0.0)
        with pytest.raises(ValueError):
            ProbabilisticMatcher([sig("x=yz")], threshold=1.5)

    def test_best_scoring_signature_wins(self):
        weak = sig("alpha=1", "zzzz=9")
        strong = sig("alpha=1", "beta=2")
        matcher = ProbabilisticMatcher([weak, strong], threshold=0.4)
        result = matcher.match(make_packet(target="/p?alpha=1&beta=2"))
        assert result.signature is strong


class TestLiteralPrefilter:
    """The inverted literal index narrows candidates without changing verdicts."""

    def corpus_packets(self, small_corpus):
        return small_corpus.trace.packets[:300]

    def reference_match(self, matcher, packet):
        """The pre-index behaviour: full scan of every scope-admitted signature."""
        text = packet.canonical_text()
        for signature in matcher.candidates_for(packet):
            if signature.matches_text(text):
                return MatchResult(matched=True, signature=signature, score=1.0)
        return MatchResult(matched=False)

    def test_equivalent_to_full_scan_over_corpus(self, small_corpus):
        from tests.test_serving_shards import corpus_signatures

        matcher = SignatureMatcher(corpus_signatures(small_corpus))
        hits = 0
        for packet in self.corpus_packets(small_corpus):
            expected = self.reference_match(matcher, packet)
            assert matcher.match(packet) == expected
            hits += expected.matched
        assert hits > 0  # the equivalence run saw real matches

    def test_prefilter_is_pure_narrowing(self):
        matcher = SignatureMatcher(
            [sig("udid=abc"), sig("absent-token"), sig("udid=abc", scope="admob.com")]
        )
        p = make_packet(host="r.admob.com", target="/p?udid=abc")
        text = p.canonical_text()
        narrowed = matcher.candidates_for(p, text)
        assert set(map(id, narrowed)) <= set(map(id, matcher.candidates_for(p)))
        # every actually-matching signature survives the prefilter
        for signature in matcher.candidates_for(p):
            if signature.matches_text(text):
                assert signature in narrowed

    def test_prefilter_drops_absent_literals(self):
        matcher = SignatureMatcher([sig("udid=abc"), sig("never-present")])
        p = make_packet(target="/p?udid=abc")
        narrowed = matcher.candidates_for(p, p.canonical_text())
        assert [s.tokens for s in narrowed] == [("udid=abc",)]

    def test_inverted_index_shape(self):
        short_long = sig("ab", "longest-literal")
        other = sig("longest-literal")
        matcher = SignatureMatcher([short_long, other])
        assert matcher.by_literal["longest-literal"] == [short_long, other]

    def test_probabilistic_matcher_sees_all_candidates(self):
        # Partial-coverage scoring must not be prefiltered: here the longest
        # token is absent but the threshold is met by the other token.
        signatures = [sig("alpha=1", "longest-token-absent")]
        matcher = ProbabilisticMatcher(signatures, threshold=0.2)
        assert matcher.match(make_packet(target="/p?alpha=1")).matched
