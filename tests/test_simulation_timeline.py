"""Longitudinal simulation: day streams, activity, rollouts."""

import pytest

from repro.android.admodules import ADMAKER
from repro.android.services import Param, RequestTemplate, ServiceSpec
from repro.errors import SimulationError
from repro.sensitive.identifiers import IdentifierKind as IK
from repro.simulation.timeline import LongitudinalSimulator, Rollout


def admaker_v3() -> ServiceSpec:
    """A fictional AdMaker upgrade: new endpoint, hashed id."""
    from repro.sensitive.transforms import Transform as TF

    return ServiceSpec(
        name="admaker",
        category="ad",
        hosts=("api.ad-maker.info", "img.ad-maker.info"),
        ip_base="219.94.128.0",
        adoption_target=ADMAKER.adoption_target,
        packets_per_app=ADMAKER.packets_per_app,
        templates=(
            RequestTemplate(
                name="imp_v3",
                method="GET",
                path="/api/v3/impression",
                query=(
                    Param("k", "app_token", length=24),
                    Param.ident("h", IK.ANDROID_ID, TF.MD5, probability=0.95),
                    Param("n", "sequence"),
                ),
                weight=1.0,
            ),
        ),
    )


@pytest.fixture(scope="module")
def simulator():
    return LongitudinalSimulator(n_apps=40, seed=9, daily_activity=0.7)


class TestDayTraces:
    def test_deterministic_per_day(self, simulator):
        a = simulator.day_trace(2)
        b = simulator.day_trace(2)
        assert [p.request.target for p in a] == [p.request.target for p in b]

    def test_days_independent_of_simulation_order(self):
        sim_a = LongitudinalSimulator(n_apps=25, seed=4)
        sim_b = LongitudinalSimulator(n_apps=25, seed=4)
        sim_a.day_trace(0)  # consuming day 0 must not affect day 3
        day3_a = sim_a.day_trace(3)
        day3_b = sim_b.day_trace(3)
        assert [p.request.target for p in day3_a] == [p.request.target for p in day3_b]

    def test_different_days_differ(self, simulator):
        a = simulator.day_trace(0)
        b = simulator.day_trace(1)
        assert [p.request.target for p in a] != [p.request.target for p in b]

    def test_activity_rate_respected(self, simulator):
        active_counts = [len(simulator.day_trace(day).apps()) for day in range(4)]
        mean_active = sum(active_counts) / len(active_counts)
        assert mean_active == pytest.approx(0.7 * len(simulator.apps), rel=0.25)

    def test_timestamps_carry_day_offset(self, simulator):
        day2 = simulator.day_trace(2)
        assert all(2 * 86_400 <= p.timestamp < 3 * 86_400 for p in day2)
        assert all(p.meta["day"] == 2 for p in day2)

    def test_negative_day_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.day_trace(-1)

    def test_window_concatenates(self, simulator):
        window = simulator.window_trace(0, 2)
        assert len(window) == len(simulator.day_trace(0)) + len(simulator.day_trace(1))


class TestRollouts:
    @pytest.fixture(scope="class")
    def rolled(self):
        return LongitudinalSimulator(
            n_apps=40,
            seed=9,
            daily_activity=1.0,
            rollouts=[Rollout(service_name="admaker", day=3, new_spec=admaker_v3())],
        )

    def test_old_format_before_rollout(self, rolled):
        day0 = rolled.day_trace(0)
        targets = [p.request.target for p in day0 if p.meta.get("service") == "admaker"]
        assert targets
        assert all("/api/v2/" in t or "/creatives/" in t for t in targets)

    def test_new_format_from_rollout_day(self, rolled):
        day3 = rolled.day_trace(3)
        targets = [p.request.target for p in day3 if p.meta.get("service") == "admaker"]
        assert targets
        assert all("/api/v3/impression" in t for t in targets)

    def test_other_services_untouched(self, rolled):
        day3 = rolled.day_trace(3)
        nend = [p for p in day3 if p.meta.get("service") == "nend"]
        assert nend  # still emitting the original format
        assert all("na.php" in p.request.target or "banner" in p.request.target for p in nend)

    def test_invalid_rollout_day(self):
        with pytest.raises(SimulationError):
            Rollout(service_name="x", day=-1, new_spec=admaker_v3())

    def test_invalid_activity(self):
        with pytest.raises(SimulationError):
            LongitudinalSimulator(n_apps=5, daily_activity=0.0)


class TestAging:
    def test_signatures_age_across_rollout(self, rolled=None):
        """Signatures from week 1 lose the upgraded module's traffic in
        week 2 — the quantitative aging the longitudinal bench explores."""
        from repro.core.pipeline import DetectionPipeline
        from repro.sensitive.payload_check import PayloadCheck
        from repro.signatures.matcher import SignatureMatcher

        simulator = LongitudinalSimulator(
            n_apps=40,
            seed=9,
            daily_activity=1.0,
            rollouts=[Rollout(service_name="admaker", day=2, new_spec=admaker_v3())],
        )
        check = PayloadCheck(simulator.device.identity)
        week1 = simulator.day_trace(0)
        pipeline = DetectionPipeline(week1, check)
        result = pipeline.run(n_sample=min(80, pipeline.n_suspicious - 5), seed=1)
        matcher = SignatureMatcher(result.signatures)

        day3 = simulator.day_trace(3)
        new_admaker = [
            p for p in day3
            if p.meta.get("service") == "admaker" and check.is_sensitive(p)
        ]
        assert new_admaker
        caught = sum(matcher.is_sensitive(p) for p in new_admaker)
        assert caught / len(new_admaker) < 0.3  # the v3 format escapes
