"""The parallel, cached distance-matrix engine.

The engine's contract is strict: whatever the worker count, chunking, or
caching, its output must be bit-identical to the serial
:func:`repro.distance.matrix.distance_matrix` loop.
"""

import numpy as np
import pytest

from repro.distance.engine import DistanceEngine, MatrixCache, engine_matrix
from repro.distance.matrix import distance_matrix
from repro.distance.ncd import NcdCalculator
from repro.distance.packet import PacketDistance
from repro.errors import DistanceError
from tests.conftest import make_packet


def abs_metric(a, b):
    """Module-level (hence picklable) toy metric."""
    return abs(a - b)


def nan_metric(a, b):
    """Module-level metric that is invalid for one specific pair."""
    if {a, b} == {3, 7}:
        return float("nan")
    return abs(a - b)


@pytest.fixture(scope="module")
def packets():
    """A varied population: repeated hosts/cookies, distinct rlines."""
    out = []
    for i in range(14):
        out.append(
            make_packet(
                host=["ads.alpha.com", "track.beta.net", "cdn.gamma.org"][i % 3],
                ip=["198.51.100.7", "203.0.113.9", "192.0.2.33"][i % 3],
                port=[80, 8080][i % 2],
                target=f"/imp?sid=s{i}&udid=deadbeef{i:04d}",
                cookie=["", "uid=abc123; session=xyz"][i % 2],
                body=b"" if i % 3 else b"lat=35.6;lon=139.7;id=%d" % i,
            )
        )
    return out


@pytest.fixture(scope="module")
def reference(packets):
    return distance_matrix(packets, PacketDistance.paper())


class TestBitIdentical:
    def test_serial_engine_matches_legacy_loop(self, packets, reference):
        built = DistanceEngine(PacketDistance.paper(), workers=1).matrix(packets)
        assert np.array_equal(built.values, reference.values)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_deterministic_across_worker_counts(self, packets, reference, workers):
        engine = DistanceEngine(PacketDistance.paper(), workers=workers, chunk_pairs=8)
        built = engine.matrix(packets)
        assert np.array_equal(built.values, reference.values)

    def test_parallel_uses_multiple_workers(self, packets):
        engine = DistanceEngine(PacketDistance.paper(), workers=2, chunk_pairs=8)
        engine.matrix(packets)
        assert engine.stats.workers_used == 2
        assert engine.stats.chunks > 2

    def test_ablation_metrics_match(self, packets):
        for metric in (PacketDistance.destination_only(), PacketDistance.content_only()):
            reference = distance_matrix(packets, metric)
            built = DistanceEngine(metric, workers=2, chunk_pairs=16).matrix(packets)
            assert np.array_equal(built.values, reference.values)

    def test_generic_metric_parallel(self):
        items = [float(i * i % 11) for i in range(20)]
        reference = distance_matrix(items, abs_metric)
        engine = DistanceEngine(abs_metric, workers=2, chunk_pairs=16)
        built = engine.matrix(items)
        assert np.array_equal(built.values, reference.values)
        assert engine.stats.mode == "generic"


class TestIncrementalExtension:
    def test_extension_equals_full_rebuild(self, packets):
        engine = DistanceEngine(PacketDistance.paper())
        base = engine.matrix(packets[:9])
        extended = engine.extend(base, packets[:9], packets[9:])
        full = engine.matrix(packets)
        assert extended.n == full.n
        assert np.array_equal(extended.values, full.values)

    def test_extension_parallel(self, packets):
        serial = DistanceEngine(PacketDistance.paper())
        parallel = DistanceEngine(PacketDistance.paper(), workers=2, chunk_pairs=8)
        base = serial.matrix(packets[:9])
        assert np.array_equal(
            parallel.extend(base, packets[:9], packets[9:]).values,
            serial.matrix(packets).values,
        )

    def test_extension_computes_only_new_pairs(self, packets):
        engine = DistanceEngine(PacketDistance.paper())
        base = engine.matrix(packets[:10])
        engine.extend(base, packets[:10], packets[10:14])
        assert engine.stats.n_pairs == 10 * 4 + 4 * 3 // 2

    def test_empty_extension_copies(self, packets):
        engine = DistanceEngine(PacketDistance.paper())
        base = engine.matrix(packets[:5])
        same = engine.extend(base, packets[:5], [])
        assert same.n == 5
        assert np.array_equal(same.values, base.values)

    def test_mismatched_base_rejected(self, packets):
        engine = DistanceEngine(PacketDistance.paper())
        base = engine.matrix(packets[:5])
        with pytest.raises(DistanceError):
            engine.extend(base, packets[:6], packets[6:8])

    def test_matrix_cache_grows_incrementally(self, packets):
        cache = MatrixCache(DistanceEngine(PacketDistance.paper()))
        cache.add(packets[:6])
        cache.add(packets[6:10])
        full = DistanceEngine(PacketDistance.paper()).matrix(packets[:10])
        assert len(cache) == 10
        assert np.array_equal(cache.matrix.values, full.values)

    def test_matrix_cache_rebuild(self, packets):
        cache = MatrixCache(DistanceEngine(PacketDistance.paper()))
        cache.add(packets[:6])
        cache.rebuild(packets[4:8])
        assert len(cache) == 4
        assert cache.matrix.n == 4


class TestCacheAccounting:
    def test_pair_lookups_cover_all_components(self, packets):
        engine = DistanceEngine(PacketDistance.paper())
        built = engine.matrix(packets)
        n_pairs = built.values.shape[0]
        # Paper metric: one destination + three content components per pair.
        assert engine.stats.pair_lookups == 4 * n_pairs
        assert 0.0 < engine.stats.pair_hit_rate < 1.0

    def test_singles_all_precomputed(self, packets):
        engine = DistanceEngine(PacketDistance.paper())
        engine.matrix(packets)
        assert engine.stats.singles.precomputed > 0
        assert engine.stats.singles.misses == 0
        assert engine.stats.singles.hit_rate == 1.0

    def test_parallel_accounting_aggregates_workers(self, packets):
        engine = DistanceEngine(PacketDistance.paper(), workers=2, chunk_pairs=8)
        built = engine.matrix(packets)
        assert engine.stats.pair_lookups == 4 * built.values.shape[0]

    def test_stats_serialize(self, packets):
        engine = DistanceEngine(PacketDistance.paper(), workers=2, chunk_pairs=8)
        engine.matrix(packets)
        data = engine.stats.to_dict()
        assert data["mode"] == "packet"
        assert data["workers_used"] == 2
        assert data["singles_misses"] == 0
        assert 0.0 < data["pair_hit_rate"] < 1.0


class TestErrorPaths:
    def test_worker_error_propagates_as_distance_error(self):
        engine = DistanceEngine(nan_metric, workers=2, chunk_pairs=8)
        with pytest.raises(DistanceError):
            engine.matrix(list(range(12)))

    def test_serial_error_matches(self):
        with pytest.raises(DistanceError):
            DistanceEngine(nan_metric).matrix(list(range(12)))

    def test_unpicklable_metric_falls_back_to_serial(self):
        engine = DistanceEngine(lambda a, b: abs(a - b), workers=2, chunk_pairs=4)
        built = engine.matrix([0.0, 1.0, 3.0, 8.0, 2.0])
        assert engine.stats.workers_used == 1
        assert engine.stats.fallback is not None
        assert np.array_equal(
            built.values, distance_matrix([0.0, 1.0, 3.0, 8.0, 2.0], abs_metric).values
        )

    def test_unpicklable_fallback_reason_is_surfaced(self):
        # Regression: the fallback used to be silent about *why*; now the
        # machine-readable reason, the exception detail, and an obs
        # counter all record it.
        from repro.obs import Observability

        obs = Observability.create(seed=0)
        engine = DistanceEngine(lambda a, b: abs(a - b), workers=2, chunk_pairs=4, obs=obs)
        engine.matrix([0.0, 1.0, 3.0, 8.0, 2.0])
        assert engine.stats.fallback == "unpicklable_metric"
        assert engine.stats.fallback_detail  # carries the pickle error text
        assert obs.counter("engine_fallback_unpicklable") == 1
        assert engine.stats.to_dict()["fallback"] == "unpicklable_metric"

    def test_picklable_metric_sets_no_fallback(self):
        engine = DistanceEngine(abs_metric, workers=2, chunk_pairs=4)
        engine.matrix([0.0, 1.0, 3.0, 8.0, 2.0])
        assert engine.stats.fallback is None
        assert engine.stats.fallback_detail is None

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(DistanceError):
            DistanceEngine(abs_metric, workers=-1)

    def test_invalid_chunk_rejected(self):
        with pytest.raises(DistanceError):
            DistanceEngine(abs_metric, chunk_pairs=0)


class TestEdges:
    def test_zero_workers_means_auto(self):
        engine = DistanceEngine(abs_metric, workers=0)
        assert engine.workers >= 1

    def test_empty_and_singleton(self):
        engine = DistanceEngine(abs_metric)
        assert engine.matrix([]).n == 0
        assert engine.matrix([5.0]).n == 1

    def test_default_metric_is_paper(self, packets):
        built = DistanceEngine().matrix(packets[:4])
        reference = distance_matrix(packets[:4], PacketDistance.paper())
        assert np.array_equal(built.values, reference.values)

    def test_one_shot_wrapper(self, packets, reference):
        built = engine_matrix(packets, PacketDistance.paper(), workers=2)
        assert np.array_equal(built.values, reference.values)


class TestNcdPrecompute:
    def test_precompute_fills_cache_once(self):
        calc = NcdCalculator()
        new = calc.precompute([b"alpha", b"beta", b"alpha", b""])
        assert new == 2
        assert calc.cache_size() == 2
        assert calc.stats.precomputed == 2
        # Lazy lookups after precompute are pure hits.
        calc.distance(b"alpha", b"beta")
        assert calc.stats.misses == 0
        assert calc.stats.hits == 2

    def test_clear_cache_resets_stats(self):
        calc = NcdCalculator()
        calc.precompute([b"alpha"])
        calc.distance(b"alpha", b"alpha-prime")
        calc.clear_cache()
        assert calc.cache_size() == 0
        assert calc.stats.lookups == 0 and calc.stats.precomputed == 0

    def test_hit_rate(self):
        calc = NcdCalculator()
        calc.distance(b"xx", b"yy")  # two misses
        calc.distance(b"xx", b"yy")  # two hits
        assert calc.stats.hit_rate == 0.5
