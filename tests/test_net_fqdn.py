"""FQDN normalization and registered-domain extraction."""

import pytest

from repro.errors import ParseError
from repro.net.fqdn import Fqdn, normalize_host, registered_domain


class TestNormalize:
    def test_lowercases(self):
        assert normalize_host("Ads.AdMob.COM") == "ads.admob.com"

    def test_strips_trailing_dot_and_space(self):
        assert normalize_host(" example.com. ") == "example.com"

    @pytest.mark.parametrize("bad", ["", ".", "a..b", "ex ample.com", "exa$mple.com"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            normalize_host(bad)

    def test_allows_digits_and_dashes(self):
        assert normalize_host("lh3-cache2.ggpht.com") == "lh3-cache2.ggpht.com"


class TestRegisteredDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("ads.admob.com", "admob.com"),
            ("googleads.g.doubleclick.net", "doubleclick.net"),
            ("admob.com", "admob.com"),
            ("search.yahooapis.jp", "yahooapis.jp"),
            ("app.rakuten.co.jp", "rakuten.co.jp"),
            ("a.b.c.rakuten.co.jp", "rakuten.co.jp"),
            ("sp.mbga.jp", "mbga.jp"),
            ("www.example.co.uk", "example.co.uk"),
            ("jp", "jp"),
        ],
    )
    def test_extraction(self, host, expected):
        assert registered_domain(host) == expected

    def test_case_insensitive(self):
        assert registered_domain("ADS.ADMOB.COM") == "admob.com"


class TestFqdn:
    def test_parse_and_str(self):
        f = Fqdn.parse("Ads.AdMob.Com")
        assert str(f) == "ads.admob.com"

    def test_labels(self):
        assert Fqdn.parse("a.b.c").labels == ("a", "b", "c")

    def test_registered(self):
        assert Fqdn.parse("ads.admob.com").registered == "admob.com"

    def test_subdomain(self):
        assert Fqdn.parse("googleads.g.doubleclick.net").subdomain == "googleads.g"
        assert Fqdn.parse("admob.com").subdomain == ""
