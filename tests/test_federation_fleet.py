"""run_federation: the end-to-end crowdsourcing round."""

import json

import pytest

from repro.errors import FederationError
from repro.federation.aggregate import DirSupportStore
from repro.federation.faults import DeviceFaultPlan
from repro.federation.fleet import run_federation
from repro.obs import Observability


@pytest.fixture(scope="session")
def round_result(small_corpus):
    return run_federation(
        small_corpus, seed=3, n_devices=12, reports_per_device=6, min_support=2
    )


class TestRound:
    def test_all_honest_reports_accepted(self, round_result):
        assert round_result.ingest_stats["accepted"] == 12 * 6
        assert round_result.ingest_stats["devices_seen"] == 12

    def test_k_gate_admits_shared_tokens(self, round_result):
        assert round_result.admitted_tokens
        assert round_result.material_size >= len(round_result.admitted_tokens)

    def test_signatures_generated(self, round_result):
        assert round_result.signatures
        assert round_result.signature_bytes

    def test_summary_is_json_ready(self, round_result):
        summary = round_result.summary()
        json.dumps(summary)
        assert summary["n_devices"] == 12
        assert summary["sends"] == round_result.sends

    def test_fault_free_round_has_no_junk(self, round_result):
        assert round_result.fault_counts.get("malform", 0) == 0
        assert round_result.ingest_stats["counts"]["rejected_malformed"] == 0
        assert round_result.fabricated_pool == []


class TestDeterminism:
    def test_same_seed_same_signatures(self, small_corpus):
        kwargs = dict(seed=3, n_devices=8, reports_per_device=4, min_support=2)
        a = run_federation(small_corpus, **kwargs)
        b = run_federation(small_corpus, **kwargs)
        assert a.signature_bytes == b.signature_bytes
        assert a.sends == b.sends
        assert a.ingest_stats == b.ingest_stats

    def test_byte_identity_under_faults(self, small_corpus, round_result):
        # The tentpole invariant: a faulted fleet agrees byte-for-byte
        # with the fault-free fleet on what it signed.
        faulted = run_federation(
            small_corpus,
            seed=3,
            n_devices=12,
            reports_per_device=6,
            min_support=2,
            fault_plan=DeviceFaultPlan.uniform(0.4, seed=99),
        )
        assert faulted.fault_counts != round_result.fault_counts  # faults really fired
        assert faulted.sends > round_result.sends  # junk really hit the wire
        assert faulted.signature_bytes == round_result.signature_bytes
        assert faulted.admitted_tokens == round_result.admitted_tokens

    def test_poison_stays_out_of_material_but_lands_in_pool(self, small_corpus):
        result = run_federation(
            small_corpus,
            seed=3,
            n_devices=12,
            reports_per_device=6,
            min_support=2,
            fault_plan=DeviceFaultPlan(seed=5, poison=0.5),
        )
        assert result.fabricated_pool  # poison was accepted at ingest...
        assert not any(p.meta.get("fabricated") for p in result.material)  # ...never signed


class TestPluggableStore:
    def test_dir_store_round(self, small_corpus, tmp_path):
        result = run_federation(
            small_corpus,
            seed=3,
            n_devices=6,
            reports_per_device=4,
            min_support=2,
            store=DirSupportStore(tmp_path / "fed"),
        )
        assert (tmp_path / "fed" / "support.jsonl").exists()
        assert result.admitted_tokens

    def test_obs_counters_emitted(self, small_corpus):
        obs = Observability.create(seed=3)
        run_federation(
            small_corpus, seed=3, n_devices=4, reports_per_device=3,
            min_support=2, obs=obs,
        )
        assert obs.counter("fed_ingest_accepted") == 12
        assert obs.counter("fed_agg_counted") > 0


class TestValidation:
    def test_zero_devices_rejected(self, small_corpus):
        with pytest.raises(FederationError):
            run_federation(small_corpus, n_devices=0)

    def test_zero_reports_rejected(self, small_corpus):
        with pytest.raises(FederationError):
            run_federation(small_corpus, reports_per_device=0)
