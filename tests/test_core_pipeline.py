"""End-to-end pipeline on the shared small corpus."""

import pytest

from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.distance.packet import PacketDistance


@pytest.fixture(scope="module")
def pipeline(request):
    small_corpus = request.getfixturevalue("small_corpus")
    return DetectionPipeline(small_corpus.trace, small_corpus.payload_check())


class TestPipeline:
    def test_population_counts(self, pipeline, small_corpus):
        assert pipeline.n_suspicious + pipeline.n_normal == len(small_corpus.trace)
        assert pipeline.n_suspicious > 0

    def test_run_produces_reasonable_detection(self, pipeline):
        result = pipeline.run(n_sample=50, seed=1)
        assert result.signatures
        assert result.metrics.true_positive_rate > 0.5
        assert result.metrics.false_positive_rate < 0.1
        assert result.n_sample == 50

    def test_training_packets_all_redetected(self, pipeline):
        from repro.signatures.matcher import SignatureMatcher

        result = pipeline.run(n_sample=40, seed=2)
        # Most sampled packets should be re-matched by their own signatures
        # (singleton outliers dropped by the cut are the exception).
        matcher = SignatureMatcher(result.signatures)
        generation = pipeline.server.generate(40, seed=2)
        redetected = sum(1 for p in generation.sample if matcher.is_sensitive(p))
        assert redetected >= 0.7 * 40

    def test_sweep_metrics_shape(self, pipeline):
        results = pipeline.sweep([20, 60], seed=0)
        assert len(results) == 2
        tp_small, tp_large = (r.metrics.true_positive_rate for r in results)
        # Larger samples cover more modules; allow small non-monotonic noise.
        assert tp_large >= tp_small - 0.1

    def test_custom_distance_config(self, small_corpus):
        config = PipelineConfig(distance=PacketDistance.content_only())
        pipeline = DetectionPipeline(small_corpus.trace, small_corpus.payload_check(), config)
        result = pipeline.run(n_sample=30, seed=1)
        assert result.metrics.true_positive_rate >= 0.0  # runs to completion
