"""The arena harness: recovery scoring, budgets, and byte-identical replay."""

import json

import pytest

from repro.arena.harness import (
    ArenaBudget,
    ArenaReport,
    _recovery_metrics,
    run_arena,
)


def ledger(recalls, evasions=None):
    evasions = evasions or [round(1.0 - r, 6) for r in recalls]
    return [
        {"round": i + 1, "recall": r, "evasion_rate": e}
        for i, (r, e) in enumerate(zip(recalls, evasions))
    ]


class TestRecoveryMetrics:
    def test_never_evaded(self):
        recovery, half_life, recovered = _recovery_metrics(
            0.9, ledger([0.9, 0.88, 0.9], evasions=[0.0, 0.02, 0.0]),
            epsilon=0.05,
        )
        assert recovery == 0
        assert half_life == 0.0
        assert recovered

    def test_onset_and_recovery_counted_in_rounds(self):
        # onset at round index 1, back within epsilon at index 3 -> 2 rounds
        recovery, half_life, recovered = _recovery_metrics(
            0.9, ledger([0.9, 0.2, 0.5, 0.88]), epsilon=0.05
        )
        assert recovery == 2
        assert recovered
        # peak evasion 0.8 at index 1, first <= 0.4 at index 3 -> 2 rounds
        assert half_life == 2.0

    def test_never_recovers(self):
        recovery, __, recovered = _recovery_metrics(
            0.9, ledger([0.2, 0.3, 0.4]), epsilon=0.05
        )
        assert recovery is None
        assert not recovered

    def test_half_life_never_reached(self):
        __, half_life, __ = _recovery_metrics(
            0.9, ledger([0.1, 0.2, 0.3]), epsilon=0.05
        )
        assert half_life is None

    def test_empty_ledger_is_not_recovered(self):
        recovery, half_life, recovered = _recovery_metrics(0.9, [], epsilon=0.05)
        assert recovery == 0
        assert half_life == 0.0
        assert not recovered


def episode(**overrides):
    base = {
        "family": "padding_chaff",
        "pre_attack_recall": 0.9,
        "pre_attack_fp_rate": 0.1,
        "final_recall": 0.9,
        "peak_evasion": 0.5,
        "rounds_to_recovery": 1,
        "evasion_half_life": 1.0,
        "recovered": True,
        "rounds": [{"fp_rate": 0.1}],
    }
    base.update(overrides)
    return base


def report_with(episodes, **overrides):
    report = ArenaReport(
        n_apps=10, seed=0, rounds=3, epsilon=0.05, threshold=1.2,
        train=10, leak=5, benign=5, workers=1, cpu_count=1,
        families=episodes,
    )
    for name, value in overrides.items():
        setattr(report, name, value)
    return report


class TestBudget:
    def test_clean_report_has_no_violations(self):
        assert ArenaBudget().violations(report_with({"a": episode()})) == []

    def test_low_pre_attack_recall(self):
        found = ArenaBudget().violations(
            report_with({"a": episode(pre_attack_recall=0.3)})
        )
        assert any("pre-attack recall" in v for v in found)

    def test_unrecovered_family(self):
        found = ArenaBudget().violations(
            report_with({"a": episode(recovered=False)})
        )
        assert any("not restored" in v for v in found)

    def test_slow_recovery_and_never(self):
        budget = ArenaBudget(max_rounds_to_recovery=2)
        assert budget.violations(
            report_with({"a": episode(rounds_to_recovery=5)})
        )
        assert any(
            "never" in v
            for v in budget.violations(
                report_with({"a": episode(rounds_to_recovery=None)})
            )
        )

    def test_half_life_over_budget(self):
        found = ArenaBudget(max_evasion_half_life=1.0).violations(
            report_with({"a": episode(evasion_half_life=4.0)})
        )
        assert any("half-life" in v for v in found)

    def test_fp_regression_is_relative_to_pre_attack(self):
        # 0.12 is fine against a 0.10 pre-attack rate with a 0.02 ceiling...
        clean = ArenaBudget().violations(
            report_with({"a": episode(rounds=[{"fp_rate": 0.12}])})
        )
        assert clean == []
        # ...but 0.13 regresses.
        found = ArenaBudget().violations(
            report_with({"a": episode(rounds=[{"fp_rate": 0.13}])})
        )
        assert any("false-positive" in v for v in found)

    def test_broken_ground_truth(self):
        found = ArenaBudget().violations(
            report_with({"a": episode()}, ground_truth_intact=False)
        )
        assert any("ground truth" in v for v in found)

    def test_disabled_gates_do_not_fire(self):
        budget = ArenaBudget(
            min_pre_attack_recall=None, max_rounds_to_recovery=None,
            max_evasion_half_life=None, max_fp_regression=None,
            require_recovered=False,
        )
        bad = episode(
            pre_attack_recall=0.1, recovered=False, rounds_to_recovery=None,
            evasion_half_life=None, rounds=[{"fp_rate": 0.9}],
        )
        assert budget.violations(report_with({"a": bad})) == []


ARENA_KW = dict(
    n_apps=40, seed=5, rounds=3, train=72, leak=32, benign=48,
    families=["padding_chaff", "header_reorder"],
)


@pytest.fixture(scope="module")
def small_report():
    return run_arena(**ARENA_KW)


class TestRunArena:
    def test_double_run_is_byte_identical(self, small_report):
        replay = run_arena(**ARENA_KW)
        a = json.dumps(small_report.to_dict(), indent=2, sort_keys=True)
        b = json.dumps(replay.to_dict(), indent=2, sort_keys=True)
        assert a == b

    def test_families_recover(self, small_report):
        assert small_report.ground_truth_intact
        assert small_report.recovered
        assert small_report.ok, small_report.violations
        for episode in small_report.families.values():
            assert episode["recovered"]
            assert episode["rounds_to_recovery"] is not None
            assert len(episode["rounds"]) == small_report.rounds

    def test_defense_actually_engaged(self, small_report):
        """The verdict must come from healing, not from a toothless attack."""
        assert any(
            episode["peak_evasion"] > small_report.epsilon
            and episode["republishes"] >= 1
            and episode["reloads_applied"] >= 1
            for episode in small_report.families.values()
        )

    def test_report_shape_passes_benchcheck(self, small_report):
        from repro.eval.benchcheck import check_report

        assert check_report(small_report.to_dict()) == []

    def test_save_round_trips(self, small_report, tmp_path):
        path = small_report.save(tmp_path / "BENCH_arena.json")
        assert json.loads(path.read_text()) == small_report.to_dict()

    def test_render_mentions_every_family(self, small_report):
        text = small_report.render()
        for name in small_report.families:
            assert name in text

    def test_family_can_be_passed_as_string_or_enum(self):
        from repro.arena.mutations import MutationFamily

        with pytest.raises(ValueError):
            run_arena(n_apps=40, families=["no_such_family"])
        # enum members are accepted verbatim (validated before any work)
        assert MutationFamily("padding_chaff") is MutationFamily.PADDING_CHAFF

    def test_undersized_corpus_is_rejected(self):
        with pytest.raises(ValueError):
            run_arena(n_apps=4, train=5000, leak=10, benign=10)
