"""Transform lattice: hashing and wire-encoding enumeration."""

import base64
import hashlib

from hypothesis import given
from hypothesis import strategies as st

from repro.sensitive.transforms import (
    Transform,
    all_wire_spellings,
    transform_value,
    transform_variants,
)


class TestTransformValue:
    def test_plain_identity(self):
        assert transform_value("abc", Transform.PLAIN) == "abc"

    def test_md5(self):
        assert transform_value("abc", Transform.MD5) == hashlib.md5(b"abc").hexdigest()

    def test_sha1(self):
        assert transform_value("abc", Transform.SHA1) == hashlib.sha1(b"abc").hexdigest()

    def test_sha256(self):
        assert transform_value("abc", Transform.SHA256) == hashlib.sha256(b"abc").hexdigest()

    def test_is_hash_flags(self):
        assert not Transform.PLAIN.is_hash
        assert Transform.MD5.is_hash
        assert Transform.SHA1.is_hash


class TestVariants:
    def test_plain_value_included(self):
        assert "358537041234567" in transform_variants("358537041234567", Transform.PLAIN)

    def test_hex_uppercase_variant(self):
        variants = transform_variants("deadbeef", Transform.PLAIN)
        assert "DEADBEEF" in variants

    def test_non_hex_gets_no_uppercase(self):
        variants = transform_variants("NTT DOCOMO", Transform.PLAIN)
        assert "ntt docomo" not in variants  # only explicit lowering elsewhere

    def test_base64_variant(self):
        variants = transform_variants("myvalue", Transform.PLAIN)
        assert base64.b64encode(b"myvalue").decode() in variants

    def test_urlencoded_variant_for_spaces(self):
        variants = transform_variants("NTT DOCOMO", Transform.PLAIN)
        assert "NTT+DOCOMO" in variants

    def test_short_spellings_dropped(self):
        variants = transform_variants("ab", Transform.PLAIN)
        assert "ab" not in variants  # < 4 chars anchors on noise

    def test_md5_variants_are_of_digest(self):
        digest = hashlib.md5(b"x-value").hexdigest()
        variants = transform_variants("x-value", Transform.MD5)
        assert digest in variants
        assert digest.upper() in variants

    def test_all_wire_spellings_keys(self):
        spellings = all_wire_spellings("value123")
        assert set(spellings) == set(Transform)


@given(st.text(min_size=4, max_size=24))
def test_variants_always_contain_the_transformed_value(value):
    for transform in Transform:
        transformed = transform_value(value, transform)
        if len(transformed) >= 4:
            assert transformed in transform_variants(value, transform)
