"""Baselines: keyword regexes, exact-match memorization, pipeline variants."""

import pytest

from repro.baselines.exactmatch import ExactMatchDetector
from repro.baselines.keyword import KeywordDetector
from repro.baselines.variants import VARIANTS, ablation_config, run_variant
from repro.errors import ReproError
from tests.conftest import make_packet


class TestKeywordDetector:
    def test_catches_named_parameter(self):
        detector = KeywordDetector()
        assert detector.is_sensitive(make_packet(target="/x?imei=358537041234567"))

    def test_catches_imei_shape_without_name(self):
        detector = KeywordDetector()
        assert detector.is_sensitive(make_packet(target="/x?d=358537041234567"))

    def test_conservative_misses_android_id_shape(self):
        detector = KeywordDetector()
        assert not detector.is_sensitive(make_packet(target="/x?z=a1b2c3d4e5f60718"))

    def test_standard_catches_android_id_shape(self):
        detector = KeywordDetector("standard")
        assert detector.is_sensitive(make_packet(target="/x?z=a1b2c3d4e5f60718"))

    def test_standard_collides_with_session_tokens(self):
        detector = KeywordDetector("standard")
        assert detector.is_sensitive(make_packet(cookie="sid=0123456789abcdef"))

    def test_catches_carrier_name(self):
        detector = KeywordDetector()
        assert detector.is_sensitive(make_packet(body=b"op=SoftBank"))

    def test_misses_hashed_id_below_aggressive(self):
        md5ish = "d41d8cd98f00b204e9800998ecf8427e"
        for mode in ("conservative", "standard"):
            assert not KeywordDetector(mode).is_sensitive(
                make_packet(target=f"/x?z={md5ish}")
            )

    def test_aggressive_catches_hash_shapes(self):
        detector = KeywordDetector("aggressive")
        md5ish = "d41d8cd98f00b204e9800998ecf8427e"
        assert detector.is_sensitive(make_packet(target=f"/x?z={md5ish}"))

    def test_aggressive_false_positives_on_tokens(self):
        # A random 32-hex session token is indistinguishable from an MD5.
        detector = KeywordDetector("aggressive")
        assert detector.is_sensitive(make_packet(cookie="sid=0123456789abcdef0123456789abcdef"))

    def test_clean_traffic_passes(self):
        detector = KeywordDetector()
        assert not detector.is_sensitive(make_packet(target="/news?page=3"))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            KeywordDetector("yolo")

    def test_evaluate_rates(self):
        detector = KeywordDetector()
        suspicious = [make_packet(target="/x?imei=358537041234567")] * 3
        normal = [make_packet(target="/n?q=1")] * 7
        tp, fp = detector.evaluate(suspicious, normal)
        assert tp == 1.0
        assert fp == 0.0

    def test_on_corpus_escalation_tradeoff(self, small_corpus, small_split):
        """The motivating comparison: each escalation step buys recall with
        false positives; signatures escape the trade-off entirely."""
        suspicious, normal = small_split
        tp_c, fp_c = KeywordDetector("conservative").evaluate(list(suspicious), list(normal))
        tp_s, fp_s = KeywordDetector("standard").evaluate(list(suspicious), list(normal))
        tp_a, fp_a = KeywordDetector("aggressive").evaluate(list(suspicious), list(normal))
        assert tp_c <= tp_s <= tp_a
        assert fp_c <= fp_s <= fp_a
        assert tp_a > 0.9  # shapes catch nearly everything...
        assert fp_a > 0.2  # ...by flagging every random token too


class TestExactMatch:
    def test_detects_only_memorized(self):
        train = [make_packet(target="/x?imei=1&ts=111")]
        detector = ExactMatchDetector(train)
        assert detector.is_sensitive(make_packet(target="/x?imei=1&ts=111"))
        assert not detector.is_sensitive(make_packet(target="/x?imei=1&ts=222"))

    def test_len(self):
        assert len(ExactMatchDetector([make_packet(), make_packet()])) == 1  # identical

    def test_near_zero_recall_on_fresh_traffic(self, small_corpus, small_split):
        suspicious, __ = small_split
        train = list(suspicious)[:30]
        detector = ExactMatchDetector(train)
        fresh = list(suspicious)[30:]
        recall = sum(detector.is_sensitive(p) for p in fresh) / max(1, len(fresh))
        assert recall < 0.2  # timestamps/tokens change every request

    def test_evaluate_n_corrected(self):
        train = [make_packet(target=f"/x?imei=1&i={i}") for i in range(3)]
        suspicious = train + [make_packet(target="/x?imei=1&i=99")]
        normal = [make_packet(target=f"/n?q={i}") for i in range(10)]
        detector = ExactMatchDetector(train)
        tp, fp = detector.evaluate(suspicious, normal, n_sample=3)
        assert tp == 0.0  # only the memorized three matched
        assert fp == 0.0


class TestVariants:
    def test_all_named_variants_resolve(self):
        for name in VARIANTS:
            config = ablation_config(name)
            assert config.distance.max_distance > 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(ReproError):
            ablation_config("nonsense")

    def test_destination_only_variant_runs(self, small_corpus):
        result = run_variant(
            small_corpus.trace, small_corpus.payload_check(), "destination_only", 30, seed=1
        )
        assert result.signatures is not None
        assert 0.0 <= result.metrics.true_positive_rate <= 1.0

    def test_paper_variant_beats_exact_match_baseline(self, small_corpus, small_split):
        suspicious, normal = small_split
        result = run_variant(small_corpus.trace, small_corpus.payload_check(), "paper", 40, seed=1)
        train = list(suspicious)[:40]
        exact = ExactMatchDetector(train)
        exact_tp, __ = exact.evaluate(list(suspicious), list(normal), n_sample=40)
        assert result.metrics.true_positive_rate > exact_tp + 0.3
