"""Incremental signature-set maintenance over traffic batches."""

import pytest

from repro.core.incremental import IncrementalSignatureSet
from repro.signatures.conjunction import ConjunctionSignature
from tests.conftest import make_packet


def module_packet(module, seq, token="tokval"):
    return make_packet(
        host=f"ads.{module}.com",
        ip="198.51.100.9",
        target=f"/{module}/imp?sid={token}&udid=deadbeef112233{module[:2]}&seq={seq}",
    )


class TestUpdate:
    def test_first_batch_creates_signatures(self):
        incset = IncrementalSignatureSet()
        batch = [module_packet("alpha", i) for i in range(8)]
        report = incset.update(batch)
        assert report.batch_size == 8
        assert report.already_covered == 0
        assert report.added
        assert len(incset) > 0

    def test_covered_packets_skipped(self):
        incset = IncrementalSignatureSet()
        incset.update([module_packet("alpha", i) for i in range(8)])
        size_before = len(incset)
        report = incset.update([module_packet("alpha", i) for i in range(8, 16)])
        assert report.already_covered == 8
        assert report.residue == 0
        assert len(incset) == size_before

    def test_new_module_extends_set(self):
        incset = IncrementalSignatureSet()
        incset.update([module_packet("alpha", i) for i in range(8)])
        report = incset.update([module_packet("beta", i) for i in range(8)])
        assert report.residue == 8
        assert report.added
        domains = {s.scope_domain for s in incset.signatures}
        assert "alpha.com" in domains and "beta.com" in domains

    def test_small_residue_carried_over(self):
        incset = IncrementalSignatureSet(min_residue=6)
        report = incset.update([module_packet("alpha", i) for i in range(3)])
        assert not report.added
        assert incset.pending == 3
        # Next batch adds enough mass; carryover is consumed.
        report = incset.update([module_packet("alpha", i) for i in range(3, 8)])
        assert report.added
        assert incset.pending == 0

    def test_matcher_reflects_current_set(self):
        incset = IncrementalSignatureSet()
        incset.update([module_packet("alpha", i) for i in range(8)])
        fresh = module_packet("alpha", 999)
        assert incset.matcher().is_sensitive(fresh)


class TestRetirement:
    def test_unfired_signatures_retired(self):
        stale = ConjunctionSignature(tokens=("neverseen=zzz",), scope_domain="dead.com")
        incset = IncrementalSignatureSet([stale])
        incset.update([module_packet("alpha", i) for i in range(8)])
        retired = incset.retire_unmatched(min_matches=1)
        assert stale in retired
        assert stale not in incset.signatures

    def test_active_signatures_kept(self):
        incset = IncrementalSignatureSet()
        incset.update([module_packet("alpha", i) for i in range(8)])
        incset.update([module_packet("alpha", i) for i in range(8, 14)])  # fires
        retired = incset.retire_unmatched(min_matches=1)
        assert not any(s.scope_domain == "alpha.com" for s in retired)

    def test_match_counts_exposed(self):
        incset = IncrementalSignatureSet()
        incset.update([module_packet("alpha", i) for i in range(8)])
        incset.update([module_packet("alpha", i) for i in range(8, 12)])
        counts = incset.match_counts()
        assert sum(counts.values()) == 4


class TestConsolidationMatrixCache:
    def test_material_retained_and_matrix_extended(self):
        incset = IncrementalSignatureSet()
        incset.update([module_packet("alpha", i) for i in range(8)])
        incset.update([module_packet("alpha", i) for i in range(8, 16)])  # exemplars
        incset.consolidate()
        first = incset.consolidation_material
        assert first >= 6
        incset.update([module_packet("beta", i) for i in range(8)])
        incset.update([module_packet("beta", i) for i in range(8, 16)])
        incset.consolidate()
        # Second consolidation extends the cached matrix instead of
        # starting over: earlier material is still in the pool.
        assert incset.consolidation_material > first
        matrix = incset._consolidation.matrix
        assert matrix is not None and matrix.n == incset.consolidation_material

    def test_material_bounded_by_cap(self):
        incset = IncrementalSignatureSet(max_consolidation_material=10)
        incset.update([module_packet("alpha", i) for i in range(8)])
        incset.update([module_packet("alpha", i) for i in range(8, 16)])
        incset.consolidate()
        incset.update([module_packet("beta", i) for i in range(8)])
        incset.update([module_packet("beta", i) for i in range(8, 16)])
        incset.consolidate()
        assert incset.consolidation_material <= 10

    def test_consolidation_below_mass_is_a_noop(self):
        incset = IncrementalSignatureSet(min_residue=6)
        incset.update([module_packet("alpha", i) for i in range(3)])
        assert incset.consolidate() == 0
        assert incset.consolidation_material == 0

    def test_over_ceiling_prunes_and_extends_cached_matrix(self):
        """Regression: overflowing the material cap used to throw the whole
        cached matrix away and recompute every pair from scratch.  Now the
        cache is pruned to the surviving window and extended via
        ``DistanceEngine.extend`` — old surviving pairs are never paid twice."""
        import numpy as np

        from repro.distance.engine import DistanceEngine
        from repro.distance.packet import PacketDistance

        incset = IncrementalSignatureSet(max_consolidation_material=12)
        incset.update([module_packet("alpha", i) for i in range(8)])
        incset.update([module_packet("alpha", i) for i in range(8, 16)])
        incset.consolidate()
        assert incset.consolidation_material > 0
        incset.update([module_packet("beta", i) for i in range(8)])
        incset.update([module_packet("beta", i) for i in range(8, 16)])
        pairs_before = incset._consolidation.engine.stats.n_pairs
        incset.consolidate()
        pairs_added = incset._consolidation.engine.stats.n_pairs - pairs_before
        material = incset.consolidation_material
        assert material <= 12
        # The cached matrix stays bit-identical to a from-scratch build...
        reference = DistanceEngine(PacketDistance.paper()).matrix(
            incset._consolidation.items
        )
        assert np.array_equal(incset._consolidation.matrix.values, reference.values)
        # ...while only the new-pair block was computed, not all pairs.
        assert 0 < pairs_added < material * (material - 1) // 2

    def test_over_ceiling_without_cached_matrix_rebuilds(self):
        """The cache-miss path: no matrix survives to extend, so the window
        is rebuilt outright — and the cache is coherent afterwards."""
        incset = IncrementalSignatureSet(max_consolidation_material=12)
        incset.update([module_packet("alpha", i) for i in range(8)])
        incset.update([module_packet("alpha", i) for i in range(8, 16)])
        incset.consolidate()
        incset._consolidation.matrix = None  # simulate a lost cache
        incset.update([module_packet("beta", i) for i in range(8)])
        incset.update([module_packet("beta", i) for i in range(8, 16)])
        incset.consolidate()
        material = incset.consolidation_material
        assert 0 < material <= 12
        matrix = incset._consolidation.matrix
        assert matrix is not None and matrix.n == material


class TestOnCorpus:
    def test_streaming_matches_batch_quality(self, small_corpus, small_split):
        """Feeding the suspicious group in batches converges to a set with
        recall comparable to one-shot generation on the same data."""
        from repro.eval.crossval import generate_from
        from repro.signatures.matcher import SignatureMatcher

        suspicious, __ = small_split
        packets = list(suspicious)
        incset = IncrementalSignatureSet()
        chunk = 60
        for start in range(0, min(300, len(packets)), chunk):
            incset.update(packets[start : start + chunk])
        evaluate = lambda m: sum(m.is_sensitive(p) for p in packets) / len(packets)
        streaming_recall_before = evaluate(incset.matcher())
        incset.consolidate()
        streaming_recall_after = evaluate(incset.matcher())
        oneshot_recall = evaluate(SignatureMatcher(generate_from(packets[:300])))
        # Consolidation strictly helps (union-merge cannot lose coverage)...
        assert streaming_recall_after >= streaming_recall_before
        # ...and lands within a bounded gap of one-shot generation — the
        # residual difference is the price of bounded memory over
        # app-sequential batches (documented in the module docstring).
        assert streaming_recall_after >= oneshot_recall - 0.25
