"""Exporter validity: JSONL round-trips, Chrome traces are well-formed,
Prometheus text parses, and same-seed runs are byte-identical."""

import json
import re

import pytest

from repro.obs import Observability, export_chrome_trace, export_spans_jsonl
from repro.obs.export import chrome_trace_events
from repro.obs.scenarios import run_traced_pipeline

PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9]+(\.[0-9]+)?(e-?[0-9]+)?$"
)


@pytest.fixture()
def traced_obs():
    """A small hand-built span tree across two tracks."""
    obs = Observability.create(seed=1, config={"unit": "test"})
    with obs.span("root", track="pipeline", n=3):
        obs.advance(3)
        with obs.span("child", track="engine"):
            obs.advance(2)
        with obs.span("child", track="engine"):
            obs.advance(1)
    obs.inc("widgets", 4)
    obs.observe("latency", 2.0, bounds=(1.0, 4.0))
    return obs


class TestSpanJsonl:
    def test_every_line_roundtrips(self, traced_obs, tmp_path):
        path = export_spans_jsonl(traced_obs.tracer, tmp_path / "spans.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "run"
        assert lines[0]["run_id"] == traced_obs.tracer.run_id
        spans = lines[1:]
        assert all(line["kind"] == "span" for line in spans)
        assert [line["span_id"] for line in spans] == sorted(
            line["span_id"] for line in spans
        )
        root = spans[0]
        assert root["name"] == "root" and root["attrs"] == {"n": 3}
        assert root["duration_ticks"] == root["end_tick"] - root["start_tick"]

    def test_no_wall_field_without_wall_clock(self, traced_obs, tmp_path):
        path = export_spans_jsonl(traced_obs.tracer, tmp_path / "spans.jsonl")
        assert "wall_s" not in path.read_text()


class TestChromeTrace:
    def test_document_shape(self, traced_obs, tmp_path):
        path = export_chrome_trace(traced_obs.tracer, tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert document["otherData"]["run_id"] == traced_obs.tracer.run_id
        events = document["traceEvents"]
        assert all("ph" in e for e in events)
        assert {e["ph"] for e in events} == {"M", "X"}

    def test_metadata_names_every_track(self, traced_obs):
        events = chrome_trace_events(traced_obs.tracer)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"pipeline", "engine"}

    def test_timestamps_monotonic_per_track(self, traced_obs):
        events = [e for e in chrome_trace_events(traced_obs.tracer) if e["ph"] == "X"]
        by_tid: dict[int, list[int]] = {}
        for event in events:
            assert event["pid"] == 1
            assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
            assert event["dur"] > 0
            by_tid.setdefault(event["tid"], []).append(event["ts"])
        assert by_tid  # at least one track
        for timestamps in by_tid.values():
            assert timestamps == sorted(timestamps)

    def test_span_attrs_land_in_args(self, traced_obs):
        events = chrome_trace_events(traced_obs.tracer)
        root = next(e for e in events if e["ph"] == "X" and e["name"] == "root")
        assert root["args"]["n"] == 3
        assert root["args"]["parent_id"] is None


class TestPrometheusExport:
    def test_text_parses(self, traced_obs):
        for line in traced_obs.metrics.to_prometheus().splitlines():
            if not line.startswith("#"):
                assert PROM_LINE.match(line), line


class TestScenarioDeterminism:
    def test_same_seed_runs_byte_identical(self, tmp_path):
        kwargs = dict(n_apps=12, sample=10, seed=5)
        first = run_traced_pipeline(out_dir=tmp_path / "a", **kwargs)
        second = run_traced_pipeline(out_dir=tmp_path / "b", **kwargs)
        assert first.summary == second.summary
        for key, path in first.paths.items():
            assert path.read_bytes() == second.paths[key].read_bytes(), key

    def test_different_seed_changes_run_id(self, tmp_path):
        first = run_traced_pipeline(n_apps=12, sample=10, seed=5, out_dir=tmp_path / "a")
        second = run_traced_pipeline(n_apps=12, sample=10, seed=6, out_dir=tmp_path / "b")
        assert first.summary["run_id"] != second.summary["run_id"]

    def test_pipeline_scenario_artifacts_are_valid(self, tmp_path):
        artifacts = run_traced_pipeline(n_apps=12, sample=10, seed=5, out_dir=tmp_path)
        for line in (tmp_path / "spans.jsonl").read_text().splitlines():
            json.loads(line)
        json.loads((tmp_path / "trace.json").read_text())
        stages = json.loads((tmp_path / "stages.json").read_text())
        # The acceptance bar: at least six distinct pipeline stages, each
        # with nonzero self-time in the rollup.
        stage_names = {
            "collect", "payload_check", "sample", "distance_matrix",
            "linkage", "cut", "signature_gen", "eval",
        }
        assert stage_names <= set(stages["stages"])
        for name in stage_names:
            assert stages["stages"][name]["self_ticks"] > 0, name
        assert artifacts.profile.stage("pipeline_run").self_ticks > 0
