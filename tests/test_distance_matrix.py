"""Condensed distance matrices."""

import numpy as np
import pytest

from repro.distance.matrix import CondensedMatrix, distance_matrix
from repro.errors import DistanceError


def abs_metric(a, b):
    return abs(a - b)


class TestDistanceMatrix:
    def test_values_and_indexing(self):
        items = [0.0, 1.0, 3.0]
        m = distance_matrix(items, abs_metric)
        assert m.get(0, 1) == 1.0
        assert m.get(0, 2) == 3.0
        assert m.get(1, 2) == 2.0

    def test_symmetric_access(self):
        m = distance_matrix([0.0, 5.0], abs_metric)
        assert m.get(1, 0) == m.get(0, 1) == 5.0

    def test_diagonal_is_zero(self):
        m = distance_matrix([1.0, 2.0], abs_metric)
        assert m.get(0, 0) == 0.0

    def test_to_square(self):
        m = distance_matrix([0.0, 1.0, 3.0], abs_metric)
        square = m.to_square()
        assert square.shape == (3, 3)
        assert np.allclose(square, square.T)
        assert square[0, 2] == 3.0
        assert np.all(np.diag(square) == 0)

    def test_to_square_matches_reference_loop(self):
        """Regression: the vectorized fill equals the elementwise expansion."""
        rng = np.random.default_rng(5)
        for n in (0, 1, 2, 3, 7, 20):
            values = rng.uniform(0.0, 6.0, size=n * (n - 1) // 2)
            m = CondensedMatrix(n, values)
            reference = np.zeros((n, n))
            k = 0
            for i in range(n):
                for j in range(i + 1, n):
                    reference[i, j] = reference[j, i] = values[k]
                    k += 1
            assert np.array_equal(m.to_square(), reference)

    def test_min_max(self):
        m = distance_matrix([0.0, 1.0, 10.0], abs_metric)
        assert m.min == 1.0
        assert m.max == 10.0

    def test_empty_pairs(self):
        m = distance_matrix([42.0], abs_metric)
        assert m.n == 1
        assert m.max == 0.0

    def test_rejects_negative_metric(self):
        with pytest.raises(DistanceError):
            distance_matrix([1, 2], lambda a, b: -1.0)

    def test_rejects_nan_metric(self):
        with pytest.raises(DistanceError):
            distance_matrix([1, 2], lambda a, b: float("nan"))

    def test_progress_callback(self):
        calls = []
        distance_matrix(list(range(10)), abs_metric, progress=lambda k, t: calls.append((k, t)))
        assert calls[-1] == (45, 45)

    def test_out_of_range_index(self):
        m = distance_matrix([1.0, 2.0], abs_metric)
        with pytest.raises(DistanceError):
            m.get(0, 5)

    def test_wrong_vector_length_rejected(self):
        with pytest.raises(DistanceError):
            CondensedMatrix(3, np.zeros(2))

    def test_matches_scipy_condensed_convention(self):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        items = [0.0, 1.5, 4.0, 9.0]
        m = distance_matrix(items, abs_metric)
        theirs = scipy_spatial.distance.pdist([[x] for x in items], metric="cityblock")
        assert np.allclose(m.values, theirs)
