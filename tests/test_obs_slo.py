"""The SLO engine: error budgets, multi-window burn alerts, replay."""

import json
import threading

import pytest

from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    DEFAULT_SERVICE_OBJECTIVES,
    SHED_BURN_RULES,
    AlertSeverity,
    BurnRule,
    SloEngine,
    SloObjective,
    replay_access_log,
)


class TestObjectiveValidation:
    def test_target_must_be_inside_unit_interval(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                SloObjective("x", kind="availability", target=bad)

    def test_threshold_required_iff_latency(self):
        with pytest.raises(ValueError):
            SloObjective("x", kind="latency", target=0.99)
        with pytest.raises(ValueError):
            SloObjective("x", kind="availability", target=0.99, threshold_ms=10.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloObjective("x", kind="uptime", target=0.99)

    def test_burn_rule_windows_must_nest(self):
        with pytest.raises(ValueError):
            BurnRule(AlertSeverity.PAGE, burn_threshold=2.0, long_window=10, short_window=10)
        with pytest.raises(ValueError):
            BurnRule(AlertSeverity.PAGE, burn_threshold=0.0, long_window=10, short_window=5)

    def test_default_rules_per_kind(self):
        available = SloObjective("a", kind="availability", target=0.999)
        shed = SloObjective("s", kind="shed_rate", target=0.75)
        assert available.burn_rules == DEFAULT_BURN_RULES
        assert shed.burn_rules == SHED_BURN_RULES

    def test_duplicate_objective_names_rejected(self):
        objective = SloObjective("dup", kind="availability", target=0.9)
        with pytest.raises(ValueError):
            SloEngine([objective, objective])


def tiny_engine(target=0.9, rules=None):
    """One availability objective with small windows for fast tests."""
    rules = rules or (
        BurnRule(AlertSeverity.PAGE, burn_threshold=5.0, long_window=20, short_window=5),
    )
    return SloEngine(
        [SloObjective("availability", kind="availability", target=target, rules=rules)]
    )


class TestBudgetAccounting:
    def test_all_good_leaves_budget_untouched(self):
        engine = tiny_engine()
        for _ in range(50):
            engine.record_request(status=200, ms=1.0)
        section = engine.report()["objectives"]["availability"]
        assert section["compliance"] == 1.0
        assert section["budget"]["consumed"] == 0.0
        assert section["budget"]["remaining"] == 1.0
        assert section["ok"] is True

    def test_budget_consumption_is_bad_over_allowance(self):
        engine = tiny_engine(target=0.9)
        for i in range(100):
            engine.record_request(status=500 if i < 5 else 200, ms=1.0)
        section = engine.report()["objectives"]["availability"]
        assert section["bad"] == 5
        assert section["budget"]["allowed_bad"] == pytest.approx(10.0)
        assert section["budget"]["consumed"] == pytest.approx(0.5)
        assert section["ok"] is True

    def test_blown_budget_flips_ok(self):
        engine = tiny_engine(target=0.9)
        for i in range(100):
            engine.record_request(status=500 if i < 20 else 200, ms=1.0)
        section = engine.report()["objectives"]["availability"]
        assert section["compliance"] < 0.9
        assert section["budget"]["consumed"] == pytest.approx(2.0)
        assert section["ok"] is False
        assert engine.report()["ok"] is False

    def test_empty_engine_is_vacuously_compliant(self):
        report = tiny_engine().report()
        assert report["ok"] is True
        assert report["objectives"]["availability"]["total"] == 0
        assert report["objectives"]["availability"]["compliance"] == 1.0

    def test_latency_objective_judges_threshold(self):
        engine = SloEngine(
            [SloObjective("lat", kind="latency", target=0.5, threshold_ms=10.0)]
        )
        engine.record_request(status=200, ms=5.0)
        engine.record_request(status=200, ms=50.0)
        section = engine.report()["objectives"]["lat"]
        assert (section["good"], section["bad"]) == (1, 1)

    def test_shed_objective_only_sees_decisions(self):
        engine = SloEngine([SloObjective("shed", kind="shed_rate", target=0.75)])
        engine.record_request(status=500, ms=1.0)  # ignored by shed kind
        engine.record_decision(shed=True)
        engine.record_decision(shed=False)
        section = engine.report()["objectives"]["shed"]
        assert section["total"] == 2
        assert section["bad"] == 1


class TestBurnAlerts:
    def test_alert_waits_for_full_long_window(self):
        engine = tiny_engine()
        for _ in range(19):
            engine.record_request(status=500, ms=1.0)
        assert engine.report()["page_alerts"] == 0
        engine.record_request(status=500, ms=1.0)  # long window (20) fills
        assert engine.report()["page_alerts"] == 1

    def test_alert_is_edge_triggered_and_rearms(self):
        engine = tiny_engine()
        for _ in range(20):
            engine.record_request(status=500, ms=1.0)
        for _ in range(40):  # burn clears as good traffic flushes the windows
            engine.record_request(status=200, ms=1.0)
        for _ in range(20):  # second incident
            engine.record_request(status=500, ms=1.0)
        report = engine.report()
        assert report["page_alerts"] == 2
        alerts = report["objectives"]["availability"]["alerts"]
        assert [a["severity"] for a in alerts] == ["page", "page"]
        assert alerts[0]["at_event"] < alerts[1]["at_event"]

    def test_short_window_recovery_suppresses_stale_pages(self):
        # Sustained damage in the long window but a clean short window:
        # the incident is over, nobody should be paged.
        rules = (
            BurnRule(AlertSeverity.PAGE, burn_threshold=3.0, long_window=20, short_window=5),
        )
        engine = tiny_engine(rules=rules)
        for _ in range(14):
            engine.record_request(status=500, ms=1.0)
        for _ in range(6):  # recovery: short window all good before long fills
            engine.record_request(status=200, ms=1.0)
        report = engine.report()
        assert report["page_alerts"] == 0

    def test_alert_payload_shape(self):
        engine = tiny_engine()
        for _ in range(20):
            engine.record_request(status=500, ms=1.0)
        (alert,) = engine.report()["objectives"]["availability"]["alerts"]
        assert alert["severity"] == "page"
        assert alert["burn_long"] >= alert["burn_threshold"]
        assert alert["burn_short"] >= alert["burn_threshold"]
        assert (alert["long_window"], alert["short_window"]) == (20, 5)
        assert alert["at_event"] == 20

    def test_page_alert_fails_report_even_if_budget_recovers(self):
        engine = tiny_engine()
        for _ in range(20):
            engine.record_request(status=500, ms=1.0)
        for _ in range(2000):
            engine.record_request(status=200, ms=1.0)
        report = engine.report()
        section = report["objectives"]["availability"]
        assert section["compliance"] >= 0.9  # budget recovered overall
        assert report["page_alerts"] == 1  # but the page is on the record
        assert report["ok"] is False


class TestDeterminismAndReplay:
    def test_same_sequence_same_report(self):
        def run():
            engine = tiny_engine()
            for i in range(500):
                engine.record_request(status=500 if i % 37 == 0 else 200, ms=float(i % 11))
            return engine.report()

        assert json.dumps(run(), sort_keys=True) == json.dumps(run(), sort_keys=True)

    def test_concurrent_recording_matches_serial_totals(self):
        engine = SloEngine(DEFAULT_SERVICE_OBJECTIVES)

        def worker():
            for i in range(200):
                engine.record_request(status=200, ms=1.0)
                engine.record_decision(shed=i % 10 == 0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = engine.report()
        assert report["objectives"]["availability"]["total"] == 800
        assert report["objectives"]["shed_rate"]["total"] == 800
        assert report["objectives"]["shed_rate"]["bad"] == 80

    def test_replay_access_log_rebuilds_the_engine(self, tmp_path):
        path = tmp_path / "access_log.jsonl"
        lines = [{"kind": "run"}]  # non-access header line is skipped
        lines += [
            {"kind": "access", "route": "fetch", "status": 200, "ms": 4.2, "trace_id": None}
            for _ in range(9)
        ]
        lines.append(
            {"kind": "access", "route": "screen", "status": 503, "ms": 1.0, "trace_id": None}
        )
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        report = replay_access_log(path).report()
        availability = report["objectives"]["availability"]
        assert (availability["total"], availability["bad"]) == (10, 1)
        # shed decisions are not in the access log: vacuously compliant
        assert report["objectives"]["shed_rate"]["total"] == 0
        assert report["objectives"]["shed_rate"]["ok"] is True
