"""Backoff schedules, jitter bounds, circuit breaking — all on logical time."""

from random import Random

import pytest

from repro.errors import SimulationError
from repro.reliability.quarantine import Quarantine
from repro.reliability.retry import BreakerState, CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.3)
        assert policy.schedule(Random(7)) == policy.schedule(Random(7))

    def test_delays_grow_geometrically_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0, jitter=0.0)
        assert policy.schedule(Random(0)) == [1.0, 2.0, 4.0]

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(max_attempts=8, base_delay=1.0, multiplier=3.0,
                             max_delay=5.0, jitter=0.0)
        assert max(policy.schedule(Random(0))) == 5.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(max_attempts=2, base_delay=10.0, jitter=0.25)
        rng = Random(1)
        for __ in range(200):
            delay = policy.backoff(0, rng)
            assert 7.5 <= delay <= 12.5

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(SimulationError):
            RetryPolicy(base_delay=-1.0)

    def test_rejects_negative_retry_index(self):
        with pytest.raises(SimulationError):
            RetryPolicy().backoff(-1, Random(0))

    @pytest.mark.parametrize("seed", [0, 1, 7, 12345])
    @pytest.mark.parametrize("jitter", [0.0, 0.1, 0.25, 0.5, 0.99])
    def test_same_seed_same_schedule(self, seed, jitter):
        policy = RetryPolicy(max_attempts=6, base_delay=0.5, multiplier=3.0, jitter=jitter)
        assert policy.schedule(Random(seed)) == policy.schedule(Random(seed))

    @pytest.mark.parametrize("jitter", [0.0, 0.1, 0.25, 0.5, 0.99])
    def test_delay_always_within_hard_bounds(self, jitter):
        # Property sweep: for every retry index the delay stays within
        # [0, max_delay * (1 + jitter)] no matter what the rng draws.
        policy = RetryPolicy(
            max_attempts=32, base_delay=2.0, multiplier=2.5, max_delay=40.0, jitter=jitter
        )
        ceiling = policy.max_delay * (1.0 + jitter)
        rng = Random(99)
        for retry_index in range(31):
            for __ in range(50):
                delay = policy.backoff(retry_index, rng)
                assert 0.0 <= delay <= ceiling, (
                    f"delay {delay} outside [0, {ceiling}] at retry {retry_index}"
                )

    def test_unjittered_delay_is_pure_function_of_index(self):
        policy = RetryPolicy(max_attempts=10, base_delay=1.5, multiplier=2.0,
                             max_delay=100.0, jitter=0.0)
        for retry_index in range(9):
            expected = min(100.0, 1.5 * 2.0**retry_index)
            assert policy.backoff(retry_index, Random(0)) == expected


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.allow(3.0)
        assert breaker.state(3.0) is BreakerState.CLOSED

    def test_trips_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        for tick in (1.0, 2.0, 3.0):
            breaker.record_failure(tick)
        assert not breaker.allow(4.0)
        assert breaker.state(4.0) is BreakerState.OPEN
        assert breaker.trips == 1

    def test_half_opens_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.allow(10.0)  # cooldown elapsed: probe admitted
        assert breaker.state(10.0) is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_success()
        assert breaker.state(11.0) is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(10.0)
        assert not breaker.allow(15.0)  # fresh cooldown from the probe failure
        assert breaker.trips == 2

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0)
        breaker.record_failure(1.0)
        breaker.record_success()
        breaker.record_failure(2.0)
        assert breaker.state(3.0) is BreakerState.CLOSED

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(SimulationError):
            CircuitBreaker(cooldown=-1.0)

    def test_allow_transitions_open_to_half_open_exactly_at_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        # one tick early: still open, no probe admitted
        assert breaker.state(9.999) is BreakerState.OPEN
        assert not breaker.allow(9.999)
        # at the boundary: half-open, and allow() latches the transition
        assert breaker.state(10.0) is BreakerState.HALF_OPEN
        assert breaker.allow(10.0)
        assert breaker.state(10.0) is BreakerState.HALF_OPEN

    def test_half_open_keeps_admitting_until_verdict(self):
        # Half-open is not a one-shot gate: until the probe reports
        # success or failure, further calls are admitted too.
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0)
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        assert breaker.allow(6.0)
        assert breaker.state(6.0) is BreakerState.HALF_OPEN

    def test_half_open_failure_restarts_full_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)  # trips at tick 1
        assert breaker.allow(11.0)  # probe admitted half-open
        breaker.record_failure(11.0)  # probe fails -> reopen at tick 11
        assert not breaker.allow(20.0)  # 9 ticks in: still cooling down
        assert breaker.allow(21.0)  # full cooldown from the reopen
        assert breaker.trips == 2


class TestQuarantine:
    def test_counts_by_reason(self):
        quarantine = Quarantine()
        quarantine.add(ValueError("bad"), payload={"x": 1})
        quarantine.add(KeyError("raw"))
        quarantine.add(ValueError("worse"))
        assert quarantine.summary() == {"ValueError": 2, "KeyError": 1}
        assert quarantine.total == 3

    def test_bounded_buffer_keeps_counting(self):
        quarantine = Quarantine(capacity=2)
        for index in range(5):
            quarantine.add(ValueError(str(index)))
        assert len(quarantine) == 2
        assert quarantine.total == 5
        # newest records are the ones retained
        assert [record.error for record in quarantine.records] == ["3", "4"]

    def test_preview_truncated(self):
        quarantine = Quarantine()
        record = quarantine.add(ValueError("x"), payload="y" * 500)
        assert len(record.preview) <= 96

    def test_falsy_when_empty(self):
        assert not Quarantine()
        with pytest.raises(SimulationError):
            Quarantine(capacity=0)

    def test_eviction_is_oldest_first(self):
        # At capacity the buffer behaves as a FIFO: each new record evicts
        # exactly the oldest one, preserving arrival order of the rest.
        quarantine = Quarantine(capacity=3)
        for index in range(3):
            quarantine.add(ValueError(f"rec-{index}"), payload=index)
        assert [record.error for record in quarantine.records] == [
            "rec-0", "rec-1", "rec-2",
        ]
        quarantine.add(ValueError("rec-3"), payload=3)
        assert [record.error for record in quarantine.records] == [
            "rec-1", "rec-2", "rec-3",
        ]
        quarantine.add(ValueError("rec-4"), payload=4)
        assert [record.error for record in quarantine.records] == [
            "rec-2", "rec-3", "rec-4",
        ]
        # counting keeps including the evicted records
        assert quarantine.total == 5


class TestQuarantineBans:
    def test_ban_and_permanent_default(self):
        quarantine = Quarantine()
        quarantine.ban("device-00001", now=0.0)
        assert quarantine.is_banned("device-00001", now=1e9)  # no cooldown: forever
        assert not quarantine.is_banned("device-00002", now=0.0)
        assert quarantine.bans == 1

    def test_cooldown_auto_releases(self):
        quarantine = Quarantine(release_after_ticks=10.0)
        quarantine.ban("device-00001", now=5.0)
        assert quarantine.is_banned("device-00001", now=14.999)
        assert not quarantine.is_banned("device-00001", now=15.0)  # elapsed exactly
        assert quarantine.releases == 1
        # released means released: asking again is a plain miss
        assert not quarantine.is_banned("device-00001", now=15.0)
        assert quarantine.releases == 1

    def test_reban_restarts_the_clock(self):
        quarantine = Quarantine(release_after_ticks=10.0)
        quarantine.ban("device-00001", now=0.0)
        quarantine.ban("device-00001", now=8.0)  # fresh offence at tick 8
        assert quarantine.is_banned("device-00001", now=12.0)  # 0-based ban expired, 8-based not
        assert not quarantine.is_banned("device-00001", now=18.0)
        assert quarantine.bans == 2

    def test_manual_release(self):
        quarantine = Quarantine(release_after_ticks=10.0)
        quarantine.ban("device-00001", now=0.0)
        assert quarantine.release("device-00001")
        assert not quarantine.is_banned("device-00001", now=1.0)
        assert not quarantine.release("device-00001")  # already out
        assert quarantine.releases == 1

    def test_banned_members_sorted_and_pruned(self):
        quarantine = Quarantine(release_after_ticks=10.0)
        quarantine.ban("device-00002", now=0.0)
        quarantine.ban("device-00001", now=5.0)
        assert quarantine.banned_members(now=2.0) == ["device-00001", "device-00002"]
        # the tick-0 ban expires; listing releases it as a side effect
        assert quarantine.banned_members(now=11.0) == ["device-00001"]
        assert quarantine.releases == 1

    def test_ban_with_error_lands_in_summary(self):
        quarantine = Quarantine()
        quarantine.ban("device-00001", now=0.0, error=ValueError("bad seq"), reason="replay")
        assert quarantine.summary() == {"replay": 1}
        assert quarantine.total == 1

    def test_bad_release_ticks_rejected(self):
        with pytest.raises(SimulationError):
            Quarantine(release_after_ticks=0.0)
