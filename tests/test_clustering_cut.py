"""Flat-cluster extraction strategies."""

import pytest

from repro.clustering.cut import cut_by_count, cut_by_height, cut_min_size, cut_top_level
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.errors import ClusteringError


def tree():
    """4 leaves: (0,1)@1 -> 4; (2,3)@2 -> 5; root@5 -> 6."""
    return Dendrogram(4, [Merge(0, 1, 1.0, 2), Merge(2, 3, 2.0, 2), Merge(4, 5, 5.0, 4)])


class TestHeightCut:
    def test_cut_below_everything_gives_leaves(self):
        assert sorted(cut_by_height(tree(), 0.5)) == [0, 1, 2, 3]

    def test_cut_between_merges(self):
        assert sorted(cut_by_height(tree(), 1.5)) == [2, 3, 4]

    def test_cut_above_everything_gives_root(self):
        assert cut_by_height(tree(), 10.0) == [6]

    def test_cut_exactly_at_height_includes_node(self):
        assert sorted(cut_by_height(tree(), 2.0)) == [4, 5]

    def test_clusters_partition_leaves(self):
        d = tree()
        for h in (0.0, 1.0, 1.5, 2.0, 4.9, 5.0):
            leaves = sorted(leaf for node in cut_by_height(d, h) for leaf in d.leaves(node))
            assert leaves == [0, 1, 2, 3]

    def test_negative_height_rejected(self):
        with pytest.raises(ClusteringError):
            cut_by_height(tree(), -1.0)


class TestCountCut:
    def test_k_equals_one(self):
        assert cut_by_count(tree(), 1) == [6]

    def test_k_equals_two(self):
        assert sorted(cut_by_count(tree(), 2)) == [4, 5]

    def test_k_equals_three(self):
        assert sorted(cut_by_count(tree(), 3)) == [2, 3, 4]

    def test_k_equals_n(self):
        assert sorted(cut_by_count(tree(), 4)) == [0, 1, 2, 3]

    @pytest.mark.parametrize("bad", [0, 5, -1])
    def test_invalid_k_rejected(self, bad):
        with pytest.raises(ClusteringError):
            cut_by_count(tree(), bad)


class TestTopLevel:
    def test_fraction_one_is_root(self):
        assert cut_top_level(tree(), 1.0) == [6]

    def test_fraction_half(self):
        # Root height 5; cut at 2.5 -> nodes 4 (h=1) and 5 (h=2).
        assert sorted(cut_top_level(tree(), 0.5)) == [4, 5]

    def test_invalid_fraction(self):
        with pytest.raises(ClusteringError):
            cut_top_level(tree(), 1.5)


class TestMinSize:
    def test_small_clusters_dropped(self):
        # At height 1.5: clusters are 4 (size 2), and leaves 2, 3 (size 1).
        assert cut_min_size(tree(), 1.5, min_size=2) == [4]

    def test_min_size_one_keeps_everything(self):
        assert sorted(cut_min_size(tree(), 1.5, min_size=1)) == [2, 3, 4]

    def test_invalid_min_size(self):
        with pytest.raises(ClusteringError):
            cut_min_size(tree(), 1.0, min_size=0)


class TestDeepChain:
    def test_chained_dendrogram_does_not_recurse_out(self):
        """A single-linkage-style chain as deep as the leaf count must cut
        without hitting Python's recursion limit."""
        n = 3000
        merges = []
        prev = 0
        for k in range(n - 1):
            merges.append(Merge(prev, k + 1, float(k), k + 2))
            prev = n + k
        deep = Dendrogram(n, merges)
        clusters = cut_by_height(deep, 100.0)
        leaves = sorted(leaf for node in clusters for leaf in deep.leaves(node))
        assert leaves == list(range(n))
