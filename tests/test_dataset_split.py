"""Suspicious/normal splitting and seeded sampling."""

import pytest

from repro.dataset.split import holdout_split, sample_packets, split_by_sensitivity
from repro.dataset.trace import Trace
from repro.errors import DatasetError
from repro.sensitive.payload_check import PayloadCheck
from tests.conftest import make_packet


class TestSplit:
    def test_split_by_sensitivity(self, identity):
        check = PayloadCheck(identity)
        leaky = make_packet(target=f"/x?imei={identity.imei}")
        clean = make_packet(target="/x?q=1")
        suspicious, normal = split_by_sensitivity(Trace([leaky, clean, clean]), check)
        assert isinstance(suspicious, Trace)
        assert len(suspicious) == 1
        assert len(normal) == 2


class TestSample:
    def test_sample_size_and_uniqueness(self):
        packets = [make_packet(target=f"/p?i={i}") for i in range(20)]
        sample = sample_packets(packets, 5, seed=1)
        assert len(sample) == 5
        assert len({id(p) for p in sample}) == 5

    def test_sample_deterministic(self):
        packets = [make_packet(target=f"/p?i={i}") for i in range(20)]
        a = sample_packets(packets, 5, seed=1)
        b = sample_packets(packets, 5, seed=1)
        assert [p.request.target for p in a] == [p.request.target for p in b]

    def test_sample_seed_matters(self):
        packets = [make_packet(target=f"/p?i={i}") for i in range(20)]
        a = sample_packets(packets, 5, seed=1)
        b = sample_packets(packets, 5, seed=2)
        assert [p.request.target for p in a] != [p.request.target for p in b]

    def test_sample_too_large_rejected(self):
        with pytest.raises(DatasetError):
            sample_packets([make_packet()], 2)

    def test_sample_negative_rejected(self):
        with pytest.raises(DatasetError):
            sample_packets([make_packet()], -1)

    def test_sample_zero(self):
        assert sample_packets([make_packet()], 0) == []


class TestHoldout:
    def test_fraction_split(self):
        packets = [make_packet(target=f"/p?i={i}") for i in range(10)]
        train, held = holdout_split(packets, 0.7, seed=3)
        assert len(train) == 7
        assert len(held) == 3
        assert {p.request.target for p in train} | {p.request.target for p in held} == {
            p.request.target for p in packets
        }

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            holdout_split([make_packet()], 1.5)

    def test_deterministic(self):
        packets = [make_packet(target=f"/p?i={i}") for i in range(10)]
        a_train, __ = holdout_split(packets, 0.5, seed=9)
        b_train, __ = holdout_split(packets, 0.5, seed=9)
        assert [p.request.target for p in a_train] == [p.request.target for p in b_train]
