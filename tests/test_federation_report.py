"""Report envelope protocol: tokens, checksums, validation reasons."""

import pytest

from repro.errors import FederationError, ReportValidationError, ReproError
from repro.federation.report import (
    REPORT_FORMAT_VERSION,
    DeviceReport,
    decode_report,
    encode_report,
    token_for,
)
from tests.conftest import make_packet


def make_report(seq: int = 1, device_id: str = "device-00001", **packet_kwargs) -> DeviceReport:
    packet = make_packet(**packet_kwargs)
    return DeviceReport(device_id=device_id, seq=seq, token=token_for(packet), packet=packet)


class TestTokenFor:
    def test_shape_not_values(self):
        # Two devices leaking *different* identifier values through the same
        # endpoint must agree on the token — that is what lets honest
        # support accumulate across users.
        a = token_for(make_packet(target="/track?udid=AAAA&os=4.0"))
        b = token_for(make_packet(target="/track?udid=BBBB&os=2.3"))
        assert a == b

    def test_different_param_names_differ(self):
        a = token_for(make_packet(target="/track?udid=AAAA"))
        b = token_for(make_packet(target="/track?imei=AAAA"))
        assert a != b

    def test_includes_method_host_port_path(self):
        token = token_for(make_packet(target="/track?udid=X"))
        assert "GET" in token
        assert "ads.example.com:80" in token
        assert "/track" in token
        assert "udid" in token
        assert "X" not in token.split("?", 1)[1]  # values never leak into tokens

    def test_body_param_names_included(self):
        a = token_for(make_packet(body=b"uid=123&lat=1"))
        b = token_for(make_packet(body=b"uid=456&lat=2"))
        c = token_for(make_packet(body=b"other=456"))
        assert a == b
        assert a != c


class TestRoundTrip:
    def test_encode_decode_identity(self):
        report = make_report(seq=7)
        decoded = decode_report(encode_report(report))
        assert decoded.device_id == report.device_id
        assert decoded.seq == report.seq
        assert decoded.token == report.token
        assert decoded.packet.wire_bytes() == report.packet.wire_bytes()

    def test_encode_is_deterministic(self):
        assert encode_report(make_report()) == encode_report(make_report())

    def test_envelope_carries_version_and_checksum(self):
        record = encode_report(make_report())
        assert record["format_version"] == REPORT_FORMAT_VERSION
        assert len(record["checksum"]) == 64


class TestValidation:
    def test_non_mapping_rejected(self):
        with pytest.raises(ReportValidationError) as err:
            decode_report("garbage")
        assert err.value.reason == "schema"

    def test_version_skew_rejected(self):
        record = encode_report(make_report())
        record["format_version"] = REPORT_FORMAT_VERSION + 1
        with pytest.raises(ReportValidationError) as err:
            decode_report(record)
        assert err.value.reason == "version"

    def test_checksum_tamper_rejected(self):
        record = encode_report(make_report())
        record["token"] = record["token"] + "x"  # flip payload, keep checksum
        with pytest.raises(ReportValidationError) as err:
            decode_report(record)
        assert err.value.reason == "checksum"

    def test_missing_checksum_rejected(self):
        record = encode_report(make_report())
        del record["checksum"]
        with pytest.raises(ReportValidationError) as err:
            decode_report(record)
        assert err.value.reason == "checksum"

    @pytest.mark.parametrize("field,value", [
        ("device_id", ""),
        ("device_id", 7),
        ("seq", 0),
        ("seq", -3),
        ("seq", "5"),
        ("seq", True),
        ("token", ""),
        ("token", None),
        ("packet", None),
        ("packet", "not-a-dict"),
    ])
    def test_schema_violations_rejected(self, field, value):
        record = encode_report(make_report())
        record[field] = value
        with pytest.raises(ReportValidationError) as err:
            decode_report(record)
        assert err.value.reason == "schema"

    def test_unparseable_packet_rejected(self):
        record = encode_report(make_report())
        record["packet"] = {"nonsense": True}
        # Re-checksum so only the packet payload is at fault.
        from repro.federation.report import _payload_checksum

        record["checksum"] = _payload_checksum(record)
        with pytest.raises(ReportValidationError) as err:
            decode_report(record)
        assert err.value.reason == "schema"


class TestErrorHierarchy:
    def test_validation_error_is_federation_error(self):
        assert issubclass(ReportValidationError, FederationError)
        assert issubclass(FederationError, ReproError)

    def test_reason_defaults_to_schema(self):
        assert ReportValidationError("x").reason == "schema"
