"""Agglomerative clustering: correctness against brute force and scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.linkage import Linkage, agglomerate, cluster_assignments
from repro.distance.matrix import CondensedMatrix, distance_matrix
from repro.errors import ClusteringError


def matrix_from_points(points):
    return distance_matrix(points, lambda a, b: abs(a - b))


class TestBasic:
    def test_single_item(self):
        d = agglomerate(matrix_from_points([1.0]))
        assert d.n_leaves == 1
        assert d.merges == []

    def test_two_items(self):
        d = agglomerate(matrix_from_points([0.0, 3.0]))
        assert len(d.merges) == 1
        assert d.merges[0].height == 3.0

    def test_two_tight_groups_merge_internally_first(self):
        # {0, 0.1, 0.2} and {10, 10.1}: the cross-group merge must be last.
        d = agglomerate(matrix_from_points([0.0, 0.1, 0.2, 10.0, 10.1]))
        last = d.merges[-1]
        left_leaves = sorted(d.leaves(last.left))
        right_leaves = sorted(d.leaves(last.right))
        groups = {tuple(left_leaves), tuple(right_leaves)}
        assert groups == {(0, 1, 2), (3, 4)}

    def test_heights_non_decreasing_group_average(self):
        rng = np.random.default_rng(7)
        points = list(rng.uniform(0, 100, size=20))
        d = agglomerate(matrix_from_points(points))
        heights = [m.height for m in d.merges]
        assert all(a <= b + 1e-9 for a, b in zip(heights, heights[1:]))

    def test_final_cluster_contains_all(self):
        d = agglomerate(matrix_from_points([5.0, 1.0, 9.0, 3.0]))
        assert sorted(d.leaves(d.root)) == [0, 1, 2, 3]

    def test_deterministic_tie_breaking(self):
        points = [0.0, 1.0, 2.0, 3.0]  # many ties
        a = agglomerate(matrix_from_points(points))
        b = agglomerate(matrix_from_points(points))
        assert a.to_linkage_array() == b.to_linkage_array()


class TestGroupAverageSemantics:
    def test_first_merge_is_global_minimum(self):
        points = [0.0, 7.0, 7.5, 20.0]
        d = agglomerate(matrix_from_points(points))
        assert d.merges[0].height == 0.5
        assert {d.merges[0].left, d.merges[0].right} == {1, 2}

    def test_group_average_height_is_mean_pairwise(self):
        # Leaves 0,1 at distance 2 merge first (h=1 impossible; h=2).
        # Then cluster {0,1} vs {2}: mean of d(0,2), d(1,2).
        points = [0.0, 2.0, 10.0]
        d = agglomerate(matrix_from_points(points))
        assert d.merges[0].height == 2.0
        expected = (abs(0 - 10) + abs(2 - 10)) / 2
        assert d.merges[1].height == pytest.approx(expected)


class TestAgainstScipy:
    @pytest.mark.parametrize(
        "linkage,scipy_method",
        [
            (Linkage.GROUP_AVERAGE, "average"),
            (Linkage.SINGLE, "single"),
            (Linkage.COMPLETE, "complete"),
        ],
    )
    def test_merge_heights_match_scipy(self, linkage, scipy_method):
        hierarchy = pytest.importorskip("scipy.cluster.hierarchy")
        rng = np.random.default_rng(42)
        points = list(rng.uniform(0, 50, size=25))
        m = matrix_from_points(points)
        ours = agglomerate(m, linkage)
        theirs = hierarchy.linkage(m.values, method=scipy_method)
        our_heights = sorted(merge.height for merge in ours.merges)
        their_heights = sorted(theirs[:, 2])
        assert np.allclose(our_heights, their_heights, atol=1e-9)

    def test_ward_heights_match_scipy(self):
        hierarchy = pytest.importorskip("scipy.cluster.hierarchy")
        rng = np.random.default_rng(3)
        points = list(rng.uniform(0, 10, size=15))
        m = matrix_from_points(points)
        ours = agglomerate(m, Linkage.WARD)
        theirs = hierarchy.linkage(m.values, method="ward")
        assert np.allclose(
            sorted(merge.height for merge in ours.merges), sorted(theirs[:, 2]), atol=1e-8
        )


class TestAssignments:
    def test_assignments_partition(self):
        d = agglomerate(matrix_from_points([0.0, 0.1, 10.0, 10.1]))
        from repro.clustering.cut import cut_by_count

        nodes = cut_by_count(d, 2)
        assignment = cluster_assignments(d, nodes)
        assert len(assignment) == 4
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[0] != assignment[2]

    def test_incomplete_cover_rejected(self):
        d = agglomerate(matrix_from_points([0.0, 1.0, 2.0]))
        with pytest.raises(ClusteringError):
            cluster_assignments(d, [0])  # leaf 1, 2 uncovered


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=12))
def test_property_valid_tree_any_input(points):
    d = agglomerate(matrix_from_points(points))
    assert d.n_leaves == len(points)
    assert sorted(d.leaves(d.root)) == list(range(len(points)))
    heights = [m.height for m in d.merges]
    assert all(h >= 0 for h in heights)
    assert all(a <= b + 1e-9 for a, b in zip(heights, heights[1:]))
