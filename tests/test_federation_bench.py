"""FederationReport / FederationBudget: gates and rendering (no bench runs)."""

import json

from repro.federation.bench import FederationBudget, FederationReport


def arm(name: str, **overrides) -> dict:
    base = {
        "name": name,
        "n_devices": 100,
        "reports_per_device": 3,
        "min_support": 3,
        "sends": 400,
        "accepted": 300,
        "admitted_tokens": 12,
        "material_size": 20,
        "material_fabricated": 0,
        "n_signatures": 5,
        "precision": 0.95,
        "final_tick": 50.0,
        "wall_s": 0.5,
        "throughput_per_s": 800.0,
        "ingest": {
            "counts": {
                "rejected_duplicate": 3,
                "rejected_replay": 1,
                "rejected_malformed": 2,
            },
            "quarantine": {"bans": 1, "releases": 1},
        },
        "aggregate": {},
        "faults": {},
    }
    base.update(overrides)
    return base


def report_with(fleet: dict, single: dict) -> FederationReport:
    budget = FederationBudget()
    report = FederationReport(
        n_apps=48, seed=0, fault_rate=0.2, min_support=3,
        arms=[fleet, single], budget=budget.to_dict(),
    )
    report.violations = budget.violations(report)
    return report


class TestBudget:
    def test_clean_report_passes(self):
        report = report_with(arm("fleet"), arm("single", precision=0.90))
        assert report.ok
        assert report.violations == []

    def test_precision_regression_violates(self):
        report = report_with(arm("fleet", precision=0.80), arm("single", precision=0.90))
        assert not report.ok
        assert any("precision" in v for v in report.violations)

    def test_fabricated_material_violates(self):
        report = report_with(
            arm("fleet", material_fabricated=2), arm("single", precision=0.90)
        )
        assert any("fabricated" in v for v in report.violations)

    def test_throughput_floor_violates(self):
        report = report_with(
            arm("fleet", throughput_per_s=10.0), arm("single", precision=0.90)
        )
        assert any("throughput" in v for v in report.violations)

    def test_empty_fleet_violates(self):
        report = report_with(
            arm("fleet", accepted=0, admitted_tokens=0), arm("single", precision=0.90)
        )
        assert any("accepted no reports" in v for v in report.violations)
        assert any("admitted no tokens" in v for v in report.violations)

    def test_disabled_gates_pass_anything(self):
        budget = FederationBudget(
            min_precision_gain=None, require_pure_material=False, min_throughput_per_s=None
        )
        report = FederationReport(
            n_apps=48, seed=0, fault_rate=0.2, min_support=3,
            arms=[arm("fleet", precision=0.1, material_fabricated=9, throughput_per_s=1.0),
                  arm("single", precision=0.9)],
            budget=budget.to_dict(),
        )
        assert budget.violations(report) == []

    def test_missing_arm_is_a_violation(self):
        budget = FederationBudget()
        report = FederationReport(
            n_apps=48, seed=0, fault_rate=0.2, min_support=3, arms=[arm("fleet")],
            budget=budget.to_dict(),
        )
        assert budget.violations(report) == ["bench did not produce both arms"]


class TestReport:
    def test_to_dict_json_ready(self):
        report = report_with(arm("fleet"), arm("single", precision=0.90))
        data = json.loads(json.dumps(report.to_dict()))
        assert data["bench"] == "federation"
        assert data["ok"] is True
        assert len(data["arms"]) == 2

    def test_save_round_trips(self, tmp_path):
        report = report_with(arm("fleet"), arm("single", precision=0.90))
        path = report.save(tmp_path / "BENCH_federation.json")
        assert json.loads(path.read_text())["min_support"] == 3

    def test_render_table(self):
        report = report_with(arm("fleet"), arm("single", precision=0.90))
        text = report.render()
        assert "Federation bench" in text
        assert "fleet" in text and "single" in text
        assert "quarantine bans=1" in text
        assert "budget: ok" in text

    def test_render_lists_violations(self):
        report = report_with(arm("fleet", precision=0.5), arm("single", precision=0.90))
        text = report.render()
        assert "BUDGET VIOLATIONS" in text
