"""Permission framework and Table I classification."""

from repro.android.permissions import (
    ACCESS_FINE_LOCATION,
    INTERNET,
    Manifest,
    PermissionCategory,
    READ_CONTACTS,
    READ_PHONE_STATE,
    VIBRATE,
    classify_manifest,
    table1_counts,
)


def manifest(*perms):
    return Manifest(package="jp.test.app", permissions=frozenset(perms))


class TestManifest:
    def test_holds(self):
        m = manifest(INTERNET, READ_PHONE_STATE)
        assert m.holds(INTERNET)
        assert not m.holds(READ_CONTACTS)

    def test_holds_category(self):
        m = manifest(INTERNET, ACCESS_FINE_LOCATION)
        assert m.holds_category(PermissionCategory.LOCATION)
        assert not m.holds_category(PermissionCategory.CONTACTS)

    def test_internet_only_not_dangerous(self):
        assert not manifest(INTERNET).is_dangerous_combination
        assert not manifest(INTERNET, VIBRATE).is_dangerous_combination

    def test_internet_plus_sensitive_is_dangerous(self):
        assert manifest(INTERNET, READ_PHONE_STATE).is_dangerous_combination
        assert manifest(INTERNET, ACCESS_FINE_LOCATION).is_dangerous_combination
        assert manifest(INTERNET, READ_CONTACTS).is_dangerous_combination

    def test_sensitive_without_internet_not_dangerous(self):
        # No network: the information cannot leave the device.
        assert not manifest(READ_PHONE_STATE).is_dangerous_combination


class TestClassification:
    def test_classify_flags(self):
        m = manifest(INTERNET, ACCESS_FINE_LOCATION, READ_PHONE_STATE)
        assert classify_manifest(m) == (True, True, True, False)

    def test_table1_counts(self):
        manifests = [
            manifest(INTERNET),
            manifest(INTERNET),
            manifest(INTERNET, ACCESS_FINE_LOCATION),
        ]
        counts = table1_counts(manifests)
        assert counts[(True, False, False, False)] == 2
        assert counts[(True, True, False, False)] == 1
