"""Device-side flow control: policies, prompts, history."""

from repro.core.flowcontrol import FlowControlApp, PolicyAction
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore
from tests.conftest import make_packet


def signature():
    return ConjunctionSignature(tokens=("imei=12345",), scope_domain="adnet.com")


def leaky():
    return make_packet(host="ads.adnet.com", target="/x?imei=12345", app_id="jp.app.one")


def clean():
    return make_packet(host="img.other.jp", target="/img.png", app_id="jp.app.one")


class TestScreening:
    def test_clean_packet_transmitted(self):
        app = FlowControlApp([signature()])
        decision = app.screen(clean())
        assert decision.transmitted
        assert not decision.flagged
        assert decision.action is PolicyAction.ALLOW

    def test_flagged_packet_prompt_denied_by_default(self):
        app = FlowControlApp([signature()])
        decision = app.screen(leaky())
        assert decision.flagged
        assert not decision.transmitted  # default handler denies
        assert decision.action is PolicyAction.PROMPT
        assert decision.signature is not None

    def test_prompt_handler_consulted(self):
        asked = []

        def handler(packet, sig):
            asked.append((packet, sig))
            return True

        app = FlowControlApp([signature()], prompt_handler=handler)
        decision = app.screen(leaky())
        assert decision.transmitted
        assert len(asked) == 1


class TestPolicies:
    def test_allow_rule_skips_prompt(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW)
        decision = app.screen(leaky())
        assert decision.transmitted
        assert decision.action is PolicyAction.ALLOW

    def test_block_rule(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        decision = app.screen(leaky())
        assert not decision.transmitted
        assert decision.action is PolicyAction.BLOCK

    def test_domain_specific_rule_wins(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW, domain="adnet.com")
        assert app.screen(leaky()).transmitted

    def test_rules_scoped_per_app(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.other", PolicyAction.ALLOW)
        assert not app.screen(leaky()).transmitted  # different app still prompts


class TestHistory:
    def test_history_records_everything(self):
        app = FlowControlApp([signature()])
        app.screen(clean())
        app.screen(leaky())
        assert len(app.history) == 2
        assert len(app.flagged()) == 1
        assert len(app.blocked()) == 1

    def test_prompt_count(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK, domain="adnet.com")
        app.screen(leaky())  # blocked silently, no prompt
        app.policies.rules.clear()
        app.screen(leaky())  # prompts
        assert app.prompt_count() == 1


class TestFetch:
    def test_fetch_from_published_document(self):
        published = SignatureStore.dumps([signature()])
        app = FlowControlApp.fetch(published)
        assert app.screen(leaky()).flagged
