"""Device-side flow control: policies, prompts, history."""

from repro.core.flowcontrol import FlowControlApp, PolicyAction
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureStore
from tests.conftest import make_packet


def signature():
    return ConjunctionSignature(tokens=("imei=12345",), scope_domain="adnet.com")


def leaky():
    return make_packet(host="ads.adnet.com", target="/x?imei=12345", app_id="jp.app.one")


def clean():
    return make_packet(host="img.other.jp", target="/img.png", app_id="jp.app.one")


class TestScreening:
    def test_clean_packet_transmitted(self):
        app = FlowControlApp([signature()])
        decision = app.screen(clean())
        assert decision.transmitted
        assert not decision.flagged
        assert decision.action is PolicyAction.ALLOW

    def test_flagged_packet_prompt_denied_by_default(self):
        app = FlowControlApp([signature()])
        decision = app.screen(leaky())
        assert decision.flagged
        assert not decision.transmitted  # default handler denies
        assert decision.action is PolicyAction.PROMPT
        assert decision.signature is not None

    def test_prompt_handler_consulted(self):
        asked = []

        def handler(packet, sig):
            asked.append((packet, sig))
            return True

        app = FlowControlApp([signature()], prompt_handler=handler)
        decision = app.screen(leaky())
        assert decision.transmitted
        assert len(asked) == 1


class TestPolicyStoreLookup:
    """Precedence: (app, domain) beats (app, "") beats the PROMPT default."""

    def test_default_is_prompt(self):
        app = FlowControlApp([signature()])
        assert app.policies.lookup("jp.app.one", "adnet.com") is PolicyAction.PROMPT

    def test_app_wide_rule_beats_default(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        assert app.policies.lookup("jp.app.one", "adnet.com") is PolicyAction.BLOCK
        assert app.policies.lookup("jp.app.one", "other.jp") is PolicyAction.BLOCK

    def test_domain_rule_beats_app_wide(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW, domain="adnet.com")
        assert app.policies.lookup("jp.app.one", "adnet.com") is PolicyAction.ALLOW
        # other domains still fall through to the app-wide rule
        assert app.policies.lookup("jp.app.one", "other.jp") is PolicyAction.BLOCK

    def test_domain_rule_does_not_leak_across_apps(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW, domain="adnet.com")
        assert app.policies.lookup("jp.app.two", "adnet.com") is PolicyAction.PROMPT

    def test_rule_overwrite_takes_effect(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW)
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        assert app.policies.lookup("jp.app.one", "adnet.com") is PolicyAction.BLOCK


class TestEmptySignatureSet:
    def test_everything_transmits_unflagged(self):
        app = FlowControlApp([])
        for packet in (leaky(), clean()):
            decision = app.screen(packet)
            assert decision.transmitted
            assert not decision.flagged
            assert decision.action is PolicyAction.ALLOW
            assert not decision.degraded

    def test_no_prompts_and_nothing_blocked(self):
        app = FlowControlApp([])
        app.screen(leaky())
        app.screen(clean())
        assert app.prompt_count() == 0
        assert app.blocked() == []
        assert app.flagged() == []


class TestDegradedMode:
    def leaky_keyword(self):
        # 15-digit value: the keyword baseline flags it, no signature needed
        return make_packet(
            host="ads.adnet.com", target="/x?imei=123456789012345", app_id="jp.app.one"
        )

    def test_degraded_app_flags_with_keyword_fallback(self):
        app = FlowControlApp.degraded()
        assert app.is_degraded
        decision = app.screen(self.leaky_keyword())
        assert decision.flagged
        assert decision.degraded
        assert decision.signature is None
        assert not decision.transmitted  # default prompt handler denies

    def test_degraded_clean_decisions_are_marked_too(self):
        app = FlowControlApp.degraded()
        decision = app.screen(clean())
        assert decision.transmitted
        assert not decision.flagged
        assert decision.degraded

    def test_policies_still_apply_in_degraded_mode(self):
        app = FlowControlApp.degraded()
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW)
        assert app.screen(self.leaky_keyword()).transmitted

    def test_update_signatures_exits_degraded_mode(self):
        app = FlowControlApp.degraded()
        app.update_signatures([signature()], version=3)
        assert not app.is_degraded
        assert app.signature_version == 3
        decision = app.screen(leaky())
        assert decision.flagged and not decision.degraded

    def test_degraded_update_does_not_clobber_installed_set(self):
        app = FlowControlApp.degraded()
        app.update_signatures([signature()], version=3)
        app.update_signatures([], version=0)  # a degraded fetch result
        assert not app.is_degraded
        assert app.signature_version == 3

    def test_empty_set_without_detector_is_not_degraded(self):
        app = FlowControlApp([])
        assert not app.is_degraded


class TestPolicies:
    def test_allow_rule_skips_prompt(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW)
        decision = app.screen(leaky())
        assert decision.transmitted
        assert decision.action is PolicyAction.ALLOW

    def test_block_rule(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        decision = app.screen(leaky())
        assert not decision.transmitted
        assert decision.action is PolicyAction.BLOCK

    def test_domain_specific_rule_wins(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW, domain="adnet.com")
        assert app.screen(leaky()).transmitted

    def test_rules_scoped_per_app(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.other", PolicyAction.ALLOW)
        assert not app.screen(leaky()).transmitted  # different app still prompts


class TestHistory:
    def test_history_records_everything(self):
        app = FlowControlApp([signature()])
        app.screen(clean())
        app.screen(leaky())
        assert len(app.history) == 2
        assert len(app.flagged()) == 1
        assert len(app.blocked()) == 1

    def test_prompt_count(self):
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK, domain="adnet.com")
        app.screen(leaky())  # blocked silently, no prompt
        app.policies.rules.clear()
        app.screen(leaky())  # prompts
        assert app.prompt_count() == 1


class TestFetch:
    def test_fetch_from_published_document(self):
        published = SignatureStore.dumps([signature()])
        app = FlowControlApp.fetch(published)
        assert app.screen(leaky()).flagged


class TestAllowRulePrecedence:
    """Satellite: explicit ALLOW rules outrank degraded keyword screening."""

    def leaky_keyword(self):
        return make_packet(
            host="ads.adnet.com", target="/x?imei=123456789012345", app_id="jp.app.one"
        )

    def test_allow_rule_skips_degraded_screening(self):
        app = FlowControlApp.degraded()
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW)
        decision = app.screen(self.leaky_keyword())
        assert decision.transmitted
        assert not decision.flagged  # keyword detector never consulted
        assert decision.degraded
        assert decision.applied_rule == ("jp.app.one", "")

    def test_domain_allow_rule_also_wins(self):
        app = FlowControlApp.degraded()
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW, domain="adnet.com")
        decision = app.screen(self.leaky_keyword())
        assert decision.transmitted and not decision.flagged
        assert decision.applied_rule == ("jp.app.one", "adnet.com")

    def test_without_rule_keyword_screening_runs_first(self):
        # the opposite precedence order: no explicit rule -> detector decides
        app = FlowControlApp.degraded()
        decision = app.screen(self.leaky_keyword())
        assert decision.flagged and decision.degraded
        assert decision.action is PolicyAction.PROMPT
        assert decision.applied_rule is None
        assert not decision.transmitted

    def test_block_rule_still_screens_in_degraded_mode(self):
        # only ALLOW short-circuits: a BLOCK rule must still see the verdict
        app = FlowControlApp.degraded()
        app.policies.set_rule("jp.app.one", PolicyAction.BLOCK)
        flagged = app.screen(self.leaky_keyword())
        assert flagged.flagged and not flagged.transmitted
        assert flagged.applied_rule == ("jp.app.one", "")
        clean_decision = app.screen(clean())
        assert clean_decision.transmitted and not clean_decision.flagged

    def test_signature_mode_screens_before_allow_rule(self):
        # with real signatures the screen still runs; the rule only decides
        # the action and is recorded on the decision
        app = FlowControlApp([signature()])
        app.policies.set_rule("jp.app.one", PolicyAction.ALLOW)
        decision = app.screen(leaky())
        assert decision.flagged  # signature verdict kept in history
        assert decision.transmitted
        assert decision.applied_rule == ("jp.app.one", "")

    def test_lookup_rule_reports_explicit_key(self):
        app = FlowControlApp([signature()])
        assert app.policies.lookup_rule("a", "d") == (PolicyAction.PROMPT, None)
        app.policies.set_rule("a", PolicyAction.BLOCK)
        assert app.policies.lookup_rule("a", "d") == (PolicyAction.BLOCK, ("a", ""))
        app.policies.set_rule("a", PolicyAction.ALLOW, domain="d")
        assert app.policies.lookup_rule("a", "d") == (PolicyAction.ALLOW, ("a", "d"))
