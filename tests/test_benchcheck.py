"""The bench-drift gate: committed BENCH_*.json reports must stay valid."""

import json
from pathlib import Path

from repro.eval.benchcheck import (
    REQUIRED_FIELDS,
    TRUE_FLAGS,
    check_file,
    check_report,
    check_tree,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def streaming_payload(**overrides) -> dict:
    payload = {name: object() for name in REQUIRED_FIELDS["streaming"]}
    payload.update(
        bench="streaming", identical=True, ok=True, violations=[]
    )
    payload.update(overrides)
    return payload


class TestCheckReport:
    def test_valid_report_is_clean(self):
        assert check_report(streaming_payload()) == []

    def test_every_family_declares_its_flags(self):
        assert set(TRUE_FLAGS) == set(REQUIRED_FIELDS)
        for family, flags in TRUE_FLAGS.items():
            assert set(flags) <= set(REQUIRED_FIELDS[family])

    def test_missing_field_is_drift(self):
        payload = streaming_payload()
        del payload["audit"]
        problems = check_report(payload)
        assert any("'audit'" in p for p in problems)

    def test_false_flag_is_drift(self):
        problems = check_report(streaming_payload(identical=False))
        assert any("'identical'" in p and "must be true" in p for p in problems)

    def test_lingering_violations_are_drift(self):
        problems = check_report(streaming_payload(violations=["too slow"]))
        assert any("violations" in p for p in problems)

    def test_unknown_family_is_drift(self):
        problems = check_report(streaming_payload(bench="mystery"))
        assert any("unknown bench family" in p for p in problems)

    def test_missing_discriminator_is_drift(self):
        assert check_report({"ok": True}) == [
            "missing or non-string 'bench' discriminator field"
        ]

    def test_non_object_payload_is_drift(self):
        assert any("expected an object" in p for p in check_report([1, 2]))


def slo_section(**overrides) -> dict:
    """A minimal valid SLO section (nested in service or standalone)."""
    objective = {
        "kind": "availability",
        "target": 0.999,
        "compliance": 1.0,
        "budget": {"allowed_bad": 6.0, "bad": 0, "consumed": 0.0, "remaining": 1.0},
        "alerts": [],
        "ok": True,
    }
    section = {
        "objectives": {"availability": objective},
        "page_alerts": 0,
        "ticket_alerts": 0,
        "ok": True,
    }
    section.update(overrides)
    return section


def service_payload(**overrides) -> dict:
    payload = {name: object() for name in REQUIRED_FIELDS["service"]}
    payload.update(
        bench="service", identical=True, ok=True, violations=[], slo=slo_section()
    )
    payload.update(overrides)
    return payload


class TestServiceFamily:
    def test_valid_service_report_is_clean(self):
        assert check_report(service_payload()) == []

    def test_lost_identity_proof_is_drift(self):
        problems = check_report(service_payload(identical=False))
        assert any("'identical'" in p and "must be true" in p for p in problems)

    def test_missing_latency_is_drift(self):
        payload = service_payload()
        del payload["latency_ms"]
        assert any("'latency_ms'" in p for p in check_report(payload))

    def test_nested_slo_section_is_validated(self):
        payload = service_payload(slo=slo_section(page_alerts=2))
        problems = check_report(payload)
        assert any("page-severity" in p for p in problems)

    def test_missing_slo_field_is_drift(self):
        payload = service_payload()
        del payload["slo"]
        assert any("'slo'" in p for p in check_report(payload))

    def test_missing_tracing_field_is_drift(self):
        payload = service_payload()
        del payload["tracing"]
        assert any("'tracing'" in p for p in check_report(payload))


def slo_payload(**overrides) -> dict:
    payload = slo_section()
    payload.update(bench="slo", **overrides)
    return payload


class TestSloFamily:
    def test_valid_standalone_report_is_clean(self):
        assert check_report(slo_payload()) == []

    def test_failed_objective_is_drift(self):
        section = slo_section()
        section["objectives"]["availability"]["ok"] = False
        problems = check_report(slo_payload(objectives=section["objectives"]))
        assert any("'availability' is not ok" in p for p in problems)

    def test_page_alerts_are_drift(self):
        problems = check_report(slo_payload(page_alerts=1))
        assert any("page-severity" in p for p in problems)

    def test_empty_objectives_are_drift(self):
        problems = check_report(slo_payload(objectives={}))
        assert any("no objectives" in p for p in problems)

    def test_objective_missing_keys_is_drift(self):
        problems = check_report(
            slo_payload(objectives={"availability": {"kind": "availability"}})
        )
        assert any("missing 'budget'" in p for p in problems)

    def test_false_verdict_is_drift(self):
        problems = check_report(slo_payload(ok=False))
        assert any("must be true" in p for p in problems)

    def test_non_object_section_is_drift(self):
        assert any(
            "expected an object" in p
            for p in check_report(service_payload(slo=[1, 2]))
        )


def arena_payload(**overrides) -> dict:
    payload = {name: object() for name in REQUIRED_FIELDS["arena"]}
    payload.update(
        bench="arena", ground_truth_intact=True, recovered=True,
        ok=True, violations=[],
    )
    payload.update(overrides)
    return payload


class TestArenaFamily:
    def test_valid_arena_report_is_clean(self):
        assert check_report(arena_payload()) == []

    def test_unrecovered_report_is_drift(self):
        problems = check_report(arena_payload(recovered=False))
        assert any("'recovered'" in p and "must be true" in p for p in problems)

    def test_broken_ground_truth_is_drift(self):
        problems = check_report(arena_payload(ground_truth_intact=False))
        assert any("'ground_truth_intact'" in p for p in problems)

    def test_missing_families_field_is_drift(self):
        payload = arena_payload()
        del payload["families"]
        assert any("'families'" in p for p in check_report(payload))

    def test_lingering_violations_are_drift(self):
        problems = check_report(
            arena_payload(violations=["token_split: rounds-to-recovery 9 > 3"])
        )
        assert any("violations" in p for p in problems)


class TestCheckFile:
    def test_unparseable_file(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert any("unreadable" in p for p in check_file(path))

    def test_missing_file(self, tmp_path):
        assert any("unreadable" in p for p in check_file(tmp_path / "BENCH_x.json"))

    def test_valid_file(self, tmp_path):
        path = tmp_path / "BENCH_streaming.json"
        path.write_text(
            json.dumps(streaming_payload(), default=lambda o: None),
            encoding="utf-8",
        )
        assert check_file(path) == []


class TestCheckTree:
    def test_empty_tree_returns_empty_mapping(self, tmp_path):
        assert check_tree(tmp_path) == {}

    def test_mixed_tree(self, tmp_path):
        good = tmp_path / "BENCH_streaming.json"
        good.write_text(
            json.dumps(streaming_payload(), default=lambda o: None),
            encoding="utf-8",
        )
        bad = tmp_path / "BENCH_drifted.json"
        bad.write_text(json.dumps({"bench": "streaming"}), encoding="utf-8")
        results = check_tree(tmp_path)
        assert results["BENCH_streaming.json"] == []
        assert results["BENCH_drifted.json"]

    def test_committed_reports_are_clean(self):
        """The actual trajectory of record must pass its own gate."""
        results = check_tree(REPO_ROOT)
        assert "BENCH_streaming.json" in results
        assert {name: problems for name, problems in results.items() if problems} == {}
