"""Request tracing across the process boundary: context, recorder, joiner."""

import json
import threading

import pytest

from repro.obs.context import (
    NULL_FLIGHT_RECORDER,
    NULL_REQUEST_TRACER,
    FlightRecorder,
    RequestTracer,
    TraceContext,
    audit_trace_join,
    export_joined_chrome_trace,
    export_request_spans_jsonl,
    join_chrome_trace,
    load_request_spans,
    parse_traceparent,
    request_span_line,
)


def make_tracer(process="client", run_id="00aa00aa00aa00aa"):
    """A tracer with deterministic injected clocks (1 ms per perf read)."""
    wall = iter(range(1, 10_000))
    perf = iter(range(1, 10_000))
    return RequestTracer(
        process,
        run_id=run_id,
        clock=lambda: next(wall) * 1.0,
        perf=lambda: next(perf) * 0.001,
    )


class TestTraceContext:
    def test_traceparent_round_trip(self):
        context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        header = context.to_traceparent()
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        assert parse_traceparent(header) == context

    def test_invalid_ids_rejected(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="0" * 32, span_id="cd" * 8)
        with pytest.raises(ValueError):
            TraceContext(trace_id="ab" * 16, span_id="xyz")

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            "00-" + "ab" * 16,  # missing parts
            "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # forbidden version
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "ab" * 15 + "-" + "cd" * 8 + "-01",  # short trace id
            "00-" + "gg" * 16 + "-" + "cd" * 8 + "-01",  # non-hex
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_parse_is_case_insensitive(self):
        header = f"00-{'AB' * 16}-{'CD' * 8}-01"
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == "ab" * 16


class TestRequestTracer:
    def test_ids_are_deterministic(self):
        a, b = make_tracer(), make_tracer()
        for tracer in (a, b):
            with tracer.request("fetch"):
                pass
        (sa,), (sb,) = a.closed_spans, b.closed_spans
        assert (sa.trace_id, sa.span_id) == (sb.trace_id, sb.span_id)
        assert sa.trace_id.startswith("00aa00aa00aa00aa")

    def test_non_hex_run_id_is_hashed_to_hex(self):
        tracer = make_tracer(run_id="not hex at all")
        with tracer.request("op"):
            pass
        (span,) = tracer.closed_spans
        assert len(span.trace_id) == 32
        assert set(span.trace_id) <= set("0123456789abcdef")

    def test_span_id_prefix_separates_processes(self):
        client, server = make_tracer("client"), make_tracer("server")
        with client.request("op"):
            pass
        with server.serve("op", None):
            pass
        assert client.closed_spans[0].span_id.startswith("c0")
        assert server.closed_spans[0].span_id.startswith("5e")

    def test_serve_continues_propagated_context(self):
        client, server = make_tracer("client"), make_tracer("server")
        with client.request("fetch") as span:
            header = span.context.to_traceparent()
        context = parse_traceparent(header)
        with server.serve("fetch", context):
            pass
        (client_span,), (route,) = client.closed_spans, server.closed_spans
        assert route.trace_id == client_span.trace_id
        assert route.parent_span_id == client_span.span_id

    def test_serve_without_context_roots_a_fresh_trace(self):
        server = make_tracer("server")
        with server.serve("fetch", None):
            pass
        (route,) = server.closed_spans
        assert route.parent_span_id is None

    def test_child_nests_under_innermost_active_span(self):
        server = make_tracer("server")
        with server.serve("screen", None) as route:
            with server.child("gateway_screen") as inner:
                assert inner.parent_span_id == route.span_id
                assert inner.trace_id == route.trace_id

    def test_child_without_active_span_still_records(self):
        server = make_tracer("server")
        with server.child("repository_read") as span:
            assert span.parent_span_id is None
        assert len(server.closed_spans) == 1

    def test_stacks_are_thread_local(self):
        tracer = make_tracer("server")
        parents = {}

        def worker(name):
            with tracer.serve(name, None):
                with tracer.child(f"{name}_inner") as child:
                    parents[name] = child.parent_span_id

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        routes = {s.name: s.span_id for s in tracer.closed_spans}
        for name, parent in parents.items():
            assert parent == routes[name]
        assert len(tracer.closed_spans) == 8

    def test_duration_from_injected_perf_counter(self):
        tracer = make_tracer()
        with tracer.request("op"):
            pass
        assert tracer.closed_spans[0].dur_ms == pytest.approx(1.0)


class TestNullObjects:
    def test_null_tracer_yields_none_and_records_nothing(self):
        with NULL_REQUEST_TRACER.request("op") as span:
            assert span is None
        with NULL_REQUEST_TRACER.serve("op", None) as span:
            assert span is None
        with NULL_REQUEST_TRACER.child("op") as span:
            assert span is None
        assert NULL_REQUEST_TRACER.closed_spans == []
        assert NULL_REQUEST_TRACER.enabled is False

    def test_null_flight_recorder_swallows_everything(self):
        NULL_FLIGHT_RECORDER.add({"kind": "access"})
        assert NULL_FLIGHT_RECORDER.trip("5xx") is None
        assert NULL_FLIGHT_RECORDER.dumps == []
        with pytest.raises(RuntimeError):
            NULL_FLIGHT_RECORDER.export_jsonl("/dev/null")


class TestFlightRecorder:
    def test_ring_keeps_only_the_newest_records(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.add({"i": i})
        dump = recorder.trip("5xx", route="screen")
        assert [r["i"] for r in dump["records"]] == [2, 3, 4]
        assert dump["reason"] == "5xx"
        assert dump["detail"] == {"route": "screen"}

    def test_trips_capped_with_suppression_counter(self):
        recorder = FlightRecorder(capacity=2, max_dumps=2)
        recorder.add({"i": 0})
        assert recorder.trip("a") is not None
        assert recorder.trip("b") is not None
        assert recorder.trip("c") is None
        assert recorder.suppressed == 1
        assert len(recorder.dumps) == 2

    def test_export_jsonl_header_and_dumps(self, tmp_path):
        recorder = FlightRecorder(capacity=2)
        recorder.add({"i": 1})
        recorder.trip("shed", shed=3)
        path = recorder.export_jsonl(tmp_path / "flight.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "flight_recorder"
        assert lines[0]["n_dumps"] == 1
        assert lines[1]["kind"] == "flight_dump"
        assert lines[1]["detail"] == {"shed": 3}

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


def traced_round_trip(n_requests=3):
    """Client/server tracer pair with propagated contexts, as records."""
    client, server = make_tracer("client"), make_tracer("server")
    for i in range(n_requests):
        with client.request(f"op{i}") as span:
            with server.serve(f"op{i}", span.context):
                with server.child("repository_read"):
                    pass
    clients = [request_span_line(s) for s in client.closed_spans]
    servers = [request_span_line(s) for s in server.closed_spans]
    return clients, servers


class TestJoinAndAudit:
    def test_round_trip_joins_completely(self):
        clients, servers = traced_round_trip()
        audit = audit_trace_join(clients, servers)
        assert audit["complete"] is True
        assert audit["n_client_requests"] == audit["n_joined"] == 3
        assert audit["n_orphan_client"] == audit["n_orphan_server"] == 0
        assert audit["n_broken_parent"] == 0

    def test_missing_server_tree_is_an_orphan_client(self):
        clients, servers = traced_round_trip()
        lost = servers[0]["trace_id"]
        pruned = [s for s in servers if s["trace_id"] != lost]
        audit = audit_trace_join(clients, pruned)
        assert audit["n_orphan_client"] == 1
        assert audit["complete"] is False

    def test_broken_parent_link_fails_the_audit(self):
        clients, servers = traced_round_trip()
        roots = [
            s
            for s in servers
            if s["parent_span_id"] is not None
            and not s["parent_span_id"].startswith("5e")
        ]
        roots[0]["parent_span_id"] = "de" * 8  # claims a parent nobody allocated
        audit = audit_trace_join(clients, servers)
        assert audit["n_broken_parent"] == 1
        assert audit["complete"] is False

    def test_server_rooted_traces_are_not_orphans(self):
        # Harness plumbing (publisher, audits) runs untraced: server roots
        # with no parent claim must not fail the join.
        clients, servers = traced_round_trip()
        server = make_tracer("server", run_id="5050505050505050")
        with server.serve("healthz", None):
            pass
        servers.extend(request_span_line(s) for s in server.closed_spans)
        audit = audit_trace_join(clients, servers)
        assert audit["n_orphan_server"] == 0
        assert audit["complete"] is True

    def test_foreign_parent_claim_is_an_orphan_server(self):
        clients, servers = traced_round_trip()
        server = make_tracer("server", run_id="5050505050505050")
        context = TraceContext(trace_id="ee" * 16, span_id="dd" * 8)
        with server.serve("fetch", context):
            pass
        servers.extend(request_span_line(s) for s in server.closed_spans)
        audit = audit_trace_join(clients, servers)
        assert audit["n_orphan_server"] == 1
        assert audit["complete"] is False

    def test_empty_client_side_is_incomplete(self):
        assert audit_trace_join([], [])["complete"] is False

    def test_chrome_trace_lanes_and_events(self):
        clients, servers = traced_round_trip(2)
        doc = join_chrome_trace({"client": clients, "server": servers})
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert names == {"client", "server"}
        # client sorts before server: pid 1 vs 2
        pid_by_name = {
            e["args"]["name"]: e["pid"] for e in meta if e["name"] == "process_name"
        }
        assert pid_by_name == {"client": 1, "server": 2}
        assert len(slices) == len(clients) + len(servers)
        assert all(e["dur"] >= 1.0 for e in slices)
        assert all("trace_id" in e["args"] for e in slices)

    def test_export_and_reload_round_trip(self, tmp_path):
        client, server = make_tracer("client"), make_tracer("server")
        with client.request("fetch") as span:
            with server.serve("fetch", span.context):
                pass
        client_path = export_request_spans_jsonl(client, tmp_path / "client.jsonl")
        server_path = export_request_spans_jsonl(server, tmp_path / "server.jsonl")
        clients = load_request_spans(client_path)
        servers = load_request_spans(server_path)
        assert len(clients) == len(servers) == 1
        header = json.loads(client_path.read_text().splitlines()[0])
        assert header["kind"] == "run"
        assert header["process"] == "client"
        audit = audit_trace_join(clients, servers)
        assert audit["complete"] is True
        joined = export_joined_chrome_trace(
            {"client": clients, "server": servers}, tmp_path / "trace_joined.json"
        )
        doc = json.loads(joined.read_text())
        assert doc["otherData"]["joined_processes"] == ["client", "server"]
