"""Identifier generation: structure, Luhn validity, identity coherence."""

from random import Random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sensitive.identifiers import (
    CARRIERS,
    DeviceIdentity,
    IdentifierKind,
    luhn_check_digit,
    luhn_valid,
    make_android_id,
    make_iccid,
    make_imei,
    make_imsi,
)


class TestLuhn:
    def test_known_check_digit(self):
        # classic example: 49015420323751 -> check digit 8
        assert luhn_check_digit("49015420323751") == 8

    def test_valid_full_number(self):
        assert luhn_valid("490154203237518")

    def test_invalid_full_number(self):
        assert not luhn_valid("490154203237519")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            luhn_check_digit("12a4")

    def test_luhn_valid_guards(self):
        assert not luhn_valid("")
        assert not luhn_valid("7")
        assert not luhn_valid("12x4")

    @given(st.text(alphabet="0123456789", min_size=1, max_size=24))
    def test_generated_check_digit_validates(self, digits):
        assert luhn_valid(digits + str(luhn_check_digit(digits)))


class TestGenerators:
    def test_imei_shape(self):
        imei = make_imei(Random(1))
        assert len(imei) == 15
        assert imei.isdigit()
        assert luhn_valid(imei)

    def test_imsi_shape(self):
        imsi = make_imsi(Random(1), "NTT DOCOMO")
        assert len(imsi) == 15
        assert imsi.startswith("44010")

    def test_imsi_unknown_carrier_falls_back(self):
        assert make_imsi(Random(1), "NOPE").startswith("44010")

    def test_iccid_shape(self):
        iccid = make_iccid(Random(1), "SoftBank")
        assert len(iccid) == 19
        assert iccid.startswith("8981")
        assert luhn_valid(iccid)

    def test_android_id_shape(self):
        aid = make_android_id(Random(1))
        assert len(aid) == 16
        assert all(c in "0123456789abcdef" for c in aid)

    def test_determinism(self):
        assert make_imei(Random(5)) == make_imei(Random(5))


class TestDeviceIdentity:
    def test_generate_coherent(self):
        identity = DeviceIdentity.generate(Random(3))
        assert identity.carrier in CARRIERS
        assert luhn_valid(identity.imei)
        assert luhn_valid(identity.sim_serial)
        assert len(identity.android_id) == 16

    def test_value_of_all_kinds(self):
        identity = DeviceIdentity.generate(Random(3))
        for kind in IdentifierKind:
            value = identity.value_of(kind)
            assert isinstance(value, str) and value

    def test_items_covers_all_kinds(self):
        identity = DeviceIdentity.generate(Random(3))
        kinds = [kind for kind, __ in identity.items()]
        assert set(kinds) == set(IdentifierKind)

    def test_is_udid_flags(self):
        assert IdentifierKind.IMEI.is_udid
        assert IdentifierKind.ANDROID_ID.is_udid
        assert not IdentifierKind.CARRIER.is_udid

    def test_identities_differ_across_seeds(self):
        a = DeviceIdentity.generate(Random(1))
        b = DeviceIdentity.generate(Random(2))
        assert a.imei != b.imei or a.android_id != b.android_id
