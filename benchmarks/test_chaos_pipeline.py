"""Chaos bench — supervised pipeline under worker and inter-stage faults.

The distribution chaos bench asserts *graceful* degradation; this one
asserts something stronger for the server side: **exact recovery**.  The
supervised pipeline (:mod:`repro.supervision`) runs with chunk-level
worker faults (crash / hang / poison, rates 0%–50%) and three injected
inter-stage crashes per run, and at every swept point the recovered run's
condensed distance matrix and signature set must be byte-identical to the
fault-free baseline.

Assertions:

- every point completes with ``recovered=True`` after absorbing all three
  stage crashes (restarts == number of crash points);
- matrix and signatures are byte-identical to the fault-free run at every
  rate (``invariant_holds``);
- the high-rate points actually injected chunk faults (the sweep is not
  vacuous) and exercised retry or quarantine recovery;
- the sweep is deterministic (same seeds, same points).
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.chaos import render_pipeline_chaos, run_pipeline_chaos_sweep
from repro.simulation.corpus import mini_corpus

RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
CRASH_STAGES = ("payload_check", "distance_matrix", "cut")
SEED = 5


@pytest.fixture(scope="module")
def chaos_corpus():
    return mini_corpus(seed=SEED, n_apps=80)


@pytest.fixture(scope="module")
def sweep(chaos_corpus):
    return run_pipeline_chaos_sweep(
        chaos_corpus.trace,
        chaos_corpus.payload_check(),
        chunk_rates=RATES,
        crash_stages=CRASH_STAGES,
        n_sample=60,
        seed=SEED,
    )


def test_recovers_at_every_rate(sweep, benchmark):
    assert len(sweep) == len(RATES)
    for point in sweep:
        assert point.recovered, f"run at rate {point.chunk_fault_rate} did not recover"
        # every explicit crash point fired exactly once and was absorbed
        assert point.restarts == len(CRASH_STAGES)
        assert point.attempts == len(CRASH_STAGES) + 1


def test_outputs_byte_identical_at_every_rate(sweep, benchmark):
    for point in sweep:
        assert point.matrix_identical, (
            f"matrix diverged from fault-free baseline at rate {point.chunk_fault_rate}"
        )
        assert point.signatures_identical, (
            f"signatures diverged from fault-free baseline at rate {point.chunk_fault_rate}"
        )
        assert point.invariant_holds


def test_faults_actually_injected(sweep, benchmark):
    # The zero-rate point must be clean ...
    assert sweep[0].faults_injected == 0
    assert sweep[0].chunks_retried == 0
    assert sweep[0].chunks_quarantined == 0
    # ... and the upper half of the sweep must not be vacuous: chunk
    # faults landed and recovery (re-dispatch or quarantine) ran.
    high = [p for p in sweep if p.chunk_fault_rate >= 0.3]
    assert sum(p.faults_injected for p in high) > 0
    assert sum(p.chunks_retried + p.chunks_quarantined for p in high) > 0


def test_resume_replays_checkpointed_prefix(sweep, benchmark):
    # Across one supervised run the seven stages execute exactly once in
    # total (checkpoints absorb the re-runs), while each crash forces the
    # next attempt to replay the journaled prefix.
    for point in sweep:
        assert point.stages_executed == 7
        assert point.stages_replayed > 0


def test_sweep_is_deterministic(chaos_corpus, sweep, benchmark):
    again = run_pipeline_chaos_sweep(
        chaos_corpus.trace,
        chaos_corpus.payload_check(),
        chunk_rates=(0.0, 0.3),
        crash_stages=CRASH_STAGES,
        n_sample=60,
        seed=SEED,
    )
    matching = [p for p in sweep if p.chunk_fault_rate in (0.0, 0.3)]
    assert again == matching


def test_render_pipeline_chaos(sweep, benchmark):
    text = render_pipeline_chaos(sweep)
    assert "invariant: holds" in text
    emit("chaos_pipeline", text)
