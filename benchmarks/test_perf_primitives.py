"""Performance benches for the core primitives.

Not tied to a paper table — these quantify the costs the paper's §IV
pipeline is built from, so regressions in the hot paths show up.
"""

import pytest

from repro.clustering.linkage import agglomerate
from repro.distance.matrix import distance_matrix
from repro.distance.ncd import NcdCalculator
from repro.distance.packet import PacketDistance
from repro.net.editdist import levenshtein
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.matcher import SignatureMatcher
from repro.signatures.tokens import common_substrings


@pytest.fixture(scope="module")
def sample_packets_200(ablation_corpus):
    check = ablation_corpus.payload_check()
    suspicious, __ = check.split(ablation_corpus.trace)
    return suspicious[:200]


def test_bench_ncd_cached(benchmark):
    calc = NcdCalculator()
    a = b"POST /aap.do HTTP/1.1 apiKey=0123456789&carrier=KDDI&events=" + b"ab" * 50
    b_ = b"POST /aap.do HTTP/1.1 apiKey=0123456789&carrier=KDDI&events=" + b"cd" * 50
    benchmark(lambda: calc.distance(a, b_))


def test_bench_levenshtein_hosts(benchmark):
    benchmark(lambda: levenshtein("googleads.g.doubleclick.net", "pagead2.googlesyndication.com"))


def test_bench_packet_distance(benchmark, sample_packets_200):
    metric = PacketDistance.paper()
    a, b = sample_packets_200[0], sample_packets_200[1]
    benchmark(lambda: metric.distance(a, b))


def test_bench_distance_matrix_100(benchmark, sample_packets_200):
    packets = sample_packets_200[:100]
    benchmark.pedantic(
        lambda: distance_matrix(packets, PacketDistance.paper()), rounds=1, iterations=1
    )


def test_bench_clustering_200(benchmark, sample_packets_200):
    matrix = distance_matrix(sample_packets_200, PacketDistance.paper())
    benchmark(lambda: agglomerate(matrix))


def test_bench_token_extraction(benchmark, sample_packets_200):
    texts = [p.canonical_text() for p in sample_packets_200[:20]]
    benchmark(lambda: common_substrings(texts, min_length=5))


def test_bench_matcher_screening(benchmark, ablation_corpus):
    from repro.baselines.variants import run_variant

    check = ablation_corpus.payload_check()
    result = run_variant(ablation_corpus.trace, check, "paper", 60, seed=8)
    matcher = SignatureMatcher(result.signatures)
    packets = ablation_corpus.trace.packets[:5000]
    benchmark.pedantic(lambda: matcher.screen(packets), rounds=2, iterations=1)


def test_bench_payload_check_single(benchmark, ablation_corpus):
    check = PayloadCheck(ablation_corpus.device.identity)
    packet = ablation_corpus.trace[0]
    benchmark(lambda: check.scan(packet))
