"""Table III — sensitive information footprint per identifier type.

Regenerates the per-identifier packet/app/destination counts via the
payload check and asserts the paper's shape: hashed Android ID is the top
leak, the overall ordering of packet masses holds, and the corpus-level
sensitive fraction is near the published 22%.
"""

import pytest

from benchmarks.conftest import SCALE as _SCALE

full_scale_only = pytest.mark.skipif(
    _SCALE < 0.8, reason="absolute published-band assertions need the full-scale corpus"
)

from benchmarks.conftest import SCALE, emit
from repro.dataset.stats import sensitive_table
from repro.eval.report import render_table3
from repro.simulation.corpus import PAPER_TABLE3


@pytest.fixture(scope="module")
def rows(paper):
    return sensitive_table(paper.trace, paper.payload_check())


def test_all_identifier_rows_present(rows, benchmark):
    assert {r.label for r in rows} >= set(PAPER_TABLE3)


def test_android_id_md5_is_top_leak(rows, benchmark):
    by_packets = sorted(rows, key=lambda r: -r.packets)
    assert by_packets[0].label == "ANDROID_ID MD5"


def test_packet_mass_ordering_mostly_preserved(rows, benchmark):
    """Kendall-style agreement: most pairwise orderings of the published
    packet masses must hold in the measured table."""
    measured = {r.label: r.packets for r in rows}
    labels = list(PAPER_TABLE3)
    agree = total = 0
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            pa, pb = PAPER_TABLE3[a][0], PAPER_TABLE3[b][0]
            ma, mb = measured.get(a, 0), measured.get(b, 0)
            if pa == pb:
                continue
            total += 1
            agree += (pa > pb) == (ma > mb)
    assert agree / total > 0.8


@full_scale_only
def test_packet_masses_within_band(rows, benchmark):
    measured = {r.label: r.packets for r in rows}
    for label, (pkts, __, __) in PAPER_TABLE3.items():
        assert measured.get(label, 0) == pytest.approx(pkts * SCALE, rel=0.55), label


def test_sensitive_fraction_near_22_percent(paper, paper_split, benchmark):
    suspicious, __ = paper_split
    fraction = len(suspicious) / len(paper.trace)
    assert fraction == pytest.approx(0.216, abs=0.06)


def test_multiple_destinations_per_identifier(rows, benchmark):
    by_label = {r.label: r for r in rows}
    # Plain Android ID and IMEI leak to many distinct destinations (the
    # paper counts 75 and 94); ours must show the same many-destination
    # character, not a single endpoint.
    assert by_label["ANDROID_ID"].destinations >= 10
    assert by_label["IMEI"].destinations >= 5


def test_render_table3(rows, benchmark):
    emit("table3", render_table3(rows, scale=SCALE))


def test_bench_payload_check(paper, benchmark):
    """Performance: ground-truth labelling of the full trace."""
    check = paper.payload_check()
    benchmark.pedantic(lambda: check.split(paper.trace), rounds=3, iterations=1)
