"""Table II — HTTP packet destinations.

Regenerates the per-domain packet/app masses and asserts band agreement
with the published table: every published domain appears, the heavy
hitters rank near the top, and packet masses land within a factor band.
The benchmarked operation is the aggregation itself.
"""

import pytest

from benchmarks.conftest import SCALE as _SCALE

full_scale_only = pytest.mark.skipif(
    _SCALE < 0.8, reason="absolute published-band assertions need the full-scale corpus"
)

from benchmarks.conftest import SCALE, emit
from repro.dataset.stats import destination_table
from repro.eval.report import render_table2
from repro.simulation.corpus import PAPER_TABLE2


@pytest.fixture(scope="module")
def rows(paper):
    return destination_table(paper.trace)


@full_scale_only
def test_all_published_domains_present(rows, benchmark):
    domains = {r.domain for r in rows}
    missing = set(PAPER_TABLE2) - domains
    assert not missing, f"published destinations missing from corpus: {missing}"


@full_scale_only
def test_packet_masses_within_band(rows, benchmark):
    by_domain = {r.domain: r for r in rows}
    for domain, (pkts, apps) in PAPER_TABLE2.items():
        measured = by_domain[domain]
        expected_pkts = pkts * SCALE
        expected_apps = apps * SCALE
        assert measured.packets == pytest.approx(expected_pkts, rel=0.45), domain
        assert measured.apps == pytest.approx(expected_apps, rel=0.35), domain


def test_app_count_ranking_preserved(rows, benchmark):
    """The paper's ordering is by app count; the top-5 published domains
    must rank in our top tier as well."""
    shared = [r for r in rows if r.domain in PAPER_TABLE2]
    our_rank = [r.domain for r in shared]
    paper_rank = sorted(PAPER_TABLE2, key=lambda d: -PAPER_TABLE2[d][1])
    assert set(our_rank[:8]) & set(paper_rank[:5])  # heavy hitters at the top


def test_ad_services_among_top_destinations(rows, benchmark):
    top_domains = {r.domain for r in rows[:15]}
    assert top_domains & {"doubleclick.net", "admob.com", "google-analytics.com"}


def test_render_table2(rows, benchmark):
    emit("table2", render_table2(rows, scale=SCALE))


def test_bench_destination_aggregation(paper, benchmark):
    """Performance: grouping ~100k packets by registered domain."""
    benchmark.pedantic(lambda: destination_table(paper.trace), rounds=3, iterations=1)
