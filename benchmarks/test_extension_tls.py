"""Extension — TLS adoption sensitivity (the paper's stated limitation).

"It can be difficult to detect sensitive information in SSL traffic."
The bench sweeps the fraction of ad/analytics SDKs migrated to TLS and
measures the detection floor of plaintext-trained signatures on the
observer's view of the same (still leaking) traffic.

Expected shape: recall decays roughly linearly with adoption; at 100%
adoption only plaintext long-tail leaks (developer backends, which
migrated last in reality too) remain detectable.
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.variants import run_variant
from repro.signatures.matcher import SignatureMatcher
from repro.simulation.tls import adopt_tls

ADOPTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def sweep(ablation_corpus):
    check = ablation_corpus.payload_check()
    suspicious, __ = check.split(ablation_corpus.trace)
    result = run_variant(ablation_corpus.trace, check, "paper", ABLATION_SAMPLE, seed=37)
    matcher = SignatureMatcher(result.signatures)
    points = {}
    for adoption in ADOPTIONS:
        observed = adopt_tls(suspicious, adoption, seed=41)
        recall = sum(matcher.is_sensitive(p) for p in observed) / len(observed)
        encrypted = sum(1 for p in observed if p.meta.get("tls"))
        points[adoption] = (recall, encrypted, len(observed))
    return points


def test_recall_monotone_decreasing(sweep, benchmark):
    recalls = [sweep[a][0] for a in ADOPTIONS]
    assert all(x >= y - 0.02 for x, y in zip(recalls, recalls[1:]))


def test_plaintext_baseline_intact(sweep, benchmark):
    assert sweep[0.0][0] > 0.6


def test_full_adoption_blinds_most_detection(sweep, benchmark):
    assert sweep[1.0][0] < 0.4
    assert sweep[1.0][0] < sweep[0.0][0] / 2


def test_encrypted_share_tracks_adoption(sweep, benchmark):
    for adoption in ADOPTIONS:
        __, encrypted, total = sweep[adoption]
        # ad/analytics dominate the sensitive group, so the encrypted
        # share loosely tracks the adoption knob.
        if adoption == 0.0:
            assert encrypted == 0
        if adoption == 1.0:
            assert encrypted / total > 0.6


def test_report(sweep, benchmark):
    lines = ["Extension — TLS adoption vs detection floor",
             f"{'adoption':>9} {'recall%':>8} {'encrypted':>10}"]
    for adoption in ADOPTIONS:
        recall, encrypted, total = sweep[adoption]
        lines.append(f"{adoption:>9.2f} {100 * recall:>8.1f} {encrypted:>6d}/{total}")
    emit("extension_tls", "\n".join(lines))
