"""Chaos bench — detection under a fault-injected distribution channel.

Mirrors the Fig-4 bench shape, but sweeps the *channel* instead of the
sample size: fault rates from 0% to 50% (drops, truncation, bit
corruption, delays, stale cache reads per the
:meth:`~repro.reliability.faults.FaultPlan.uniform` mix).  A fleet of
simulated devices fetches through the faults with retry/backoff and a
circuit breaker, then screens the full labelled corpus with whatever it
holds — fresh signatures, last-known-good, or the degraded-mode keyword
baseline.

Assertions are about *graceful* degradation:

- the pipeline completes at every rate without an uncaught exception;
- mean TP never cliffs to zero and stays above ``TP(0) * (1 - rate)``;
- the TP series is monotone non-increasing within a small tolerance;
- every device always holds a screening strategy (no unscreened fleet);
- the sweep is deterministic (same seeds, same points).
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.chaos import render_chaos, run_chaos_sweep
from repro.simulation.corpus import mini_corpus

RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
SEED = 5


@pytest.fixture(scope="module")
def chaos_corpus():
    return mini_corpus(seed=SEED, n_apps=80)


@pytest.fixture(scope="module")
def sweep(chaos_corpus):
    return run_chaos_sweep(
        chaos_corpus.trace,
        chaos_corpus.payload_check(),
        rates=RATES,
        n_sample=60,
        n_devices=8,
        seed=SEED,
    )


def test_completes_at_every_rate(sweep, benchmark):
    assert len(sweep) == len(RATES)
    for point in sweep:
        assert point.n_devices == 8
        # every device ended in exactly one screening state
        assert point.fresh_fraction + point.cached_fraction + point.degraded_fraction == (
            pytest.approx(1.0)
        )


def test_tp_stays_above_graceful_floor(sweep, benchmark):
    baseline = sweep[0].tp_percent
    assert baseline >= 60.0  # the clean channel must actually detect
    for point in sweep[1:]:
        floor = baseline * (1.0 - point.fault_rate)
        assert point.tp_percent >= floor, (
            f"TP {point.tp_percent:.1f}% at rate {point.fault_rate} "
            f"fell below floor {floor:.1f}%"
        )


def test_tp_never_cliffs_to_zero(sweep, benchmark):
    for point in sweep:
        assert point.tp_percent >= 20.0


def test_tp_degrades_monotonically_gracefully(sweep, benchmark):
    # "Monotone-graceful" with fleet noise: faults never push detection
    # above the clean-channel baseline (beyond averaging tolerance), and
    # no single rate step cliffs.  Which devices land on v1/cached/degraded
    # shifts between rates, so strict pairwise monotonicity is not asserted.
    baseline = sweep[0].tp_percent
    for point in sweep[1:]:
        assert point.tp_percent <= baseline + 5.0
    for earlier, later in zip(sweep, sweep[1:]):
        assert later.tp_percent >= earlier.tp_percent - 35.0


def test_clean_channel_is_all_fresh(sweep, benchmark):
    assert sweep[0].fresh_fraction == 1.0
    assert sweep[0].degraded_fraction == 0.0


def test_reachability_shrinks_with_faults(sweep, benchmark):
    # At the highest fault rate some sessions must actually have failed
    # (otherwise the sweep is not exercising the fault path at all) ...
    assert sweep[-1].mean_attempts > sweep[0].mean_attempts
    # ... yet devices that lost every transfer still screen via fallback.
    assert sweep[-1].reachable_fraction + sweep[-1].degraded_fraction == pytest.approx(1.0)


def test_sweep_is_deterministic(chaos_corpus, sweep, benchmark):
    again = run_chaos_sweep(
        chaos_corpus.trace,
        chaos_corpus.payload_check(),
        rates=(0.0, 0.3),
        n_sample=60,
        n_devices=8,
        seed=SEED,
    )
    matching = [p for p in sweep if p.fault_rate in (0.0, 0.3)]
    assert again == matching


def test_render_chaos(sweep, benchmark):
    emit("chaos_distribution", render_chaos(sweep))
