"""Extension — seed-robustness of the headline result.

The paper reports one capture's numbers.  Here the Fig 4 point at N≈100
is re-run on five independently seeded corpora; the assertion is that the
conclusion ("high TP at low FP") is a property of the *method*, not of
one lucky corpus.
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.robustness import fig4_point_study

SEEDS = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def study():
    return {s.name: s for s in fig4_point_study(n_sample=100, seeds=SEEDS, n_apps=120)}


def test_tp_consistently_high(study, benchmark):
    assert study["tp_rate"].min > 0.5
    assert study["tp_rate"].mean > 0.65


def test_tp_spread_bounded(study, benchmark):
    assert study["tp_rate"].stdev < 0.15


def test_fp_low_on_every_seed(study, benchmark):
    assert study["fp_rate"].max < 0.05


def test_signature_count_stable(study, benchmark):
    assert study["n_signatures"].stdev < study["n_signatures"].mean


def test_report(study, benchmark):
    lines = [f"Extension — seed robustness (N=100, 120-app corpora, seeds {SEEDS})"]
    for summary in study.values():
        lines.append("  " + summary.describe())
    emit("seed_robustness", "\n".join(lines))
