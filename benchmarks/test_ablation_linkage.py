"""Ablation — linkage criterion.

The paper uses group-average linkage.  Single linkage chains unrelated
packets together (worse cluster coherence -> weaker signatures); complete
and Ward behave closer to group average.  Asserted shape: group average is
at or near the best TP, and never catastrophically worse than alternatives.
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.variants import run_variant


@pytest.fixture(scope="module")
def results(ablation_corpus):
    check = ablation_corpus.payload_check()
    return {
        variant: run_variant(ablation_corpus.trace, check, variant, ABLATION_SAMPLE, seed=5)
        for variant in ("paper", "single_linkage", "complete_linkage", "ward_linkage")
    }


def test_group_average_competitive(results, benchmark):
    """Among linkages with *controlled* FP, group average lands within a
    bounded margin of the best TP.  A variant buying recall with a
    match-everything signature (FP in the tens of percent) is not
    competition.  Measured finding worth reporting: complete linkage can
    out-detect group average on this corpus (~+13 TP at equal FP) — its
    max-diameter criterion forms more compact clusters whose common tokens
    generalize across apps; the paper's group average is the safe middle,
    never the pathological one."""
    usable = [r for r in results.values() if r.metrics.fp_percent < 5.0]
    best_tp = max(r.metrics.tp_percent for r in usable)
    assert results["paper"].metrics.fp_percent < 5.0
    assert results["paper"].metrics.tp_percent >= best_tp - 16.0


def test_all_linkages_produce_signatures(results, benchmark):
    for name, result in results.items():
        assert result.signatures, name


def test_fp_controlled_for_monotone_linkages(results, benchmark):
    """Group-average, single and complete linkages are monotone, so the
    fractional height cut stays meaningful and FP stays low.  Ward on a
    non-Euclidean metric is NOT monotone-compatible here: its height scale
    distorts the cut and can admit a match-everything cluster — a
    documented pathology, reported rather than asserted against."""
    for name in ("paper", "single_linkage", "complete_linkage"):
        assert results[name].metrics.fp_percent < 8.0, name


def test_ward_height_scale_distorts_cut(results, benchmark):
    # Either ward behaves, or it exhibits the documented FP blow-up; both
    # outcomes are stable findings — what we assert is that the paper's
    # choice never exhibits the pathology.
    assert results["paper"].metrics.fp_percent < 8.0


def test_report(results, benchmark):
    lines = ["Ablation — linkage criterion", f"{'variant':<20} {'TP%':>7} {'FP%':>7} {'#sigs':>6}"]
    for name, result in results.items():
        lines.append(
            f"{name:<20} {result.metrics.tp_percent:>7.1f} "
            f"{result.metrics.fp_percent:>7.2f} {len(result.signatures):>6d}"
        )
    emit("ablation_linkage", "\n".join(lines))
