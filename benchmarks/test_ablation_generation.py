"""Ablation — literal §IV-E generation vs the cut-based shortcut.

The paper's text generates one signature per dendrogram node top-down; the
practical implementation cuts the tree into flat clusters first.  This
bench compares the two on detection, signature-set size, and runtime.

Measured shape (documented by the assertions): the literal walk reaches a
few points more recall but its high, mixed nodes emit exactly the
match-everything patterns the paper warns about ("POST *"-class tokens
like a shared REST idiom), blowing FP up by an order of magnitude.  The
cut is not a shortcut — it is the load-bearing safeguard.
"""

import time

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.clustering.linkage import agglomerate
from repro.dataset.split import sample_packets
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.eval.metrics import compute_metrics
from repro.signatures.generator import SignatureGenerator
from repro.signatures.literal import LiteralGenerator
from repro.signatures.matcher import SignatureMatcher


@pytest.fixture(scope="module")
def results(ablation_corpus):
    check = ablation_corpus.payload_check()
    suspicious, normal = check.split(ablation_corpus.trace)
    sample = sample_packets(suspicious, ABLATION_SAMPLE, seed=19)
    matrix = distance_matrix(sample, PacketDistance.paper())
    dendrogram = agglomerate(matrix)
    out = {}
    for name, generator in (("cut-based", SignatureGenerator()), ("literal", LiteralGenerator())):
        start = time.perf_counter()
        signatures = generator.from_dendrogram(dendrogram, sample)
        elapsed = time.perf_counter() - start
        metrics = compute_metrics(
            SignatureMatcher(signatures), suspicious, normal, n_sample=len(sample)
        )
        out[name] = (signatures, metrics, elapsed)
    return out


def test_detection_equivalent(results, benchmark):
    cut_tp = results["cut-based"][1].tp_percent
    literal_tp = results["literal"][1].tp_percent
    assert literal_tp >= cut_tp - 3.0


def test_cut_based_fp_controlled(results, benchmark):
    assert results["cut-based"][1].fp_percent < 6.0


def test_literal_exhibits_the_papers_pathology(results, benchmark):
    """High mixed nodes produce match-most signatures; the cut prevents it."""
    assert results["literal"][1].fp_percent > results["cut-based"][1].fp_percent


def test_literal_not_catastrophically_slower(results, benchmark):
    assert results["literal"][2] <= results["cut-based"][2] * 30 + 5.0


def test_report(results, benchmark):
    lines = ["Ablation — generation procedure (paper text vs cut)",
             f"{'procedure':<12} {'TP%':>7} {'FP%':>7} {'#sigs':>6} {'seconds':>8}"]
    for name, (signatures, metrics, elapsed) in results.items():
        lines.append(
            f"{name:<12} {metrics.tp_percent:>7.1f} {metrics.fp_percent:>7.2f} "
            f"{len(signatures):>6d} {elapsed:>8.2f}"
        )
    emit("ablation_generation", "\n".join(lines))
