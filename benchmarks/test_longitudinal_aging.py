"""Extension — signature aging over a simulated month of operation.

Two deployment policies compete over 28 days with one mid-month SDK
rollout: a *static* signature set generated on day 0 versus a *weekly
refreshed* one (regenerated from the last 2 days of traffic every 7 days).
Measured: daily recall on that day's sensitive traffic.

Expected shape: both policies track until the rollout; after it, the
static set permanently loses the upgraded module's share while the weekly
policy recovers at its next refresh.
"""

import pytest

from benchmarks.conftest import emit
from repro.android.admodules import ADMAKER
from repro.android.services import Param, RequestTemplate, ServiceSpec
from repro.core.pipeline import DetectionPipeline
from repro.sensitive.identifiers import IdentifierKind as IK
from repro.sensitive.payload_check import PayloadCheck
from repro.sensitive.transforms import Transform as TF
from repro.signatures.matcher import SignatureMatcher
from repro.simulation.timeline import LongitudinalSimulator, Rollout

ROLLOUT_DAY = 10
DAYS = 22
REFRESH_PERIOD = 7


def admaker_next() -> ServiceSpec:
    return ServiceSpec(
        name="admaker",
        category="ad",
        hosts=("api.ad-maker.info", "img.ad-maker.info"),
        ip_base="219.94.128.0",
        adoption_target=ADMAKER.adoption_target,
        packets_per_app=ADMAKER.packets_per_app,
        templates=(
            RequestTemplate(
                name="imp_v3",
                method="GET",
                path="/api/v3/impression",
                query=(
                    Param("k", "app_token", length=24),
                    Param.ident("h", IK.ANDROID_ID, TF.MD5, probability=0.95),
                    Param("n", "sequence"),
                ),
                weight=1.0,
            ),
        ),
    )


def generate_for(trace, check, seed=0):
    pipeline = DetectionPipeline(trace, check)
    n = min(120, max(5, pipeline.n_suspicious - 5))
    return pipeline.run(n, seed=seed).signatures


@pytest.fixture(scope="module")
def study():
    simulator = LongitudinalSimulator(
        n_apps=50,
        seed=13,
        daily_activity=0.6,
        rollouts=[Rollout(service_name="admaker", day=ROLLOUT_DAY, new_spec=admaker_next())],
    )
    check = PayloadCheck(simulator.device.identity)
    static = SignatureMatcher(generate_for(simulator.window_trace(0, 2), check))
    weekly = static
    static_series, weekly_series = [], []
    for day in range(DAYS):
        if day and day % REFRESH_PERIOD == 0:
            weekly = SignatureMatcher(
                generate_for(simulator.window_trace(day - 2, 2), check, seed=day)
            )
        trace = simulator.day_trace(day)
        sensitive = [p for p in trace if check.is_sensitive(p)]
        if not sensitive:
            static_series.append(None)
            weekly_series.append(None)
            continue
        static_series.append(sum(static.is_sensitive(p) for p in sensitive) / len(sensitive))
        weekly_series.append(sum(weekly.is_sensitive(p) for p in sensitive) / len(sensitive))
    return static_series, weekly_series


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values)


def test_policies_track_before_rollout(study, benchmark):
    static, weekly = study
    pre_static = _mean(static[:ROLLOUT_DAY])
    pre_weekly = _mean(weekly[:ROLLOUT_DAY])
    assert abs(pre_static - pre_weekly) < 0.15


def test_static_set_degrades_after_rollout(study, benchmark):
    static, __ = study
    pre = _mean(static[:ROLLOUT_DAY])
    post = _mean(static[ROLLOUT_DAY:])
    assert post < pre - 0.05


def test_weekly_refresh_recovers(study, benchmark):
    static, weekly = study
    # After the first refresh following the rollout, weekly beats static.
    recovery_start = (ROLLOUT_DAY // REFRESH_PERIOD + 1) * REFRESH_PERIOD
    assert _mean(weekly[recovery_start:]) > _mean(static[recovery_start:]) + 0.05


def test_report(study, benchmark):
    static, weekly = study
    lines = [
        "Extension — signature aging over 22 simulated days "
        f"(admaker wire-format rollout on day {ROLLOUT_DAY})",
        f"{'day':>4} {'static%':>8} {'weekly%':>8}",
    ]
    for day, (a, b) in enumerate(zip(static, weekly)):
        sa = f"{100 * a:.0f}" if a is not None else "-"
        sb = f"{100 * b:.0f}" if b is not None else "-"
        marker = "  <- rollout" if day == ROLLOUT_DAY else ""
        lines.append(f"{day:>4} {sa:>8} {sb:>8}{marker}")
    emit("longitudinal_aging", "\n".join(lines))
