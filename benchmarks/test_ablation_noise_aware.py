"""Extension — noise-aware (Hamsa-style) generation vs the plain cut.

The paper names Hamsa [30] as a future direction.  Its core mechanism — a
false-positive budget checked against a normal-traffic pool — removes the
match-everything pathology at its root: ubiquitous tokens are rejected no
matter how the dendrogram was cut.  This bench re-runs the *pathological*
0.6 cut with and without the noise budget.
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.clustering.linkage import agglomerate
from repro.dataset.split import sample_packets
from repro.distance.matrix import distance_matrix
from repro.distance.packet import PacketDistance
from repro.eval.metrics import compute_metrics
from repro.signatures.generator import GeneratorConfig, SignatureGenerator
from repro.signatures.matcher import SignatureMatcher
from repro.signatures.noiseaware import NoiseAwareGenerator


@pytest.fixture(scope="module")
def results(ablation_corpus):
    check = ablation_corpus.payload_check()
    suspicious, normal = check.split(ablation_corpus.trace)
    sample = sample_packets(suspicious, ABLATION_SAMPLE, seed=29)
    matrix = distance_matrix(sample, PacketDistance.paper())
    dendrogram = agglomerate(matrix)
    noise_pool = sample_packets(normal, 500, seed=31)
    out = {}
    for cut in (0.35, 0.6):
        config = GeneratorConfig(cut_fraction=cut)
        for name, generator in (
            (f"plain@{cut}", SignatureGenerator(config)),
            (f"hamsa@{cut}", NoiseAwareGenerator(noise_pool, max_token_fp=0.01, config=config)),
        ):
            signatures = generator.from_dendrogram(dendrogram, sample)
            metrics = compute_metrics(
                SignatureMatcher(signatures), suspicious, normal, n_sample=len(sample)
            )
            out[name] = (signatures, metrics)
    return out


def test_noise_budget_fixes_pathological_cut(results, benchmark):
    plain_fp = results["plain@0.6"][1].fp_percent
    hamsa_fp = results["hamsa@0.6"][1].fp_percent
    assert hamsa_fp <= plain_fp
    assert hamsa_fp < 5.0  # even at the cut that breaks plain generation


def test_noise_budget_harmless_at_default_cut(results, benchmark):
    plain = results["plain@0.35"][1]
    hamsa = results["hamsa@0.35"][1]
    assert hamsa.tp_percent >= plain.tp_percent - 6.0
    assert hamsa.fp_percent <= plain.fp_percent + 0.5


def test_report(results, benchmark):
    lines = ["Extension — noise-aware (Hamsa-style) generation",
             f"{'variant':<14} {'TP%':>7} {'FP%':>7} {'#sigs':>6}"]
    for name, (signatures, metrics) in results.items():
        lines.append(
            f"{name:<14} {metrics.tp_percent:>7.1f} {metrics.fp_percent:>7.2f} {len(signatures):>6d}"
        )
    emit("ablation_noise_aware", "\n".join(lines))
