"""Extension — probabilistic signatures (the paper's future work).

Threshold sweep over the length-weighted token-coverage matcher: lowering
the threshold trades false positives for robustness to partially
obfuscated packets.  Exact matching is the threshold=1.0 corner.
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.variants import run_variant
from repro.eval.metrics import compute_metrics
from repro.signatures.matcher import ProbabilisticMatcher

THRESHOLDS = (0.5, 0.7, 0.9, 1.0)


@pytest.fixture(scope="module")
def sweep(ablation_corpus):
    check = ablation_corpus.payload_check()
    suspicious, normal = check.split(ablation_corpus.trace)
    base = run_variant(ablation_corpus.trace, check, "paper", ABLATION_SAMPLE, seed=6)
    out = {}
    for threshold in THRESHOLDS:
        matcher = ProbabilisticMatcher(base.signatures, threshold=threshold)
        out[threshold] = compute_metrics(
            matcher, suspicious, normal, n_sample=ABLATION_SAMPLE
        )
    return out


def test_lower_threshold_detects_no_less(sweep, benchmark):
    assert sweep[0.5].detected_sensitive >= sweep[1.0].detected_sensitive


def test_lower_threshold_fp_no_lower(sweep, benchmark):
    assert sweep[0.5].false_positive_rate >= sweep[1.0].false_positive_rate


def test_exact_corner_matches_conjunction_semantics(sweep, benchmark):
    assert sweep[1.0].false_positive_rate < 0.06


def test_report(sweep, benchmark):
    lines = ["Extension — probabilistic matcher threshold sweep",
             f"{'threshold':>10} {'TP%':>7} {'FP%':>7}"]
    for threshold, metrics in sweep.items():
        lines.append(
            f"{threshold:>10.1f} {metrics.tp_percent:>7.1f} {metrics.fp_percent:>7.2f}"
        )
    emit("probabilistic_matcher", "\n".join(lines))
