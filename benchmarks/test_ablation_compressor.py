"""Ablation — NCD compressor backend.

The content distance is compressor-agnostic in definition; zlib (the
default), bz2 and lzma should produce equivalent detection within noise,
differing mainly in speed.  Asserted shape: all backends land in the same
TP band; zlib is the fastest.
"""

import time

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.variants import run_variant
from repro.distance.ncd import Compressor, ncd


@pytest.fixture(scope="module")
def results(ablation_corpus):
    check = ablation_corpus.payload_check()
    out = {}
    for variant in ("paper", "bz2", "lzma"):
        start = time.perf_counter()
        result = run_variant(ablation_corpus.trace, check, variant, ABLATION_SAMPLE, seed=11)
        out[variant] = (result, time.perf_counter() - start)
    return out


def test_detection_equivalent_across_compressors(results, benchmark):
    tps = [result.metrics.tp_percent for result, __ in results.values()]
    assert max(tps) - min(tps) < 15.0


def test_zlib_not_slower_than_lzma(results, benchmark):
    assert results["paper"][1] <= results["lzma"][1] * 1.5


def test_report(results, benchmark):
    lines = ["Ablation — NCD compressor", f"{'variant':<10} {'TP%':>7} {'FP%':>7} {'seconds':>9}"]
    for name, (result, elapsed) in results.items():
        lines.append(
            f"{name:<10} {result.metrics.tp_percent:>7.1f} "
            f"{result.metrics.fp_percent:>7.2f} {elapsed:>9.1f}"
        )
    emit("ablation_compressor", "\n".join(lines))


@pytest.mark.parametrize("compressor", list(Compressor))
def test_bench_ncd_backends(benchmark, compressor):
    """Raw NCD throughput per backend on representative packet text."""
    a = b"GET /mads/gma?preqs=0&u_w=320&udid=67f51ad5c0234cc46a1b&app=jp.dev0001.puzzle HTTP/1.1" * 2
    b_ = b"GET /mads/gma?preqs=0&u_w=320&udid=67f51ad5c0234cc46a1b&app=jp.dev0002.camera HTTP/1.1" * 2
    benchmark(lambda: ncd(a, b_, compressor))
