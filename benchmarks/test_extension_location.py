"""Extension — location leakage (the paper's third sensitive category).

Table I counts LOCATION among the dangerous permissions and the paper's
ref [3] (Grace et al., WiSec 2012) documents ad libraries harvesting
coordinates, but Table III never measures location because coordinates
have no exact spelling to search for.  The tolerance scanner closes the
gap; this bench measures the corpus's location-leak footprint and whether
the paper's signatures incidentally cover it.
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.variants import run_variant
from repro.sensitive.location import LocationCheck
from repro.signatures.matcher import SignatureMatcher


@pytest.fixture(scope="module")
def location_split(ablation_corpus):
    check = LocationCheck(ablation_corpus.device.location)
    return check.split(ablation_corpus.trace)


def test_location_leaks_exist(location_split, benchmark):
    leaking, __ = location_split
    assert len(leaking) > 10


def test_only_location_permitted_apps_leak(ablation_corpus, location_split, benchmark):
    leaking, __ = location_split
    permitted = {
        a.package
        for a in ablation_corpus.apps
        if any(p.name == "ACCESS_FINE_LOCATION" for p in a.manifest.permissions)
    }
    assert all(p.app_id in permitted for p in leaking)


def test_leaks_go_to_ad_networks(location_split, benchmark):
    leaking, __ = location_split
    domains = {p.destination.registered_domain for p in leaking}
    assert domains & {"doubleclick.net", "amoad.com", "adlantis.jp"}


def test_no_false_hits_on_clean_traffic(ablation_corpus, location_split, benchmark):
    """Coordinate-shaped noise (prices, versions, random decimals) must not
    trigger: everything flagged must come from a geo-sending module."""
    leaking, __ = location_split
    geo_services = {"admob", "amoad", "adlantis"}
    assert all(p.meta.get("service") in geo_services for p in leaking)


def test_identifier_signatures_cover_location_leaks(ablation_corpus, location_split, benchmark):
    """The geo params ride on ad requests that also carry identifiers, so
    the paper's signatures incidentally flag most location leaks."""
    leaking, __ = location_split
    check = ablation_corpus.payload_check()
    result = run_variant(ablation_corpus.trace, check, "paper", ABLATION_SAMPLE, seed=23)
    matcher = SignatureMatcher(result.signatures)
    caught = sum(matcher.is_sensitive(p) for p in leaking)
    assert caught / len(leaking) > 0.5


def test_report(ablation_corpus, location_split, benchmark):
    leaking, other = location_split
    by_domain: dict[str, int] = {}
    for packet in leaking:
        by_domain[packet.destination.registered_domain] = (
            by_domain.get(packet.destination.registered_domain, 0) + 1
        )
    lines = [
        "Extension — location leakage",
        f"location-leaking packets: {len(leaking)} of {len(leaking) + len(other)}",
        f"{'domain':<20} {'packets':>8}",
    ]
    for domain, count in sorted(by_domain.items(), key=lambda kv: -kv[1]):
        lines.append(f"{domain:<20} {count:>8d}")
    emit("extension_location", "\n".join(lines))
