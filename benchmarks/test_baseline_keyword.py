"""Baseline — keyword/regex and exact-match detectors vs signatures.

The comparison the paper's approach implies.  Keyword screening escalates
through three modes, each buying recall with false positives:

- conservative (named params + strict ID syntaxes) — low FP, misses
  identifiers behind innocuous parameter names and hashed values;
- standard (+ the 16-hex Android-ID shape) — collides with session tokens;
- aggressive (+ MD5/SHA1 shapes) — flags essentially every random token.

Exact-match memorization catches almost nothing (fresh tokens every
request).  The clustering signatures reach aggressive-level recall at
conservative-level false positives — the trade-off escape that justifies
the paper's pipeline.
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.exactmatch import ExactMatchDetector
from repro.baselines.keyword import MODES, KeywordDetector
from repro.baselines.variants import run_variant
from repro.dataset.split import sample_packets


@pytest.fixture(scope="module")
def setting(ablation_corpus):
    check = ablation_corpus.payload_check()
    suspicious, normal = check.split(ablation_corpus.trace)
    signatures = run_variant(ablation_corpus.trace, check, "paper", ABLATION_SAMPLE, seed=4)
    keyword = {
        mode: KeywordDetector(mode).evaluate(suspicious, normal) for mode in MODES
    }
    return suspicious, normal, signatures, keyword


def test_escalation_buys_recall_with_fp(setting, benchmark):
    __, __, __, keyword = setting
    tp = [keyword[mode][0] for mode in MODES]
    fp = [keyword[mode][1] for mode in MODES]
    assert tp == sorted(tp)
    assert fp == sorted(fp)


def test_conservative_misses_innocuous_names(setting, benchmark):
    __, __, __, keyword = setting
    tp, fp = keyword["conservative"]
    assert tp < 0.85  # dtk/atk/cid/um-style leaks invisible
    assert fp < 0.05


def test_shape_modes_flood_false_positives(setting, benchmark):
    __, __, __, keyword = setting
    assert keyword["standard"][1] > 0.10  # 16-hex session tokens collide
    assert keyword["aggressive"][1] > keyword["standard"][1] - 0.02


def test_exact_match_near_zero_recall(setting, benchmark):
    suspicious, normal, __, __ = setting
    train = sample_packets(suspicious, ABLATION_SAMPLE, seed=4)
    tp, fp = ExactMatchDetector(train).evaluate(suspicious, normal, ABLATION_SAMPLE)
    assert tp < 0.1
    assert fp == 0.0


def test_signatures_escape_the_tradeoff(setting, benchmark):
    __, __, signatures, keyword = setting
    sig_tp = signatures.metrics.true_positive_rate
    sig_fp = signatures.metrics.false_positive_rate
    # recall at or above the conservative list...
    assert sig_tp >= keyword["conservative"][0] - 0.25
    # ...with false positives far below any shape-based mode.
    assert sig_fp < keyword["standard"][1] / 5
    assert sig_fp < 0.05


def test_report(setting, benchmark):
    suspicious, normal, signatures, keyword = setting
    train = sample_packets(suspicious, ABLATION_SAMPLE, seed=4)
    em_tp, em_fp = ExactMatchDetector(train).evaluate(suspicious, normal, ABLATION_SAMPLE)
    lines = [
        "Baseline comparison",
        f"{'detector':<26} {'TP%':>7} {'FP%':>7}",
        f"{'signatures (paper)':<26} {signatures.metrics.tp_percent:>7.1f} {signatures.metrics.fp_percent:>7.2f}",
    ]
    for mode in MODES:
        tp, fp = keyword[mode]
        lines.append(f"{'keyword (' + mode + ')':<26} {100 * tp:>7.1f} {100 * fp:>7.2f}")
    lines.append(f"{'exact match':<26} {100 * em_tp:>7.1f} {100 * em_fp:>7.2f}")
    emit("baseline_keyword", "\n".join(lines))


def test_bench_keyword_throughput(setting, benchmark):
    suspicious, __, __, __ = setting
    detector = KeywordDetector("aggressive")
    packets = list(suspicious)[:2000]
    benchmark.pedantic(lambda: detector.screen(packets), rounds=3, iterations=1)
