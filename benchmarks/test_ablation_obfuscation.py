"""Extension — obfuscation robustness (paper Section VI's claim).

"If an advertisement module uses one encryption key among applications or
applies a cryptographic hash function to sensitive information, our
approach can detect it."  We generate traffic from a synthetic SDK leaking
one identifier under increasingly hostile obfuscations and measure whether
signatures trained on half the traffic detect the other half.

Expected shape: every *device-stable* obfuscation (plain, reversed, fixed
substitution, fixed-key XOR) stays fully detectable — the ciphertext is
itself an invariant.  The per-request nonce hash destroys value anchoring;
only structural tokens (endpoint, parameter names) can still fire.
"""

from random import Random

import pytest

from benchmarks.conftest import emit
from repro.eval.crossval import generate_from
from repro.sensitive.obfuscation import Obfuscation, obfuscated_leak_packets
from repro.signatures.matcher import SignatureMatcher


@pytest.fixture(scope="module")
def results():
    out = {}
    for method in Obfuscation:
        rng = Random(17)
        packets = obfuscated_leak_packets("deadbeefcafe0123", method, 40, rng)
        signatures = generate_from(packets[:20])
        matcher = SignatureMatcher(signatures)
        fresh = packets[20:]
        recall = sum(matcher.is_sensitive(p) for p in fresh) / len(fresh)
        out[method] = (recall, signatures)
    return out


def test_stable_obfuscations_fully_detected(results, benchmark):
    for method, (recall, __) in results.items():
        if method.stable_per_device:
            assert recall == 1.0, method


def test_salted_hash_detected_via_structure(results, benchmark):
    # Per-app salt: the value differs across apps but is constant within
    # one app's traffic — here all packets share one app, so it anchors.
    recall, __ = results[Obfuscation.SALTED_HASH_PER_APP]
    assert recall == 1.0


def test_nonce_hash_loses_value_anchor(results, benchmark):
    """Signatures may still fire on endpoint structure, but no token may
    contain the identifier value in any form."""
    __, signatures = results[Obfuscation.RANDOM_NONCE_HASH]
    for signature in signatures:
        for token in signature.tokens:
            assert "deadbeefcafe0123" not in token


def test_report(results, benchmark):
    lines = ["Extension — obfuscation robustness",
             f"{'obfuscation':<24} {'recall%':>8} {'#sigs':>6} {'stable':>7}"]
    for method, (recall, signatures) in results.items():
        lines.append(
            f"{method.value:<24} {100 * recall:>8.1f} {len(signatures):>6d} "
            f"{'yes' if method.stable_per_device else 'no':>7}"
        )
    emit("ablation_obfuscation", "\n".join(lines))
