"""Serving bench — the gateway as a service under load.

Runs the full :func:`repro.serving.bench.run_serving_bench` at a reduced
scale and asserts the serving contract the ISSUE promises:

- batched/sharded screening is bit-identical to the scalar matcher in
  every scenario (the ``identical`` audit);
- the steady scenario serves without meaningful shedding;
- the overload scenario actually overloads (sheds traffic) yet every
  request still receives a verdict;
- the hot reload applies exactly once per scenario, the stale
  re-publication is rejected, and decisions span both generations;
- the whole report is deterministic for a fixed seed.
"""

import json

import pytest

from benchmarks.conftest import emit
from repro.serving.bench import ServingBudget, run_serving_bench

SEED = 9


@pytest.fixture(scope="module")
def report():
    return run_serving_bench(
        n_apps=80, events=2000, sample=60, seed=SEED, budget=ServingBudget()
    )


def test_budget_ok(report):
    emit("serving_bench", report.render())
    assert report.ok, report.violations


def test_bit_identical_everywhere(report):
    assert all(scenario["identical"] for scenario in report.scenarios)


def test_steady_serves_overload_sheds(report):
    steady = report.scenario("steady")
    overload = report.scenario("overload")
    assert steady["shed_rate"] <= 0.05
    assert overload["shed_rate"] >= 0.01
    # every arrival got a verdict in both regimes
    for scenario in (steady, overload):
        assert sum(scenario["outcomes"].values()) == scenario["n_events"]


def test_latency_percentiles_ordered(report):
    for scenario in report.scenarios:
        latency = scenario["latency_ticks"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        assert latency["p50"] > 0


def test_reload_generation_stats(report):
    for scenario in report.scenarios:
        reloads = scenario["reloads"]
        assert reloads["applied"] == 1
        assert reloads["rejected"] == 1  # the stale re-publication
        assert reloads["boot_version"] == 1 and reloads["final_version"] == 2
        assert set(reloads["decisions_by_generation"]) == {"1", "2"}


def test_report_deterministic(report):
    again = run_serving_bench(
        n_apps=80, events=2000, sample=60, seed=SEED, budget=ServingBudget()
    )
    a, b = report.to_dict(), again.to_dict()
    for scenario in (*a["scenarios"], *b["scenarios"]):
        scenario.pop("wall_s")
        scenario.pop("screened_per_s_wall")
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
