"""Fig 4 — detection rate of sensitive information leakage.

The headline experiment: sample N suspicious packets (N = 100..500, the
paper's sweep), cluster with the HTTP packet distance, generate conjunction
signatures, re-apply to the entire dataset, and report TP/FN/FP using the
paper's equations.

Shape assertions (the substrate is synthetic, so absolute equality is not
expected): TP high and rising with N toward the 90s, FN the complement and
falling, FP in low single digits and not shrinking with N.
Published landmarks: TP 85% -> 94%, FN 15% -> 5%, FP 0.3% -> 2.3%.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.pipeline import DetectionPipeline
from repro.eval.experiments import Fig4Point, scaled_sweep
from repro.eval.report import render_fig4


@pytest.fixture(scope="module")
def sweep(paper, paper_split):
    suspicious, __ = paper_split
    pipeline = DetectionPipeline(paper.trace, paper.payload_check())
    sizes = scaled_sweep(len(suspicious))
    points = []
    for index, n in enumerate(sizes):
        result = pipeline.run(n, seed=index)
        points.append(
            Fig4Point(
                n_sample=result.n_sample,
                tp_percent=result.metrics.tp_percent,
                fn_percent=result.metrics.fn_percent,
                fp_percent=result.metrics.fp_percent,
                n_signatures=len(result.signatures),
            )
        )
    return points


def test_tp_reaches_paper_band(sweep, benchmark):
    # paper: 94% at N=500. Require >= 88% at the largest N.
    assert sweep[-1].tp_percent >= 88.0


def test_tp_rises_with_n(sweep, benchmark):
    assert sweep[-1].tp_percent >= sweep[0].tp_percent - 1.0
    assert max(p.tp_percent for p in sweep) == pytest.approx(
        sweep[-1].tp_percent, abs=6.0
    )


def test_fn_is_complement_and_falls(sweep, benchmark):
    for point in sweep:
        assert point.tp_percent + point.fn_percent == pytest.approx(100.0, abs=1.5)
    assert sweep[-1].fn_percent <= sweep[0].fn_percent + 1.0
    # paper: 5% at N=500
    assert sweep[-1].fn_percent <= 12.0


def test_fp_low_single_digits(sweep, benchmark):
    for point in sweep:
        assert point.fp_percent < 5.0  # paper tops out at 2.3%


def test_fp_does_not_shrink_with_n(sweep, benchmark):
    # paper: FP grows 0.3 -> 2.3 as signatures get more verbose.
    assert sweep[-1].fp_percent >= sweep[0].fp_percent - 0.5


def test_signature_counts_grow_with_n(sweep, benchmark):
    assert sweep[-1].n_signatures >= sweep[0].n_signatures


def test_render_fig4(sweep, benchmark):
    emit("fig4", render_fig4(sweep))


def test_bench_generation_at_n200(paper, paper_split, benchmark):
    """Performance: one full generate() at N=200 (matrix + clustering +
    token extraction)."""
    from repro.core.server import SignatureServer

    server = SignatureServer(paper.payload_check())
    suspicious, normal = paper_split
    server._suspicious = list(suspicious)
    server._normal = list(normal)
    benchmark.pedantic(lambda: server.generate(200, seed=9), rounds=1, iterations=1)
