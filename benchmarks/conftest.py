"""Shared benchmark fixtures: the paper-scale corpus, built once.

Environment knobs:

- ``REPRO_BENCH_APPS`` — population size (default 1188, the paper scale).
  Set e.g. ``REPRO_BENCH_APPS=200`` for a quick pass; assertion bands scale.
- ``REPRO_BENCH_SEED`` — corpus seed (default 0).

Rendered tables/figures are printed (run pytest with ``-s`` to watch) and
written under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.simulation.corpus import PAPER_TOTAL_APPS, build_corpus

OUT_DIR = Path(__file__).parent / "out"

BENCH_APPS = int(os.environ.get("REPRO_BENCH_APPS", str(PAPER_TOTAL_APPS)))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: Scale factor applied to published absolute numbers in assertions.
SCALE = BENCH_APPS / PAPER_TOTAL_APPS


@pytest.fixture(scope="session")
def paper():
    """The full experimental corpus (built once per benchmark session)."""
    return build_corpus(n_apps=BENCH_APPS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def paper_split(paper):
    """(suspicious, normal) split of the corpus."""
    return paper.payload_check().split(paper.trace)


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


#: Ablations run on a mid-size corpus regardless of REPRO_BENCH_APPS so the
#: variant sweeps stay tractable.
ABLATION_APPS = int(os.environ.get("REPRO_ABLATION_APPS", "300"))
ABLATION_SAMPLE = max(30, int(150 * ABLATION_APPS / 300))


@pytest.fixture(scope="session")
def ablation_corpus():
    """A mid-size corpus shared by all ablation benches."""
    return build_corpus(n_apps=ABLATION_APPS, seed=7)
