"""Extension — signature drift and incremental recovery.

Ad SDKs ship new versions: endpoints move, parameter names change.  A
published signature set decays.  This bench simulates a wire-format
rollover in one module and measures (a) the detection drop on post-change
traffic, (b) how one IncrementalSignatureSet.update() round on the new
traffic restores coverage, and (c) that retire_unmatched() then clears the
stale entry.
"""

from random import Random

import pytest

from benchmarks.conftest import emit
from repro.android.app import Application
from repro.android.device import Device
from repro.android.permissions import INTERNET, Manifest, READ_PHONE_STATE
from repro.android.services import Param, RequestTemplate, Service, ServiceSpec
from repro.core.incremental import IncrementalSignatureSet
from repro.sensitive.identifiers import IdentifierKind as IK

P = Param


def sdk_spec(version: int) -> ServiceSpec:
    """Two wire-format generations of one ad SDK."""
    if version == 1:
        template = RequestTemplate(
            name="ad",
            method="GET",
            path="/v1/ad_fetch",
            query=(
                P("pub", "app_token", length=12),
                P.ident("udid", IK.ANDROID_ID),
                P("seq", "sequence"),
            ),
        )
    else:
        template = RequestTemplate(
            name="ad",
            method="POST",
            path="/v2/serve",
            body=(
                P("publisher_key", "app_token", length=12),
                P.ident("device_token", IK.ANDROID_ID),
                P("r", "random_hex", length=10),
            ),
        )
    return ServiceSpec(
        name=f"driftad_v{version}",
        category="ad",
        hosts=("ads.driftnet.example",),
        ip_base="198.18.33.0",
        templates=(template,),
        packets_per_app=4.0,
    )


@pytest.fixture(scope="module")
def scenario():
    device = Device.generate(Random(71))
    manifest = Manifest(
        package="jp.test.drift", permissions=frozenset({INTERNET, READ_PHONE_STATE})
    )
    app = Application(package="jp.test.drift", manifest=manifest)
    rng = Random(8)
    v1 = Service(sdk_spec(1)).session_packets(app, device, rng, 40)
    v2 = Service(sdk_spec(2)).session_packets(app, device, rng, 40)

    incset = IncrementalSignatureSet(min_residue=6)
    incset.update(v1[:20])  # learn the v1 wire format
    matcher_v1 = incset.matcher()
    recall_v1_on_v1 = sum(matcher_v1.is_sensitive(p) for p in v1[20:]) / 20
    recall_v1_on_v2 = sum(matcher_v1.is_sensitive(p) for p in v2[:20]) / 20

    report = incset.update(v2[:20])  # one maintenance round on new traffic
    matcher_v2 = incset.matcher()
    recall_after_update = sum(matcher_v2.is_sensitive(p) for p in v2[20:]) / 20
    return {
        "recall_v1_on_v1": recall_v1_on_v1,
        "recall_v1_on_v2": recall_v1_on_v2,
        "recall_after_update": recall_after_update,
        "update_report": report,
        "incset": incset,
        "v2": v2,
    }


def test_v1_signatures_cover_v1(scenario, benchmark):
    assert scenario["recall_v1_on_v1"] == 1.0


def test_rollover_breaks_detection(scenario, benchmark):
    assert scenario["recall_v1_on_v2"] == 0.0


def test_one_update_round_recovers(scenario, benchmark):
    assert scenario["update_report"].residue == 20  # nothing matched -> all residue
    assert scenario["update_report"].added
    assert scenario["recall_after_update"] == 1.0


def test_stale_signature_retired(scenario, benchmark):
    incset = scenario["incset"]
    # After the v2 round, replay more v2 traffic so the new signature fires,
    # then retire anything that never fired since being added.
    for packet in scenario["v2"][20:]:
        incset.matcher()  # counts only advance through update()
    incset.update(scenario["v2"][20:])
    retired = incset.retire_unmatched(min_matches=1)
    assert any("v1" in "".join(s.tokens) or "ad_fetch" in "".join(s.tokens) for s in retired)
    assert incset.matcher().is_sensitive(scenario["v2"][-1])


def test_report(scenario, benchmark):
    lines = [
        "Extension — wire-format drift and incremental recovery",
        f"v1 signatures on v1 traffic : {100 * scenario['recall_v1_on_v1']:.0f}%",
        f"v1 signatures on v2 traffic : {100 * scenario['recall_v1_on_v2']:.0f}%  (rollover)",
        f"after one update() round    : {100 * scenario['recall_after_update']:.0f}%",
    ]
    emit("drift_incremental", "\n".join(lines))
