"""Table I — dangerous permission combinations of the 1,188 applications.

Regenerates the permission histogram and asserts the published counts
(exact at full scale, proportional otherwise).  The benchmarked operation
is the population build itself.
"""

import pytest

from benchmarks.conftest import BENCH_APPS, BENCH_SEED, SCALE, emit
from repro.android.market import AppMarket, MarketConfig
from repro.android.permissions import internet_only_count, table1_counts
from repro.eval.report import render_table1

#: Published Table I rows.
PAPER_ROWS = {
    (True, True, False, False): 329,
    (True, True, True, False): 153,
    (True, False, True, False): 148,
    (True, True, True, True): 23,
}


@pytest.fixture(scope="module")
def apps(paper):
    return paper.apps


def test_table1_rows_match_paper(apps, benchmark):
    counts = table1_counts([a.manifest for a in apps])
    strict = internet_only_count([a.manifest for a in apps])
    assert strict == pytest.approx(302 * SCALE, abs=max(2, 0.02 * 302 * SCALE))
    for key, published in PAPER_ROWS.items():
        assert counts.get(key, 0) == pytest.approx(
            published * SCALE, abs=max(2, 0.02 * published * SCALE)
        )


def test_dangerous_fraction_is_61_percent(apps, benchmark):
    dangerous = sum(1 for a in apps if a.manifest.is_dangerous_combination)
    assert dangerous / len(apps) == pytest.approx(0.61, abs=0.02)


def test_render_table1(apps, benchmark):
    emit("table1", render_table1(apps))


def test_bench_population_build(benchmark):
    """Performance: building the full application population."""
    benchmark.pedantic(
        lambda: AppMarket(MarketConfig(n_apps=BENCH_APPS), seed=BENCH_SEED).build(),
        rounds=3,
        iterations=1,
    )
