"""Chaos bench — crowdsourced federation under byzantine device faults.

The pipeline chaos bench asserts exact recovery from *infrastructure*
faults; this one asserts the same byte-identity discipline against
*adversarial input*: a fleet whose devices corrupt envelopes, replay
history, flood duplicates, and fabricate observations (rates 0%–50%,
spread across the whole :class:`~repro.federation.faults.DeviceFaultPlan`
taxonomy) must still produce the byte-identical signature set of the
fault-free same-seed fleet.

Assertions:

- at every swept rate the federated signature bytes and admitted-token
  set equal the fault-free baseline (``invariant_holds``);
- every honest report is accepted at every rate (faults cost retries,
  never observations);
- the upper half of the sweep is not vacuous: faults landed, rejections
  were classified, and the quarantine ban/release cycle actually ran;
- the sweep is deterministic (same seed, same points).
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.chaos import render_federation_chaos, run_federation_chaos_sweep
from repro.simulation.corpus import mini_corpus

RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
SEED = 5
N_DEVICES = 24
REPORTS = 6
MIN_SUPPORT = 2


@pytest.fixture(scope="module")
def chaos_corpus():
    return mini_corpus(seed=SEED, n_apps=80)


@pytest.fixture(scope="module")
def sweep(chaos_corpus):
    return run_federation_chaos_sweep(
        chaos_corpus,
        RATES,
        n_devices=N_DEVICES,
        reports_per_device=REPORTS,
        min_support=MIN_SUPPORT,
        seed=SEED,
    )


def test_byte_identity_at_every_rate(sweep, benchmark):
    assert len(sweep) == len(RATES)
    for point in sweep:
        assert point.signatures_identical, (
            f"signatures diverged from fault-free baseline at rate {point.fault_rate}"
        )
        assert point.tokens_identical, (
            f"admitted tokens diverged at rate {point.fault_rate}"
        )
        assert point.invariant_holds


def test_every_honest_report_accepted(sweep, benchmark):
    # Faults cost retries and junk rejections — never honest observations.
    # (Accepted counts exceed the honest floor when poison envelopes land;
    # those die later, at the min-support gate.)
    for point in sweep:
        assert point.accepted >= N_DEVICES * REPORTS
        assert point.n_signatures > 0


def test_faults_actually_injected(sweep, benchmark):
    # The zero-rate point must be clean ...
    assert sweep[0].faults_injected == 0
    assert sweep[0].rejected_malformed == 0
    assert sweep[0].quarantine_bans == 0
    assert sweep[0].sends == N_DEVICES * REPORTS
    # ... and the upper half of the sweep must not be vacuous: every
    # defense layer (validation, dedup, quarantine) saw real traffic.
    high = [p for p in sweep if p.fault_rate >= 0.3]
    assert sum(p.faults_injected for p in high) > 0
    assert sum(p.rejected_malformed for p in high) > 0
    assert sum(p.rejected_duplicate for p in high) > 0
    assert sum(p.sends for p in high) > len(high) * N_DEVICES * REPORTS


def test_quarantine_cycle_runs_under_flood(sweep, benchmark):
    # At the highest rates flood bursts trip per-device breakers; the
    # cooldown then re-admits every honest device (accepted floor above
    # proves no observation was lost to a ban).
    high = [p for p in sweep if p.fault_rate >= 0.4]
    assert sum(p.quarantine_bans for p in high) > 0
    assert sum(p.quarantine_releases for p in high) > 0
    assert sum(p.rejected_quarantined for p in high) > 0


def test_sweep_is_deterministic(chaos_corpus, sweep, benchmark):
    again = run_federation_chaos_sweep(
        chaos_corpus,
        (0.0, 0.3),
        n_devices=N_DEVICES,
        reports_per_device=REPORTS,
        min_support=MIN_SUPPORT,
        seed=SEED,
    )
    matching = [p for p in sweep if p.fault_rate in (0.0, 0.3)]
    assert again == matching


def test_render_federation_chaos(sweep, benchmark):
    text = render_federation_chaos(sweep)
    assert "byte-identity invariant: holds" in text
    emit("chaos_federation", text)
