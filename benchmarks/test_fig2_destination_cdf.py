"""Fig 2 — cumulative frequency distribution of HTTP host destinations.

Regenerates the destination fan-out CDF and asserts the published
landmarks: ~7% single-destination, ~74% within 10, ~90% within 16, mean
~7.9, maximum in the 80s (the embedded-browser app).
"""

import pytest

from benchmarks.conftest import emit
from repro.dataset.stats import fanout_cdf, fanout_summary
from repro.eval.report import render_fig2


@pytest.fixture(scope="module")
def summary(paper):
    return fanout_summary(paper.trace)


def test_mean_destinations(summary, benchmark):
    assert summary.mean == pytest.approx(7.9, abs=1.2)


def test_single_destination_fraction(summary, benchmark):
    assert summary.single_fraction == pytest.approx(0.07, abs=0.03)


def test_up_to_10_fraction(summary, benchmark):
    assert summary.up_to_10_fraction == pytest.approx(0.74, abs=0.08)


def test_up_to_16_fraction(summary, benchmark):
    assert summary.up_to_16_fraction == pytest.approx(0.90, abs=0.05)


def test_max_destinations_is_browser_app(summary, paper, benchmark):
    assert 60 <= summary.max <= 100  # paper: 84
    from repro.dataset.stats import destination_fanout

    fanout = destination_fanout(paper.trace)
    top_app = max(fanout, key=fanout.get)
    browser_apps = {a.package for a in paper.apps if a.browser_services}
    assert top_app in browser_apps


def test_most_apps_multi_destination(summary, benchmark):
    # paper: "93% of the applications ... connected to multiple destinations"
    assert 1.0 - summary.single_fraction == pytest.approx(0.93, abs=0.04)


def test_cdf_monotone(paper, benchmark):
    points = fanout_cdf(paper.trace)
    fractions = [f for __, f in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0


def test_render_fig2(paper, summary, benchmark):
    emit("fig2", render_fig2(summary, fanout_cdf(paper.trace)))


def test_bench_fanout_analysis(paper, benchmark):
    """Performance: the full fan-out analysis over ~100k packets."""
    benchmark.pedantic(lambda: fanout_summary(paper.trace), rounds=3, iterations=1)
