"""Ablation — distance composition (paper Section IV-A's design claim).

The paper argues that combining destination distance with content distance
yields "advertisement module specific signatures".  This bench runs the
identical pipeline with each side of the metric disabled and compares.

Expected shape: the combined (paper) metric gives domain-scoped signatures
and the best TP at comparable FP; destination-only loses content tokens
(worse TP), content-only loses destination coherence (fewer scoped
signatures and/or worse FP).
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.variants import run_variant


@pytest.fixture(scope="module")
def results(ablation_corpus):
    check = ablation_corpus.payload_check()
    out = {}
    for variant in ("paper", "destination_only", "content_only"):
        out[variant] = run_variant(
            ablation_corpus.trace, check, variant, ABLATION_SAMPLE, seed=3
        )
    return out


def test_paper_metric_detects_well(results, benchmark):
    assert results["paper"].metrics.tp_percent > 60.0
    assert results["paper"].metrics.fp_percent < 5.0


def test_paper_signatures_are_module_scoped(results, benchmark):
    scoped = [s for s in results["paper"].signatures if s.scope_domain]
    assert len(scoped) >= 0.5 * len(results["paper"].signatures)


def test_destination_only_loses_detection(results, benchmark):
    """Destination clustering alone still groups per module, but clusters
    mix leaking and non-leaking request shapes, diluting invariant tokens."""
    assert (
        results["destination_only"].metrics.tp_percent
        <= results["paper"].metrics.tp_percent + 2.0
    )


def test_content_only_still_works_but_less_scoped(results, benchmark):
    paper_scoped = sum(1 for s in results["paper"].signatures if s.scope_domain)
    content_scoped = sum(1 for s in results["content_only"].signatures if s.scope_domain)
    paper_fraction = paper_scoped / max(1, len(results["paper"].signatures))
    content_fraction = content_scoped / max(1, len(results["content_only"].signatures))
    assert content_fraction <= paper_fraction + 0.1


def test_report(results, benchmark):
    lines = ["Ablation — distance composition", f"{'variant':<20} {'TP%':>7} {'FP%':>7} {'#sigs':>6} {'scoped':>7}"]
    for name, result in results.items():
        scoped = sum(1 for s in result.signatures if s.scope_domain)
        lines.append(
            f"{name:<20} {result.metrics.tp_percent:>7.1f} {result.metrics.fp_percent:>7.2f} "
            f"{len(result.signatures):>6d} {scoped:>7d}"
        )
    emit("ablation_distance", "\n".join(lines))


def test_bench_paper_variant(ablation_corpus, benchmark):
    check = ablation_corpus.payload_check()
    benchmark.pedantic(
        lambda: run_variant(ablation_corpus.trace, check, "paper", ABLATION_SAMPLE, seed=3),
        rounds=1,
        iterations=1,
    )
