"""Extension — WHOIS-verified IP distance (paper Section VI's suggestion).

The paper worries that "two HTTP packets may have close IP addresses but
be owned [by] different organizations" and suggests registration data as
the fix.  This bench runs the pipeline with the registry-corrected IP
component and checks it does no harm on the corpus (where the bit
heuristic already mostly agrees with ownership) while demonstrating the
pathological case the registry repairs.
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.baselines.variants import run_variant
from repro.distance.destination import destination_distance
from repro.http.packet import Destination
from repro.net.registry import IpRegistry


@pytest.fixture(scope="module")
def results(ablation_corpus):
    check = ablation_corpus.payload_check()
    return {
        variant: run_variant(ablation_corpus.trace, check, variant, ABLATION_SAMPLE, seed=13)
        for variant in ("paper", "whois")
    }


def test_whois_detection_comparable(results, benchmark):
    paper_tp = results["paper"].metrics.tp_percent
    whois_tp = results["whois"].metrics.tp_percent
    assert whois_tp >= paper_tp - 10.0


def test_whois_fp_no_worse(results, benchmark):
    assert results["whois"].metrics.fp_percent <= results["paper"].metrics.fp_percent + 2.0


def test_registry_repairs_erroneous_proximity(benchmark):
    """The concrete §VI scenario: adjacent blocks, different owners."""
    registry = IpRegistry()
    registry.register("10.0.0.0", 16, "AdCo")
    registry.register("10.1.0.0", 16, "NewsCo")
    a = Destination.make("10.0.0.7", 80, "track.adco.example")
    b = Destination.make("10.1.0.7", 80, "www.newsco.example")
    uncorrected = destination_distance(a, b)
    corrected = destination_distance(a, b, registry=registry)
    assert corrected > uncorrected  # ownership overrides bit proximity


def test_report(results, benchmark):
    lines = ["Extension — WHOIS-verified IP distance",
             f"{'variant':<10} {'TP%':>7} {'FP%':>7} {'#sigs':>6}"]
    for name, result in results.items():
        lines.append(
            f"{name:<10} {result.metrics.tp_percent:>7.1f} "
            f"{result.metrics.fp_percent:>7.2f} {len(result.signatures):>6d}"
        )
    emit("ablation_whois", "\n".join(lines))
