"""Ablation — dendrogram cut height vs signature quality.

The paper warns that careless generation produces match-everything
signatures.  Sweeping the cut fraction shows the trade-off: higher cuts
merge unrelated packets into clusters whose common substrings shrink
toward boilerplate (FP risk, weaker tokens); lower cuts fragment modules
into many small clusters (more signatures, possible recall loss).
"""

import pytest

from benchmarks.conftest import ABLATION_SAMPLE, emit
from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.signatures.generator import GeneratorConfig

FRACTIONS = (0.15, 0.35, 0.6, 0.9)


@pytest.fixture(scope="module")
def sweep(ablation_corpus):
    check = ablation_corpus.payload_check()
    out = {}
    for fraction in FRACTIONS:
        config = PipelineConfig(generator=GeneratorConfig(cut_fraction=fraction))
        pipeline = DetectionPipeline(ablation_corpus.trace, check, config)
        out[fraction] = pipeline.run(ABLATION_SAMPLE, seed=2)
    return out


def test_tight_cuts_produce_signatures(sweep, benchmark):
    for fraction in (0.15, 0.35):
        assert sweep[fraction].signatures, fraction


def test_high_cuts_degenerate(sweep, benchmark):
    """The paper's warning made measurable: cutting too high merges
    unrelated packets, so cluster-common substrings either shrink toward
    match-everything boilerplate (FP blow-up) or vanish entirely (no
    signatures)."""
    loose = sweep[0.9]
    degenerate = (
        not loose.signatures
        or loose.metrics.fp_percent > sweep[0.35].metrics.fp_percent
        or loose.metrics.tp_percent < 0.5 * sweep[0.35].metrics.tp_percent
    )
    assert degenerate


def test_lower_cut_more_signatures(sweep, benchmark):
    assert len(sweep[0.15].signatures) >= len(sweep[0.9].signatures)


def test_default_cut_in_sweet_spot(sweep, benchmark):
    default = sweep[0.35]
    assert default.metrics.tp_percent >= 55.0
    assert default.metrics.fp_percent < 6.0


def test_report(sweep, benchmark):
    lines = ["Ablation — cut fraction", f"{'fraction':>9} {'TP%':>7} {'FP%':>7} {'#sigs':>6}"]
    for fraction, result in sweep.items():
        lines.append(
            f"{fraction:>9.2f} {result.metrics.tp_percent:>7.1f} "
            f"{result.metrics.fp_percent:>7.2f} {len(result.signatures):>6d}"
        )
    emit("ablation_cut", "\n".join(lines))
