"""Extension — held-out learning curve (the honest Fig 4).

The paper evaluates signatures on the full dataset including the training
sample (with N-corrections).  This bench answers the stricter question:
recall on suspicious traffic the generator NEVER saw, as a function of N.
Expected shape: the same rising curve as Fig 4, slightly lower absolute
values, FP unchanged.
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.crossval import learning_curve


@pytest.fixture(scope="module")
def curve(ablation_corpus):
    check = ablation_corpus.payload_check()
    suspicious, normal = check.split(ablation_corpus.trace)
    ceiling = min(300, max(20, int(0.5 * len(suspicious))))
    sizes = sorted({max(10, int(ceiling * f)) for f in (0.1, 0.25, 0.5, 1.0)})
    return learning_curve(suspicious, normal, sizes, seed=5)


def test_recall_rises_with_training_size(curve, benchmark):
    assert curve[-1].heldout_recall >= curve[0].heldout_recall - 0.03


def test_final_recall_usable(curve, benchmark):
    assert curve[-1].heldout_recall > 0.6


def test_fp_stays_low_throughout(curve, benchmark):
    for point in curve:
        assert point.false_positive_rate < 0.05


def test_signature_count_grows(curve, benchmark):
    assert curve[-1].n_signatures >= curve[0].n_signatures


def test_report(curve, benchmark):
    lines = ["Extension — held-out learning curve",
             f"{'N train':>8} {'held-out':>9} {'recall%':>8} {'FP%':>7} {'#sigs':>6}"]
    for point in curve:
        lines.append(
            f"{point.n_train:>8d} {point.n_heldout:>9d} {100 * point.heldout_recall:>8.1f} "
            f"{100 * point.false_positive_rate:>7.2f} {point.n_signatures:>6d}"
        )
    emit("holdout_learning_curve", "\n".join(lines))
