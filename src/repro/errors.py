"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are grouped
by the subsystem that raises them; each carries a human-readable message and
keeps the offending value around where that is useful for debugging.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """Raw input (HTTP bytes, addresses, URLs) could not be parsed.

    :param message: description of what failed.
    :param data: the offending input fragment, truncated for display.
    """

    def __init__(self, message: str, data: bytes | str | None = None) -> None:
        self.data = data
        if data is not None:
            shown = data if len(data) <= 64 else data[:61] + (b"..." if isinstance(data, bytes) else "...")
            message = f"{message}: {shown!r}"
        super().__init__(message)


class AddressError(ParseError):
    """An IPv4 address or port number was syntactically invalid."""


class HttpParseError(ParseError):
    """A raw HTTP request could not be parsed into a message."""


class DistanceError(ReproError):
    """A distance computation received incompatible or invalid operands."""


class ClusteringError(ReproError):
    """Hierarchical clustering was invoked on invalid input."""


class SignatureError(ReproError):
    """Signature generation or matching failed."""


class PermissionDenied(ReproError):
    """The simulated Binder refused a resource access.

    Mirrors Android's ``SecurityException``: an application attempted to use
    a resource without holding the required permission.

    :param app: package name of the offending application.
    :param permission: the permission that was missing.
    """

    def __init__(self, app: str, permission: str) -> None:
        self.app = app
        self.permission = permission
        super().__init__(f"{app} lacks permission {permission}")


class SimulationError(ReproError):
    """The traffic simulation was configured inconsistently."""


class DatasetError(ReproError):
    """A trace or dataset file was malformed or inconsistent."""
