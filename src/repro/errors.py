"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are grouped
by the subsystem that raises them; each carries a human-readable message and
keeps the offending value around where that is useful for debugging.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """Raw input (HTTP bytes, addresses, URLs) could not be parsed.

    :param message: description of what failed.
    :param data: the offending input fragment, truncated for display.
    """

    def __init__(self, message: str, data: bytes | str | None = None) -> None:
        self.data = data
        if data is not None:
            shown = data if len(data) <= 64 else data[:61] + (b"..." if isinstance(data, bytes) else "...")
            message = f"{message}: {shown!r}"
        super().__init__(message)


class AddressError(ParseError):
    """An IPv4 address or port number was syntactically invalid."""


class HttpParseError(ParseError):
    """A raw HTTP request could not be parsed into a message."""


class DistanceError(ReproError):
    """A distance computation received incompatible or invalid operands."""


class ClusteringError(ReproError):
    """Hierarchical clustering was invoked on invalid input."""


class SignatureError(ReproError):
    """Signature generation or matching failed."""


class SignatureStoreError(SignatureError):
    """A signature document could not be decoded or failed validation.

    Raised by :class:`repro.signatures.store.SignatureStore` for malformed
    JSON, schema mismatches, bad envelope checksums, and version skew —
    i.e. *corrupt payloads*, as distinct from programming errors.  A
    fetcher's retry loop catches this class to decide "retry the
    transfer", while genuine bugs keep their original exception types.
    """


class DistributionError(ReproError):
    """The signature distribution channel failed.

    Covers transport-level conditions between the signature server and a
    device: nothing published yet, a simulated drop, or an exhausted
    retry budget.
    """


class ChannelDropError(DistributionError):
    """A transmission attempt was dropped by the (simulated) network."""


class CircuitOpenError(DistributionError):
    """The client-side circuit breaker refused the attempt."""


class PermissionDenied(ReproError):
    """The simulated Binder refused a resource access.

    Mirrors Android's ``SecurityException``: an application attempted to use
    a resource without holding the required permission.

    :param app: package name of the offending application.
    :param permission: the permission that was missing.
    """

    def __init__(self, app: str, permission: str) -> None:
        self.app = app
        self.permission = permission
        super().__init__(f"{app} lacks permission {permission}")


class SimulationError(ReproError):
    """The traffic simulation was configured inconsistently."""


class SupervisionError(ReproError):
    """Supervised pipeline execution could not recover a run.

    Raised by :mod:`repro.supervision` when a checkpointed run exhausts its
    restart budget, or when a checkpoint journal is inconsistent with the
    requested resume.  Injected inter-stage crashes are the subclass
    :class:`repro.supervision.crash.InjectedCrash`, which the supervisor
    absorbs during restart-with-resume.
    """


class FederationError(ReproError):
    """Crowdsourced fleet federation was configured or driven inconsistently.

    Raised by :mod:`repro.federation` for invalid ingest/aggregation
    configuration and for protocol violations that are programming errors
    rather than byzantine input (those are rejected per-report with
    :class:`ReportValidationError` and counted, never raised mid-batch).
    """


class ReportValidationError(FederationError):
    """A device report envelope failed validation at ingest.

    Carries a short machine-readable ``reason`` category — ``"schema"``,
    ``"checksum"``, ``"version"`` — so the ingest layer can keep per-cause
    rejection counters and trip per-device circuit breakers on it without
    string-matching messages.

    :param message: description of what failed.
    :param reason: rejection category (defaults to ``"schema"``).
    """

    def __init__(self, message: str, reason: str = "schema") -> None:
        self.reason = reason
        super().__init__(message)


class DatasetError(ReproError):
    """A trace or dataset file was malformed or inconsistent."""


class ServiceError(ReproError):
    """The network-facing signature service hit an operational error.

    Raised by :mod:`repro.service` for conditions the HTTP layer maps to
    client-visible statuses (a stale publish, a misconfigured backend) —
    as distinct from payload corruption, which keeps its own
    :class:`SignatureStoreError` / :class:`ReportValidationError` types so
    retry loops can classify it.
    """
