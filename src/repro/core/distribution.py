"""The server -> device signature distribution channel, made unreliable.

The paper's Fig 3 draws an arrow from the signature-generation server to
the on-device flow-control application and says nothing about what happens
when that arrow fails.  At crowd scale it fails constantly, so this module
models the arrow explicitly:

- :class:`SignatureChannel` — the server side.  ``publish()`` wraps a
  signature set in a versioned, checksummed envelope
  (:meth:`repro.signatures.store.SignatureStore.dumps_envelope`);
  ``transmit()`` pushes the latest envelope through an optional
  :class:`~repro.reliability.faults.FaultPlan`, substituting an older
  version for ``STALE`` faults.
- :class:`SignatureFetcher` — the device side.  ``fetch()`` retries through
  the faults under a :class:`~repro.reliability.retry.RetryPolicy` and an
  optional :class:`~repro.reliability.retry.CircuitBreaker`, verifies the
  envelope checksum and version, falls back to the last-known-good set on
  an exhausted budget, and keeps :class:`ChannelHealth` counters.

A fetch can therefore end three ways, in order of preference: ``FRESH``
(a verified envelope arrived), ``CACHED`` (transfers failed; the device
screens with its last-known-good set), or ``DEGRADED`` (no valid set was
*ever* fetched; the device falls back to the keyword baseline — see
:meth:`repro.core.flowcontrol.FlowControlApp.screen`).

Everything is deterministic: faults and jitter derive from explicit seeds
and time is a logical tick counter (DESIGN.md §6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DistributionError, SignatureStoreError
from repro.obs.metrics import Metrics
from repro.reliability.faults import FaultKind, FaultPlan
from repro.reliability.retry import BreakerState, CircuitBreaker, RetryPolicy
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.store import SignatureEnvelope, SignatureStore
from repro.simulation.rng import derive_rng


class SignatureChannel:
    """Server-side publication point plus the (simulated) transport.

    :param fault_plan: the channel's failure behaviour; ``None`` for a
        perfect channel (the pre-reliability in-memory handoff).
    :param metrics: optional shared registry; the channel then counts
        publishes, transmissions, and per-fault-kind outcomes.
    """

    def __init__(
        self, fault_plan: FaultPlan | None = None, metrics: Metrics | None = None
    ) -> None:
        self.fault_plan = fault_plan
        self.metrics = metrics
        self._envelopes: list[str] = []  # serialized; index + 1 == set_version

    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    def publish(self, signatures: list[ConjunctionSignature]) -> SignatureEnvelope:
        """Wrap and retain a new signature-set version for distribution."""
        set_version = len(self._envelopes) + 1
        document = SignatureStore.dumps_envelope(signatures, set_version)
        self._envelopes.append(document)
        self._inc("channel_publishes")
        if self.metrics is not None:
            self.metrics.set_gauge("channel_latest_version", set_version)
        return SignatureStore.loads_envelope(document)

    @property
    def latest_version(self) -> int:
        """The newest published ``set_version`` (0 when nothing published)."""
        return len(self._envelopes)

    def envelope(self, set_version: int) -> SignatureEnvelope:
        """The parsed envelope of one published version.

        Lets a serving gateway build hot-reload schedules from the
        channel's publication history (and tests fetch a known-stale
        version to assert never-regress behaviour).

        :raises DistributionError: for an unpublished version.
        """
        if not 1 <= set_version <= len(self._envelopes):
            raise DistributionError(
                f"version {set_version} not published (have 1..{len(self._envelopes)})"
            )
        return SignatureStore.loads_envelope(self._envelopes[set_version - 1])

    def transmit(self, *labels: str) -> tuple[bytes | None, FaultKind, float]:
        """One delivery attempt of the latest envelope.

        :param labels: fault-derivation labels (e.g. the fetching device's
            id) keeping concurrent fetchers' fault streams independent.
        :returns: ``(payload, fault_kind, delay_ticks)``; ``payload`` is
            ``None`` for a drop.
        :raises DistributionError: when nothing has been published.
        """
        if not self._envelopes:
            raise DistributionError("nothing published on this channel yet")
        self._inc("channel_transmits")
        payload = self._envelopes[-1].encode("utf-8")
        if self.fault_plan is None:
            return payload, FaultKind.NONE, 0.0
        outcome = self.fault_plan.apply(payload, *labels)
        if outcome.kind is not FaultKind.NONE:
            self._inc(f"channel_fault_{outcome.kind.value}")
        if outcome.kind is FaultKind.STALE and len(self._envelopes) > 1:
            # A misbehaving cache serves the previous version, intact.
            return self._envelopes[-2].encode("utf-8"), outcome.kind, outcome.delay_ticks
        return outcome.payload, outcome.kind, outcome.delay_ticks


class FetchStatus(enum.Enum):
    """How a fetch session ended."""

    FRESH = "fresh"  # a verified envelope arrived this session
    CACHED = "cached"  # transfers failed; last-known-good set returned
    DEGRADED = "degraded"  # no valid set has ever been fetched


@dataclass(slots=True)
class ChannelHealth:
    """Cumulative device-side view of the channel, for ops dashboards.

    ``attempts`` counts individual transmissions; ``fetches`` counts
    sessions (one :meth:`SignatureFetcher.fetch` call each).
    """

    fetches: int = 0
    attempts: int = 0
    successes: int = 0
    drops: int = 0
    integrity_failures: int = 0
    stale_reads: int = 0
    breaker_rejections: int = 0
    fallbacks: int = 0
    degraded_sessions: int = 0
    delay_ticks: float = 0.0
    last_good_version: int = 0
    breaker_state: str = BreakerState.CLOSED.value

    @property
    def failure_ratio(self) -> float:
        """Failed transmissions over all transmissions attempted."""
        if self.attempts == 0:
            return 0.0
        return 1.0 - self.successes / self.attempts


@dataclass(frozen=True, slots=True)
class FetchResult:
    """The outcome of one fetch session.

    :param status: how the session ended (see :class:`FetchStatus`).
    :param signatures: the set the device should screen with — fresh,
        last-known-good, or empty when degraded.
    :param set_version: version of ``signatures`` (0 when degraded).
    :param attempts: transmissions consumed this session.
    """

    status: FetchStatus
    signatures: tuple[ConjunctionSignature, ...]
    set_version: int
    attempts: int

    @property
    def ok(self) -> bool:
        """Whether the device holds *some* usable signature set."""
        return self.status is not FetchStatus.DEGRADED


class SignatureFetcher:
    """Device-side fetch loop with verification and graceful fallback.

    :param channel: the distribution channel to pull from.
    :param retry: per-session attempt budget and backoff shape.
    :param breaker: optional circuit breaker shared across sessions; when
        open, sessions fail fast without consuming channel attempts.
    :param seed: determinism root for backoff jitter.
    :param device_id: label isolating this device's fault/jitter streams.
    :param metrics: optional shared registry mirroring
        :class:`ChannelHealth` as monotonic counters (sessions, attempts,
        retries, per-status outcomes) for the Prometheus exposition.
    """

    def __init__(
        self,
        channel: SignatureChannel,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        seed: int = 0,
        device_id: str = "device",
        metrics: Metrics | None = None,
    ) -> None:
        self.channel = channel
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.seed = seed
        self.device_id = device_id
        self.metrics = metrics
        self.health = ChannelHealth()
        self.clock = 0.0  # logical ticks; advanced per attempt + backoff
        self._last_good: tuple[int, tuple[ConjunctionSignature, ...]] | None = None

    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    @property
    def last_good(self) -> tuple[ConjunctionSignature, ...] | None:
        """The last verified signature set, if any session ever succeeded."""
        return self._last_good[1] if self._last_good else None

    def fetch(self) -> FetchResult:
        """Run one fetch session: retry, verify, fall back.

        Never raises for channel trouble — every failure mode folds into
        the returned :class:`FetchResult` so the device keeps screening.
        """
        self.health.fetches += 1
        self._inc("fetch_sessions")
        session = self.health.fetches
        rng = derive_rng(self.seed, "fetch", self.device_id, str(session))
        attempts = 0
        for attempt in range(self.retry.max_attempts):
            self.clock += 1.0
            if self.breaker is not None and not self.breaker.allow(self.clock):
                self.health.breaker_rejections += 1
                self._inc("fetch_breaker_rejections")
                break
            if attempt > 0:
                self._inc("fetch_retries")
            envelope = self._attempt(attempts)
            attempts += 1
            if envelope is not None:
                if self.breaker is not None:
                    self.breaker.record_success()
                self._last_good = (envelope.set_version, envelope.signatures)
                self.health.successes += 1
                self.health.last_good_version = envelope.set_version
                self._note_breaker_state()
                self._inc("fetch_fresh")
                if self.metrics is not None:
                    self.metrics.set_gauge(
                        "fetch_last_good_version", envelope.set_version
                    )
                return FetchResult(
                    status=FetchStatus.FRESH,
                    signatures=envelope.signatures,
                    set_version=envelope.set_version,
                    attempts=attempts,
                )
            if self.breaker is not None:
                self.breaker.record_failure(self.clock)
            if attempt < self.retry.max_attempts - 1:
                self.clock += self.retry.backoff(attempt, rng)
        self._note_breaker_state()
        if self._last_good is not None:
            self.health.fallbacks += 1
            self._inc("fetch_cached")
            version, signatures = self._last_good
            return FetchResult(
                status=FetchStatus.CACHED,
                signatures=signatures,
                set_version=version,
                attempts=attempts,
            )
        self.health.degraded_sessions += 1
        self._inc("fetch_degraded")
        return FetchResult(
            status=FetchStatus.DEGRADED, signatures=(), set_version=0, attempts=attempts
        )

    def fetch_into(self, app) -> FetchResult:
        """Fetch and install the result into a
        :class:`~repro.core.flowcontrol.FlowControlApp`.

        A ``DEGRADED`` result installs the empty set, which flips the app
        into its keyword-baseline degraded screening mode (if configured).
        """
        result = self.fetch()
        app.update_signatures(list(result.signatures), version=result.set_version)
        return result

    # -- internals ---------------------------------------------------------------

    def _attempt(self, attempt_index: int) -> SignatureEnvelope | None:
        """One transmission + verification; ``None`` on any failure."""
        self.health.attempts += 1
        self._inc("fetch_attempts")
        try:
            payload, kind, delay = self.channel.transmit(self.device_id, str(attempt_index))
        except DistributionError:
            self.health.drops += 1
            self._inc("fetch_drops")
            return None
        self.clock += delay
        self.health.delay_ticks += delay
        if payload is None:
            self.health.drops += 1
            self._inc("fetch_drops")
            return None
        try:
            envelope = SignatureStore.loads_envelope(payload.decode("utf-8", errors="replace"))
        except SignatureStoreError:
            self.health.integrity_failures += 1
            self._inc("fetch_integrity_failures")
            return None
        if self._last_good is not None and envelope.set_version < self._last_good[0]:
            # A cache served an older version than we already verified:
            # never regress the installed set.
            self.health.stale_reads += 1
            self._inc("fetch_stale_reads")
            return None
        return envelope

    def _note_breaker_state(self) -> None:
        if self.breaker is not None:
            self.health.breaker_state = self.breaker.state(self.clock).value
