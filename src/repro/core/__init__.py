"""The paper's system: server-side generation and device-side control.

- :class:`repro.core.server.SignatureServer` — Fig 3(a): collect traffic,
  payload-check it, cluster the sensitive packets, generate signatures.
- :class:`repro.core.flowcontrol.FlowControlApp` — Fig 3(b): fetch the
  signature set and screen other applications' outgoing requests.
- :mod:`repro.core.pipeline` — convenience wiring for experiments.
"""

from repro.core.flowcontrol import Decision, FlowControlApp, PolicyAction
from repro.core.incremental import IncrementalSignatureSet
from repro.core.pipeline import DetectionPipeline, PipelineConfig
from repro.core.server import ServerConfig, SignatureServer
from repro.core.streaming import StreamingClusterer, StreamingConfig, StreamingStats

__all__ = [
    "SignatureServer",
    "ServerConfig",
    "FlowControlApp",
    "PolicyAction",
    "Decision",
    "DetectionPipeline",
    "PipelineConfig",
    "IncrementalSignatureSet",
    "StreamingClusterer",
    "StreamingConfig",
    "StreamingStats",
]
