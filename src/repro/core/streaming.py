"""Streaming blocked clustering — attach cheaply, compact exactly.

Full reclustering is quadratic in corpus size; this module is the
streaming half of the O(M²) escape hatch (the blocking prefilter in
:mod:`repro.distance.blocking` is the other).  Packets arrive in
batches and pass through two phases:

**Attach.**  Each new packet is assigned to a candidate block by the
incremental blocker, then probed against the existing clusters *of that
block only*: distances to at most ``attach_exemplars`` members per
cluster, scored with the linkage's own criterion (mean for group
average, min for single, max for complete).  If the best score is
within the linkage threshold the packet joins that cluster, otherwise
it starts a new one.  Per-packet cost is O(clusters-in-block × cap) —
independent of the corpus size M, which is what makes extension
sub-linear.

**Compact.**  Attachment is greedy and order-dependent, so blocks that
received new items (or were merged by a bridging packet) are marked
*dirty*.  Compaction reclusters each dirty block from scratch —
agglomerate over the block's full sub-matrix, flat cut at the absolute
threshold — and replaces that block's clusters.  The sub-matrix is
served by the :class:`~repro.distance.engine.PairStream` pair cache, so
pairs probed during attach (or by earlier compactions) are never
recomputed; only genuinely new pairs cost compression.

With exact blocking and a reducible linkage, a compacted clusterer's
partition is **identical** to a full recluster of everything seen so
far: blocking is lossless at the threshold, and per-block reclustering
equals global reclustering when no merge below the threshold crosses
blocks.  The exactness audit in :mod:`repro.eval.streaming` asserts
this on every CI run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.clustering.cut import cut_by_height
from repro.clustering.linkage import Linkage, agglomerate
from repro.distance.blocking import BlockingConfig, BlockingMode, make_blocker
from repro.distance.engine import DistanceEngine, PairStream
from repro.errors import ClusteringError
from repro.http.packet import HttpPacket
from repro.obs import NULL_OBS, Observability


@dataclass(frozen=True, slots=True)
class StreamingConfig:
    """Policy for :class:`StreamingClusterer`.

    :param blocking: candidate-pair prefilter; its ``threshold`` is the
        absolute linkage height clusters are cut at.
    :param linkage: merge criterion.  Ward is rejected — its
        cluster-to-cluster distance is not bounded below by the cheapest
        cross pair, which breaks both the attach score and the exactness
        guarantee.
    :param attach_exemplars: members probed per candidate cluster during
        attach (caps per-packet cost).
    :param compact_every: ingest batches between automatic compactions;
        ``0`` leaves compaction to the caller.
    :param max_cached_pairs: optional LRU bound on the pair cache (see
        :class:`~repro.distance.engine.PairStream`): keeps memory flat
        over unbounded streams at the price of re-evaluating evicted
        pairs, without changing any distance or the partition.
    """

    blocking: BlockingConfig = field(default_factory=BlockingConfig)
    linkage: Linkage = Linkage.GROUP_AVERAGE
    attach_exemplars: int = 8
    compact_every: int = 4
    max_cached_pairs: int | None = None

    def __post_init__(self) -> None:
        if self.linkage is Linkage.WARD:
            raise ClusteringError(
                "streaming attachment requires a reducible linkage "
                "(group average, single, or complete); Ward's criterion "
                "is not bounded by its cheapest cross pair"
            )
        if self.attach_exemplars < 1:
            raise ClusteringError(
                f"attach_exemplars must be positive, got {self.attach_exemplars}"
            )
        if self.compact_every < 0:
            raise ClusteringError(
                f"compact_every must be >= 0, got {self.compact_every}"
            )
        if self.max_cached_pairs is not None and self.max_cached_pairs < 1:
            raise ClusteringError(
                f"max_cached_pairs must be >= 1 when set, got {self.max_cached_pairs}"
            )


@dataclass(slots=True)
class StreamingStats:
    """Cumulative account of one clusterer's life (feeds the bench)."""

    items: int = 0
    batches: int = 0
    attached: int = 0
    new_clusters: int = 0
    blocks_merged: int = 0
    compactions: int = 0
    blocks_compacted: int = 0
    attach_probes: int = 0
    attach_pairs_evaluated: int = 0
    compact_pairs_evaluated: int = 0

    @property
    def pairs_evaluated(self) -> int:
        return self.attach_pairs_evaluated + self.compact_pairs_evaluated

    def to_dict(self) -> dict:
        return {
            "items": self.items,
            "batches": self.batches,
            "attached": self.attached,
            "new_clusters": self.new_clusters,
            "blocks_merged": self.blocks_merged,
            "compactions": self.compactions,
            "blocks_compacted": self.blocks_compacted,
            "attach_probes": self.attach_probes,
            "attach_pairs_evaluated": self.attach_pairs_evaluated,
            "compact_pairs_evaluated": self.compact_pairs_evaluated,
            "pairs_evaluated": self.pairs_evaluated,
        }


@dataclass(slots=True)
class BatchReport:
    """What one :meth:`StreamingClusterer.ingest` call did."""

    batch_size: int
    attached: int
    new_clusters: int
    blocks_merged: int
    probes: int
    compacted: bool


class StreamingClusterer:
    """Cluster a packet stream without ever touching the full pair space.

    State is three structures that all grow monotonically between
    compactions: the :class:`PairStream` (items + evaluated pair cache),
    the incremental blocker (union-find over candidate blocks), and the
    cluster map (cluster id = smallest member index, so identities are
    deterministic and stable under attachment).

    :param metric: pair metric; defaults to the paper's packet distance.
    :param config: streaming policy.
    :param engine: distance engine to evaluate pairs with (worker count,
        fault plan, chunking); defaults to a serial engine over ``metric``.
    :param obs: optional observability bundle (``stream_attach`` /
        ``stream_compact`` spans, ``stream_*`` counters).
    """

    def __init__(
        self,
        metric=None,
        config: StreamingConfig | None = None,
        *,
        engine: DistanceEngine | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or StreamingConfig()
        self.engine = engine or DistanceEngine(metric)
        self.metric = self.engine.metric
        self.obs = obs or NULL_OBS
        self.stream = PairStream(
            self.engine, max_cached_pairs=self.config.max_cached_pairs
        )
        self.blocker = make_blocker(self.metric, self.config.blocking)
        self.stats = StreamingStats()
        self._members: dict[int, list[int]] = {}  # cluster id -> item indices
        self._cluster_of: dict[int, int] = {}  # item index -> cluster id
        self._dirty: set[int] = set()  # item indices marking dirty blocks
        self._batches_since_compact = 0

    def __len__(self) -> int:
        return len(self.stream)

    @property
    def items(self) -> list:
        return self.stream.items

    @property
    def threshold(self) -> float:
        return self.config.blocking.threshold

    # -- ingestion ----------------------------------------------------------------

    def ingest(self, batch: Sequence[HttpPacket]) -> BatchReport:
        """Attach one batch of packets, compacting if the cadence is due."""
        batch = list(batch)
        start = len(self.stream)
        pairs_before = self.stream.pairs_evaluated
        report = BatchReport(
            batch_size=len(batch), attached=0, new_clusters=0,
            blocks_merged=0, probes=0, compacted=False,
        )
        with self.obs.span(
            "stream_attach", track="stream", batch=self.stats.batches,
            items=len(batch),
        ):
            self.stream.extend(batch)
            for offset, packet in enumerate(batch):
                index = start + offset
                self._attach(index, packet, report)
                self.obs.advance(1)
        self.stats.attach_pairs_evaluated += self.stream.pairs_evaluated - pairs_before
        self.stats.items += len(batch)
        self.stats.batches += 1
        self.stats.attached += report.attached
        self.stats.new_clusters += report.new_clusters
        self.stats.blocks_merged += report.blocks_merged
        self.stats.attach_probes += report.probes
        self.obs.inc("stream_items", len(batch))
        self.obs.inc("stream_attach_probes", report.probes)

        self._batches_since_compact += 1
        if (
            self.config.compact_every
            and self._batches_since_compact >= self.config.compact_every
        ):
            self.compact()
            report.compacted = True
        return report

    def _attach(self, index: int, packet: HttpPacket, report: BatchReport) -> None:
        merges = self.blocker.add(index, packet)
        if merges:
            report.blocks_merged += len(merges)
            self.obs.inc("stream_blocks_merged", len(merges))
            for root_a, root_b in merges:
                self._dirty.add(root_a)
                self._dirty.add(root_b)
        self._dirty.add(index)

        # Candidate clusters: every cluster living in this item's block.
        block_members = self.blocker.members(index)
        candidates = sorted(
            {
                self._cluster_of[member]
                for member in block_members
                if member in self._cluster_of
            }
        )
        probes: list[tuple[int, int]] = []
        spans: list[tuple[int, int, int]] = []  # (cluster, start, stop)
        cap = self.config.attach_exemplars
        for cluster in candidates:
            exemplars = self._members[cluster][:cap]
            spans.append((cluster, len(probes), len(probes) + len(exemplars)))
            probes.extend((index, member) for member in exemplars)
        report.probes += len(probes)

        best_cluster = -1
        best_score = float("inf")
        if probes:
            values = self.stream.distances(probes)
            for cluster, lo, hi in spans:
                window = values[lo:hi]
                if self.config.linkage is Linkage.SINGLE:
                    score = float(window.min())
                elif self.config.linkage is Linkage.COMPLETE:
                    score = float(window.max())
                else:
                    score = float(window.mean())
                if score < best_score:  # ties keep the smaller cluster id
                    best_score = score
                    best_cluster = cluster

        if best_cluster >= 0 and best_score <= self.threshold:
            self._members[best_cluster].append(index)
            self._cluster_of[index] = best_cluster
            report.attached += 1
        else:
            self._members[index] = [index]
            self._cluster_of[index] = index
            report.new_clusters += 1

    # -- compaction ---------------------------------------------------------------

    def compact(self, *, full: bool = False) -> int:
        """Recluster dirty blocks exactly; returns blocks reclustered.

        ``full=True`` reclusters every block regardless of dirtiness —
        the audit uses it to guarantee a fully settled partition.
        """
        if full:
            roots = {self.blocker.find(index) for index in range(len(self.stream))}
        else:
            roots = {self.blocker.find(index) for index in self._dirty}
        pairs_before = self.stream.pairs_evaluated
        with self.obs.span(
            "stream_compact", track="stream", blocks=len(roots), full=full
        ):
            for root in sorted(roots):
                self._compact_block(root)
                self.obs.advance(1)
        self.stats.compact_pairs_evaluated += self.stream.pairs_evaluated - pairs_before
        self.stats.compactions += 1
        self.stats.blocks_compacted += len(roots)
        self.obs.inc("stream_compactions")
        self.obs.inc("stream_blocks_compacted", len(roots))
        self._dirty.clear()
        self._batches_since_compact = 0
        return len(roots)

    def _compact_block(self, root: int) -> None:
        members = sorted(self.blocker.members(root))
        if len(members) == 1:
            self._set_clusters(members, [members])
            return
        matrix = self.stream.matrix(members)
        dendrogram = agglomerate(matrix, self.config.linkage)
        clusters = [
            sorted(members[leaf] for leaf in dendrogram.leaves(node))
            for node in cut_by_height(dendrogram, self.threshold)
        ]
        self._set_clusters(members, clusters)

    def _set_clusters(self, members: list[int], clusters: list[list[int]]) -> None:
        """Replace every cluster covering ``members`` with ``clusters``."""
        for member in members:
            old = self._cluster_of.pop(member, None)
            if old is not None:
                self._members.pop(old, None)
        for cluster in clusters:
            cluster_id = min(cluster)
            self._members[cluster_id] = list(cluster)
            for member in cluster:
                self._cluster_of[member] = cluster_id

    # -- read side ----------------------------------------------------------------

    @property
    def n_clusters(self) -> int:
        return len(self._members)

    def partition(self) -> list[list[int]]:
        """Current clusters as sorted member lists, ordered by smallest member."""
        return [
            sorted(self._members[cluster]) for cluster in sorted(self._members)
        ]

    def clusters_of_items(self) -> dict[int, int]:
        """Item index -> cluster id (copy)."""
        return dict(self._cluster_of)
