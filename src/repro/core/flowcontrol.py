"""The device-side information flow control application (paper Fig 3b).

"The information flow control application inspects network traffic using
the Android API and detects sensitive information leakage using the ...
server generated signatures.  It does not require any special privileges."

The app fetches a published signature set, screens every outgoing request
of other applications, and — on a signature hit — consults the user's
per-application policy: prompt (default), always allow, or always block.
This is the "fine grained manner" of managing suspicious network behaviour
the paper's introduction promises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.http.packet import HttpPacket
from repro.obs.metrics import Metrics
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import SignatureMatcher
from repro.signatures.store import SignatureStore


class PolicyAction(enum.Enum):
    """What to do when a signature fires for an application."""

    PROMPT = "prompt"  # ask the user (default)
    ALLOW = "allow"  # user accepted this app's transmissions
    BLOCK = "block"  # user forbade them


@dataclass(frozen=True, slots=True)
class Decision:
    """The outcome of screening one packet.

    :param packet: the screened packet.
    :param transmitted: whether the packet was let through.
    :param flagged: whether any signature (or the degraded-mode fallback
        detector) matched.
    :param action: the policy action applied (ALLOW for clean packets).
    :param signature: the matching signature, if any.
    :param degraded: ``True`` when the decision came from the degraded-mode
        keyword fallback rather than a server signature — callers can
        weigh such verdicts differently (e.g. prompt instead of block).
    :param applied_rule: the ``(app_id, domain)`` key of the explicit
        :class:`PolicyStore` rule that determined ``action``, or ``None``
        when the PROMPT default (or no policy at all) applied.
    """

    packet: HttpPacket
    transmitted: bool
    flagged: bool
    action: PolicyAction
    signature: ConjunctionSignature | None = None
    degraded: bool = False
    applied_rule: tuple[str, str] | None = None


@dataclass
class PolicyStore:
    """Per-(application, destination domain) user decisions.

    A rule for ``(app, "")`` applies to all the app's destinations; the
    more specific ``(app, domain)`` rule wins.
    """

    rules: dict[tuple[str, str], PolicyAction] = field(default_factory=dict)

    def set_rule(self, app_id: str, action: PolicyAction, domain: str = "") -> None:
        self.rules[(app_id, domain)] = action

    def lookup(self, app_id: str, domain: str) -> PolicyAction:
        return self.lookup_rule(app_id, domain)[0]

    def lookup_rule(
        self, app_id: str, domain: str
    ) -> tuple[PolicyAction, tuple[str, str] | None]:
        """The applicable action plus the explicit rule key that set it.

        The key is ``None`` when no explicit rule exists and the PROMPT
        default applies — letting callers distinguish "user said allow"
        from "nobody ever decided".
        """
        for key in ((app_id, domain), (app_id, "")):
            action = self.rules.get(key)
            if action is not None:
                return action, key
        return PolicyAction.PROMPT, None


class FlowControlApp:
    """Screens outgoing traffic against a fetched signature set.

    :param signatures: the signature set (from ``SignatureServer.publish``
        or a prior :class:`~repro.signatures.store.SignatureStore` file).
    :param prompt_handler: callback deciding a PROMPT — receives the packet
        and the matching signature (``None`` in degraded mode), returns
        ``True`` to transmit.  Defaults to denying (safe default while the
        user is absent).
    :param degraded_detector: optional fallback detector (anything with an
        ``is_sensitive(packet)`` method, e.g.
        :class:`repro.baselines.keyword.KeywordDetector`).  While the app
        holds *no* signatures — a fresh install whose every fetch failed —
        screening falls back to this detector and decisions carry
        ``degraded=True``.  Without one, an empty set screens nothing
        (every packet transmits unflagged), as before.
    :param metrics: optional shared registry; the app then counts
        decisions (total/flagged/degraded/blocked/prompts) and signature
        installs, and gauges the live set size and version.  Decisions
        are bit-identical with or without it.
    """

    def __init__(
        self,
        signatures: list[ConjunctionSignature],
        prompt_handler: Callable[[HttpPacket, ConjunctionSignature], bool] | None = None,
        degraded_detector: object | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.matcher = SignatureMatcher(signatures)
        self.policies = PolicyStore()
        self.prompt_handler = prompt_handler or (lambda packet, signature: False)
        self.degraded_detector = degraded_detector
        self.metrics = metrics
        self.signature_version = 0
        self.history: list[Decision] = []

    def _inc(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    @classmethod
    def fetch(
        cls,
        published: str,
        prompt_handler: Callable[[HttpPacket, ConjunctionSignature], bool] | None = None,
    ) -> "FlowControlApp":
        """Construct from a published (serialized) signature document."""
        return cls(SignatureStore.loads(published), prompt_handler)

    @classmethod
    def degraded(
        cls,
        prompt_handler: Callable[[HttpPacket, ConjunctionSignature], bool] | None = None,
        mode: str = "conservative",
        metrics: Metrics | None = None,
    ) -> "FlowControlApp":
        """A fresh install with no signatures yet: keyword fallback armed.

        Defaults to the ``conservative`` escalation: without server
        signatures the device has no destination scoping, and the broader
        modes would prompt on roughly half of all clean traffic — unusable.
        Pair with :meth:`repro.core.distribution.SignatureFetcher.fetch_into`
        to upgrade to real signatures once a fetch succeeds.
        """
        from repro.baselines.keyword import KeywordDetector

        return cls(
            [], prompt_handler, degraded_detector=KeywordDetector(mode), metrics=metrics
        )

    @property
    def is_degraded(self) -> bool:
        """Whether screening currently runs on the fallback detector."""
        return len(self.matcher) == 0 and self.degraded_detector is not None

    def update_signatures(
        self, signatures: list[ConjunctionSignature], version: int = 0
    ) -> None:
        """Install a newly fetched signature set (leaving policies intact).

        An empty set with a zero version — a degraded fetch — does not
        clobber signatures the app already holds: the last-known-good set
        keeps screening.
        """
        if not signatures and version == 0 and len(self.matcher) > 0:
            self._inc("flow_updates_ignored")
            return
        self.matcher = SignatureMatcher(signatures)
        self.signature_version = version
        self._inc("flow_updates")
        if self.metrics is not None:
            self.metrics.set_gauge("flow_signature_version", version)
            self.metrics.set_gauge("flow_signatures_live", len(self.matcher))

    def screen(self, packet: HttpPacket) -> Decision:
        """Screen one outgoing packet and record the decision.

        With signatures installed this is the paper's screening loop.  With
        an empty set and a configured ``degraded_detector``, the detector
        screens instead and the decision is marked ``degraded`` so callers
        can distinguish baseline verdicts from signature verdicts.

        Ordering: an *explicit* ALLOW rule is consulted before degraded-mode
        keyword screening — the user's standing decision outranks the noisy
        fallback detector, so such packets transmit unflagged (and without
        paying for the regex scan).  Server signatures, being precise, still
        screen first: an ALLOW rule there records the rule but keeps the
        flag in history.
        """
        degraded = self.is_degraded
        domain = packet.destination.registered_domain
        if degraded:
            action, rule = self.policies.lookup_rule(packet.app_id, domain)
            if rule is not None and action is PolicyAction.ALLOW:
                decision = Decision(
                    packet=packet,
                    transmitted=True,
                    flagged=False,
                    action=PolicyAction.ALLOW,
                    degraded=True,
                    applied_rule=rule,
                )
                return self._finish(decision)
            flagged = bool(self.degraded_detector.is_sensitive(packet))
            signature = None
        else:
            result = self.matcher.match(packet)
            flagged = result.matched
            signature = result.signature
        if not flagged:
            decision = Decision(
                packet=packet,
                transmitted=True,
                flagged=False,
                action=PolicyAction.ALLOW,
                degraded=degraded,
            )
        else:
            action, rule = self.policies.lookup_rule(packet.app_id, domain)
            if action is PolicyAction.ALLOW:
                transmitted = True
            elif action is PolicyAction.BLOCK:
                transmitted = False
            else:
                transmitted = self.prompt_handler(packet, signature)
            decision = Decision(
                packet=packet,
                transmitted=transmitted,
                flagged=True,
                action=action,
                signature=signature,
                degraded=degraded,
                applied_rule=rule,
            )
        return self._finish(decision)

    def _finish(self, decision: Decision) -> Decision:
        """Record one decision in history and in the metrics registry."""
        self.history.append(decision)
        self._inc("flow_decisions")
        if decision.flagged:
            self._inc("flow_flagged")
        if decision.degraded:
            self._inc("flow_degraded_decisions")
        if not decision.transmitted:
            self._inc("flow_blocked")
        if decision.flagged and decision.action is PolicyAction.PROMPT:
            self._inc("flow_prompts")
        return decision

    def blocked(self) -> list[Decision]:
        """Decisions where a transmission was suppressed."""
        return [d for d in self.history if not d.transmitted]

    def flagged(self) -> list[Decision]:
        """Decisions where a signature fired (regardless of outcome)."""
        return [d for d in self.history if d.flagged]

    def prompt_count(self) -> int:
        """How many times the user was interrupted — the paper's
        false-positive usability concern in one number."""
        return sum(1 for d in self.history if d.flagged and d.action is PolicyAction.PROMPT)
