"""The signature-generation server (paper Fig 3a, Sections IV-A..IV-E).

Pipeline: ingest collected traffic -> payload check separates suspicious
from normal -> sample M suspicious packets -> pairwise HTTP packet
distances -> group-average hierarchical clustering -> conjunction
signatures from the dendrogram.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from typing import Any, Iterable

from repro.clustering.dendrogram import Dendrogram
from repro.clustering.linkage import Linkage, agglomerate
from repro.dataset.split import sample_packets
from repro.dataset.trace import Trace
from repro.distance.blocking import BlockingConfig
from repro.distance.engine import DistanceEngine
from repro.distance.packet import PacketDistance
from repro.errors import ReproError, SignatureError
from repro.http.packet import HttpPacket
from repro.obs import NULL_OBS, Observability
from repro.reliability.quarantine import Quarantine
from repro.reliability.retry import RetryPolicy
from repro.reliability.workerfaults import WorkerFaultPlan
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.generator import GeneratorConfig, SignatureGenerator
from repro.signatures.store import SignatureStore


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Server tuning.

    :param linkage: clustering criterion (paper: group average).
    :param generator: signature-generation policy.
    :param workers: process count for the pairwise distance build
        (``1`` = in-process serial, ``0`` = one per CPU; results are
        bit-identical for every setting).
    :param blocking: optional candidate-pair prefilter.  When set, the
        distance matrix is built blocked (NCD only inside candidate
        blocks) and the dendrogram cut uses the blocking threshold as an
        absolute height — in ``BlockingMode.EXACT`` the resulting flat
        clusters are provably identical to the unblocked pipeline's.
    """

    linkage: Linkage = Linkage.GROUP_AVERAGE
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    workers: int = 1
    blocking: BlockingConfig | None = None


@dataclass(slots=True)
class GenerationResult:
    """Everything one generation run produced (for inspection and tests)."""

    sample: list[HttpPacket]
    dendrogram: Dendrogram
    signatures: list[ConjunctionSignature]


class SignatureServer:
    """The collection/clustering/generation server.

    :param payload_check: ground-truth labeler (the server knows the
        capture device's identifiers — Section IV-A's "payload check").
    :param distance: the packet metric (defaults to the paper's d_pkt).
    :param config: clustering/generation policy.
    :param obs: optional observability bundle; the server then emits one
        span per generation stage (sample, distance_matrix, linkage, cut,
        signature_gen) plus ingest counters and a quarantine-depth gauge.
        Outputs are bit-identical with or without it.
    :param fault_plan: optional seeded chunk-fault injector for the
        distance engine (worker crash / hang / poison); the engine then
        runs its supervised dispatch loop, and the matrix stays
        bit-identical to the fault-free run.
    :param retry: chunk re-dispatch policy used with ``fault_plan``.
    """

    def __init__(
        self,
        payload_check: PayloadCheck,
        distance: PacketDistance | None = None,
        config: ServerConfig | None = None,
        quarantine_capacity: int = 256,
        obs: Observability | None = None,
        fault_plan: WorkerFaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.payload_check = payload_check
        self.distance = distance or PacketDistance.paper()
        self.config = config or ServerConfig()
        if (
            self.config.blocking is not None
            and self.config.generator.cut_height is None
        ):
            # Blocked matrices key on the absolute threshold; align the
            # cut so generation agrees with the blocking guarantee.
            self.config = dataclasses.replace(
                self.config,
                generator=dataclasses.replace(
                    self.config.generator,
                    cut_height=self.config.blocking.threshold,
                ),
            )
        self.obs = obs or NULL_OBS
        self.engine = DistanceEngine(
            self.distance,
            workers=self.config.workers,
            obs=self.obs,
            fault_plan=fault_plan,
            retry=retry,
        )
        self.quarantine = Quarantine(capacity=quarantine_capacity)
        self._suspicious: list[HttpPacket] = []
        self._normal: list[HttpPacket] = []

    # -- ingestion ---------------------------------------------------------------

    def ingest(self, trace: Trace) -> tuple[int, int]:
        """Run the payload check over a trace, accumulating both groups.

        Packets that fail canonicalization land in :attr:`quarantine`
        instead of aborting the batch.

        :returns: ``(n_suspicious, n_normal)`` added by this call.
        """
        suspicious, normal = self.payload_check.split(trace, quarantine=self.quarantine)
        self._suspicious.extend(suspicious)
        self._normal.extend(normal)
        self.obs.advance(len(suspicious) + len(normal))
        self.obs.inc("server_ingested_suspicious", len(suspicious))
        self.obs.inc("server_ingested_normal", len(normal))
        self.obs.set_gauge("server_quarantine_depth", len(self.quarantine))
        return len(suspicious), len(normal)

    def ingest_raw(self, records: Iterable[dict[str, Any]]) -> tuple[int, int]:
        """Ingest serialized packet records as uploaded by devices.

        This is the crowd-collection entry point: each record is parsed
        with :meth:`HttpPacket.from_dict`; malformed records — truncated
        uploads, bit-flipped bytes, schema drift — are quarantined with
        counters rather than failing the whole batch.

        :returns: ``(n_suspicious, n_normal)`` added by this call.
        """
        packets: list[HttpPacket] = []
        for record in records:
            try:
                packets.append(HttpPacket.from_dict(record))
            except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
                self.quarantine.add(exc, payload=record)
        return self.ingest(Trace(packets))

    @property
    def suspicious(self) -> list[HttpPacket]:
        """Packets the payload check flagged (the clustering population)."""
        return self._suspicious

    @property
    def normal(self) -> list[HttpPacket]:
        return self._normal

    # -- generation ---------------------------------------------------------------

    def generate(self, n_sample: int, seed: int = 0) -> GenerationResult:
        """Sample, cluster, and generate signatures (Sections IV-D, IV-E).

        :param n_sample: M, the number of suspicious packets to cluster.
        :param seed: sampling seed.
        :raises SignatureError: when no suspicious traffic was ingested or
            the sample size is not positive.
        """
        if not self._suspicious:
            raise SignatureError("no suspicious packets ingested; call ingest() first")
        if n_sample <= 0:
            raise SignatureError(f"sample size must be positive, got {n_sample}")
        n_sample = min(n_sample, len(self._suspicious))
        with self.obs.span("sample", track="pipeline", n_sample=n_sample, seed=seed):
            sample = sample_packets(self._suspicious, n_sample, seed=seed)
            self.obs.advance(len(sample))
        dendrogram = self.cluster(sample)
        generator = SignatureGenerator(self.config.generator)
        with self.obs.span("cut", track="pipeline") as cut_span:
            clusters = generator.clusters_from_dendrogram(dendrogram, sample)
            self.obs.advance(len(clusters))
            if cut_span is not None:
                cut_span.attrs["n_clusters"] = len(clusters)
        with self.obs.span("signature_gen", track="pipeline") as gen_span:
            signatures = generator.from_clusters(clusters)
            self.obs.advance(sum(len(cluster) for cluster in clusters))
            if gen_span is not None:
                gen_span.attrs["n_signatures"] = len(signatures)
        self.obs.inc("server_generations")
        self.obs.inc("server_signatures_generated", len(signatures))
        return GenerationResult(sample=sample, dendrogram=dendrogram, signatures=signatures)

    def cluster(self, packets: list[HttpPacket]) -> Dendrogram:
        """Group-average hierarchical clustering over ``packets``.

        The pairwise matrix is built by the distance engine — cached and,
        when ``config.workers`` allows, computed across a process pool.
        """
        n = len(packets)
        with self.obs.span(
            "distance_matrix", track="pipeline", n_items=n, n_pairs=n * (n - 1) // 2
        ):
            if self.config.blocking is not None:
                matrix, __ = self.engine.blocked_matrix(
                    packets, blocking=self.config.blocking
                )
            else:
                matrix = self.engine.matrix(packets)
        with self.obs.span("linkage", track="pipeline", n_items=n):
            dendrogram = agglomerate(matrix, self.config.linkage)
            self.obs.advance(max(0, n - 1))
        return dendrogram

    # -- publication -----------------------------------------------------------------

    def publish(self, signatures: list[ConjunctionSignature]) -> str:
        """Serialize a signature set for device-side consumption."""
        return SignatureStore.dumps(signatures)
