"""End-to-end pipeline wiring for experiments and examples.

:class:`DetectionPipeline` bundles the whole Fig 3 loop — ingest a corpus
trace, generate signatures from an N-packet sample, screen the entire
dataset — and returns the paper's metrics.  The Fig 4 bench, the ablation
benches, and the examples all drive this one class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clustering.linkage import Linkage
from repro.core.server import ServerConfig, SignatureServer
from repro.dataset.trace import Trace
from repro.distance.blocking import BlockingConfig
from repro.distance.packet import PacketDistance
from repro.eval.metrics import DetectionMetrics, compute_metrics
from repro.obs import NULL_OBS, Observability
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.generator import GeneratorConfig
from repro.signatures.matcher import SignatureMatcher


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Pipeline policy: distance + clustering + generation knobs.

    :param workers: process count for the distance-matrix build (``1`` =
        serial, ``0`` = one per CPU); output is bit-identical either way.
    :param blocking: optional candidate-pair prefilter for the matrix
        build (see :class:`~repro.core.server.ServerConfig`).
    """

    distance: PacketDistance = field(default_factory=PacketDistance.paper)
    linkage: Linkage = Linkage.GROUP_AVERAGE
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    workers: int = 1
    blocking: BlockingConfig | None = None


@dataclass(slots=True)
class PipelineResult:
    """One full run: the generated signatures and the detection metrics."""

    n_sample: int
    signatures: list[ConjunctionSignature]
    metrics: DetectionMetrics


class DetectionPipeline:
    """Runs the complete experiment of Section V on one corpus.

    :param trace: the full captured dataset.
    :param payload_check: ground-truth labeler for the capture device.
    :param config: policy knobs (defaults reproduce the paper).
    :param obs: optional observability bundle.  When given, ingest emits
        ``collect`` and ``payload_check`` spans and each :meth:`run` emits
        a ``pipeline_run`` root with one child span per stage
        (sample/distance_matrix/linkage/cut/signature_gen/eval).  The
        :class:`PipelineResult` is bit-identical with or without it.
    """

    def __init__(
        self,
        trace: Trace,
        payload_check: PayloadCheck,
        config: PipelineConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.trace = trace
        self.payload_check = payload_check
        self.config = config or PipelineConfig()
        self.obs = obs or NULL_OBS
        self.server = SignatureServer(
            payload_check,
            distance=self.config.distance,
            config=ServerConfig(
                linkage=self.config.linkage,
                generator=self.config.generator,
                workers=self.config.workers,
                blocking=self.config.blocking,
            ),
            obs=self.obs,
        )
        with self.obs.span("pipeline_ingest", track="pipeline"):
            with self.obs.span("collect", track="pipeline", n_packets=len(trace)):
                self.obs.advance(len(trace))
            with self.obs.span("payload_check", track="pipeline") as check_span:
                counts = self.server.ingest(trace)
                if check_span is not None:
                    check_span.attrs["n_suspicious"], check_span.attrs["n_normal"] = counts

    @property
    def n_suspicious(self) -> int:
        return len(self.server.suspicious)

    @property
    def n_normal(self) -> int:
        return len(self.server.normal)

    def run(self, n_sample: int, seed: int = 0) -> PipelineResult:
        """Generate from an ``n_sample`` and evaluate on the full dataset."""
        with self.obs.span("pipeline_run", track="pipeline", n_sample=n_sample, seed=seed):
            generation = self.server.generate(n_sample, seed=seed)
            with self.obs.span("eval", track="pipeline") as eval_span:
                matcher = SignatureMatcher(generation.signatures)
                metrics = compute_metrics(
                    matcher=matcher,
                    suspicious=self.server.suspicious,
                    normal=self.server.normal,
                    n_sample=len(generation.sample),
                    training_sample=generation.sample,
                )
                self.obs.advance(len(self.server.suspicious) + len(self.server.normal))
                if eval_span is not None:
                    eval_span.attrs["tp_percent"] = metrics.tp_percent
                    eval_span.attrs["fp_percent"] = metrics.fp_percent
        self.obs.inc("pipeline_runs")
        return PipelineResult(
            n_sample=len(generation.sample),
            signatures=generation.signatures,
            metrics=metrics,
        )

    def sweep(self, sample_sizes: list[int], seed: int = 0) -> list[PipelineResult]:
        """The Fig 4 sweep: one run per N, same corpus, fresh samples."""
        return [self.run(n, seed=seed + i) for i, n in enumerate(sample_sizes)]

    def supervised(self, **kwargs):
        """A checkpointed :class:`~repro.supervision.runner.StagedPipeline`
        over the same trace, labeler, and configuration.

        Keyword arguments (``store``, ``crash_plan``, ``fault_plan``,
        ``retry``, ``obs``) pass through to the staged runner; ``obs``
        defaults to this pipeline's bundle.  Imported lazily so the plain
        pipeline never pays for the supervision layer.
        """
        from repro.supervision.runner import StagedPipeline

        kwargs.setdefault("obs", self.obs)
        return StagedPipeline(self.trace, self.payload_check, self.config, **kwargs)
