"""Incremental signature-set maintenance (the deployment loop).

The paper's server (Fig 3a) is not a one-shot tool: it "collects
application traffic" continuously while devices keep fetching updated
signature sets.  Re-clustering everything from scratch on each batch is
wasteful and destabilizes published signatures, so the maintainer applies
the standard streaming split:

1. screen the new suspicious batch with the *current* set — packets an
   existing signature already matches carry no new information;
2. cluster only the residue and generate candidate signatures;
3. merge candidates into the set, deduplicating subsumed entries;
4. optionally retire signatures that stopped matching anything (module
   endpoint rotated away).

Incremental generation is deliberately conservative: a signature learned
from a small early cluster keeps matching its module, so later packets of
that module never reach the clustering step again and the signature never
broadens.  The maintainer therefore keeps a few *exemplars* per signature
and offers :meth:`IncrementalSignatureSet.consolidate` — re-cluster all
exemplars plus pending residue and regenerate the set — to be run at a
slow cadence (nightly), recovering one-shot quality at a fraction of the
cost of re-clustering the full history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.clustering.linkage import agglomerate
from repro.core.pipeline import PipelineConfig
from repro.distance.engine import DistanceEngine, MatrixCache
from repro.eval.crossval import generate_from
from repro.http.packet import HttpPacket
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.generator import SignatureGenerator, deduplicate
from repro.signatures.matcher import SignatureMatcher


@dataclass(slots=True)
class UpdateReport:
    """What one maintenance round did."""

    batch_size: int
    already_covered: int
    residue: int
    added: list[ConjunctionSignature] = field(default_factory=list)
    retired: list[ConjunctionSignature] = field(default_factory=list)


class IncrementalSignatureSet:
    """A signature set maintained over successive traffic batches.

    :param signatures: the initial (possibly empty) set.
    :param config: distance/clustering/generation policy for residues.
    :param min_residue: residues smaller than this are carried over to the
        next batch instead of being clustered (clusters need mass).
    :param exemplars_per_signature: covered packets retained per signature
        as consolidation material.
    :param max_consolidation_material: ceiling on the packets retained for
        consolidation.  While under the ceiling, successive consolidations
        *extend* the cached distance matrix (only the k x M new pairs are
        computed, via :class:`~repro.distance.engine.MatrixCache`); when
        the ceiling would be exceeded, the oldest material is pruned out
        of the cached matrix (a gather, not a recompute) and the fresh
        packets are appended through the same extension path — a full
        rebuild only happens when no old material survives.
    """

    def __init__(
        self,
        signatures: Sequence[ConjunctionSignature] = (),
        config: PipelineConfig | None = None,
        *,
        min_residue: int = 6,
        exemplars_per_signature: int = 8,
        max_consolidation_material: int = 512,
    ) -> None:
        self.signatures: list[ConjunctionSignature] = list(signatures)
        self.config = config or PipelineConfig()
        self.min_residue = min_residue
        self.exemplars_per_signature = exemplars_per_signature
        self.max_consolidation_material = max_consolidation_material
        self._carryover: list[HttpPacket] = []
        self._match_counts: dict[ConjunctionSignature, int] = {s: 0 for s in self.signatures}
        self._exemplars: dict[ConjunctionSignature, list[HttpPacket]] = {}
        self._consolidation = MatrixCache(
            DistanceEngine(self.config.distance, workers=self.config.workers)
        )

    def __len__(self) -> int:
        return len(self.signatures)

    @property
    def pending(self) -> int:
        """Suspicious packets waiting for enough mass to cluster."""
        return len(self._carryover)

    @property
    def consolidation_material(self) -> int:
        """Packets retained (with a cached matrix) for consolidation."""
        return len(self._consolidation)

    def matcher(self) -> SignatureMatcher:
        """A matcher over the current set."""
        return SignatureMatcher(self.signatures)

    def update(self, suspicious_batch: Sequence[HttpPacket]) -> UpdateReport:
        """One maintenance round over a new suspicious batch."""
        matcher = self.matcher()
        covered = 0
        residue: list[HttpPacket] = list(self._carryover)
        self._carryover = []
        for packet in suspicious_batch:
            result = matcher.match(packet)
            if result.matched:
                covered += 1
                self._match_counts[result.signature] = (
                    self._match_counts.get(result.signature, 0) + 1
                )
                exemplars = self._exemplars.setdefault(result.signature, [])
                if len(exemplars) < self.exemplars_per_signature:
                    exemplars.append(packet)
            else:
                residue.append(packet)

        report = UpdateReport(
            batch_size=len(suspicious_batch),
            already_covered=covered,
            residue=len(residue),
        )
        if len(residue) < self.min_residue:
            self._carryover = residue
            return report

        candidates = generate_from(residue, self.config)
        if candidates:
            before = set(self.signatures)
            merged = deduplicate(self.signatures + candidates)
            report.added = [s for s in merged if s not in before]
            self.signatures = merged
            for signature in report.added:
                self._match_counts.setdefault(signature, 0)
        return report

    def consolidate(self) -> int:
        """Regenerate the whole set from retained exemplars + residue.

        Re-clustering the exemplar pool lets clusters that were split
        across batches re-form, broadening value-anchored tokens the same
        way one-shot generation would.  Material survives across
        consolidations (up to ``max_consolidation_material``) and its
        distance matrix is *extended* rather than rebuilt: only the pairs
        involving packets gathered since the last consolidation are
        computed.  Returns the new set size.
        """
        fresh: list[HttpPacket] = list(self._carryover)
        for packets in self._exemplars.values():
            fresh.extend(packets)
        if len(self._consolidation) + len(fresh) < self.min_residue:
            return len(self.signatures)
        if len(self._consolidation) + len(fresh) > self.max_consolidation_material:
            keep_old = self.max_consolidation_material - len(fresh)
            if keep_old > 0 and self._consolidation.matrix is not None:
                # Prune the oldest material out of the cached matrix
                # (vectorized gather, no recompute), then extend with the
                # fresh packets — only the fresh x kept pairs are evaluated.
                retained = len(self._consolidation)
                self._consolidation.prune(range(retained - keep_old, retained))
                matrix = self._consolidation.add(fresh)
            else:
                # No old material survives (or nothing was ever cached):
                # a rebuild over the tail is the only option.
                kept = (self._consolidation.items + fresh)[-self.max_consolidation_material:]
                matrix = self._consolidation.rebuild(kept)
        else:
            matrix = self._consolidation.add(fresh)
        dendrogram = agglomerate(matrix, self.config.linkage)
        regenerated = SignatureGenerator(self.config.generator).from_dendrogram(
            dendrogram, self._consolidation.items
        )
        # Union-merge: regeneration broadens value/app-anchored signatures
        # (exemplars from different apps cluster together), while the old
        # set guarantees coverage never regresses.  Dedup drops whichever
        # side is subsumed.
        self.signatures = deduplicate(regenerated + self.signatures)
        self._carryover = []
        self._match_counts = {s: 0 for s in self.signatures}
        self._exemplars = {}
        return len(self.signatures)

    def retire_unmatched(self, *, min_matches: int = 1) -> list[ConjunctionSignature]:
        """Drop signatures that matched fewer than ``min_matches`` packets
        across all rounds since they were added (stale endpoints)."""
        retired = [
            s for s in self.signatures if self._match_counts.get(s, 0) < min_matches
        ]
        if retired:
            keep = set(self.signatures) - set(retired)
            self.signatures = [s for s in self.signatures if s in keep]
            for signature in retired:
                self._match_counts.pop(signature, None)
        return retired

    def match_counts(self) -> dict[ConjunctionSignature, int]:
        """How often each signature fired during updates (copy)."""
        return dict(self._match_counts)
