"""Signature generation and matching (paper Section IV-E).

A *conjunction signature* is an ordered sequence of invariant tokens — the
longest common substrings shared by every packet of one cluster — plus an
optional destination scope.  A packet matches when all tokens occur
left-to-right in its inspected content (and the destination scope agrees).

- :mod:`repro.signatures.lcs` — suffix-automaton substring machinery,
- :mod:`repro.signatures.tokens` — invariant-token extraction & filtering,
- :class:`repro.signatures.conjunction.ConjunctionSignature` — the model,
- :class:`repro.signatures.generator.SignatureGenerator` — dendrogram ->
  signature set,
- :class:`repro.signatures.matcher.SignatureMatcher` — detection engine,
- :mod:`repro.signatures.store` — JSON (de)serialization.
"""

from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.export import to_mitmproxy_script, to_regex, to_snort_rules
from repro.signatures.generator import GeneratorConfig, SignatureGenerator
from repro.signatures.lcs import SuffixAutomaton, longest_common_substring
from repro.signatures.matcher import MatchResult, ProbabilisticMatcher, SignatureMatcher
from repro.signatures.noiseaware import NoiseAwareGenerator
from repro.signatures.store import SignatureStore
from repro.signatures.tokens import TokenFilter, invariant_tokens

__all__ = [
    "SuffixAutomaton",
    "longest_common_substring",
    "invariant_tokens",
    "TokenFilter",
    "ConjunctionSignature",
    "SignatureGenerator",
    "NoiseAwareGenerator",
    "GeneratorConfig",
    "SignatureMatcher",
    "ProbabilisticMatcher",
    "MatchResult",
    "SignatureStore",
    "to_regex",
    "to_mitmproxy_script",
    "to_snort_rules",
]
