"""Signature-set quality analytics.

Operational questions a deployment of the paper's system needs answered
before shipping a signature set to devices:

- *coverage*: which leak types does the set actually catch, and which slip
  through (per Table III label)?
- *verbosity*: are any signatures close to the match-everything pathology
  the paper warns about (short total token mass, unscoped)?
- *redundancy*: how much do signatures overlap on real traffic?
- *expected noise*: what prompt rate will users see on clean traffic?

Everything here is measurement over labeled traffic — no new matching
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.http.packet import HttpPacket
from repro.sensitive.payload_check import PayloadCheck
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import SignatureMatcher


@dataclass(frozen=True, slots=True)
class CoverageRow:
    """Detection coverage for one leak label (Table III row)."""

    label: str
    total: int
    detected: int

    @property
    def recall(self) -> float:
        return self.detected / self.total if self.total else 0.0


def coverage_by_label(
    signatures: Sequence[ConjunctionSignature],
    suspicious: Sequence[HttpPacket],
    check: PayloadCheck,
) -> list[CoverageRow]:
    """Per-identifier recall of a signature set over labeled traffic.

    Exposes *which* leak types a sample-starved signature set misses —
    the mechanism behind the paper's FN curve falling as N grows.
    """
    matcher = SignatureMatcher(signatures)
    totals: dict[str, int] = {}
    hits: dict[str, int] = {}
    for packet in suspicious:
        detected = matcher.is_sensitive(packet)
        for label in check.leak_labels(packet):
            totals[label] = totals.get(label, 0) + 1
            if detected:
                hits[label] = hits.get(label, 0) + 1
    rows = [
        CoverageRow(label=label, total=totals[label], detected=hits.get(label, 0))
        for label in totals
    ]
    rows.sort(key=lambda r: (-r.total, r.label))
    return rows


@dataclass(frozen=True, slots=True)
class VerbosityReport:
    """Pathology screening for one signature."""

    signature: ConjunctionSignature
    total_token_length: int
    scoped: bool
    risky: bool


def verbosity_report(
    signatures: Sequence[ConjunctionSignature],
    *,
    min_token_mass: int = 10,
) -> list[VerbosityReport]:
    """Flag signatures at risk of matching broadly.

    A signature is *risky* when it is unscoped **and** its combined token
    mass is below ``min_token_mass`` — short unscoped token sets are the
    "POST *"-style patterns the paper explicitly warns about.
    """
    reports = []
    for signature in signatures:
        scoped = bool(signature.scope_domain)
        mass = signature.total_token_length
        reports.append(
            VerbosityReport(
                signature=signature,
                total_token_length=mass,
                scoped=scoped,
                risky=(not scoped) and mass < min_token_mass,
            )
        )
    reports.sort(key=lambda r: r.total_token_length)
    return reports


def overlap_matrix(
    signatures: Sequence[ConjunctionSignature],
    packets: Sequence[HttpPacket],
) -> dict[tuple[int, int], int]:
    """Pairwise co-fire counts over a traffic sample.

    Key ``(i, j)`` (i < j) maps to the number of packets matched by both
    signature ``i`` and signature ``j``.  Heavy overlap suggests the
    dendrogram cut split one module across clusters.
    """
    fire_sets: list[set[int]] = [set() for __ in signatures]
    for index, packet in enumerate(packets):
        text = packet.canonical_text()
        domain = packet.destination.registered_domain
        for sig_index, signature in enumerate(signatures):
            if signature.scope_domain and signature.scope_domain != domain:
                continue
            if signature.matches_text(text):
                fire_sets[sig_index].add(index)
    overlaps: dict[tuple[int, int], int] = {}
    for i in range(len(signatures)):
        for j in range(i + 1, len(signatures)):
            shared = len(fire_sets[i] & fire_sets[j])
            if shared:
                overlaps[(i, j)] = shared
    return overlaps


def expected_prompt_rate(
    signatures: Sequence[ConjunctionSignature],
    normal: Sequence[HttpPacket],
) -> float:
    """Fraction of clean packets that would raise a user prompt.

    The paper's usability argument in one number: "if our system produces
    many false positives, users will be continually bothered."
    """
    if not normal:
        return 0.0
    matcher = SignatureMatcher(signatures)
    flagged = sum(1 for packet in normal if matcher.is_sensitive(packet))
    return flagged / len(normal)


def render_coverage(rows: Sequence[CoverageRow]) -> str:
    """Text table of per-label recall."""
    lines = ["Signature coverage by leak type", f"{'label':<18} {'total':>7} {'hit':>7} {'recall':>8}"]
    for row in rows:
        lines.append(f"{row.label:<18} {row.total:>7d} {row.detected:>7d} {100 * row.recall:>7.1f}%")
    return "\n".join(lines)
