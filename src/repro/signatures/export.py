"""Export conjunction signatures to external detector formats.

A signature set is only useful where enforcement can happen.  Besides the
library's own :class:`~repro.signatures.matcher.SignatureMatcher`, two
ecosystems could consume the sets in 2013 and still can today:

- **regex engines** (mitmproxy scripts, WAF rules): a conjunction of
  ordered tokens compiles to ``token1.*?token2.*?...`` with all tokens
  escaped — semantically *weaker* than the matcher (regex ``.*?`` allows
  overlapping placements the matcher forbids are impossible here since
  ``.*?`` consumes at least the token itself... see note below), and
  equivalence on non-overlapping-token sets is tested property-style;
- **Snort-style rules**: one ``content:`` clause per token with relative
  ordering (``distance:0``), scoped to the destination via a message.

The exporters are text generators with no runtime dependency on the
target tools.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.signatures.conjunction import ConjunctionSignature


def to_regex(signature: ConjunctionSignature) -> str:
    """A DOTALL regex matching exactly the signature's text predicate.

    ``re.escape`` each token and join with ``.*?``.  Note regex semantics:
    ``a.*?b`` places ``b`` strictly after ``a`` ends, which is the same
    non-overlapping left-to-right placement the matcher uses, except the
    regex engine backtracks over *all* placements while the matcher is
    greedy — for plain-substring tokens the two predicates coincide (the
    greedy earliest placement is complete; see the matcher brute-force
    test).
    """
    return ".*?".join(re.escape(token) for token in signature.tokens)


def matches_via_regex(signature: ConjunctionSignature, text: str) -> bool:
    """Evaluate the exported regex (used by tests to prove equivalence)."""
    return re.search(to_regex(signature), text, re.DOTALL) is not None


def to_mitmproxy_script(signatures: Sequence[ConjunctionSignature]) -> str:
    """A standalone mitmproxy addon script flagging matching requests.

    The generated script reconstructs the canonical text exactly the way
    :meth:`HttpPacket.canonical_text` does (request-line, cookie, body)
    and applies the scope + regex per signature.
    """
    lines = [
        '"""Auto-generated mitmproxy addon: sensitive-leak signatures."""',
        "import re",
        "",
        "SIGNATURES = [",
    ]
    for signature in signatures:
        lines.append(
            f"    ({signature.scope_domain!r}, re.compile({to_regex(signature)!r}, re.DOTALL)),"
        )
    lines.extend(
        [
            "]",
            "",
            "",
            "def _registered_domain(host):",
            "    parts = host.lower().rstrip('.').split('.')",
            "    if len(parts) <= 2:",
            "        return '.'.join(parts)",
            "    if parts[-2] in ('co', 'ne', 'or', 'ac', 'go', 'ad', 'gr', 'com'):",
            "        return '.'.join(parts[-3:])",
            "    return '.'.join(parts[-2:])",
            "",
            "",
            "def request(flow):",
            "    req = flow.request",
            "    text = '\\n'.join((",
            "        f'{req.method} {req.path} HTTP/1.1',",
            "        req.headers.get('cookie', ''),",
            "        req.get_text(strict=False) or '',",
            "    ))",
            "    domain = _registered_domain(req.host)",
            "    for scope, pattern in SIGNATURES:",
            "        if scope and scope != domain:",
            "            continue",
            "        if pattern.search(text):",
            "            flow.metadata['sensitive_leak'] = True",
            "            break",
            "",
        ]
    )
    return "\n".join(lines)


def _snort_content(token: str) -> str:
    """One Snort content clause; non-printable bytes use pipe-hex."""
    out: list[str] = []
    hex_run: list[str] = []

    def flush_hex() -> None:
        if hex_run:
            out.append("|" + " ".join(hex_run) + "|")
            hex_run.clear()

    for ch in token:
        code = ord(ch)
        if 0x20 <= code < 0x7F and ch not in '";\\|':
            flush_hex()
            out.append(ch)
        else:
            hex_run.append(f"{code:02X}")
    flush_hex()
    return "".join(out)


def to_snort_rules(
    signatures: Sequence[ConjunctionSignature], *, base_sid: int = 1_000_001
) -> str:
    """Snort 2.x alert rules, one per signature.

    Tokens become ordered ``content`` clauses (``distance:0`` chains them
    left-to-right, non-overlapping — the conjunction semantics); the scope
    domain rides in the message and as an ``http_header`` Host content.
    """
    rules: list[str] = []
    for index, signature in enumerate(signatures):
        options: list[str] = [
            f'msg:"SENSITIVE-LEAK {signature.scope_domain or "any"} #{index}"'
        ]
        if signature.scope_domain:
            options.append(f'content:"Host|3A| "; http_header; content:"{_snort_content(signature.scope_domain)}"; http_header; distance:0')
        for token_index, token in enumerate(signature.tokens):
            clause = f'content:"{_snort_content(token)}"'
            if token_index > 0:
                clause += "; distance:0"
            options.append(clause)
        options.append(f"sid:{base_sid + index}")
        options.append("rev:1")
        rules.append(
            "alert tcp $HOME_NET any -> $EXTERNAL_NET $HTTP_PORTS (" + "; ".join(options) + ";)"
        )
    return "\n".join(rules)
