"""Noise-aware signature generation (Hamsa-style, the paper's ref [30]).

The match-everything pathology (high cuts, the literal §IV-E walk) happens
because *nothing in generation ever looks at normal traffic*: a token can
be invariant across a mixed cluster precisely because it is ubiquitous
everywhere.  Hamsa's key idea (Li et al., S&P 2006, cited by the paper as
a future direction) is to give the generator a pool of normal traffic and
a false-positive budget: a token is only allowed into a signature if its
frequency in the normal pool is below the budget.

:class:`NoiseAwareGenerator` wraps the cut-based generator with exactly
that test, making even pathological cuts safe — quantified by the
``noise_aware`` ablation bench.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SignatureError
from repro.http.packet import HttpPacket
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.generator import GeneratorConfig, SignatureGenerator


class NoiseAwareGenerator(SignatureGenerator):
    """Cut-based generation with a per-token false-positive budget.

    :param normal_sample: packets known to be non-sensitive (in deployment:
        the payload check's normal group, or any clean capture).
    :param max_token_fp: maximum fraction of the normal pool a token may
        occur in.  Hamsa calls this the noise budget; 0.01 means "a token
        seen in more than 1% of clean traffic is not an invariant of a
        leak, it is an invariant of HTTP".
    :param config: the usual generation policy.
    :raises SignatureError: for an empty normal pool or invalid budget.
    """

    def __init__(
        self,
        normal_sample: Sequence[HttpPacket],
        *,
        max_token_fp: float = 0.01,
        config: GeneratorConfig | None = None,
    ) -> None:
        super().__init__(config)
        if not normal_sample:
            raise SignatureError("noise-aware generation needs a normal-traffic sample")
        if not 0.0 <= max_token_fp <= 1.0:
            raise SignatureError(f"max_token_fp must be in [0, 1], got {max_token_fp}")
        self.max_token_fp = max_token_fp
        self._normal_texts = [packet.canonical_text() for packet in normal_sample]

    def token_noise(self, token: str) -> float:
        """Fraction of the normal pool containing ``token``."""
        hits = sum(1 for text in self._normal_texts if token in text)
        return hits / len(self._normal_texts)

    def signature_for_cluster(
        self, cluster: Sequence[HttpPacket]
    ) -> ConjunctionSignature | None:
        """The cut-based signature, minus tokens that fail the noise test.

        A signature whose every token is noisy yields ``None`` — the
        cluster shares nothing that distinguishes leaks from clean
        traffic, so emitting anything would be the "POST *" pathology.
        """
        signature = super().signature_for_cluster(cluster)
        if signature is None:
            return None
        quiet_tokens = tuple(
            token for token in signature.tokens if self.token_noise(token) <= self.max_token_fp
        )
        if not quiet_tokens:
            return None
        if quiet_tokens == signature.tokens:
            return signature
        return ConjunctionSignature(
            tokens=quiet_tokens,
            scope_domain=signature.scope_domain,
            source_cluster=signature.source_cluster,
            label=signature.label,
        )
