"""Signature matching engines.

:class:`SignatureMatcher` is the exact conjunction matcher the paper
evaluates: a packet is flagged when *any* signature matches.  Signatures
are indexed by destination scope so a packet is only tested against the
unscoped set plus the bucket of its own registered domain.

:class:`ProbabilisticMatcher` is the paper's future-work extension
(probabilistic signatures a la Polygraph/Hamsa): it scores the
length-weighted fraction of tokens present and flags above a threshold,
trading false positives for robustness to partial obfuscation.  It is
exercised by a dedicated ablation bench.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.http.packet import HttpPacket
from repro.signatures.conjunction import ConjunctionSignature


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of screening one packet.

    :param matched: whether any signature fired.
    :param signature: the first firing signature (``None`` if clean).
    :param score: matcher-specific confidence (1.0 for exact matches).
    """

    matched: bool
    signature: ConjunctionSignature | None = None
    score: float = 0.0


class SignatureMatcher:
    """Exact conjunction matching over a signature set.

    :param signatures: the signature set to screen with.
    """

    def __init__(self, signatures: Sequence[ConjunctionSignature]) -> None:
        self.signatures = list(signatures)
        self._by_domain: dict[str, list[ConjunctionSignature]] = defaultdict(list)
        self._unscoped: list[ConjunctionSignature] = []
        for signature in self.signatures:
            if signature.scope_domain:
                self._by_domain[signature.scope_domain].append(signature)
            else:
                self._unscoped.append(signature)

    def __len__(self) -> int:
        return len(self.signatures)

    def candidates_for(self, packet: HttpPacket) -> list[ConjunctionSignature]:
        """Signatures whose scope admits this packet."""
        scoped = self._by_domain.get(packet.destination.registered_domain, [])
        return scoped + self._unscoped

    def match(self, packet: HttpPacket) -> MatchResult:
        """Screen one packet; first firing signature wins."""
        text = packet.canonical_text()
        for signature in self.candidates_for(packet):
            if signature.matches_text(text):
                return MatchResult(matched=True, signature=signature, score=1.0)
        return MatchResult(matched=False)

    def is_sensitive(self, packet: HttpPacket) -> bool:
        return self.match(packet).matched

    def screen(self, packets: Iterable[HttpPacket]) -> list[MatchResult]:
        """Screen a packet stream, one result per packet, in order."""
        return [self.match(packet) for packet in packets]

    def detected(self, packets: Iterable[HttpPacket]) -> list[HttpPacket]:
        """Just the packets that fired any signature."""
        return [packet for packet in packets if self.is_sensitive(packet)]


class ProbabilisticMatcher(SignatureMatcher):
    """Threshold matcher over length-weighted token coverage.

    A signature scores ``sum(len(token) for matched tokens, in order) /
    total_token_length``; the packet is flagged if any signature scores at
    or above ``threshold``.  ``threshold=1.0`` coincides with exact
    matching.

    :param signatures: the signature set.
    :param threshold: minimum coverage score to flag, in ``(0, 1]``.
    """

    def __init__(
        self, signatures: Sequence[ConjunctionSignature], threshold: float = 0.7
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        super().__init__(signatures)
        self.threshold = threshold

    def score(self, signature: ConjunctionSignature, text: str) -> float:
        """Length-weighted in-order token coverage for one signature."""
        if signature.total_token_length == 0:
            return 0.0
        position = 0
        matched_length = 0
        for token in signature.tokens:
            found = text.find(token, position)
            if found < 0:
                continue
            matched_length += len(token)
            position = found + len(token)
        return matched_length / signature.total_token_length

    def match(self, packet: HttpPacket) -> MatchResult:
        text = packet.canonical_text()
        best: tuple[float, ConjunctionSignature] | None = None
        for signature in self.candidates_for(packet):
            value = self.score(signature, text)
            if value >= self.threshold and (best is None or value > best[0]):
                best = (value, signature)
                if value >= 1.0:
                    break
        if best is None:
            return MatchResult(matched=False)
        return MatchResult(matched=True, signature=best[1], score=best[0])
