"""Signature matching engines.

:class:`SignatureMatcher` is the exact conjunction matcher the paper
evaluates: a packet is flagged when *any* signature matches.  Signatures
are indexed by destination scope so a packet is only tested against the
unscoped set plus the bucket of its own registered domain, and every
signature carries a *filter literal* (its most selective token, chosen
once in ``__init__``): a packet whose text does not even contain that
literal is never handed to the full left-to-right conjunction scan.  The
inverted literal→signatures map is exposed as :attr:`SignatureMatcher.by_literal`
so batch/shard engines (:mod:`repro.serving.shards`) can share one
prefilter index instead of rebuilding it per shard.

:class:`ProbabilisticMatcher` is the paper's future-work extension
(probabilistic signatures a la Polygraph/Hamsa): it scores the
length-weighted fraction of tokens present and flags above a threshold,
trading false positives for robustness to partial obfuscation.  It is
exercised by a dedicated ablation bench.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.http.packet import HttpPacket
from repro.signatures.conjunction import ConjunctionSignature


def filter_literal(signature: ConjunctionSignature) -> str:
    """The signature's most selective token: longest, leftmost on ties.

    A conjunction can only match text that contains *every* token, so
    requiring any single token's presence is a sound prefilter; the
    longest one rejects the most non-matching packets per substring test.
    """
    return max(signature.tokens, key=len)


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of screening one packet.

    :param matched: whether any signature fired.
    :param signature: the first firing signature (``None`` if clean).
    :param score: matcher-specific confidence (1.0 for exact matches).
    """

    matched: bool
    signature: ConjunctionSignature | None = None
    score: float = 0.0


class SignatureMatcher:
    """Exact conjunction matching over a signature set.

    :param signatures: the signature set to screen with.
    """

    def __init__(self, signatures: Sequence[ConjunctionSignature]) -> None:
        self.signatures = list(signatures)
        # Candidate indexes, built exactly once: destination-scope buckets
        # of (filter_literal, signature) pairs plus the inverted
        # literal -> signatures map shared with shard engines.
        self._by_domain: dict[str, list[tuple[str, ConjunctionSignature]]] = defaultdict(list)
        self._unscoped: list[tuple[str, ConjunctionSignature]] = []
        self.by_literal: dict[str, list[ConjunctionSignature]] = defaultdict(list)
        for signature in self.signatures:
            literal = filter_literal(signature)
            self.by_literal[literal].append(signature)
            if signature.scope_domain:
                self._by_domain[signature.scope_domain].append((literal, signature))
            else:
                self._unscoped.append((literal, signature))

    def __len__(self) -> int:
        return len(self.signatures)

    def candidates_for(
        self, packet: HttpPacket, text: str | None = None
    ) -> list[ConjunctionSignature]:
        """Signatures whose scope admits this packet.

        With ``text`` (the packet's canonical text), the precomputed
        literal prefilter also drops every signature whose filter literal
        is absent — a pure narrowing that can never exclude a matching
        signature, so :meth:`match` results are unchanged.  Without it,
        the full scope-admitted set is returned (the probabilistic matcher
        scores partial coverage and must see all candidates).
        """
        scoped = self._by_domain.get(packet.destination.registered_domain, [])
        if text is None:
            return [signature for __, signature in scoped] + [
                signature for __, signature in self._unscoped
            ]
        return [
            signature
            for literal, signature in (*scoped, *self._unscoped)
            if literal in text
        ]

    def match(self, packet: HttpPacket) -> MatchResult:
        """Screen one packet; first firing signature wins."""
        text = packet.canonical_text()
        for signature in self.candidates_for(packet, text):
            if signature.matches_text(text):
                return MatchResult(matched=True, signature=signature, score=1.0)
        return MatchResult(matched=False)

    def match_full_scan(self, packet: HttpPacket) -> MatchResult:
        """Prefilter-free reference: test every scope-admitted signature.

        Exists to make the prefilter's soundness *checkable* rather than
        argued: the filter literal is one of the signature's own tokens,
        so its absence from the text already falsifies the conjunction —
        and because matchers are rebuilt from scratch on every reload,
        literals can never go stale against a regenerated set (a frozen
        signature's longest token is fixed at construction).  The
        adversarial equivalence regression asserts
        ``match(p) == match_full_scan(p)`` across mutated traffic and
        regenerated sets; production paths never call this.
        """
        text = packet.canonical_text()
        scoped = self._by_domain.get(packet.destination.registered_domain, [])
        for __, signature in (*scoped, *self._unscoped):
            if signature.matches_text(text):
                return MatchResult(matched=True, signature=signature, score=1.0)
        return MatchResult(matched=False)

    def is_sensitive(self, packet: HttpPacket) -> bool:
        return self.match(packet).matched

    def screen(self, packets: Iterable[HttpPacket]) -> list[MatchResult]:
        """Screen a packet stream, one result per packet, in order."""
        return [self.match(packet) for packet in packets]

    def detected(self, packets: Iterable[HttpPacket]) -> list[HttpPacket]:
        """Just the packets that fired any signature."""
        return [packet for packet in packets if self.is_sensitive(packet)]


class ProbabilisticMatcher(SignatureMatcher):
    """Threshold matcher over length-weighted token coverage.

    A signature scores ``sum(len(token) for matched tokens, in order) /
    total_token_length``; the packet is flagged if any signature scores at
    or above ``threshold``.  ``threshold=1.0`` coincides with exact
    matching.

    :param signatures: the signature set.
    :param threshold: minimum coverage score to flag, in ``(0, 1]``.
    """

    def __init__(
        self, signatures: Sequence[ConjunctionSignature], threshold: float = 0.7
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        super().__init__(signatures)
        self.threshold = threshold

    def score(self, signature: ConjunctionSignature, text: str) -> float:
        """Length-weighted in-order token coverage for one signature."""
        if signature.total_token_length == 0:
            return 0.0
        position = 0
        matched_length = 0
        for token in signature.tokens:
            found = text.find(token, position)
            if found < 0:
                continue
            matched_length += len(token)
            position = found + len(token)
        return matched_length / signature.total_token_length

    def match(self, packet: HttpPacket) -> MatchResult:
        text = packet.canonical_text()
        best: tuple[float, ConjunctionSignature] | None = None
        for signature in self.candidates_for(packet):
            value = self.score(signature, text)
            if value >= self.threshold and (best is None or value > best[0]):
                best = (value, signature)
                if value >= 1.0:
                    break
        if best is None:
            return MatchResult(matched=False)
        return MatchResult(matched=True, signature=best[1], score=best[0])
