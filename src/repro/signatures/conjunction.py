"""The conjunction signature model.

A signature asserts: *all tokens occur left-to-right and non-overlapping in
the packet's inspected content*, optionally scoped to one destination
registered domain.  The destination scope is the practical payoff of the
paper's destination distance — clusters are destination-coherent, so their
signatures can be pinned to the advertisement service they describe, which
is what keeps false positives low.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SignatureError
from repro.http.packet import HttpPacket


@dataclass(frozen=True)
class ConjunctionSignature:
    """An ordered invariant-token signature.

    :param tokens: the invariant tokens, in required order of occurrence.
    :param scope_domain: registered domain the signature applies to, or
        ``""`` for an unscoped signature.
    :param source_cluster: provenance — size of the generating cluster.
    :param label: free-form annotation (e.g. dominant leak type), purely
        informational.
    """

    tokens: tuple[str, ...]
    scope_domain: str = ""
    source_cluster: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.tokens:
            raise SignatureError("a conjunction signature needs at least one token")
        if any(not token for token in self.tokens):
            raise SignatureError("signature tokens must be non-empty")

    # -- matching -------------------------------------------------------------

    def matches_text(self, text: str) -> bool:
        """Whether all tokens occur left-to-right, non-overlapping."""
        position = 0
        for token in self.tokens:
            found = text.find(token, position)
            if found < 0:
                return False
            position = found + len(token)
        return True

    def matches(self, packet: HttpPacket) -> bool:
        """Full match: destination scope (if any) plus token conjunction."""
        if self.scope_domain and packet.destination.registered_domain != self.scope_domain:
            return False
        return self.matches_text(packet.canonical_text())

    def token_hits(self, text: str) -> int:
        """How many tokens occur in order — partial credit for the
        probabilistic matcher."""
        position = 0
        hits = 0
        for token in self.tokens:
            found = text.find(token, position)
            if found < 0:
                break
            hits += 1
            position = found + len(token)
        return hits

    # -- introspection ---------------------------------------------------------

    @property
    def total_token_length(self) -> int:
        """Combined token length — a proxy for signature specificity."""
        return sum(len(token) for token in self.tokens)

    def describe(self) -> str:
        """One-line human-readable summary."""
        scope = self.scope_domain or "*"
        shown = " + ".join(repr(t if len(t) <= 24 else t[:21] + "...") for t in self.tokens[:4])
        extra = f" (+{len(self.tokens) - 4} tokens)" if len(self.tokens) > 4 else ""
        return f"[{scope}] {shown}{extra}"

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "tokens": list(self.tokens),
            "scope_domain": self.scope_domain,
            "source_cluster": self.source_cluster,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ConjunctionSignature":
        try:
            tokens = tuple(data["tokens"])
        except KeyError as exc:
            raise SignatureError(f"signature record missing key {exc}") from exc
        return cls(
            tokens=tokens,
            scope_domain=data.get("scope_domain", ""),
            source_cluster=int(data.get("source_cluster", 0)),
            label=data.get("label", ""),
        )
