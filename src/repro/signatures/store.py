"""Signature set persistence and the versioned distribution envelope.

The device-side flow-control app "fetches signatures from the servers"; in
this reproduction the transport is a JSON document.  Two formats exist:

- the **plain set** (``format_version`` 1) — what :meth:`SignatureStore.dumps`
  has always produced; kept for files on disk and backward compatibility;
- the **envelope** (``format_version`` 2) — the over-the-wire form used by
  :mod:`repro.core.distribution`: the same signature records wrapped with a
  monotonically increasing ``set_version`` and a SHA-256 ``checksum`` over
  the canonical record serialization, so a fetcher can detect truncation
  and bit corruption without trusting the transport.

All decode/validation failures raise
:class:`repro.errors.SignatureStoreError` (a :class:`SignatureError`
subclass), so a retry loop can treat "corrupt payload" as retriable while
genuine programming errors keep their own types.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import SignatureError, SignatureStoreError
from repro.signatures.conjunction import ConjunctionSignature

FORMAT_VERSION = 1
ENVELOPE_FORMAT_VERSION = 2


@dataclass(frozen=True, slots=True)
class SignatureEnvelope:
    """A verified, versioned signature-set delivery.

    :param set_version: the server's publication counter (1-based,
        monotonically increasing).
    :param checksum: hex SHA-256 of the canonical record serialization.
    :param signatures: the verified signature set.
    """

    set_version: int
    checksum: str
    signatures: tuple[ConjunctionSignature, ...]


def _records_checksum(records: list[dict[str, Any]]) -> str:
    canonical = json.dumps(records, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _parse_records(records: Any) -> list[ConjunctionSignature]:
    if not isinstance(records, list):
        raise SignatureStoreError("signature document missing 'signatures' list")
    parsed: list[ConjunctionSignature] = []
    for record in records:
        try:
            parsed.append(ConjunctionSignature.from_dict(record))
        except (SignatureError, KeyError, TypeError, ValueError) as exc:
            raise SignatureStoreError(f"malformed signature record: {exc}") from exc
    return parsed


class SignatureStore:
    """Reads and writes signature-set JSON documents."""

    # -- plain set (format 1) ------------------------------------------------------

    @staticmethod
    def dumps(signatures: Sequence[ConjunctionSignature]) -> str:
        """Serialize to a JSON string (stable key order)."""
        document = {
            "format_version": FORMAT_VERSION,
            "count": len(signatures),
            "signatures": [signature.to_dict() for signature in signatures],
        }
        return json.dumps(document, indent=2, sort_keys=True)

    @staticmethod
    def loads(text: str) -> list[ConjunctionSignature]:
        """Parse a JSON string produced by :meth:`dumps`.

        :raises SignatureStoreError: on invalid JSON, version mismatch,
            wrong structure, or a count that disagrees with the payload.
        """
        document = SignatureStore._decode_document(text)
        version = document.get("format_version")
        if version != FORMAT_VERSION:
            raise SignatureStoreError(f"unsupported signature format version {version!r}")
        records = document.get("signatures")
        signatures = _parse_records(records)
        declared = document.get("count")
        if declared != len(signatures):
            raise SignatureStoreError(
                f"signature count mismatch: declared {declared}, found {len(signatures)}"
            )
        return signatures

    # -- envelope (format 2) -------------------------------------------------------

    @staticmethod
    def dumps_envelope(signatures: Sequence[ConjunctionSignature], set_version: int) -> str:
        """Serialize a versioned, checksummed distribution envelope.

        :param set_version: the server's publication counter (>= 1).
        :raises SignatureStoreError: for a non-positive version.
        """
        if set_version < 1:
            raise SignatureStoreError(f"set_version must be >= 1, got {set_version}")
        records = [signature.to_dict() for signature in signatures]
        document = {
            "format_version": ENVELOPE_FORMAT_VERSION,
            "set_version": set_version,
            "count": len(records),
            "checksum": _records_checksum(records),
            "signatures": records,
        }
        return json.dumps(document, indent=2, sort_keys=True)

    @staticmethod
    def loads_envelope(text: str) -> SignatureEnvelope:
        """Parse and *verify* an envelope produced by :meth:`dumps_envelope`.

        Verification covers structure, declared count, and the SHA-256
        checksum over the records — a truncated or bit-corrupted envelope
        fails here rather than poisoning the device's signature set.

        :raises SignatureStoreError: on any decode or integrity failure.
        """
        document = SignatureStore._decode_document(text)
        version = document.get("format_version")
        if version != ENVELOPE_FORMAT_VERSION:
            raise SignatureStoreError(f"unsupported envelope format version {version!r}")
        set_version = document.get("set_version")
        if not isinstance(set_version, int) or set_version < 1:
            raise SignatureStoreError(f"invalid set_version {set_version!r}")
        records = document.get("signatures")
        if not isinstance(records, list):
            raise SignatureStoreError("envelope missing 'signatures' list")
        declared_checksum = document.get("checksum")
        actual_checksum = _records_checksum(records)
        if declared_checksum != actual_checksum:
            raise SignatureStoreError(
                f"envelope checksum mismatch: declared {declared_checksum!r}, "
                f"computed {actual_checksum!r}"
            )
        signatures = _parse_records(records)
        declared = document.get("count")
        if declared != len(signatures):
            raise SignatureStoreError(
                f"envelope count mismatch: declared {declared}, found {len(signatures)}"
            )
        return SignatureEnvelope(
            set_version=set_version,
            checksum=actual_checksum,
            signatures=tuple(signatures),
        )

    # -- files ---------------------------------------------------------------------

    @staticmethod
    def save(signatures: Sequence[ConjunctionSignature], path: str | Path) -> None:
        """Write the set to ``path``."""
        Path(path).write_text(SignatureStore.dumps(signatures), encoding="utf-8")

    @staticmethod
    def load(path: str | Path) -> list[ConjunctionSignature]:
        """Read a set from ``path``."""
        return SignatureStore.loads(Path(path).read_text(encoding="utf-8"))

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _decode_document(text: str) -> dict[str, Any]:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SignatureStoreError(f"signature document is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise SignatureStoreError("signature document must be a JSON object")
        return document
