"""Signature set persistence.

The device-side flow-control app "fetches signatures from the servers"; in
this reproduction the transport is a JSON document.  The store versions its
format and validates on load so an old or corrupt file fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.errors import SignatureError
from repro.signatures.conjunction import ConjunctionSignature

FORMAT_VERSION = 1


class SignatureStore:
    """Reads and writes signature-set JSON documents."""

    @staticmethod
    def dumps(signatures: Sequence[ConjunctionSignature]) -> str:
        """Serialize to a JSON string (stable key order)."""
        document = {
            "format_version": FORMAT_VERSION,
            "count": len(signatures),
            "signatures": [signature.to_dict() for signature in signatures],
        }
        return json.dumps(document, indent=2, sort_keys=True)

    @staticmethod
    def loads(text: str) -> list[ConjunctionSignature]:
        """Parse a JSON string produced by :meth:`dumps`.

        :raises SignatureError: on version mismatch, wrong structure, or a
            count that disagrees with the payload.
        """
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SignatureError(f"signature document is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise SignatureError("signature document must be a JSON object")
        version = document.get("format_version")
        if version != FORMAT_VERSION:
            raise SignatureError(f"unsupported signature format version {version!r}")
        records = document.get("signatures")
        if not isinstance(records, list):
            raise SignatureError("signature document missing 'signatures' list")
        declared = document.get("count")
        if declared != len(records):
            raise SignatureError(
                f"signature count mismatch: declared {declared}, found {len(records)}"
            )
        return [ConjunctionSignature.from_dict(record) for record in records]

    @staticmethod
    def save(signatures: Sequence[ConjunctionSignature], path: str | Path) -> None:
        """Write the set to ``path``."""
        Path(path).write_text(SignatureStore.dumps(signatures), encoding="utf-8")

    @staticmethod
    def load(path: str | Path) -> list[ConjunctionSignature]:
        """Read a set from ``path``."""
        return SignatureStore.loads(Path(path).read_text(encoding="utf-8"))
