"""The paper's literal Section IV-E generation procedure.

The paper's text prescribes, verbatim:

1. "Select the top of cluster C_i ∈ C."
2. "Compute a signature S_i as longest common strings of HTTP contents
   in C_i."
3. "Remove C_i from C and repeat for all clusters in C."

Read literally, that emits one signature per *dendrogram node*, walking
from the top — not one per flat cluster from a cut (the engineering
shortcut :class:`~repro.signatures.generator.SignatureGenerator` takes).
This module implements the literal reading so the two can be compared.

The literal procedure produces many more candidate signatures (one per
internal node, 2x the leaf count), including signatures for high, mixed
clusters whose "longest common strings" degrade toward boilerplate — the
very pathology the paper warns about.  Its output therefore leans on the
same token filter and on subsumption dedup; the ``generation`` ablation
bench quantifies what the cut-based shortcut buys.
"""

from __future__ import annotations

from typing import Sequence

from repro.clustering.dendrogram import Dendrogram
from repro.errors import SignatureError
from repro.http.packet import HttpPacket
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.generator import GeneratorConfig, SignatureGenerator, deduplicate


class LiteralGenerator:
    """Signature per dendrogram node, top-down (the paper's literal text).

    :param config: shares the token filter / scoping policy with the
        cut-based generator; ``cut_fraction`` is ignored (no cut happens).
    :param max_nodes: cap on how many nodes are materialized (top-down),
        guarding against quadratic blowup on large samples.
    """

    def __init__(self, config: GeneratorConfig | None = None, *, max_nodes: int = 512) -> None:
        self.config = config or GeneratorConfig()
        self.max_nodes = max_nodes
        self._cluster_generator = SignatureGenerator(self.config)

    def from_dendrogram(
        self,
        dendrogram: Dendrogram,
        packets: Sequence[HttpPacket],
    ) -> list[ConjunctionSignature]:
        """Walk every internal node top-down and emit its signature.

        Nodes whose member count is below ``config.min_cluster_size`` are
        skipped (a singleton has no *common* substring structure), and the
        combined output is deduplicated by subsumption, so a broad
        parent-node signature absorbs its children's when it genuinely
        covers them.

        :raises SignatureError: on a leaf/packet count mismatch.
        """
        if dendrogram.n_leaves != len(packets):
            raise SignatureError(
                f"dendrogram has {dendrogram.n_leaves} leaves but {len(packets)} packets given"
            )
        signatures: list[ConjunctionSignature] = []
        for node in dendrogram.iter_top_down()[: self.max_nodes]:
            members = [packets[leaf] for leaf in dendrogram.leaves(node)]
            signature = self._cluster_generator.signature_for_cluster(members)
            if signature is not None:
                signatures.append(signature)
        return deduplicate(signatures)
