"""Dendrogram -> conjunction signature set (paper Section IV-E).

The paper's procedure: take the clustering result, and for each cluster
compute "the longest common strings of HTTP contents" as its signature.
The generator walks flat clusters obtained from a dendrogram cut, extracts
filtered invariant tokens per cluster, verifies token ordering across all
members, scopes the signature to a registered domain when the cluster is
destination-coherent, and de-duplicates subsumed signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.clustering.cut import cut_min_size
from repro.clustering.dendrogram import Dendrogram
from repro.errors import SignatureError
from repro.http.packet import HttpPacket
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.tokens import TokenFilter, invariant_tokens, ordered_in_all


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Tuning knobs for signature generation.

    :param cut_fraction: height cut as a fraction of the root height; the
        default keeps tight, module-coherent clusters.
    :param cut_height: absolute height cut overriding ``cut_fraction``
        when set.  Blocked/streaming clustering keys on an absolute
        linkage threshold (a relative fraction would shift with the
        fill-valued cross-block merges), so signature generation must cut
        at the same absolute height to agree with it.
    :param min_cluster_size: clusters below this size yield no signature
        (a single packet has no *common* substring structure; memorizing it
        whole would overfit — the exact-match baseline does that instead).
    :param token_filter: anti-boilerplate token policy.
    :param scope_to_domain: emit domain-scoped signatures when all cluster
        members share one registered domain (paper: destination distance
        creates "advertisement module specific signatures").
    :param max_tokens: cap on tokens per signature; the longest tokens are
        kept (specificity proxy).
    """

    cut_fraction: float = 0.35
    cut_height: float | None = None
    min_cluster_size: int = 2
    token_filter: TokenFilter = field(default_factory=TokenFilter)
    scope_to_domain: bool = True
    max_tokens: int = 12


class SignatureGenerator:
    """Generates a signature set from clustered packets.

    :param config: generation policy; defaults reproduce the paper setup.
    """

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()

    def from_dendrogram(
        self,
        dendrogram: Dendrogram,
        packets: Sequence[HttpPacket],
    ) -> list[ConjunctionSignature]:
        """Generate signatures from a merge tree over ``packets``.

        The leaf numbering of the dendrogram must correspond to the packet
        sequence order (leaf ``i`` is ``packets[i]``).

        :raises SignatureError: on a leaf/packet count mismatch.
        """
        return self.from_clusters(self.clusters_from_dendrogram(dendrogram, packets))

    def clusters_from_dendrogram(
        self,
        dendrogram: Dendrogram,
        packets: Sequence[HttpPacket],
    ) -> list[list[HttpPacket]]:
        """The cut stage alone: flat packet clusters from the merge tree.

        Split out from :meth:`from_dendrogram` so callers (the observed
        signature server) can account the dendrogram cut separately from
        token extraction; composing the two methods is exactly
        :meth:`from_dendrogram`.

        :raises SignatureError: on a leaf/packet count mismatch.
        """
        if dendrogram.n_leaves != len(packets):
            raise SignatureError(
                f"dendrogram has {dendrogram.n_leaves} leaves but {len(packets)} packets given"
            )
        if self.config.cut_height is not None:
            cut_height = self.config.cut_height
        else:
            cut_height = self.config.cut_fraction * dendrogram.height(dendrogram.root)
        nodes = cut_min_size(dendrogram, cut_height, self.config.min_cluster_size)
        if not nodes and dendrogram.n_leaves >= self.config.min_cluster_size:
            # Degenerate tree: every merge at (nearly) the same height — all
            # packets are one tight group.  Treat the root as the cluster
            # rather than emitting nothing.
            nodes = [dendrogram.root]
        return [[packets[leaf] for leaf in dendrogram.leaves(node)] for node in nodes]

    def from_clusters(
        self, clusters: Sequence[Sequence[HttpPacket]]
    ) -> list[ConjunctionSignature]:
        """Generate one signature per cluster, dropping empty results and
        signatures subsumed by a more general one."""
        signatures: list[ConjunctionSignature] = []
        for cluster in clusters:
            signature = self.signature_for_cluster(cluster)
            if signature is not None:
                signatures.append(signature)
        return deduplicate(signatures)

    def signature_for_cluster(
        self, cluster: Sequence[HttpPacket]
    ) -> ConjunctionSignature | None:
        """Section IV-E step 2 for one cluster; ``None`` when nothing
        distinctive is shared."""
        if len(cluster) < self.config.min_cluster_size:
            return None
        texts = [packet.canonical_text() for packet in cluster]
        tokens = invariant_tokens(texts, self.config.token_filter)
        if not tokens:
            return None
        tokens = ordered_in_all(tokens, texts)
        if not tokens:
            return None
        if len(tokens) > self.config.max_tokens:
            # Keep the longest (most specific) tokens, preserving order.
            by_length = sorted(tokens, key=len, reverse=True)[: self.config.max_tokens]
            keep = set(by_length)
            tokens = [token for token in tokens if token in keep]
        scope = ""
        if self.config.scope_to_domain:
            domains = {packet.destination.registered_domain for packet in cluster}
            if len(domains) == 1:
                scope = domains.pop()
        return ConjunctionSignature(
            tokens=tuple(tokens),
            scope_domain=scope,
            source_cluster=len(cluster),
        )


def deduplicate(signatures: list[ConjunctionSignature]) -> list[ConjunctionSignature]:
    """Drop signatures whose match set is provably contained in another's.

    Signature A subsumes B when A's scope is compatible (A unscoped, or same
    domain) and A's token sequence is an in-order sub-sequence of B's token
    *texts* — then anything B matches, A matches, so B is redundant.
    The broader signature (A) is kept.
    """
    kept: list[ConjunctionSignature] = []
    for candidate in sorted(signatures, key=lambda s: s.total_token_length):
        redundant = False
        for existing in kept:
            if _subsumes(existing, candidate):
                redundant = True
                break
        if not redundant:
            kept.append(candidate)
    # Restore a stable, readable order: scoped first, then by domain.
    kept.sort(key=lambda s: (s.scope_domain == "", s.scope_domain, -s.total_token_length))
    return kept


def _subsumes(a: ConjunctionSignature, b: ConjunctionSignature) -> bool:
    """Whether every packet matching ``b`` necessarily matches ``a``."""
    if a.scope_domain and a.scope_domain != b.scope_domain:
        return False
    # a's tokens must be locatable, in order, inside the concatenation
    # implied by b's tokens being present. Conservative check: each a-token
    # is a substring of some b-token, advancing monotonically.
    j = 0
    for token_a in a.tokens:
        while j < len(b.tokens) and token_a not in b.tokens[j]:
            j += 1
        if j == len(b.tokens):
            return False
        j += 1
    return True
