"""Common-substring machinery built on a suffix automaton.

Signature generation needs, repeatedly: "which (maximal) substrings of
string A also occur in string B?"  A suffix automaton of B answers the
longest-match-ending-at-each-position query for the whole of A in a single
linear walk, which keeps token extraction fast even for kilobyte POST
bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class _State:
    length: int
    link: int
    transitions: dict[str, int] = field(default_factory=dict)


class SuffixAutomaton:
    """Suffix automaton over one string (online construction, O(n) states).

    :param text: the string whose substring set the automaton recognizes.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._states: list[_State] = [_State(length=0, link=-1)]
        self._last = 0
        for ch in text:
            self._extend(ch)

    def _extend(self, ch: str) -> None:
        states = self._states
        current = len(states)
        states.append(_State(length=states[self._last].length + 1, link=-1))
        p = self._last
        while p != -1 and ch not in states[p].transitions:
            states[p].transitions[ch] = current
            p = states[p].link
        if p == -1:
            states[current].link = 0
        else:
            q = states[p].transitions[ch]
            if states[p].length + 1 == states[q].length:
                states[current].link = q
            else:
                clone = len(states)
                states.append(
                    _State(
                        length=states[p].length + 1,
                        link=states[q].link,
                        transitions=dict(states[q].transitions),
                    )
                )
                while p != -1 and states[p].transitions.get(ch) == q:
                    states[p].transitions[ch] = clone
                    p = states[p].link
                states[q].link = clone
                states[current].link = clone
        self._last = current

    def contains(self, needle: str) -> bool:
        """Whether ``needle`` is a substring of the indexed text."""
        state = 0
        for ch in needle:
            next_state = self._states[state].transitions.get(ch)
            if next_state is None:
                return False
            state = next_state
        return True

    def match_lengths(self, query: str) -> list[int]:
        """For each position ``i`` of ``query``, the length of the longest
        substring of the indexed text ending at ``query[i]``.

        The classic matching walk: follow transitions when possible,
        otherwise chase suffix links shortening the current match.
        """
        lengths = [0] * len(query)
        state = 0
        length = 0
        states = self._states
        for i, ch in enumerate(query):
            while state != 0 and ch not in states[state].transitions:
                state = states[state].link
                length = states[state].length
            if ch in states[state].transitions:
                state = states[state].transitions[ch]
                length += 1
            else:
                state = 0
                length = 0
            lengths[i] = length
        return lengths


def longest_common_substring(a: str, b: str) -> str:
    """The longest common substring of two strings (leftmost in ``a`` on ties).

    >>> longest_common_substring("udid=abc123&x=1", "y=9&udid=abc123")
    'udid=abc123'
    """
    if not a or not b:
        return ""
    automaton = SuffixAutomaton(b)
    lengths = automaton.match_lengths(a)
    best_len = 0
    best_end = 0
    for i, length in enumerate(lengths):
        if length > best_len:
            best_len = length
            best_end = i
    return a[best_end - best_len + 1 : best_end + 1] if best_len else ""


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open span ``[start, end)`` inside a reference string."""

    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains(self, other: "Span") -> bool:
        return self.start <= other.start and other.end <= self.end


def maximal_common_spans(reference: str, other: str, min_length: int = 1) -> list[Span]:
    """Maximal spans of ``reference`` whose text occurs in ``other``.

    "Maximal" means not contained in a longer qualifying span.  The result
    is sorted by start offset; spans shorter than ``min_length`` are
    dropped.  This is the workhorse of invariant-token refinement: each
    candidate token is intersected against the next cluster member by
    taking its maximal common spans.
    """
    if not reference or not other or min_length < 1:
        return []
    lengths = SuffixAutomaton(other).match_lengths(reference)
    candidates: list[Span] = []
    for i, length in enumerate(lengths):
        if length >= min_length:
            candidates.append(Span(i - length + 1, i + 1))
    if not candidates:
        return []
    # A candidate ending at i is contained in one ending at i+1 iff the
    # latter starts at or before it; keep only spans not covered by the next
    # longer overlapping one.  Generic containment filter, O(k log k):
    candidates.sort(key=lambda s: (s.start, -s.end))
    maximal: list[Span] = []
    best_end = -1
    for span in candidates:
        if span.end > best_end:
            maximal.append(span)
            best_end = span.end
    return maximal
