"""Invariant-token extraction across a cluster of packet texts.

The paper: "Compute a signature S_i as longest common strings of HTTP
contents in C_i."  We follow the Polygraph conjunction-signature recipe:
the tokens of a cluster are the maximal substrings present in *every*
member.  Extraction is iterative refinement — start from the first member
as one giant candidate token, then intersect against each further member
with :func:`repro.signatures.lcs.maximal_common_spans`.

The paper also warns that careless generation yields signatures "that match
most network packets (e.g POST *, GET *, * HTTP/1.1)"; :class:`TokenFilter`
prunes exactly that boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.signatures.lcs import maximal_common_spans

#: Substrings every HTTP request contains; a token equal to (or consisting
#: only of) these carries no discriminating power.
DEFAULT_BOILERPLATE: tuple[str, ...] = (
    "GET /",
    "POST /",
    "GET ",
    "POST ",
    " HTTP/1.1",
    " HTTP/1.0",
    "HTTP/1.",
    "Cookie: ",
    "Host: ",
    "http://",
    "https://",
)


@dataclass(frozen=True, slots=True)
class TokenFilter:
    """Policy for which extracted tokens are worth keeping.

    :param min_length: tokens shorter than this are dropped (the paper's
        pathological examples are all short boilerplate).
    :param boilerplate: exact strings to strip from token *edges* and to
        reject when a token is nothing but boilerplate.
    :param reject_numeric_only: drop tokens that are purely digits or
        punctuation — timestamps and sequence counters, not invariants.
    """

    min_length: int = 5
    boilerplate: tuple[str, ...] = DEFAULT_BOILERPLATE
    reject_numeric_only: bool = True

    def clean(self, token: str) -> str | None:
        """Return the cleaned token, or ``None`` if it should be dropped."""
        cleaned = token
        # Strip boilerplate prefixes/suffixes repeatedly (longest first so
        # "POST /" wins over "POST ").
        changed = True
        while changed:
            changed = False
            for pattern in sorted(self.boilerplate, key=len, reverse=True):
                if cleaned.startswith(pattern):
                    cleaned = cleaned[len(pattern):]
                    changed = True
                if cleaned.endswith(pattern):
                    cleaned = cleaned[: -len(pattern)]
                    changed = True
        cleaned = cleaned.strip("\n")
        if len(cleaned) < self.min_length:
            return None
        if self.reject_numeric_only and all(not ch.isalpha() for ch in cleaned):
            return None
        return cleaned

    def apply(self, tokens: Iterable[str]) -> list[str]:
        """Clean every token, dropping rejects and duplicates (keeps order)."""
        seen: set[str] = set()
        kept: list[str] = []
        for token in tokens:
            cleaned = self.clean(token)
            if cleaned is not None and cleaned not in seen:
                seen.add(cleaned)
                kept.append(cleaned)
        return kept


@dataclass(slots=True)
class _Candidate:
    """A candidate token tracked by its span in the reference member."""

    start: int
    text: str = field(default="")


def common_substrings(texts: Sequence[str], min_length: int = 2) -> list[str]:
    """Maximal substrings occurring in *every* text, ordered by their
    position in the first text.

    Iterative refinement: the candidate set starts as the whole first text
    and is intersected against each subsequent member.  Runtime is linear
    in total text size per member thanks to the suffix automaton.

    >>> common_substrings(["x=1&udid=abcdef&t=9", "udid=abcdef&t=10&x=2"])
    ['udid=abcdef&t=', 'x=']
    """
    if not texts:
        return []
    reference = texts[0]
    if len(texts) == 1:
        return [reference] if len(reference) >= min_length else []
    # Candidates are spans of the reference text.
    spans = [(0, len(reference))] if len(reference) >= min_length else []
    for other in texts[1:]:
        if not spans:
            return []
        refined: list[tuple[int, int]] = []
        for start, end in spans:
            fragment = reference[start:end]
            for sub in maximal_common_spans(fragment, other, min_length):
                refined.append((start + sub.start, start + sub.end))
        spans = _dedupe_spans(refined)
    spans.sort()
    out: list[str] = []
    seen: set[str] = set()
    for start, end in spans:
        text = reference[start:end]
        if text not in seen:
            seen.add(text)
            out.append(text)
    return out


def _dedupe_spans(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Drop spans contained in other spans (and exact duplicates)."""
    unique = sorted(set(spans), key=lambda s: (s[0], -s[1]))
    kept: list[tuple[int, int]] = []
    best_end = -1
    for start, end in unique:
        if end > best_end:
            kept.append((start, end))
            best_end = end
    return kept


def invariant_tokens(
    texts: Sequence[str],
    token_filter: TokenFilter | None = None,
) -> list[str]:
    """Filtered invariant tokens of a cluster, in first-member order.

    This is the full Section IV-E step 2 for one cluster: extract common
    substrings, then apply the anti-boilerplate filter.  Returns an empty
    list when the cluster shares nothing distinctive — the generator skips
    such clusters rather than emit a match-everything signature.
    """
    if token_filter is None:
        token_filter = TokenFilter()
    raw = common_substrings(texts, min_length=max(2, token_filter.min_length))
    return token_filter.apply(raw)


def ordered_in_all(tokens: Sequence[str], texts: Sequence[str]) -> list[str]:
    """The longest prefix-greedy subsequence of ``tokens`` that occurs
    left-to-right (non-overlapping) in every text.

    Conjunction signatures assert token *order*; extraction order (position
    in the first member) may not hold in other members, so the generator
    verifies order and drops violating tokens greedily.
    """
    kept: list[str] = []
    for token in tokens:
        trial = kept + [token]
        if all(_occurs_in_order(trial, text) for text in texts):
            kept.append(token)
    return kept


def _occurs_in_order(tokens: Sequence[str], text: str) -> bool:
    """Whether all tokens appear left-to-right, non-overlapping, in text."""
    position = 0
    for token in tokens:
        found = text.find(token, position)
        if found < 0:
            return False
        position = found + len(token)
    return True
