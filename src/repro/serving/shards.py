"""Sharded, micro-batched exact matching — bit-identical to the scalar path.

The gateway screens requests in micro-batches against a signature set
partitioned into shards, so a reload swaps one immutable object and a
bigger set divides cleanly over workers.  Correctness contract: for every
packet, :meth:`ShardedMatcher.match_batch` returns *exactly* the
:class:`~repro.signatures.matcher.MatchResult` that a sequential
:meth:`SignatureMatcher.match <repro.signatures.matcher.SignatureMatcher.match>`
over the full set would — same flag, same winning signature, any shard
count, any batch size.

The subtlety is win order.  The scalar matcher tests a packet's
destination-scoped bucket before the unscoped set, each in signature-list
order; "first firing signature" is therefore *not* global list order.
Each signature is assigned a **priority** — ``(0, i)`` for the i-th scoped
signature, ``(1, j)`` for the j-th unscoped one — which totally orders any
packet's candidates identically to the scalar iteration (two signatures
scoped to different domains never compete).  Shards hold disjoint
signature subsets in ascending priority order; each shard reports its
lowest-priority hit and the merge takes the minimum, which is exactly the
scalar winner.

Shards share the prefilter idea of
:func:`repro.signatures.matcher.filter_literal`: a signature is only
handed to the full conjunction scan when its most selective token occurs
in the packet text at all.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.errors import SignatureError
from repro.http.packet import HttpPacket
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import MatchResult, filter_literal

#: A shard entry: (priority, filter literal, signature).
_Entry = tuple[tuple[int, int], str, ConjunctionSignature]


class MatcherShard:
    """One partition of the signature set, priority-ordered.

    :param entries: ``(priority, literal, signature)`` triples in ascending
        priority order (the constructor preserves, not sorts — the owner
        guarantees order).
    """

    def __init__(self, entries: Sequence[_Entry]) -> None:
        self.entries = list(entries)
        self._by_domain: dict[str, list[_Entry]] = defaultdict(list)
        self._unscoped: list[_Entry] = []
        for entry in self.entries:
            signature = entry[2]
            if signature.scope_domain:
                self._by_domain[signature.scope_domain].append(entry)
            else:
                self._unscoped.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def best_match(
        self, text: str, domain: str
    ) -> tuple[tuple[int, int], ConjunctionSignature] | None:
        """This shard's lowest-priority firing signature for one packet.

        Scoped priorities all precede unscoped ones, so a scoped hit
        short-circuits the unscoped scan — mirroring the scalar matcher's
        scoped-then-unscoped iteration.
        """
        for bucket in (self._by_domain.get(domain, ()), self._unscoped):
            for priority, literal, signature in bucket:
                if literal in text and signature.matches_text(text):
                    return priority, signature
        return None


class ShardedMatcher:
    """Exact conjunction matching over ``n_shards`` signature partitions.

    :param signatures: the full signature set, in publication order.
    :param n_shards: partition count (signatures are dealt round-robin,
        which keeps shard sizes within one of each other).
    :raises SignatureError: for a non-positive shard count.
    """

    def __init__(
        self, signatures: Sequence[ConjunctionSignature], n_shards: int = 1
    ) -> None:
        if n_shards < 1:
            raise SignatureError(f"n_shards must be >= 1, got {n_shards}")
        self.signatures = list(signatures)
        self.n_shards = n_shards
        scoped_index = unscoped_index = 0
        entries: list[_Entry] = []
        for signature in self.signatures:
            if signature.scope_domain:
                priority = (0, scoped_index)
                scoped_index += 1
            else:
                priority = (1, unscoped_index)
                unscoped_index += 1
            entries.append((priority, filter_literal(signature), signature))
        # Round-robin keeps each shard's entries in ascending priority:
        # entries[k::n] is a subsequence of an already priority-sorted list
        # within each scope class, and mixed-class order is restored by the
        # per-bucket split inside MatcherShard.
        self.shards = [MatcherShard(entries[k :: n_shards]) for k in range(n_shards)]

    def __len__(self) -> int:
        return len(self.signatures)

    def match(self, packet: HttpPacket) -> MatchResult:
        """Screen one packet across all shards; global priority minimum wins."""
        text = packet.canonical_text()
        domain = packet.destination.registered_domain
        best: tuple[tuple[int, int], ConjunctionSignature] | None = None
        for shard in self.shards:
            hit = shard.best_match(text, domain)
            if hit is not None and (best is None or hit[0] < best[0]):
                best = hit
        if best is None:
            return MatchResult(matched=False)
        return MatchResult(matched=True, signature=best[1], score=1.0)

    def match_batch(self, packets: Sequence[HttpPacket]) -> list[MatchResult]:
        """Screen one micro-batch, one result per packet, in batch order."""
        return [self.match(packet) for packet in packets]
