"""The online screening gateway: admission, batching, shedding, hot reload.

A deterministic discrete-event model of the serving data plane, driven by
the same logical-tick clock as the rest of the repo (DESIGN.md §6):

- **admission** — arrivals join a bounded queue; when it is full the
  request is *shed* according to policy: ``DROP`` (fail-open, transmitted
  unscreened) or ``DEGRADE`` (screened inline by the keyword baseline,
  the same conservative fallback as
  :meth:`repro.core.flowcontrol.FlowControlApp.degraded`, decision marked
  degraded);
- **batching** — a free matcher pool takes up to ``batch_size`` queued
  requests; a partial batch waits at most ``max_batch_wait_ticks`` for
  company.  Batch service time is ``batch_overhead_ticks +
  per_packet_ticks * len(batch)``, so batching amortizes overhead and the
  queue provides backpressure when arrivals outpace service;
- **screening** — each batch runs on a :class:`~repro.serving.shards.ShardedMatcher`
  whose verdicts are bit-identical to the scalar
  :meth:`SignatureMatcher.match <repro.signatures.matcher.SignatureMatcher.match>`;
- **hot reload** — :class:`ReloadEvent`\\ s carry
  :class:`~repro.signatures.store.SignatureEnvelope`\\ s (the verified
  over-the-wire form from :mod:`repro.core.distribution`).  A reload is an
  atomic swap applied between batches: in-flight batches finish on the
  generation they started with, no batch ever mixes generations, and a
  stale envelope (``set_version`` not newer than the live one) is rejected
  — the same never-regress rule as
  :class:`~repro.core.distribution.SignatureFetcher`.

Every decision is a :class:`ServeResult` carrying the generation that
screened it; :class:`~repro.serving.telemetry.ServingTelemetry` records
counters, latency/queue-depth histograms, and per-batch/per-reload spans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.baselines.keyword import KeywordDetector
from repro.errors import SimulationError
from repro.serving.loadgen import ScreeningEvent
from repro.serving.shards import ShardedMatcher
from repro.serving.telemetry import ServingTelemetry
from repro.signatures.conjunction import ConjunctionSignature
from repro.signatures.matcher import MatchResult
from repro.signatures.store import SignatureEnvelope


class ShedPolicy(enum.Enum):
    """What to do with an arrival that finds the queue full."""

    DROP = "drop"  # fail open: transmit unscreened
    DEGRADE = "degrade"  # screen inline with the keyword baseline


class ServeOutcome(enum.Enum):
    """How one request left the gateway."""

    CLEAN = "clean"  # screened, no signature fired
    FLAGGED = "flagged"  # screened, a signature fired
    SHED_DROPPED = "shed_dropped"  # queue full, passed through unscreened
    SHED_DEGRADED_CLEAN = "shed_degraded_clean"  # keyword fallback, clean
    SHED_DEGRADED_FLAGGED = "shed_degraded_flagged"  # keyword fallback, flagged


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """Serving data-plane tuning.

    :param queue_capacity: admission queue bound (arrivals beyond it shed).
    :param batch_size: maximum requests per micro-batch.
    :param n_shards: signature partitions per matcher generation.
    :param shed_policy: overflow behaviour (see :class:`ShedPolicy`).
    :param batch_overhead_ticks: fixed cost of dispatching one batch.
    :param per_packet_ticks: marginal cost per request in a batch.
    :param max_batch_wait_ticks: how long a partial batch may wait for
        more arrivals before it is flushed anyway.
    :param degraded_mode: keyword-detector escalation used when shedding
        with ``DEGRADE`` (the conservative default mirrors
        :meth:`FlowControlApp.degraded <repro.core.flowcontrol.FlowControlApp.degraded>`).
    """

    queue_capacity: int = 64
    batch_size: int = 8
    n_shards: int = 2
    shed_policy: ShedPolicy = ShedPolicy.DEGRADE
    batch_overhead_ticks: float = 1.0
    per_packet_ticks: float = 0.25
    max_batch_wait_ticks: float = 4.0
    degraded_mode: str = "conservative"

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise SimulationError("queue_capacity must be >= 1")
        if self.batch_size < 1:
            raise SimulationError("batch_size must be >= 1")
        if self.n_shards < 1:
            raise SimulationError("n_shards must be >= 1")
        if self.batch_overhead_ticks < 0 or self.per_packet_ticks < 0:
            raise SimulationError("service costs must be non-negative")
        if self.max_batch_wait_ticks < 0:
            raise SimulationError("max_batch_wait_ticks must be non-negative")


@dataclass(frozen=True, slots=True)
class ReloadEvent:
    """A signature-set swap scheduled on the logical clock.

    :param tick: earliest tick the swap may take effect.
    :param envelope: the verified versioned envelope to install.
    """

    tick: float
    envelope: SignatureEnvelope


@dataclass(frozen=True, slots=True)
class ServeResult:
    """The gateway's verdict on one request.

    :param event: the arrival this verdict answers.
    :param outcome: how the request left the gateway.
    :param generation: reload generation of the matcher that screened it
        (generation 1 is the boot set; shed requests carry the generation
        live at their arrival).
    :param set_version: ``set_version`` of that generation's envelope.
    :param match: the exact-match result for screened requests, ``None``
        for shed ones.
    :param completed_tick: when the verdict was produced.
    :param batch_id: which micro-batch screened it (``-1`` for shed).
    """

    event: ScreeningEvent
    outcome: ServeOutcome
    generation: int
    set_version: int
    match: MatchResult | None
    completed_tick: float
    batch_id: int

    @property
    def latency_ticks(self) -> float:
        """Arrival-to-verdict time on the logical clock."""
        return self.completed_tick - self.event.tick

    @property
    def screened(self) -> bool:
        """Whether the full signature matcher produced this verdict."""
        return self.match is not None


class ScreeningGateway:
    """The serving data plane over one boot signature set.

    :param signatures: the generation-1 signature set.
    :param config: data-plane tuning.
    :param telemetry: measurement sink (a fresh one is created if omitted).
    :param set_version: version label of the boot set (as published by
        :class:`~repro.core.distribution.SignatureChannel`).
    :param run_id: observability run id surfaced by
        :meth:`health_snapshot`; a fleet probe pairs it with
        ``uptime_ticks`` to tell a silent restart (ticks reset to zero)
        from a slow gateway (ticks still climbing).
    """

    def __init__(
        self,
        signatures: Sequence[ConjunctionSignature],
        config: GatewayConfig | None = None,
        telemetry: ServingTelemetry | None = None,
        set_version: int = 1,
        run_id: str = "gateway",
    ) -> None:
        self.config = config or GatewayConfig()
        self.telemetry = telemetry or ServingTelemetry()
        self.run_id = run_id
        self.generation = 1
        self.set_version = set_version
        self.matcher = ShardedMatcher(signatures, self.config.n_shards)
        self._degraded_detector = KeywordDetector(self.config.degraded_mode)

    # -- reload -------------------------------------------------------------------

    def apply_reload(self, envelope: SignatureEnvelope, tick: float) -> bool:
        """Atomically swap the live set; reject non-monotonic versions.

        :returns: whether the swap was applied.
        """
        if envelope.set_version <= self.set_version:
            self.telemetry.increment("reloads_rejected")
            self.telemetry.span(
                "reload_rejected",
                tick=tick,
                set_version=envelope.set_version,
                live_version=self.set_version,
            )
            return False
        self.generation += 1
        self.set_version = envelope.set_version
        self.matcher = ShardedMatcher(list(envelope.signatures), self.config.n_shards)
        self.telemetry.increment("reloads_applied")
        self.telemetry.span(
            "reload",
            tick=tick,
            generation=self.generation,
            set_version=self.set_version,
            n_signatures=len(self.matcher),
        )
        return True

    # -- health -------------------------------------------------------------------

    def health_snapshot(self) -> dict[str, object]:
        """A read-only operational summary of the gateway.

        The public surface a health endpoint (or supervisor) should poll
        instead of poking private fields: the live generation and set
        version, admission/shed counters, reload history, and whether any
        degraded (keyword-fallback) decision has been produced.  Keys are
        stable and the snapshot is a pure function of the measurement
        state — calling it never mutates the gateway, so repeated calls
        under load always agree with the telemetry counters.
        """
        counters = self.telemetry.counters
        depth = self.telemetry.histograms.get("queue_depth")
        degraded_decisions = counters.get(
            "decisions_shed_degraded_clean", 0
        ) + counters.get("decisions_shed_degraded_flagged", 0)
        return {
            "run_id": self.run_id,
            # Work processed this boot: resets to zero on restart while
            # run_id (seed-derived) stays put — the restart-detection pair.
            "uptime_ticks": counters.get("admitted", 0) + counters.get("shed", 0),
            "generation": self.generation,
            "set_version": self.set_version,
            "n_signatures": len(self.matcher),
            "shed_policy": self.config.shed_policy.value,
            "queue_capacity": self.config.queue_capacity,
            "queue_depth_p50": depth.percentile(0.50) if depth is not None else 0.0,
            "queue_depth_max": depth.max_value if depth is not None else 0.0,
            "admitted": counters.get("admitted", 0),
            "shed": counters.get("shed", 0),
            "shed_dropped": counters.get("decisions_shed_dropped", 0),
            "shed_degraded": degraded_decisions,
            "batches": counters.get("batches", 0),
            "reloads_applied": counters.get("reloads_applied", 0),
            "reloads_rejected": counters.get("reloads_rejected", 0),
            "degraded": degraded_decisions > 0,
        }

    # -- the event loop -----------------------------------------------------------

    def run(
        self,
        events: Iterable[ScreeningEvent],
        reloads: Iterable[ReloadEvent] = (),
    ) -> list[ServeResult]:
        """Serve one arrival stream to completion.

        :param events: arrivals in non-decreasing tick order (as produced
            by :class:`~repro.serving.loadgen.FleetLoadGenerator`).
        :param reloads: scheduled signature swaps; applied between batches
            at the first dispatch at or after their tick.
        :returns: one verdict per arrival, in arrival order.
        """
        arrivals = list(events)
        pending_reloads = sorted(reloads, key=lambda r: r.tick)
        if any(a.tick > b.tick for a, b in zip(arrivals, arrivals[1:])):
            raise SimulationError("arrival stream must be tick-ordered")
        config = self.config
        queue: list[ScreeningEvent] = []
        results: list[ServeResult] = []
        pool_free_at = 0.0
        clock = 0.0
        batch_id = 0
        index = 0
        n = len(arrivals)
        infinity = float("inf")

        while index < n or queue:
            next_arrival = arrivals[index].tick if index < n else infinity
            if queue:
                if len(queue) >= config.batch_size or index >= n:
                    dispatch_at = max(pool_free_at, clock)
                else:
                    flush_at = queue[0].tick + config.max_batch_wait_ticks
                    dispatch_at = max(pool_free_at, flush_at)
            else:
                dispatch_at = infinity

            if next_arrival <= dispatch_at:
                # Admit (or shed) the next arrival.
                event = arrivals[index]
                index += 1
                clock = max(clock, event.tick)
                self.telemetry.observe("queue_depth", len(queue))
                if len(queue) >= config.queue_capacity:
                    results.append(self._shed(event))
                else:
                    queue.append(event)
                    self.telemetry.increment("admitted")
                continue

            # Dispatch one micro-batch.
            clock = max(clock, dispatch_at)
            while pending_reloads and pending_reloads[0].tick <= clock:
                reload = pending_reloads.pop(0)
                self.apply_reload(reload.envelope, tick=clock)
            batch = queue[: config.batch_size]
            del queue[: config.batch_size]
            started = clock
            finished = (
                started
                + config.batch_overhead_ticks
                + config.per_packet_ticks * len(batch)
            )
            matches = self.matcher.match_batch([event.packet for event in batch])
            for event, match in zip(batch, matches):
                outcome = ServeOutcome.FLAGGED if match.matched else ServeOutcome.CLEAN
                result = ServeResult(
                    event=event,
                    outcome=outcome,
                    generation=self.generation,
                    set_version=self.set_version,
                    match=match,
                    completed_tick=finished,
                    batch_id=batch_id,
                )
                results.append(result)
                self.telemetry.increment(f"decisions_{outcome.value}")
                self.telemetry.observe("latency_ticks", result.latency_ticks)
            self.telemetry.increment("batches")
            self.telemetry.observe("batch_size", len(batch))
            self.telemetry.span(
                "batch",
                batch_id=batch_id,
                started=started,
                finished=finished,
                size=len(batch),
                generation=self.generation,
                set_version=self.set_version,
            )
            batch_id += 1
            pool_free_at = finished
            clock = max(clock, started)

        # Any reloads scheduled after the last batch still apply (so a
        # subsequent run() continues from the newest published set).
        for reload in pending_reloads:
            self.apply_reload(reload.envelope, tick=max(clock, reload.tick))

        results.sort(key=lambda result: result.event.seq)
        return results

    # -- shedding -----------------------------------------------------------------

    def _shed(self, event: ScreeningEvent) -> ServeResult:
        """Apply the overflow policy to one rejected arrival."""
        if self.config.shed_policy is ShedPolicy.DROP:
            outcome = ServeOutcome.SHED_DROPPED
        elif self._degraded_detector.is_sensitive(event.packet):
            outcome = ServeOutcome.SHED_DEGRADED_FLAGGED
        else:
            outcome = ServeOutcome.SHED_DEGRADED_CLEAN
        self.telemetry.increment("shed")
        self.telemetry.increment(f"decisions_{outcome.value}")
        self.telemetry.observe("shed_latency_ticks", 0.0)
        return ServeResult(
            event=event,
            outcome=outcome,
            generation=self.generation,
            set_version=self.set_version,
            match=None,
            completed_tick=event.tick,
            batch_id=-1,
        )
