"""Seeded fleet load generator: device traffic as a logical-clock stream.

The simulation layer produces *corpora* — per-app capture sessions with
their own timestamps.  A serving gateway instead sees one interleaved
arrival stream from a whole fleet of devices.  :class:`FleetLoadGenerator`
turns a :class:`~repro.simulation.corpus.Corpus` trace into that stream:
each packet gets an arrival *tick* (cumulative seeded-exponential
interarrivals) and a device id, so the same ``(corpus, profile, seed)``
always yields the byte-identical event sequence the gateway tests and
benches rely on.

A :class:`LoadProfile` shapes the stream: the mean interarrival sets the
offered load, and an optional burst window compresses interarrivals by
``burst_factor`` to push the gateway into overload for shedding tests.

Two stream shapes exist:

- :meth:`FleetLoadGenerator.events` — the original single interleaved
  stream (one shared RNG draws interarrivals and attributes packets to
  devices), used by the gateway benches;
- :meth:`FleetLoadGenerator.device_events` — one device's **independent
  substream**, derived from a child RNG keyed by the device id alone, so
  the stream for ``device-00003`` is a pure function of
  ``(corpus, profile, seed, device id)``: growing the fleet from 10 to
  10\\ :sup:`4` devices never perturbs any existing device's packets or
  ticks.  :meth:`FleetLoadGenerator.fleet_events` merges those substreams
  into one tick-ordered arrival stream — the federation ingest workload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.http.packet import HttpPacket
from repro.simulation.corpus import Corpus
from repro.simulation.rng import derive_rng


@dataclass(frozen=True, slots=True)
class ScreeningEvent:
    """One arrival at the gateway.

    :param seq: 0-based position in the stream (stable identity).
    :param tick: logical arrival time.
    :param device_id: which fleet device sent the packet.
    :param packet: the outgoing request to screen.
    """

    seq: int
    tick: float
    device_id: str
    packet: HttpPacket


@dataclass(frozen=True, slots=True)
class LoadProfile:
    """The offered-load shape.

    :param mean_interarrival_ticks: average gap between arrivals.
    :param n_devices: fleet size; packets are attributed round-robin-free
        (seeded-uniform) across devices.
    :param burst_factor: interarrival divisor inside the burst window
        (``1.0`` = no change; ``4.0`` = 4x arrival rate).
    :param burst_start: first tick of the burst window.
    :param burst_ticks: window length (``0`` disables the burst).
    """

    mean_interarrival_ticks: float = 1.0
    n_devices: int = 4
    burst_factor: float = 1.0
    burst_start: float = 0.0
    burst_ticks: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_interarrival_ticks <= 0:
            raise SimulationError("mean_interarrival_ticks must be positive")
        if self.n_devices < 1:
            raise SimulationError("need at least one device")
        if self.burst_factor < 1.0:
            raise SimulationError("burst_factor must be >= 1.0")
        if self.burst_ticks < 0 or self.burst_start < 0:
            raise SimulationError("burst window must be non-negative")

    def in_burst(self, tick: float) -> bool:
        """Whether ``tick`` falls inside the burst window."""
        return (
            self.burst_ticks > 0
            and self.burst_start <= tick < self.burst_start + self.burst_ticks
        )


class FleetLoadGenerator:
    """Replays a corpus trace as a deterministic fleet arrival stream.

    :param corpus: the simulated population whose trace is replayed.
    :param profile: the offered-load shape.
    :param seed: determinism root for interarrivals and device choice
        (independent of the corpus seed, so the same corpus can be
        replayed under many load shapes).
    :param packets: optional replacement packet pool; when given, events
        draw from it instead of the full trace.  Federation uses this to
        replay only the locally-flagged suspicious pool — the packets a
        real fleet device would actually report.
    """

    def __init__(
        self,
        corpus: Corpus,
        profile: LoadProfile | None = None,
        seed: int = 0,
        *,
        packets: list[HttpPacket] | None = None,
    ) -> None:
        self.corpus = corpus
        self.profile = profile or LoadProfile()
        self.seed = seed
        self._packets = list(packets) if packets is not None else list(corpus.trace.packets)
        if not self._packets:
            raise SimulationError("cannot generate load from an empty trace")

    def events(self, n_events: int | None = None) -> list[ScreeningEvent]:
        """The first ``n_events`` arrivals (default: one pass of the trace).

        The trace is cycled when ``n_events`` exceeds its length, so a
        small corpus can still drive a long-running serving scenario.
        """
        packets = self._packets
        if n_events is None:
            n_events = len(packets)
        if n_events < 1:
            raise SimulationError("n_events must be positive")
        rng = derive_rng(self.seed, "serving-load")
        profile = self.profile
        events: list[ScreeningEvent] = []
        tick = 0.0
        for seq, packet in enumerate(itertools.islice(itertools.cycle(packets), n_events)):
            mean = profile.mean_interarrival_ticks
            if profile.in_burst(tick):
                mean /= profile.burst_factor
            tick += rng.expovariate(1.0 / mean)
            device = f"device-{rng.randrange(profile.n_devices):03d}"
            events.append(ScreeningEvent(seq=seq, tick=tick, device_id=device, packet=packet))
        return events

    # -- per-device substreams (seed-stable under fleet growth) -------------------

    @staticmethod
    def device_id(device_index: int) -> str:
        """The canonical fleet device id for ``device_index`` (0-based)."""
        return f"device-{device_index:05d}"

    def device_events(self, device_index: int, n_events: int) -> list[ScreeningEvent]:
        """One device's independent arrival substream.

        Everything about the substream — which trace packets the device
        replays and when — comes from a child RNG derived from
        ``(seed, device id)``, never from a fleet-shared RNG.  The
        resulting guarantee is the one fleet simulations need: adding or
        removing *other* devices, or generating their streams first, can
        never shift this device's stream.  ``seq`` here is the device-local
        report index (0-based); the merged fleet stream renumbers globally.
        """
        if device_index < 0:
            raise SimulationError(f"device_index must be >= 0, got {device_index}")
        if n_events < 1:
            raise SimulationError("n_events must be positive")
        device = self.device_id(device_index)
        rng = derive_rng(self.seed, "fleet-device", device)
        packets = self._packets
        profile = self.profile
        events: list[ScreeningEvent] = []
        tick = 0.0
        for seq in range(n_events):
            mean = profile.mean_interarrival_ticks
            if profile.in_burst(tick):
                mean /= profile.burst_factor
            tick += rng.expovariate(1.0 / mean)
            packet = packets[rng.randrange(len(packets))]
            events.append(ScreeningEvent(seq=seq, tick=tick, device_id=device, packet=packet))
        return events

    def fleet_events(self, n_devices: int, events_per_device: int) -> list[ScreeningEvent]:
        """All devices' substreams merged into one tick-ordered stream.

        Ties break on ``(tick, device_id, device-local seq)`` so the merge
        is total and deterministic; ``seq`` is renumbered globally over the
        merged order.  Because each substream is independent, the merged
        stream for ``n_devices + 1`` devices is the ``n_devices`` stream
        with the new device's events spliced in — nothing else moves.
        """
        if n_devices < 1:
            raise SimulationError("need at least one device")
        merged: list[ScreeningEvent] = []
        for device_index in range(n_devices):
            merged.extend(self.device_events(device_index, events_per_device))
        merged.sort(key=lambda event: (event.tick, event.device_id, event.seq))
        return [
            ScreeningEvent(seq=seq, tick=event.tick, device_id=event.device_id, packet=event.packet)
            for seq, event in enumerate(merged)
        ]
