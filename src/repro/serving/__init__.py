"""The online screening gateway subsystem.

Turns the device-side screening function into a servable system: a seeded
fleet load generator (:mod:`repro.serving.loadgen`), batched sharded
matching bit-identical to the scalar matcher (:mod:`repro.serving.shards`),
a gateway with bounded admission, load shedding and hot signature reload
(:mod:`repro.serving.gateway`), deterministic serving telemetry
(:mod:`repro.serving.telemetry`), and the ``repro serve`` bench emitting
``BENCH_serving.json`` (:mod:`repro.serving.bench`).
"""

from repro.serving.gateway import (
    GatewayConfig,
    ReloadEvent,
    ScreeningGateway,
    ServeOutcome,
    ServeResult,
    ShedPolicy,
)
from repro.serving.loadgen import FleetLoadGenerator, LoadProfile, ScreeningEvent
from repro.serving.shards import MatcherShard, ShardedMatcher
from repro.serving.telemetry import Histogram, ServingTelemetry

__all__ = [
    "FleetLoadGenerator",
    "GatewayConfig",
    "Histogram",
    "LoadProfile",
    "MatcherShard",
    "ReloadEvent",
    "ScreeningEvent",
    "ScreeningGateway",
    "ServeOutcome",
    "ServeResult",
    "ServingTelemetry",
    "ShardedMatcher",
    "ShedPolicy",
]
