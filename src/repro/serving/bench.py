"""The serving bench: scenarios, equivalence audit, ``BENCH_serving.json``.

Two standard scenarios exercise the gateway end to end over one corpus
and one published signature history (version 1 at boot, version 2 hot-
reloaded mid-stream, plus a deliberately stale re-publication of version
1 that must be rejected):

- ``steady`` — offered load comfortably below service capacity; nothing
  should shed, latency stays near one batch service time;
- ``overload`` — offered load several times capacity plus a burst window;
  the queue fills, the shed policy engages, and the report records how
  much traffic was dropped or degraded.

After each run the bench **audits equivalence**: every screened verdict is
recompared against a sequential
:class:`~repro.signatures.matcher.SignatureMatcher` built from the same
generation's signature set — the batched, sharded, hot-reloading path must
be bit-identical to the scalar matcher, and the report's ``identical``
flag (enforced by :class:`ServingBudget`) says so.

The JSON report mirrors ``BENCH_perf.json``: machine-readable trajectory,
human ``render()``, and budget violations that fail CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.core.distribution import SignatureChannel
from repro.core.server import SignatureServer
from repro.eval.perf import cpu_count
from repro.serving.gateway import (
    GatewayConfig,
    ReloadEvent,
    ScreeningGateway,
    ServeResult,
    ShedPolicy,
)
from repro.serving.loadgen import FleetLoadGenerator, LoadProfile, ScreeningEvent
from repro.serving.telemetry import ServingTelemetry
from repro.signatures.matcher import SignatureMatcher
from repro.simulation.corpus import build_corpus


@dataclass(frozen=True, slots=True)
class ServingBudget:
    """Gates the serving bench enforces (``None`` disables a gate).

    Equivalence (``identical``) is always enforced — a gateway that
    returns different verdicts than the scalar matcher is wrong, not slow.

    :param max_steady_shed_rate: ceiling on shed traffic in ``steady``.
    :param min_overload_shed_rate: floor on shed traffic in ``overload``
        (proves the scenario actually overloads the gateway).
    :param min_reloads_applied: hot reloads each scenario must apply.
    """

    max_steady_shed_rate: float | None = 0.05
    min_overload_shed_rate: float | None = 0.01
    min_reloads_applied: int | None = 1

    def violations(self, report: "ServingReport") -> list[str]:
        found: list[str] = []
        for scenario in report.scenarios:
            if not scenario["identical"]:
                found.append(
                    f"{scenario['name']}: gateway verdicts diverge from "
                    "sequential SignatureMatcher"
                )
            applied = scenario["reloads"]["applied"]
            if self.min_reloads_applied is not None and applied < self.min_reloads_applied:
                found.append(
                    f"{scenario['name']}: {applied} hot reloads applied "
                    f"< {self.min_reloads_applied}"
                )
        steady = report.scenario("steady")
        if (
            steady is not None
            and self.max_steady_shed_rate is not None
            and steady["shed_rate"] > self.max_steady_shed_rate
        ):
            found.append(
                f"steady: shed rate {steady['shed_rate']:.3f} "
                f"> {self.max_steady_shed_rate:.3f}"
            )
        overload = report.scenario("overload")
        if (
            overload is not None
            and self.min_overload_shed_rate is not None
            and overload["shed_rate"] < self.min_overload_shed_rate
        ):
            found.append(
                f"overload: shed rate {overload['shed_rate']:.3f} "
                f"< {self.min_overload_shed_rate:.3f} (scenario did not overload)"
            )
        return found

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_steady_shed_rate": self.max_steady_shed_rate,
            "min_overload_shed_rate": self.min_overload_shed_rate,
            "min_reloads_applied": self.min_reloads_applied,
        }


@dataclass(slots=True)
class ServingReport:
    """One serving bench run, ready for ``BENCH_serving.json``."""

    n_apps: int
    n_events: int
    seed: int
    n_signatures: dict[str, int]
    gateway: dict[str, Any]
    scenarios: list[dict[str, Any]] = field(default_factory=list)
    budget: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    def scenario(self, name: str) -> dict[str, Any] | None:
        for scenario in self.scenarios:
            if scenario["name"] == name:
                return scenario
        return None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": "serving",
            "corpus": {"n_apps": self.n_apps, "seed": self.seed},
            "n_events": self.n_events,
            "cpu_count": cpu_count(),
            "n_signatures": self.n_signatures,
            "gateway": self.gateway,
            "scenarios": self.scenarios,
            "budget": self.budget,
            "violations": self.violations,
            "ok": self.ok,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    def render(self) -> str:
        """Fixed-width human summary, in the repo's report style."""
        lines = [
            "Serving bench — online screening gateway",
            f"  corpus apps={self.n_apps} events={self.n_events} "
            f"batch={self.gateway['batch_size']} shards={self.gateway['n_shards']} "
            f"queue={self.gateway['queue_capacity']} policy={self.gateway['shed_policy']}",
            f"  {'scenario':<10} {'events':>7} {'shed%':>7} {'thru/ktick':>11} "
            f"{'p50':>6} {'p95':>6} {'p99':>6} {'gen':>4} {'identical':>10}",
        ]
        for s in self.scenarios:
            latency = s["latency_ticks"]
            lines.append(
                f"  {s['name']:<10} {s['n_events']:>7d} {100 * s['shed_rate']:>6.1f}% "
                f"{s['throughput_per_ktick']:>11.1f} {latency['p50']:>6.1f} "
                f"{latency['p95']:>6.1f} {latency['p99']:>6.1f} "
                f"{s['reloads']['final_generation']:>4d} {str(s['identical']):>10}"
            )
        for s in self.scenarios:
            reloads = s["reloads"]
            lines.append(
                f"  {s['name']}: reloads applied={reloads['applied']} "
                f"rejected={reloads['rejected']} "
                f"versions {reloads['boot_version']}->{reloads['final_version']}; "
                f"wall {s['wall_s']:.3f}s ({s['screened_per_s_wall']:.0f} screened/s)"
            )
        if self.violations:
            lines.append("  BUDGET VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  budget: ok")
        return "\n".join(lines)


def audit_equivalence(
    results: Sequence[ServeResult],
    reference: dict[int, SignatureMatcher],
) -> bool:
    """Recompare every screened verdict against the scalar matcher.

    :param results: gateway output.
    :param reference: ``set_version -> SignatureMatcher`` over the same
        signature sets the gateway served.
    :returns: ``True`` when every screened result is bit-identical.
    """
    for result in results:
        if not result.screened:
            continue
        expected = reference[result.set_version].match(result.event.packet)
        if expected != result.match:
            return False
    return True


def _scenario_dict(
    name: str,
    results: Sequence[ServeResult],
    telemetry: ServingTelemetry,
    wall_s: float,
    boot_version: int,
    gateway: ScreeningGateway,
    identical: bool,
) -> dict[str, Any]:
    """Summarize one scenario run for the report."""
    n_events = len(results)
    shed = sum(1 for r in results if not r.screened)
    screened = n_events - shed
    makespan = max((r.completed_tick for r in results), default=0.0)
    outcomes: dict[str, int] = {}
    by_generation: dict[str, int] = {}
    for result in results:
        outcomes[result.outcome.value] = outcomes.get(result.outcome.value, 0) + 1
        key = str(result.generation)
        by_generation[key] = by_generation.get(key, 0) + 1
    latency = telemetry.histograms["latency_ticks"]
    depth = telemetry.histograms["queue_depth"]
    return {
        "name": name,
        "n_events": n_events,
        "admitted": telemetry.counters.get("admitted", 0),
        "shed": shed,
        "shed_rate": round(shed / n_events, 4) if n_events else 0.0,
        "batches": telemetry.counters.get("batches", 0),
        "makespan_ticks": round(makespan, 2),
        "throughput_per_ktick": round(1000.0 * n_events / makespan, 1) if makespan else 0.0,
        "wall_s": round(wall_s, 4),
        "screened_per_s_wall": round(screened / wall_s, 1) if wall_s else 0.0,
        "latency_ticks": {
            "p50": latency.percentile(0.50),
            "p95": latency.percentile(0.95),
            "p99": latency.percentile(0.99),
            "mean": round(latency.mean, 3),
            "max": latency.max_value,
        },
        "queue_depth": {"p50": depth.percentile(0.50), "max": depth.max_value},
        "outcomes": dict(sorted(outcomes.items())),
        "reloads": {
            "applied": telemetry.counters.get("reloads_applied", 0),
            "rejected": telemetry.counters.get("reloads_rejected", 0),
            "boot_version": boot_version,
            "final_version": gateway.set_version,
            "final_generation": gateway.generation,
            "decisions_by_generation": dict(sorted(by_generation.items())),
        },
        "identical": identical,
    }


def run_serving_bench(
    *,
    n_apps: int = 120,
    events: int = 4000,
    sample: int = 120,
    seed: int = 0,
    batch_size: int = 8,
    n_shards: int = 4,
    queue_capacity: int = 64,
    shed_policy: ShedPolicy = ShedPolicy.DEGRADE,
    budget: ServingBudget | None = None,
    telemetry_dir: str | Path | None = None,
) -> ServingReport:
    """Run the steady and overload scenarios and audit equivalence.

    Deterministic for a given ``(n_apps, events, sample, seed)`` — wall
    clock timings aside, two runs produce identical reports.

    :param telemetry_dir: when given, each scenario's span log is exported
        as ``serving_<scenario>.jsonl`` under this directory.
    """
    budget = budget or ServingBudget()
    corpus = build_corpus(n_apps=n_apps, seed=seed)
    server = SignatureServer(corpus.payload_check())
    server.ingest(corpus.trace)
    boot_signatures = server.generate(sample, seed=seed).signatures
    reload_signatures = server.generate(sample, seed=seed + 1).signatures

    channel = SignatureChannel()
    boot_envelope = channel.publish(boot_signatures)
    reload_envelope = channel.publish(reload_signatures)
    stale_envelope = channel.envelope(boot_envelope.set_version)
    reference = {
        boot_envelope.set_version: SignatureMatcher(list(boot_envelope.signatures)),
        reload_envelope.set_version: SignatureMatcher(list(reload_envelope.signatures)),
    }

    config = GatewayConfig(
        queue_capacity=queue_capacity,
        batch_size=batch_size,
        n_shards=n_shards,
        shed_policy=shed_policy,
    )
    service_cost = config.per_packet_ticks + config.batch_overhead_ticks / config.batch_size
    profiles = {
        "steady": LoadProfile(mean_interarrival_ticks=2.0 * service_cost),
        # Sustained 2.5x-capacity load plus an early 4x burst window.
        "overload": LoadProfile(
            mean_interarrival_ticks=0.4 * service_cost,
            burst_factor=4.0,
            burst_start=10.0,
            burst_ticks=80.0,
        ),
    }

    report = ServingReport(
        n_apps=n_apps,
        n_events=events,
        seed=seed,
        n_signatures={
            "boot": len(boot_signatures),
            "reload": len(reload_signatures),
        },
        gateway={
            "queue_capacity": queue_capacity,
            "batch_size": batch_size,
            "n_shards": n_shards,
            "shed_policy": shed_policy.value,
            "batch_overhead_ticks": config.batch_overhead_ticks,
            "per_packet_ticks": config.per_packet_ticks,
            "max_batch_wait_ticks": config.max_batch_wait_ticks,
        },
        budget=budget.to_dict(),
    )

    for name, profile in profiles.items():
        generator = FleetLoadGenerator(corpus, profile, seed=seed)
        stream: list[ScreeningEvent] = generator.events(events)
        midpoint = stream[len(stream) // 2].tick
        reloads = [
            ReloadEvent(tick=midpoint, envelope=reload_envelope),
            # A misbehaving cache re-publishes the boot version later on;
            # the gateway must reject it (never-regress).
            ReloadEvent(tick=midpoint + 1.0, envelope=stale_envelope),
        ]
        telemetry = ServingTelemetry()
        gateway = ScreeningGateway(
            boot_signatures,
            config=config,
            telemetry=telemetry,
            set_version=boot_envelope.set_version,
        )
        started = time.perf_counter()
        results = gateway.run(stream, reloads=reloads)
        wall_s = time.perf_counter() - started
        identical = audit_equivalence(results, reference)
        report.scenarios.append(
            _scenario_dict(
                name,
                results,
                telemetry,
                wall_s,
                boot_envelope.set_version,
                gateway,
                identical,
            )
        )
        if telemetry_dir is not None:
            directory = Path(telemetry_dir)
            directory.mkdir(parents=True, exist_ok=True)
            telemetry.export_jsonl(directory / f"serving_{name}.jsonl")

    report.violations = budget.violations(report)
    return report

