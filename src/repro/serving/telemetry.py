"""Serving telemetry: a thin shim over the :mod:`repro.obs` core.

Historically this module owned the counter/histogram primitives; they now
live in :mod:`repro.obs.metrics` (the shared observability core) and
:class:`ServingTelemetry` delegates to a :class:`~repro.obs.metrics.Metrics`
registry while keeping its exact public surface and export formats — the
serving bench's JSONL and snapshot output is byte-for-byte what the
pre-migration implementation produced (regression-tested in
``tests/test_serving_telemetry.py``).

Everything is measured in *logical ticks* (the gateway's deterministic
clock) or plain counts, so two runs with the same seed produce identical
telemetry byte-for-byte — the serving bench can assert on it, and CI can
diff exported JSONL across commits without wall-clock noise.

Three primitives:

- monotonic **counters** (``increment``), keyed by name;
- **histograms** with fixed bucket bounds (``observe``) reporting
  deterministic percentile estimates (the upper edge of the bucket the
  quantile falls in, exact observed max for the overflow bucket; an empty
  histogram's percentiles are defined as ``0.0``);
- **span events** (``span``) — one dict per interesting interval or
  moment (a dispatched batch, an applied reload), exported as JSONL.

Snapshot ordering is explicit: counters and histograms serialize with
sorted keys, so exported artifacts diff cleanly across commits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import Histogram, Metrics

__all__ = ["DEPTH_BOUNDS", "Histogram", "LATENCY_BOUNDS", "ServingTelemetry"]

#: Default latency bucket upper edges, in logical ticks (last is +inf).
LATENCY_BOUNDS: tuple[float, ...] = (
    0.5, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
)

#: Default queue-depth bucket upper edges (last is +inf).
DEPTH_BOUNDS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class ServingTelemetry:
    """The gateway's measurement sink.

    One instance per gateway run; the serving bench snapshots it into the
    ``BENCH_serving.json`` report and can export the raw span log as JSONL
    for offline analysis.

    :param metrics: the backing registry.  Pass a shared
        :class:`~repro.obs.metrics.Metrics` to merge gateway counters with
        the rest of a scenario (distribution channel, flow control) in one
        Prometheus exposition; omitted, a private registry is created and
        behaviour matches the pre-``repro.obs`` implementation exactly.
    """

    def __init__(self, metrics: Metrics | None = None) -> None:
        self.metrics = metrics or Metrics()
        for name in ("latency_ticks", "shed_latency_ticks"):
            self.metrics.histogram(name, LATENCY_BOUNDS)
        for name in ("queue_depth", "batch_size"):
            self.metrics.histogram(name, DEPTH_BOUNDS)
        self.spans: list[dict[str, Any]] = []

    @property
    def counters(self) -> dict[str, int]:
        """The registry's counter table (live view, not a copy)."""
        return self.metrics.counters

    @property
    def histograms(self) -> dict[str, Histogram]:
        """The registry's histogram table (live view, not a copy)."""
        return self.metrics.histograms

    def increment(self, name: str, by: int = 1) -> None:
        """Bump a monotonic counter."""
        self.metrics.inc(name, by)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (histogram must be registered)."""
        self.metrics.histograms[name].observe(value)

    def span(self, kind: str, **fields: Any) -> None:
        """Append one span event (dispatch, completion, reload, ...)."""
        self.spans.append({"kind": kind, **fields})

    def spans_of(self, kind: str) -> list[dict[str, Any]]:
        """All recorded spans of one kind, in emission order."""
        return [span for span in self.spans if span["kind"] == kind]

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable summary of everything measured so far.

        Counter and histogram keys are sorted — the snapshot (and the
        JSONL summary line built from it) is byte-stable for identical
        measurement sequences regardless of insertion order.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: h.to_dict() for name, h in sorted(self.histograms.items())},
            "spans": len(self.spans),
        }

    def export_jsonl(self, path: str | Path) -> Path:
        """Write every span as one JSON line, then a closing summary line."""
        path = Path(path)
        lines = [json.dumps(span, sort_keys=True) for span in self.spans]
        lines.append(json.dumps({"kind": "summary", **self.snapshot()}, sort_keys=True))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path
