"""Serving telemetry: counters, bucketed histograms, span events, JSONL.

Everything is measured in *logical ticks* (the gateway's deterministic
clock) or plain counts, so two runs with the same seed produce identical
telemetry byte-for-byte — the serving bench can assert on it, and CI can
diff exported JSONL across commits without wall-clock noise.

Three primitives:

- monotonic **counters** (``increment``), keyed by name;
- **histograms** with fixed bucket bounds (``observe``) reporting
  deterministic percentile estimates (the upper edge of the bucket the
  quantile falls in, exact observed max for the overflow bucket);
- **span events** (``span``) — one dict per interesting interval or
  moment (a dispatched batch, an applied reload), exported as JSONL.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Default latency bucket upper edges, in logical ticks (last is +inf).
LATENCY_BOUNDS: tuple[float, ...] = (
    0.5, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
)

#: Default queue-depth bucket upper edges (last is +inf).
DEPTH_BOUNDS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class Histogram:
    """A fixed-bound bucketed histogram with deterministic percentiles.

    :param bounds: ascending bucket upper edges; an implicit overflow
        bucket catches everything above the last edge.
    """

    bounds: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min_value: float = 0.0
    max_value: float = 0.0

    def __post_init__(self) -> None:
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be ascending, got {self.bounds!r}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self.count == 0:
            self.min_value = self.max_value = value
        else:
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Deterministic upper-bound estimate of the ``p`` quantile.

        Returns the upper edge of the bucket the quantile lands in,
        clamped to the exact observed maximum (so a sparse top bucket
        never reports beyond what was seen).  Zero when empty.

        :param p: quantile in ``[0, 1]``.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {p}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(p * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index == len(self.bounds):
                    return self.max_value
                return min(float(self.bounds[index]), self.max_value)
        return self.max_value

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean": round(self.mean, 4),
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": {
                **{str(bound): n for bound, n in zip(self.bounds, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class ServingTelemetry:
    """The gateway's measurement sink.

    One instance per gateway run; the serving bench snapshots it into the
    ``BENCH_serving.json`` report and can export the raw span log as JSONL
    for offline analysis.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.histograms: dict[str, Histogram] = {
            "latency_ticks": Histogram(LATENCY_BOUNDS),
            "shed_latency_ticks": Histogram(LATENCY_BOUNDS),
            "queue_depth": Histogram(DEPTH_BOUNDS),
            "batch_size": Histogram(DEPTH_BOUNDS),
        }
        self.spans: list[dict[str, Any]] = []

    def increment(self, name: str, by: int = 1) -> None:
        """Bump a monotonic counter."""
        if by < 0:
            raise ValueError(f"counters are monotonic; cannot add {by}")
        self.counters[name] += by

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (histogram must be registered)."""
        self.histograms[name].observe(value)

    def span(self, kind: str, **fields: Any) -> None:
        """Append one span event (dispatch, completion, reload, ...)."""
        self.spans.append({"kind": kind, **fields})

    def spans_of(self, kind: str) -> list[dict[str, Any]]:
        """All recorded spans of one kind, in emission order."""
        return [span for span in self.spans if span["kind"] == kind]

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable summary of everything measured so far."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: h.to_dict() for name, h in sorted(self.histograms.items())},
            "spans": len(self.spans),
        }

    def export_jsonl(self, path: str | Path) -> Path:
        """Write every span as one JSON line, then a closing summary line."""
        path = Path(path)
        lines = [json.dumps(span, sort_keys=True) for span in self.spans]
        lines.append(json.dumps({"kind": "summary", **self.snapshot()}, sort_keys=True))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path
