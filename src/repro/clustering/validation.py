"""Internal clustering quality measures.

Used by tests (sanity: the paper's metric clusters same-module packets
together) and by the ablation benches (comparing linkages and distance
configurations without ground-truth labels).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dendrogram import Dendrogram
from repro.distance.matrix import CondensedMatrix
from repro.errors import ClusteringError


def silhouette_score(matrix: CondensedMatrix, assignment: list[int]) -> float:
    """Mean silhouette coefficient over all items.

    For item ``i`` with intra-cluster mean distance ``a`` and smallest
    other-cluster mean distance ``b``: ``s = (b - a) / max(a, b)``.
    Items in singleton clusters contribute 0, per the usual convention.

    :raises ClusteringError: when fewer than two clusters are present.
    """
    n = matrix.n
    if len(assignment) != n:
        raise ClusteringError("assignment length does not match matrix size")
    labels = sorted(set(assignment))
    if len(labels) < 2:
        raise ClusteringError("silhouette needs at least two clusters")
    members: dict[int, list[int]] = {label: [] for label in labels}
    for i, label in enumerate(assignment):
        members[label].append(i)
    scores: list[float] = []
    for i in range(n):
        own = members[assignment[i]]
        if len(own) == 1:
            scores.append(0.0)
            continue
        a = sum(matrix.get(i, j) for j in own if j != i) / (len(own) - 1)
        b = min(
            sum(matrix.get(i, j) for j in other) / len(other)
            for label, other in members.items()
            if label != assignment[i]
        )
        denominator = max(a, b)
        scores.append(0.0 if denominator == 0 else (b - a) / denominator)
    return float(np.mean(scores))


def cophenetic_correlation(matrix: CondensedMatrix, dendrogram: Dendrogram) -> float:
    """Pearson correlation between original and cophenetic distances.

    Values near 1 mean the tree faithfully preserves the pairwise
    distances; group-average linkage typically scores highest among the
    classic linkages, which the linkage ablation demonstrates.
    """
    n = matrix.n
    if dendrogram.n_leaves != n:
        raise ClusteringError("dendrogram does not match matrix size")
    if n < 3:
        raise ClusteringError("cophenetic correlation needs at least 3 items")
    original: list[float] = []
    cophenetic: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            original.append(matrix.get(i, j))
            cophenetic.append(dendrogram.cophenetic_distance(i, j))
    x = np.asarray(original)
    y = np.asarray(cophenetic)
    if np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
