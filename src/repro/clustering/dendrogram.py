"""Dendrogram: the merge tree produced by agglomerative clustering.

Nodes are numbered scipy-style: leaves are ``0 .. n-1``; the ``k``-th merge
creates internal node ``n + k``.  Each :class:`Merge` records the two
children, the linkage height at which they joined, and the size of the new
cluster.  :class:`Dendrogram` offers traversal utilities used by both the
cut strategies and signature generation (which walks clusters top-down).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusteringError


@dataclass(frozen=True, slots=True)
class Merge:
    """One agglomeration step.

    :param left: node id of the first merged cluster.
    :param right: node id of the second merged cluster.
    :param height: linkage distance between the two clusters at merge time.
    :param size: number of leaves in the resulting cluster.
    """

    left: int
    right: int
    height: float
    size: int


class Dendrogram:
    """The full merge history over ``n_leaves`` items.

    :param n_leaves: number of original items (must be >= 1).
    :param merges: ``n_leaves - 1`` merges in creation order; heights must
        be non-decreasing for a well-formed ultrametric tree (monotonic
        linkages guarantee this; ward heights are checked too).
    """

    def __init__(self, n_leaves: int, merges: list[Merge]) -> None:
        if n_leaves < 1:
            raise ClusteringError("dendrogram needs at least one leaf")
        if len(merges) != n_leaves - 1:
            raise ClusteringError(
                f"expected {n_leaves - 1} merges for {n_leaves} leaves, got {len(merges)}"
            )
        self.n_leaves = n_leaves
        self.merges = merges
        self._children: dict[int, tuple[int, int]] = {}
        for k, merge in enumerate(merges):
            node = n_leaves + k
            for child in (merge.left, merge.right):
                if not 0 <= child < node:
                    raise ClusteringError(f"merge {k} references invalid node {child}")
                if child in self._children and child >= n_leaves:
                    pass  # internal nodes appear as a child exactly once; checked below
            self._children[node] = (merge.left, merge.right)
        # Every node except the root must be a child exactly once.
        seen: set[int] = set()
        for left, right in self._children.values():
            for child in (left, right):
                if child in seen:
                    raise ClusteringError(f"node {child} merged twice")
                seen.add(child)

    @property
    def root(self) -> int:
        """Node id of the final cluster containing every leaf."""
        return self.n_leaves + len(self.merges) - 1 if self.merges else 0

    @property
    def n_nodes(self) -> int:
        return self.n_leaves + len(self.merges)

    def is_leaf(self, node: int) -> bool:
        return node < self.n_leaves

    def children(self, node: int) -> tuple[int, int]:
        """The two children of an internal node."""
        if self.is_leaf(node):
            raise ClusteringError(f"leaf {node} has no children")
        return self._children[node]

    def height(self, node: int) -> float:
        """Merge height of an internal node (0.0 for leaves)."""
        if self.is_leaf(node):
            return 0.0
        return self.merges[node - self.n_leaves].height

    def size(self, node: int) -> int:
        """Number of leaves under ``node``."""
        if self.is_leaf(node):
            return 1
        return self.merges[node - self.n_leaves].size

    def leaves(self, node: int) -> list[int]:
        """All leaf ids under ``node``, in discovery order."""
        stack = [node]
        out: list[int] = []
        while stack:
            current = stack.pop()
            if self.is_leaf(current):
                out.append(current)
            else:
                left, right = self.children(current)
                stack.append(right)
                stack.append(left)
        return out

    def iter_top_down(self) -> list[int]:
        """Internal nodes from the root downwards (by decreasing height).

        Signature generation consumes clusters in this order: "Select the
        top of cluster C_i, compute a signature ... remove C_i and repeat."
        """
        internal = list(range(self.n_leaves, self.n_nodes))
        internal.sort(key=lambda node: (self.height(node), node), reverse=True)
        return internal

    def cophenetic_distance(self, i: int, j: int) -> float:
        """Height of the lowest common ancestor of two leaves."""
        if not (self.is_leaf(i) and self.is_leaf(j)):
            raise ClusteringError("cophenetic distance is defined between leaves")
        if i == j:
            return 0.0
        # Walk upward from each leaf, recording ancestors.
        parent: dict[int, int] = {}
        for k, merge in enumerate(self.merges):
            node = self.n_leaves + k
            parent[merge.left] = node
            parent[merge.right] = node
        ancestors_i: set[int] = {i}
        current = i
        while current in parent:
            current = parent[current]
            ancestors_i.add(current)
        current = j
        while current not in ancestors_i:
            current = parent[current]
        return self.height(current)

    def to_linkage_array(self) -> list[list[float]]:
        """Scipy-compatible ``(n-1) x 4`` linkage matrix (as nested lists)."""
        return [
            [float(m.left), float(m.right), float(m.height), float(m.size)]
            for m in self.merges
        ]

    def render_ascii(self, labels: list[str] | None = None, *, max_leaves: int = 40) -> str:
        """A small indented text rendering, for logs and debugging."""
        if self.n_leaves > max_leaves:
            return f"<dendrogram with {self.n_leaves} leaves (too large to render)>"
        lines: list[str] = []

        def walk(node: int, depth: int) -> None:
            indent = "  " * depth
            if self.is_leaf(node):
                label = labels[node] if labels else f"leaf {node}"
                lines.append(f"{indent}- {label}")
            else:
                lines.append(f"{indent}+ h={self.height(node):.3f} (n={self.size(node)})")
                left, right = self.children(node)
                walk(left, depth + 1)
                walk(right, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
