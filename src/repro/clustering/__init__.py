"""Hierarchical clustering (paper Section IV-D), written from scratch.

The paper clusters sensitive packets agglomeratively with the *group
average* criterion: repeatedly merge the pair of clusters whose mean
pairwise packet distance is smallest, until one cluster remains.  The merge
history is a dendrogram from which signature generation reads clusters.

- :func:`repro.clustering.linkage.agglomerate` — the algorithm
  (group-average default; single/complete/ward for the ablation bench),
- :class:`repro.clustering.dendrogram.Dendrogram` — the merge tree,
- :mod:`repro.clustering.cut` — extraction of flat clusters,
- :mod:`repro.clustering.validation` — internal quality measures.
"""

from repro.clustering.cut import cut_by_count, cut_by_height, cut_top_level
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.linkage import Linkage, agglomerate
from repro.clustering.validation import cophenetic_correlation, silhouette_score

__all__ = [
    "Linkage",
    "agglomerate",
    "Dendrogram",
    "Merge",
    "cut_by_height",
    "cut_by_count",
    "cut_top_level",
    "silhouette_score",
    "cophenetic_correlation",
]
