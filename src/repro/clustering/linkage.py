"""Agglomerative hierarchical clustering with Lance-Williams updates.

The paper's method (Section IV-D): start with every packet in its own
cluster, repeatedly merge the closest pair under the *group average*
criterion

    d_group(C_x, C_y) = (1 / |C_x||C_y|) * sum_{p in C_x} sum_{q in C_y} d_pkt(p, q)

until one cluster remains.  Instead of recomputing the double sum after
every merge (O(n^4) total), we maintain the cluster-to-cluster distance
matrix with the Lance-Williams recurrence — for group average,

    d(C_xy, C_z) = (|C_x| d(C_x,C_z) + |C_y| d(C_y,C_z)) / (|C_x| + |C_y|)

which is exactly equivalent and gives the O(n^3)/O(n^2 log n) classic
algorithm.  Single, complete, and Ward linkages are provided for the
linkage ablation bench.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.distance.matrix import CondensedMatrix
from repro.errors import ClusteringError


class Linkage(enum.Enum):
    """Cluster-to-cluster distance criterion."""

    GROUP_AVERAGE = "average"  # the paper's choice
    SINGLE = "single"
    COMPLETE = "complete"
    WARD = "ward"


def agglomerate(matrix: CondensedMatrix, linkage: Linkage = Linkage.GROUP_AVERAGE) -> Dendrogram:
    """Run agglomerative clustering over a precomputed distance matrix.

    Ties in the nearest-pair search are broken toward the pair with the
    smallest node ids, which makes results deterministic across runs and
    platforms.

    :param matrix: condensed pairwise distances over the items.
    :param linkage: merge criterion; the paper uses group average.
    :returns: the full merge tree (:class:`Dendrogram`).
    :raises ClusteringError: for an empty input.
    """
    n = matrix.n
    if n < 1:
        raise ClusteringError("cannot cluster zero items")
    if n == 1:
        return Dendrogram(1, [])

    # Working square matrix of current cluster distances. Inactive rows are
    # masked with +inf. active[i] holds the *node id* for slot i.
    square = matrix.to_square()
    np.fill_diagonal(square, np.inf)
    sizes = np.ones(n, dtype=int)
    node_ids = np.arange(n)
    active = np.ones(n, dtype=bool)
    merges: list[Merge] = []

    for step in range(n - 1):
        slot_x, slot_y = _nearest_active_pair(square, active)
        height = float(square[slot_x, slot_y])
        size_x = int(sizes[slot_x])
        size_y = int(sizes[slot_y])
        new_size = size_x + size_y
        merges.append(
            Merge(
                left=int(node_ids[slot_x]),
                right=int(node_ids[slot_y]),
                height=height,
                size=new_size,
            )
        )
        # Merge y into x's slot; deactivate y.
        _lance_williams_update(square, active, slot_x, slot_y, size_x, size_y, sizes, linkage)
        sizes[slot_x] = new_size
        node_ids[slot_x] = n + step
        active[slot_y] = False
        square[slot_y, :] = np.inf
        square[:, slot_y] = np.inf

    return Dendrogram(n, merges)


def _nearest_active_pair(square: np.ndarray, active: np.ndarray) -> tuple[int, int]:
    """Indices of the closest active pair, smallest-id tie break."""
    masked = square.copy()
    inactive = ~active
    masked[inactive, :] = np.inf
    masked[:, inactive] = np.inf
    flat = int(np.argmin(masked))
    i, j = divmod(flat, masked.shape[1])
    if not np.isfinite(masked[i, j]):
        raise ClusteringError("no active pair remains")
    return (i, j) if i < j else (j, i)


def _lance_williams_update(
    square: np.ndarray,
    active: np.ndarray,
    slot_x: int,
    slot_y: int,
    size_x: int,
    size_y: int,
    sizes: np.ndarray,
    linkage: Linkage,
) -> None:
    """Rewrite row/column ``slot_x`` with distances from the merged cluster."""
    d_xz = square[slot_x, :]
    d_yz = square[slot_y, :]
    if linkage is Linkage.GROUP_AVERAGE:
        new = (size_x * d_xz + size_y * d_yz) / (size_x + size_y)
    elif linkage is Linkage.SINGLE:
        new = np.minimum(d_xz, d_yz)
    elif linkage is Linkage.COMPLETE:
        new = np.maximum(d_xz, d_yz)
    elif linkage is Linkage.WARD:
        # Lance-Williams for Ward on squared Euclidean-like distances:
        # d(xy,z) = sqrt(((sx+sz) d_xz^2 + (sy+sz) d_yz^2 - sz d_xy^2) / (sx+sy+sz))
        d_xy = square[slot_x, slot_y]
        sz = sizes.astype(float)
        total = size_x + size_y + sz
        with np.errstate(invalid="ignore"):
            new = np.sqrt(
                np.maximum(
                    ((size_x + sz) * d_xz**2 + (size_y + sz) * d_yz**2 - sz * d_xy**2) / total,
                    0.0,
                )
            )
    else:  # pragma: no cover - enum is closed
        raise ClusteringError(f"unsupported linkage {linkage!r}")
    # Only active, non-self slots matter; the rest stay +inf.
    mask = active.copy()
    mask[slot_x] = False
    mask[slot_y] = False
    square[slot_x, mask] = new[mask]
    square[mask, slot_x] = new[mask]
    square[slot_x, slot_x] = np.inf


def cluster_assignments(dendrogram: Dendrogram, cluster_nodes: list[int]) -> list[int]:
    """Map each leaf to the index of the cluster node covering it.

    :param cluster_nodes: disjoint dendrogram nodes covering all leaves
        (the output of a cut strategy).
    :raises ClusteringError: when the nodes do not partition the leaves.
    """
    assignment = [-1] * dendrogram.n_leaves
    for cluster_index, node in enumerate(cluster_nodes):
        for leaf in dendrogram.leaves(node):
            if assignment[leaf] != -1:
                raise ClusteringError(f"leaf {leaf} covered by two cluster nodes")
            assignment[leaf] = cluster_index
    if any(a == -1 for a in assignment):
        raise ClusteringError("cluster nodes do not cover all leaves")
    return assignment
