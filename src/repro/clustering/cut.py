"""Flat-cluster extraction from a dendrogram.

The paper's signature step walks clusters "from the top"; in practice a
signature per *every* internal node is redundant, so implementations cut
the tree into flat clusters first.  Three standard strategies are
provided — by height threshold, by target cluster count, and the paper's
literal top-level traversal (each maximal cluster below a relative height).
"""

from __future__ import annotations

from repro.clustering.dendrogram import Dendrogram
from repro.errors import ClusteringError


def cut_by_height(dendrogram: Dendrogram, height: float) -> list[int]:
    """Maximal nodes whose merge height is <= ``height``.

    Equivalent to slicing the tree horizontally: every returned node is a
    flat cluster, the union covers all leaves, singleton leaves whose
    parent merged above the threshold come back as leaf nodes.
    """
    if height < 0:
        raise ClusteringError("cut height must be non-negative")
    # Iterative walk: a chained dendrogram (single linkage) can be as deep
    # as the leaf count, which would blow Python's recursion limit.
    clusters: list[int] = []
    stack = [dendrogram.root]
    while stack:
        node = stack.pop()
        if dendrogram.height(node) <= height:
            clusters.append(node)
        else:
            left, right = dendrogram.children(node)
            stack.append(left)
            stack.append(right)
    return clusters


def cut_by_count(dendrogram: Dendrogram, k: int) -> list[int]:
    """Cut into exactly ``k`` clusters by undoing the last ``k - 1`` merges.

    :raises ClusteringError: when ``k`` is outside ``1 .. n_leaves``.
    """
    n = dendrogram.n_leaves
    if not 1 <= k <= n:
        raise ClusteringError(f"k={k} outside 1..{n}")
    # Nodes created by the last k-1 merges are "broken"; clusters are their
    # children that are not themselves broken.
    broken = {dendrogram.n_leaves + i for i in range(n - k, n - 1)}
    clusters: list[int] = []
    if not broken:
        return [dendrogram.root]
    for node in broken:
        for child in dendrogram.children(node):
            if child not in broken:
                clusters.append(child)
    clusters.sort()
    return clusters


def cut_top_level(dendrogram: Dendrogram, fraction: float = 0.5) -> list[int]:
    """Cut at ``fraction`` of the root height (the paper-style heuristic).

    With ``fraction=0.5`` a cluster survives if its members merged in the
    lower half of the tree — tight groups of near-duplicate packets, which
    is where module-specific signatures live.  ``fraction=1.0`` degenerates
    to a single cluster, ``0.0`` to all singletons (unless ties at height
    zero exist).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ClusteringError("fraction must be within [0, 1]")
    return cut_by_height(dendrogram, fraction * dendrogram.height(dendrogram.root))


def cut_min_size(dendrogram: Dendrogram, height: float, min_size: int) -> list[int]:
    """Height cut keeping only clusters with at least ``min_size`` leaves.

    Unlike the other cuts this does *not* partition all leaves — small
    clusters are dropped, matching how signature generation discards
    singletons that cannot yield a common substring across packets.
    """
    if min_size < 1:
        raise ClusteringError("min_size must be at least 1")
    return [node for node in cut_by_height(dendrogram, height) if dendrogram.size(node) >= min_size]
