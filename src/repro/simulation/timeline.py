"""Longitudinal simulation: the corpus over days, with SDK rollouts.

The paper's capture is one snapshot (January–April 2012 compressed into a
single session per app).  A deployed signature server lives on a
timeline: users run apps daily, SDK vendors roll out new wire formats,
and published signatures age.  :class:`LongitudinalSimulator` produces a
day-stamped trace stream over one fixed population:

- each app is *active* on a given day with a per-app daily probability
  (derived deterministically, so day N's traffic never depends on how
  many days were simulated before it);
- a :class:`Rollout` replaces one shared service's wire format from a
  given day onward — modelling an SDK version upgrade reaching all apps
  that embed it (server-side formats change for everyone at once).

The longitudinal bench uses this to measure signature aging and the value
of periodic regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.app import Application
from repro.android.device import Device
from repro.android.market import AppMarket, MarketConfig
from repro.android.services import Service, ServiceSpec
from repro.dataset.trace import Trace
from repro.errors import SimulationError
from repro.simulation.rng import derive_rng
from repro.simulation.session import SessionConfig, SessionDriver


@dataclass(frozen=True, slots=True)
class Rollout:
    """One SDK wire-format upgrade.

    :param service_name: name of the shared service being upgraded.
    :param day: first day (0-based) the new format is live.
    :param new_spec: the replacement spec (hosts may change too).
    """

    service_name: str
    day: int
    new_spec: ServiceSpec

    def __post_init__(self) -> None:
        if self.day < 0:
            raise SimulationError("rollout day must be non-negative")


class LongitudinalSimulator:
    """Day-by-day traffic over one fixed population.

    :param n_apps: population size.
    :param seed: corpus seed (population, device, and daily streams).
    :param daily_activity: chance an app is used on any given day.
    :param rollouts: SDK upgrades applied on their scheduled days.
    """

    def __init__(
        self,
        n_apps: int = 60,
        seed: int = 0,
        *,
        daily_activity: float = 0.6,
        rollouts: list[Rollout] = None,
        session_config: SessionConfig | None = None,
    ) -> None:
        if not 0.0 < daily_activity <= 1.0:
            raise SimulationError("daily_activity must be in (0, 1]")
        self.seed = seed
        self.daily_activity = daily_activity
        self.rollouts = list(rollouts or [])
        self.apps: list[Application] = AppMarket(MarketConfig(n_apps=n_apps), seed=seed).build()
        self.device: Device = Device.generate(derive_rng(seed, "device"))
        self._driver = SessionDriver(self.device, session_config)
        self._service_cache: dict[str, Service] = {}

    def _effective_service(self, service: Service, day: int) -> Service:
        """The service as it exists on ``day`` (latest applicable rollout)."""
        current = service
        best_day = -1
        for rollout in self.rollouts:
            if rollout.service_name != service.name:
                continue
            if rollout.day <= day and rollout.day > best_day:
                best_day = rollout.day
                key = f"{rollout.service_name}@{rollout.day}"
                cached = self._service_cache.get(key)
                if cached is None:
                    cached = Service(rollout.new_spec)
                    self._service_cache[key] = cached
                current = cached
        return current

    def day_trace(self, day: int) -> Trace:
        """All packets captured on one day (deterministic per day)."""
        if day < 0:
            raise SimulationError("day must be non-negative")
        trace = Trace()
        for app in self.apps:
            activity_rng = derive_rng(self.seed, "activity", app.package, str(day))
            if activity_rng.random() >= self.daily_activity:
                continue
            effective = [self._effective_service(s, day) for s in app.services]
            original = app.services
            app.services = effective
            try:
                session_rng = derive_rng(self.seed, "day-session", app.package, str(day))
                packets = self._driver.run(app, session_rng)
            finally:
                app.services = original
            for packet in packets:
                packet.timestamp += day * 86_400.0
                packet.meta["day"] = day
            trace.extend(packets)
        return trace

    def window_trace(self, first_day: int, n_days: int) -> Trace:
        """Concatenated traffic for ``n_days`` starting at ``first_day``."""
        trace = Trace()
        for day in range(first_day, first_day + n_days):
            trace.extend(self.day_trace(day))
        return trace
