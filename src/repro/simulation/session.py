"""One manual application run (paper Section V-A).

"Each application was run manually for 5 to 15 minutes on the device.  We
attempted to test every possible application function."  The session
driver reproduces that: for a given app it samples a duration, lets every
embedded service emit its expected packet mass, and interleaves the
results on the session timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.android.app import Application
from repro.android.device import Device
from repro.http.packet import HttpPacket
from repro.simulation.rng import poisson


@dataclass(frozen=True, slots=True)
class SessionConfig:
    """Traffic-volume knobs for one session.

    Shared services carry their own per-app packet rates (Table II); these
    knobs cover the traffic classes the paper does not tabulate directly.

    :param own_backend_mean: mean packets to the app's own backend.
    :param loner_mean: mean packets for single-destination utility apps.
    :param browser_site_mean: mean packets per site a browser app visits.
    """

    own_backend_mean: float = 66.0
    loner_mean: float = 9.0
    browser_site_mean: float = 2.5


class SessionDriver:
    """Drives app sessions and captures their HTTP traffic.

    :param device: the handset all sessions run on.
    :param config: traffic-volume configuration.
    """

    def __init__(self, device: Device, config: SessionConfig | None = None) -> None:
        self.device = device
        self.config = config or SessionConfig()

    def run(self, app: Application, rng: Random) -> list[HttpPacket]:
        """One session: returns the packets in timestamp order."""
        duration = app.session_duration(rng)
        packets: list[HttpPacket] = []
        for service in app.services:
            count = poisson(rng, service.spec.packets_per_app)
            packets.extend(
                service.session_packets(app, self.device, rng, count, duration=duration)
            )
        is_loner = not app.services and len(app.own_services) == 1 and not app.browser_services
        own_mean = self.config.loner_mean if is_loner else self.config.own_backend_mean
        for service in app.own_services:
            count = max(1, poisson(rng, own_mean))
            packets.extend(
                service.session_packets(app, self.device, rng, count, duration=duration)
            )
        for service in app.browser_services:
            count = max(1, poisson(rng, self.config.browser_site_mean))
            packets.extend(
                service.session_packets(app, self.device, rng, count, duration=duration)
            )
        packets.sort(key=lambda p: p.timestamp)
        return packets
