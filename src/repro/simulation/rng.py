"""Seeded random samplers used by the traffic simulator.

All randomness in the library flows through explicitly seeded
:class:`random.Random` instances — there is no module-level RNG state, so
two corpora built with the same seed are byte-identical.
"""

from __future__ import annotations

import math
from random import Random


def poisson(rng: Random, mean: float) -> int:
    """Sample a Poisson-distributed count.

    Uses Knuth's product method for small means and a normal approximation
    (rounded, clipped at zero) for large ones, which is accurate enough for
    packet counts and avoids pathological loop lengths.

    :raises ValueError: for a negative mean.
    """
    if mean < 0:
        raise ValueError(f"Poisson mean must be non-negative, got {mean}")
    if mean == 0:
        return 0
    if mean > 30.0:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def zipf_sample(rng: Random, n: int, exponent: float = 1.0) -> int:
    """Sample an index in ``0..n-1`` with Zipfian weight ``1/(k+1)^s``.

    Used for skewed choices (popular sites get visited more).  Weights are
    computed on the fly; for the small ``n`` the simulator uses this is
    cheaper than caching distributions per call site.
    """
    if n < 1:
        raise ValueError("zipf_sample needs n >= 1")
    weights = [1.0 / (k + 1) ** exponent for k in range(n)]
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if point <= cumulative:
            return index
    return n - 1


def derive_rng(seed: int, *labels: str) -> Random:
    """A child RNG deterministically derived from a seed and labels.

    Keeps per-app streams independent: consuming more randomness for one
    app never shifts another app's packets.
    """
    material = f"{seed}|" + "|".join(labels)
    return Random(material)
