"""The calibrated corpus: population + device + captured trace.

:func:`paper_corpus` reproduces the paper's experimental input at full
scale (1,188 apps, ~108k packets, ~22% sensitive); :func:`mini_corpus`
builds a proportionally scaled-down corpus for tests and quick examples.
The published headline figures are kept here as constants so benches and
tests can assert band tolerances against a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.app import Application
from repro.android.device import Device
from repro.android.market import AppMarket, MarketConfig
from repro.dataset.trace import Trace
from repro.sensitive.payload_check import PayloadCheck
from repro.simulation.collector import TrafficCollector
from repro.simulation.rng import derive_rng
from repro.simulation.session import SessionConfig

#: Published corpus-level figures (paper Sections III and V-A).
PAPER_TOTAL_APPS = 1188
PAPER_TOTAL_PACKETS = 107_859
PAPER_SENSITIVE_PACKETS = 23_309
PAPER_SENSITIVE_FRACTION = PAPER_SENSITIVE_PACKETS / PAPER_TOTAL_PACKETS  # ~0.216
PAPER_MEAN_DESTINATIONS = 7.9
PAPER_MAX_DESTINATIONS = 84

#: Published Table II rows: domain -> (packets, apps).
PAPER_TABLE2: dict[str, tuple[int, int]] = {
    "doubleclick.net": (5786, 407),
    "admob.com": (1299, 401),
    "google-analytics.com": (3098, 353),
    "gstatic.com": (1387, 333),
    "google.com": (3604, 308),
    "yahoo.co.jp": (1756, 287),
    "ggpht.com": (940, 281),
    "googlesyndication.com": (938, 244),
    "ad-maker.info": (3391, 195),
    "nend.net": (1368, 192),
    "mydas.mobi": (332, 164),
    "amoad.com": (583, 116),
    "flurry.com": (335, 119),
    "microad.jp": (868, 103),
    "adwhirl.com": (548, 102),
    "i-mobile.co.jp": (3729, 100),
    "adlantis.jp": (237, 98),
    "naver.jp": (3390, 82),
    "adimg.net": (315, 72),
    "mbga.jp": (1048, 63),
    "rakuten.co.jp": (502, 56),
    "fc2.com": (163, 52),
    "medibaad.com": (1162, 49),
    "mediba.jp": (427, 48),
    "mobclix.com": (260, 48),
    "gree.jp": (228, 45),
}

#: Published Table III rows: label -> (packets, apps, destinations).
PAPER_TABLE3: dict[str, tuple[int, int, int]] = {
    "ANDROID_ID": (7590, 21, 75),
    "ANDROID_ID MD5": (10058, 433, 21),
    "ANDROID_ID SHA1": (1247, 47, 12),
    "CARRIER": (2095, 135, 44),
    "IMEI": (3331, 171, 94),
    "IMEI MD5": (692, 59, 15),
    "IMEI SHA1": (1062, 51, 13),
    "IMSI": (655, 16, 22),
    "SIM_SERIAL": (369, 13, 18),
}


@dataclass
class Corpus:
    """A fully built experimental corpus.

    :param apps: the application population.
    :param device: the capture device (its identity is the ground truth).
    :param trace: the captured traffic.
    """

    apps: list[Application]
    device: Device
    trace: Trace

    def payload_check(self) -> PayloadCheck:
        """The ground-truth labeler for this corpus's device."""
        return PayloadCheck(self.device.identity)

    @property
    def n_apps(self) -> int:
        return len(self.apps)


def build_corpus(
    n_apps: int = PAPER_TOTAL_APPS,
    seed: int = 0,
    *,
    market_config: MarketConfig | None = None,
    session_config: SessionConfig | None = None,
) -> Corpus:
    """Build a corpus of ``n_apps`` applications.

    Permission mix, service adoption, and traffic rates all scale
    proportionally from the paper's 1,188-app reference, so the corpus
    statistics (sensitive fraction, fan-out shape, destination mass
    ranking) are size-invariant in expectation.
    """
    config = market_config or MarketConfig(n_apps=n_apps)
    market = AppMarket(config, seed=seed)
    apps = market.build()
    device = Device.generate(derive_rng(seed, "device"))
    collector = TrafficCollector(device, seed=seed, session_config=session_config)
    trace = collector.collect(apps)
    return Corpus(apps=apps, device=device, trace=trace)


def paper_corpus(seed: int = 0) -> Corpus:
    """The full-scale corpus matching the paper's experimental setup."""
    return build_corpus(PAPER_TOTAL_APPS, seed)


def mini_corpus(seed: int = 0, n_apps: int = 90) -> Corpus:
    """A small corpus for tests and examples (same shape, ~8% scale)."""
    return build_corpus(n_apps, seed)
