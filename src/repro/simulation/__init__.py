"""Traffic simulation: app sessions, capture, and the paper-scale corpus.

- :mod:`repro.simulation.rng` — seeded samplers (Poisson, Zipf),
- :mod:`repro.simulation.session` — one manual app run (5-15 sim-minutes),
- :mod:`repro.simulation.collector` — population capture into a trace,
- :mod:`repro.simulation.corpus` — the calibrated 1,188-app corpus.
"""

from repro.simulation.collector import TrafficCollector
from repro.simulation.corpus import Corpus, build_corpus, mini_corpus, paper_corpus
from repro.simulation.rng import poisson, zipf_sample
from repro.simulation.session import SessionConfig, SessionDriver
from repro.simulation.timeline import LongitudinalSimulator, Rollout
from repro.simulation.tls import adopt_tls, encrypt_packet

__all__ = [
    "poisson",
    "zipf_sample",
    "SessionDriver",
    "SessionConfig",
    "TrafficCollector",
    "Corpus",
    "build_corpus",
    "paper_corpus",
    "mini_corpus",
    "LongitudinalSimulator",
    "Rollout",
    "adopt_tls",
    "encrypt_packet",
]
