"""Population traffic capture.

The experiment harness: runs every application in a population through one
manual session on a device and collects the packets into a
:class:`~repro.dataset.trace.Trace` (the raw input to the Fig 3(a)
server).  Per-app RNG streams are derived independently from the corpus
seed, so adding or removing apps never perturbs the others' traffic.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.android.app import Application
from repro.android.device import Device
from repro.dataset.trace import Trace
from repro.simulation.rng import derive_rng
from repro.simulation.session import SessionConfig, SessionDriver


class TrafficCollector:
    """Captures the traffic of an application population.

    :param device: the handset to run on.
    :param seed: base seed for per-app RNG streams.
    :param session_config: traffic-volume knobs.
    """

    def __init__(
        self,
        device: Device,
        seed: int = 0,
        session_config: SessionConfig | None = None,
    ) -> None:
        self.device = device
        self.seed = seed
        self.driver = SessionDriver(device, session_config)

    def collect(
        self,
        apps: Sequence[Application],
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> Trace:
        """Run one session per app and return the combined trace.

        :param progress: optional ``(done, total)`` callback per app.
        """
        trace = Trace()
        total = len(apps)
        for index, app in enumerate(apps):
            rng = derive_rng(self.seed, "session", app.package)
            trace.extend(self.driver.run(app, rng))
            if progress is not None:
                progress(index + 1, total)
        return trace
