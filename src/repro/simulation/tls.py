"""TLS adoption: the paper's main stated limitation, made measurable.

"In this experiment, we were not concerned with encrypted packets ...
It can be difficult to detect sensitive information in SSL traffic."
In 2012 ad SDKs spoke plaintext HTTP; the decade after moved them to TLS.
This module lets an experiment *re-encrypt* a share of the corpus: an
encrypted packet still leaks (ground truth is unchanged — the identifier
is inside the ciphertext), but the on-path observer sees only the
destination (IP/port 443/SNI hostname) and an opaque byte blob.

:func:`encrypt_packet` produces what the observer records for one TLS
connection; :func:`adopt_tls` re-encrypts a deterministic fraction of a
trace's ad/analytics traffic, returning observer-view packets paired with
the ground-truth originals so detection floors can be measured.
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.http.message import HttpRequest
from repro.http.packet import Destination, HttpPacket
from repro.simulation.rng import derive_rng

#: Categories that actually migrated to TLS first (ad/analytics SDKs).
DEFAULT_TLS_CATEGORIES: frozenset[str] = frozenset({"ad", "analytics"})


def encrypt_packet(packet: HttpPacket, rng: Random) -> HttpPacket:
    """The observer's view of ``packet`` sent over TLS.

    Destination survives (IP, port rewritten to 443, SNI host); the
    request-line collapses to an opaque CONNECT-style record and the
    payload becomes ciphertext-shaped random hex of comparable length.
    ``meta['tls']`` marks the packet; provenance fields are kept so
    experiments can join back to ground truth.
    """
    ciphertext_len = max(32, len(packet.wire_bytes()))
    ciphertext = "".join(rng.choice("0123456789abcdef") for __ in range(min(ciphertext_len, 512)))
    request = HttpRequest(
        method="POST",
        target="/",
        headers=[("Host", packet.host)],
        body=ciphertext.encode("latin-1"),
    )
    observed = HttpPacket(
        destination=Destination(packet.destination.ip, 443, packet.host),
        request=request,
        app_id=packet.app_id,
        timestamp=packet.timestamp,
        meta={**packet.meta, "tls": True},
    )
    return observed


def adopt_tls(
    packets: Sequence[HttpPacket],
    adoption: float,
    *,
    seed: int = 0,
    categories: frozenset[str] = DEFAULT_TLS_CATEGORIES,
) -> list[HttpPacket]:
    """Observer-view copy of a trace after partial TLS adoption.

    Adoption is decided per *service* (an SDK migrates wholesale, not per
    request): each eligible service flips to TLS with probability
    ``adoption``, deterministically per (seed, service).  Packets outside
    the eligible categories pass through unchanged.

    :raises ValueError: for adoption outside [0, 1].
    """
    if not 0.0 <= adoption <= 1.0:
        raise ValueError(f"adoption must be within [0, 1], got {adoption}")
    migrated: dict[str, bool] = {}
    out: list[HttpPacket] = []
    for packet in packets:
        service = packet.meta.get("service", "")
        category = packet.meta.get("category", "")
        if category not in categories:
            out.append(packet)
            continue
        decided = migrated.get(service)
        if decided is None:
            decided = derive_rng(seed, "tls", service).random() < adoption
            migrated[service] = decided
        if decided:
            out.append(encrypt_packet(packet, derive_rng(seed, "cipher", packet.request.target)))
        else:
            out.append(packet)
    return out
