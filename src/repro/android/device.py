"""The simulated device: identifier providers behind the Binder.

Models the experiment hardware ("Galaxy Nexus S, Android 2.3.x"): one
device identity, a Binder instance, and permission-gated getters mirroring
``TelephonyManager`` / ``Settings.Secure``.  Ad modules call these getters
through their host application's manifest — a module can only leak what
the host app's permissions allow, which is exactly the coupling the
paper's Table I / Table III analysis exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.android.binder import Binder
from repro.android.permissions import Manifest
from repro.sensitive.identifiers import DeviceIdentity, IdentifierKind
from repro.sensitive.location import GeoPoint


@dataclass
class Device:
    """One simulated handset.

    :param identity: the sensitive identifier set of this device.
    :param binder: the reference monitor gating reads.
    :param location: the device's position (None = no GPS fix).
    :param model: handset model string (goes into User-Agent headers).
    :param android_version: OS version string (ditto).
    """

    identity: DeviceIdentity
    binder: Binder = field(default_factory=Binder)
    location: GeoPoint | None = None
    model: str = "Galaxy Nexus S"
    android_version: str = "2.3.6"

    @classmethod
    def generate(cls, rng: Random, *, audit: bool = False) -> "Device":
        """A device with a freshly sampled coherent identity and a fix in
        the greater Tokyo area (the study's locale)."""
        return cls(
            identity=DeviceIdentity.generate(rng),
            binder=Binder(audit=audit),
            location=GeoPoint.tokyo_area(rng),
        )

    # -- permission-gated getters (the Android API surface) -------------------

    def get_device_id(self, manifest: Manifest) -> str:
        """``TelephonyManager.getDeviceId()`` — the IMEI."""
        self.binder.require(manifest, "imei")
        return self.identity.imei

    def get_subscriber_id(self, manifest: Manifest) -> str:
        """``TelephonyManager.getSubscriberId()`` — the IMSI."""
        self.binder.require(manifest, "imsi")
        return self.identity.imsi

    def get_sim_serial_number(self, manifest: Manifest) -> str:
        """``TelephonyManager.getSimSerialNumber()`` — the ICCID."""
        self.binder.require(manifest, "sim_serial")
        return self.identity.sim_serial

    def get_network_operator_name(self, manifest: Manifest) -> str:
        """``TelephonyManager.getNetworkOperatorName()`` — the carrier."""
        self.binder.require(manifest, "carrier")
        return self.identity.carrier

    def get_android_id(self, manifest: Manifest) -> str:
        """``Settings.Secure.ANDROID_ID`` — no permission required."""
        self.binder.require(manifest, "android_id")
        return self.identity.android_id

    def get_last_known_location(self, manifest: Manifest) -> GeoPoint | None:
        """``LocationManager.getLastKnownLocation()`` — fine-location gated.

        Returns ``None`` when the device has no fix (as the real API does).
        """
        self.binder.require(manifest, "location")
        return self.location

    def read_identifier(self, manifest: Manifest, kind: IdentifierKind) -> str:
        """Generic gated read by identifier kind."""
        getter = {
            IdentifierKind.IMEI: self.get_device_id,
            IdentifierKind.IMSI: self.get_subscriber_id,
            IdentifierKind.SIM_SERIAL: self.get_sim_serial_number,
            IdentifierKind.CARRIER: self.get_network_operator_name,
            IdentifierKind.ANDROID_ID: self.get_android_id,
        }[kind]
        return getter(manifest)

    def can_read(self, manifest: Manifest, kind: IdentifierKind) -> bool:
        """Permission check without raising (for module capability probes)."""
        resource = {
            IdentifierKind.IMEI: "imei",
            IdentifierKind.IMSI: "imsi",
            IdentifierKind.SIM_SERIAL: "sim_serial",
            IdentifierKind.CARRIER: "carrier",
            IdentifierKind.ANDROID_ID: "android_id",
        }[kind]
        return self.binder.check(manifest, resource)

    @property
    def user_agent(self) -> str:
        """The Android WebView/HttpClient User-Agent of the era."""
        return (
            f"Mozilla/5.0 (Linux; U; Android {self.android_version}; ja-jp; "
            f"{self.model} Build/GRK39F) AppleWebKit/533.1 (KHTML, like Gecko) "
            "Version/4.0 Mobile Safari/533.1"
        )
