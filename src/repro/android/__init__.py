"""Simulated Android substrate.

The paper's dataset comes from 1,188 real applications running on a Galaxy
Nexus S; this package replaces the device and the application population
with faithful models:

- :mod:`repro.android.permissions` — the permission framework (Section II-B),
- :mod:`repro.android.binder` — the Binder reference monitor,
- :mod:`repro.android.device` — a device with its identifier providers,
- :mod:`repro.android.admodules` — advertisement-module libraries with
  per-network wire formats (the leak sources of Section III-B),
- :mod:`repro.android.webapi` — benign Web-API and content services,
- :mod:`repro.android.app` — the application model (manifest + behaviour),
- :mod:`repro.android.market` — population sampling matching Table I.
"""

from repro.android.app import Application
from repro.android.binder import Binder
from repro.android.device import Device
from repro.android.market import AppMarket
from repro.android.risk import RiskLevel, assess, risk_level
from repro.android.permissions import (
    DANGEROUS_INFO_PERMISSIONS,
    INTERNET,
    Manifest,
    Permission,
    PermissionCategory,
    classify_manifest,
)

__all__ = [
    "Permission",
    "PermissionCategory",
    "Manifest",
    "INTERNET",
    "DANGEROUS_INFO_PERMISSIONS",
    "classify_manifest",
    "Binder",
    "Device",
    "Application",
    "AppMarket",
    "RiskLevel",
    "assess",
    "risk_level",
]
