"""The application model: manifest + embedded services + behaviour.

An :class:`Application` is what the paper's experimenters downloaded from
Google Play: a package with declared permissions, zero or more embedded
advertisement modules ("several applications have multiple advertisement
modules"), analytics, shared Web APIs, its developer's own backend, and —
rarely — an embedded browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.android.permissions import Manifest
from repro.android.services import Service


@dataclass
class Application:
    """One installed application.

    :param package: unique package name (``jp.example.fungame``).
    :param manifest: declared permissions.
    :param services: shared services (ad modules, analytics, Web APIs)
        this app embeds; the per-service packet rate comes from the
        service's spec.
    :param own_services: the app's private backend(s).
    :param browser_services: sites reachable through an embedded WebView
        (empty for most apps).
    :param category: Play-store category label (cosmetic, used in reports).
    """

    package: str
    manifest: Manifest
    services: list[Service] = field(default_factory=list)
    own_services: list[Service] = field(default_factory=list)
    browser_services: list[Service] = field(default_factory=list)
    category: str = "entertainment"

    @property
    def ad_modules(self) -> list[Service]:
        """The embedded advertisement modules."""
        return [s for s in self.services if s.category == "ad"]

    def all_services(self) -> list[Service]:
        """Every service the app can contact during a session."""
        return [*self.services, *self.own_services, *self.browser_services]

    def destination_hosts(self) -> set[str]:
        """All FQDNs the app can possibly contact (upper bound of Fig 2)."""
        hosts: set[str] = set()
        for service in self.all_services():
            hosts.update(service.hosts)
        return hosts

    def session_duration(self, rng: Random) -> float:
        """Seconds of one manual run: the paper used 5 to 15 minutes."""
        return rng.uniform(5 * 60.0, 15 * 60.0)

    def __repr__(self) -> str:  # keep reprs short in test output
        return f"Application({self.package!r}, services={len(self.services)})"
