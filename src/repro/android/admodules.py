"""Advertisement-module and analytics-service catalog.

One :class:`~repro.android.services.ServiceSpec` per network the paper's
Table II lists, with wire formats modelled on the real 2012 SDKs:
identifiers ride in query strings (AdMaker, i-mobile), form bodies (AdMob,
Flurry), and cookies (MicroAd).  Adoption targets and per-app packet rates
are the published Table II columns, so corpus-level marginals match the
paper by construction.

Leak assignments follow Section III-B where the paper is explicit
("ad-maker.info, mydas.mobi, medibaad.com, and adlantis.jp expect IMEI and
Android ID; zqapk.com expects IMEI, SIM Serial ID and Carrier name;
googlesyndication.com and admob.com expect only Android ID") and are
inferred from Table III's per-identifier app/packet masses elsewhere.
Identifier reads go through the Binder, so a module embedded in an app
without ``READ_PHONE_STATE`` silently omits IMEI/IMSI/SIM/carrier — the
emergent effect that makes hashed-Android-ID the most common leak, exactly
as in Table III.
"""

from __future__ import annotations

from repro.android.services import Param, RequestTemplate, Service, ServiceSpec
from repro.sensitive.identifiers import IdentifierKind as IK
from repro.sensitive.transforms import Transform as TF

P = Param


def _spec(*args, **kwargs) -> ServiceSpec:
    return ServiceSpec(*args, **kwargs)


#: The AdMob/Google ads stack: one SDK, three registered domains.  Hashed
#: Android ID on every ad request -> the ANDROID_ID MD5 row of Table III.
ADMOB = _spec(
    name="admob",
    category="ad",
    hosts=("r.admob.com", "googleads.g.doubleclick.net", "pagead2.googlesyndication.com"),
    ip_base="173.194.41.0",
    adoption_target=410,
    packets_per_app=19.6,
    templates=(
        RequestTemplate(
            name="sdk_init",
            method="POST",
            path="/ad_source.php",
            host_index=0,
            body=(
                P.lit("v", "20110915-ANDROID-3312276cc1406347"),
                P("s", "app_token", length=32),
                P.ident("u", IK.ANDROID_ID, TF.MD5),
                P.lit("f", "jsonp"),
                P("pkg", "package"),
            ),
            once=True,
        ),
        RequestTemplate(
            name="banner",
            method="GET",
            path="/ad_frame.php",
            host_index=0,
            query=(
                P("s", "app_token", length=32),
                P.ident("u", IK.ANDROID_ID, TF.MD5, probability=0.9),
                P("seq", "sequence"),
                P.lit("f", "html"),
            ),
            weight=1.25,
        ),
        RequestTemplate(
            name="ad_request",
            method="GET",
            path="/mads/gma",
            host_index=1,
            query=(
                P.lit("preqs", "0"),
                P("u_w", "literal", literal="320"),
                P("u_h", "literal", literal="480"),
                P.lit("format", "320x50_mb"),
                P.lit("output", "html"),
                P("region", "literal", literal="mobile_app"),
                P("u_audio", "literal", literal="1"),
                P.ident("udid", IK.ANDROID_ID, TF.MD5, probability=0.99),
                P("uule_lat", "location_lat", probability=0.5),
                P("uule_lon", "location_lon", probability=0.5),
                P("app_name", "package"),
                P("hl", "locale"),
                P("ts", "timestamp"),
            ),
            weight=7.2,
        ),
        RequestTemplate(
            name="impression",
            method="GET",
            path="/pagead/adview",
            host_index=2,
            query=(
                P("ai", "random_hex", length=22),
                P("sigh", "random_hex", length=16),
                P.ident("cid", IK.ANDROID_ID, TF.MD5, probability=0.95),
            ),
            weight=2.6,
            app_gate=0.6,
        ),
        RequestTemplate(
            name="click_ping",
            method="GET",
            path="/aclk",
            host_index=1,
            query=(
                P("sa", "literal", literal="L"),
                P("ai", "random_hex", length=22),
                P("num", "sequence"),
                P("sig", "random_hex", length=27),
                P("adurl", "literal", literal="http%3A%2F%2Fexample.jp%2Fcp"),
            ),
            weight=0.9,
        ),
    ),
)

#: AdMaker (NOHANA): plain IMEI + plain Android ID in the query string —
#: the paper's canonical "expects IMEI and Android ID" module.
ADMAKER = _spec(
    name="admaker",
    category="ad",
    hosts=("api.ad-maker.info", "img.ad-maker.info"),
    ip_base="219.94.128.0",
    adoption_target=195,
    packets_per_app=17.4,
    templates=(
        RequestTemplate(
            name="begin_session",
            method="GET",
            path="/api/v2/session",
            query=(
                P("sid", "app_token", length=24),
                P.ident("imei", IK.IMEI),
                P.ident("aid", IK.ANDROID_ID),
                P("ver", "literal", literal="2.4.1"),
            ),
            once=True,
        ),
        RequestTemplate(
            name="imp",
            method="GET",
            path="/api/v2/imp",
            query=(
                P("sid", "app_token", length=24),
                P.ident("imei", IK.IMEI, probability=0.95),
                P.ident("aid", IK.ANDROID_ID, probability=0.95),
                P("frame", "literal", literal="banner"),
                P("seq", "sequence"),
            ),
            weight=5.0,
        ),
        RequestTemplate(
            name="creative",
            method="GET",
            path="/creatives/current.png",
            host_index=1,
            query=(P("c", "random_hex", length=12),),
            weight=2.2,
        ),
    ),
)

#: nend (F@N Communications): plain Android ID with an API key.
NEND = _spec(
    name="nend",
    category="ad",
    hosts=("output.nend.net", "img.nend.net"),
    ip_base="54.248.92.0",
    adoption_target=192,
    packets_per_app=7.1,
    templates=(
        RequestTemplate(
            name="na",
            method="GET",
            path="/na.php",
            query=(
                P("apikey", "app_token", length=40),
                P("spot", "app_token", length=6),
                P.ident("uid", IK.ANDROID_ID, probability=0.95),
                P.ident("um", IK.ANDROID_ID, TF.MD5, app_gate=0.5, probability=0.9),
                P.lit("gaid", ""),
                P("dev", "literal", literal="android"),
            ),
            weight=4.0,
        ),
        RequestTemplate(
            name="banner_img",
            method="GET",
            path="/img/banner_320x50.gif",
            host_index=1,
            query=(P("t", "timestamp"),),
            weight=2.0,
        ),
    ),
)

#: Millennial Media (mydas.mobi): IMEI + Android ID, both plain.
MYDAS = _spec(
    name="mydas",
    category="ad",
    hosts=("ads.mydas.mobi",),
    ip_base="216.157.48.0",
    adoption_target=164,
    packets_per_app=2.0,
    templates=(
        RequestTemplate(
            name="getad",
            method="GET",
            path="/getAd.php5",
            query=(
                P("apid", "app_token", length=5),
                P.ident("auid", IK.IMEI, probability=0.9),
                P.ident("uuid", IK.ANDROID_ID, probability=0.95),
                P.lit("accelerate", "true"),
                P("ua", "literal", literal="android"),
                P("hsht", "literal", literal="480"),
                P("hswd", "literal", literal="320"),
            ),
            weight=1.0,
        ),
    ),
)

#: AMoAd: Android ID and carrier name in a form body.
AMOAD = _spec(
    name="amoad",
    category="ad",
    hosts=("d.amoad.com",),
    ip_base="49.212.34.0",
    adoption_target=116,
    packets_per_app=5.0,
    templates=(
        RequestTemplate(
            name="ad",
            method="POST",
            path="/4/sp/json",
            body=(
                P("sid", "app_token", length=32),
                P.ident("aid", IK.ANDROID_ID, probability=0.95),
                P.ident("carrier", IK.CARRIER, probability=0.95),
                P("glat", "location_lat", probability=0.4),
                P("glon", "location_lon", probability=0.4),
                P("lang", "locale"),
                P("appver", "literal", literal="1.2"),
            ),
            weight=1.0,
        ),
    ),
)

#: Flurry analytics: SHA1 of the Android ID plus carrier, POSTed in bulk
#: reports.  The ``app_gate`` models that only some integrations enable
#: device-id reporting, keeping the Table III app count for SHA1 low.
FLURRY = _spec(
    name="flurry",
    category="analytics",
    hosts=("data.flurry.com",),
    ip_base="74.6.152.0",
    adoption_target=119,
    packets_per_app=2.8,
    templates=(
        RequestTemplate(
            name="report",
            method="POST",
            path="/aap.do",
            body=(
                P("apiKey", "app_token", length=20),
                P.ident("sha1Id", IK.ANDROID_ID, TF.SHA1, app_gate=0.4),
                P.ident("md5Id", IK.ANDROID_ID, TF.MD5, app_gate=0.55, probability=0.9),
                P.ident("carrier", IK.CARRIER, probability=0.95),
                P("session", "session_token", length=16),
                P("events", "random_hex", length=64),
                P("ts", "timestamp"),
            ),
            weight=1.0,
        ),
    ),
)

#: MicroAd: Android ID carried in a *cookie*, carrier in the query —
#: exercises the cookie component of the content distance.
MICROAD = _spec(
    name="microad",
    category="ad",
    hosts=("send.microad.jp", "cache.microad.jp"),
    ip_base="210.129.74.0",
    adoption_target=103,
    packets_per_app=8.4,
    templates=(
        RequestTemplate(
            name="send",
            method="GET",
            path="/js/blade.js",
            query=(
                P("spot", "app_token", length=12),
                P.ident("car", IK.CARRIER, probability=0.95),
                P("url", "package"),
            ),
            cookies=(
                P("msid", "session_token", length=26),
                P.ident("muid", IK.ANDROID_ID, probability=0.9),
            ),
            weight=3.0,
        ),
        RequestTemplate(
            name="beacon",
            method="GET",
            path="/b.gif",
            host_index=1,
            query=(P("r", "random_digits", length=10),),
            cookies=(P("msid", "session_token", length=26),),
            weight=1.2,
        ),
    ),
)

#: AdWhirl mediation: MD5 of IMEI (permission-gated) — the IMEI MD5 row.
ADWHIRL = _spec(
    name="adwhirl",
    category="ad",
    hosts=("met.adwhirl.com", "cus.adwhirl.com"),
    ip_base="174.129.14.0",
    adoption_target=102,
    packets_per_app=5.4,
    templates=(
        RequestTemplate(
            name="config",
            method="GET",
            path="/getInfo.php",
            host_index=1,
            query=(
                P("appid", "app_token", length=32),
                P("appver", "literal", literal="300"),
                P("client", "literal", literal="2"),
            ),
            once=True,
        ),
        RequestTemplate(
            name="metric",
            method="GET",
            path="/exmet.php",
            query=(
                P("appid", "app_token", length=32),
                P("nid", "random_hex", length=32),
                P("type", "literal", literal="1"),
                P.ident("uuid", IK.IMEI, TF.MD5, probability=0.95),
                P.ident("dt", IK.ANDROID_ID, TF.MD5, probability=0.9),
                P("country_code", "locale"),
            ),
            weight=1.0,
        ),
    ),
)

#: i-mobile: high request volume, SHA1 of IMEI where permitted plus SHA1 of
#: the Android ID for a minority of integrations.
IMOBILE = _spec(
    name="imobile",
    category="ad",
    hosts=("spad.i-mobile.co.jp", "spimg.i-mobile.co.jp"),
    ip_base="210.149.118.0",
    adoption_target=100,
    packets_per_app=37.3,
    templates=(
        RequestTemplate(
            name="ad",
            method="GET",
            path="/ad_link.ashx",
            query=(
                P("pid", "app_token", length=5),
                P("asid", "app_token", length=6),
                P.ident("dtk", IK.IMEI, TF.SHA1, probability=0.6),
                P.ident("car", IK.CARRIER, probability=0.3),
                P.ident("atk", IK.ANDROID_ID, TF.SHA1, app_gate=0.35, probability=0.8),
                P("w", "literal", literal="320"),
                P("h", "literal", literal="50"),
                P("seq", "sequence"),
            ),
            weight=3.0,
        ),
        RequestTemplate(
            name="img",
            method="GET",
            path="/image.ashx",
            host_index=1,
            query=(P("i", "random_hex", length=20),),
            weight=2.0,
        ),
    ),
)

#: AdLantis: IMEI and Android ID, plain, in the query.
ADLANTIS = _spec(
    name="adlantis",
    category="ad",
    hosts=("sp.adlantis.jp",),
    ip_base="203.211.13.0",
    adoption_target=98,
    packets_per_app=2.4,
    templates=(
        RequestTemplate(
            name="sp_ad",
            method="GET",
            path="/sp/load_app",
            query=(
                P("publisher", "app_token", length=16),
                P.ident("imei", IK.IMEI, probability=0.9),
                P.ident("android_id", IK.ANDROID_ID, probability=0.9),
                P("lat", "location_lat", probability=0.5),
                P("lon", "location_lon", probability=0.5),
                P("ver", "literal", literal="1.3.2"),
            ),
            weight=1.0,
        ),
    ),
)

#: mediba ad (medibaad.com): heavy per-app volume, IMEI + Android ID.
MEDIBAAD = _spec(
    name="medibaad",
    category="ad",
    hosts=("ad.medibaad.com", "img.medibaad.com"),
    ip_base="210.173.178.0",
    adoption_target=49,
    packets_per_app=23.7,
    templates=(
        RequestTemplate(
            name="ad",
            method="GET",
            path="/sdk/get",
            query=(
                P("sid", "app_token", length=10),
                P.ident("ime", IK.IMEI, probability=0.9),
                P.ident("adr", IK.ANDROID_ID, probability=0.9),
                P("net", "literal", literal="wifi"),
                P("seq", "sequence"),
            ),
            weight=3.0,
        ),
        RequestTemplate(
            name="img",
            method="GET",
            path="/sdk/img",
            host_index=1,
            query=(P("b", "random_hex", length=14),),
            weight=2.0,
        ),
    ),
)

#: Mobclix exchange: SHA1 Android ID plus MD5 IMEI.
MOBCLIX = _spec(
    name="mobclix",
    category="ad",
    hosts=("ads.mobclix.com",),
    ip_base="205.186.187.0",
    adoption_target=48,
    packets_per_app=5.4,
    templates=(
        RequestTemplate(
            name="va",
            method="GET",
            path="/1/va/banner",
            query=(
                P("p", "literal", literal="android"),
                P("aid", "app_token", length=36),
                P.ident("d", IK.ANDROID_ID, TF.SHA1, probability=0.9),
                P.ident("hwdid", IK.IMEI, TF.MD5, probability=0.9),
                P("s", "session_token", length=32),
            ),
            weight=1.0,
        ),
    ),
)

#: adimg.net: an ad-image/affiliate network sending SHA1 Android IDs.
ADIMG = _spec(
    name="adimg",
    category="ad",
    hosts=("cdn.adimg.net",),
    ip_base="203.104.105.0",
    adoption_target=72,
    packets_per_app=4.4,
    templates=(
        RequestTemplate(
            name="ad",
            method="GET",
            path="/aimg/sp",
            query=(
                P("m", "app_token", length=8),
                P.ident("u", IK.ANDROID_ID, TF.SHA1, app_gate=0.3, probability=0.9),
                P("z", "random_hex", length=8),
            ),
            weight=1.0,
        ),
    ),
)

#: zqapk.com: the paper's example expecting "IMEI, SIM Serial ID, and
#: Carrier name" — a small Chinese app-store SDK; few apps, distinctive
#: payload.  Drives the SIM_SERIAL and IMSI rows of Table III.
ZQAPK = _spec(
    name="zqapk",
    category="ad",
    hosts=("stat.zqapk.com",),
    ip_base="122.200.67.0",
    adoption_target=18,
    packets_per_app=45.0,
    templates=(
        RequestTemplate(
            name="stat",
            method="POST",
            path="/c/collect",
            body=(
                P("chan", "app_token", length=6),
                P.ident("imei", IK.IMEI, probability=0.95),
                P.ident("iccid", IK.SIM_SERIAL, probability=0.9),
                P.ident("imsi", IK.IMSI, probability=0.95),
                P.ident("op", IK.CARRIER, probability=0.9),
                P("sv", "literal", literal="1.6"),
                P("pkg", "package"),
            ),
            weight=1.0,
        ),
    ),
)

#: Mobage platform core (mbga.jp): platform apps report IMSI for carrier
#: billing; only the platform's own titles (few apps) do this.
MBGA_CORE = _spec(
    name="mbga_core",
    category="webapi",
    hosts=("sp.mbga.jp", "ssl-sp.mbga.jp"),
    ip_base="202.238.103.0",
    adoption_target=18,
    packets_per_app=30.0,
    templates=(
        RequestTemplate(
            name="auth",
            method="POST",
            path="/_sdk_auth",
            body=(
                P("app_id", "app_token", length=10),
                P.ident("imsi", IK.IMSI, probability=0.75),
                P.ident("iccid", IK.SIM_SERIAL, probability=0.35),
                P("token", "session_token", length=40),
            ),
            once=True,
        ),
        RequestTemplate(
            name="api",
            method="GET",
            path="/api/restful/v1/people/@me",
            query=(P("oauth_nonce", "random_hex", length=16), P("oauth_timestamp", "timestamp")),
            cookies=(P("sp_sid", "session_token", length=32),),
            weight=1.0,
        ),
    ),
)

#: All advertisement / analytics / platform-SDK services.
AD_SERVICES: tuple[ServiceSpec, ...] = (
    ADMOB,
    ADMAKER,
    NEND,
    MYDAS,
    AMOAD,
    FLURRY,
    MICROAD,
    ADWHIRL,
    IMOBILE,
    ADLANTIS,
    MEDIBAAD,
    MOBCLIX,
    ADIMG,
    ZQAPK,
    MBGA_CORE,
)


def build_ad_services() -> list[Service]:
    """Instantiate the full ad/analytics catalog."""
    return [Service(spec) for spec in AD_SERVICES]
