"""Data-driven network service models (wire-format engine).

Every destination an application talks to — an advertisement network, an
analytics service, a Web API, a content host — is described by a
:class:`ServiceSpec`: its hosts, IP plan, request templates, and leak
profile.  :class:`Service` turns specs into concrete
:class:`~repro.http.packet.HttpPacket` objects during a simulated session.

The template language is deliberately small: a request is a method, a path,
and three parameter lists (query, body, cookies) whose values come from
:class:`ValueSource` kinds — literals, device identifiers (gated through
the Binder), per-app or per-session tokens, random material, timestamps.
This is enough to model the real SDK wire formats the paper observed
(identifiers in query strings, form bodies, and cookies) while keeping the
catalog of ~30 services declarative and auditable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING

from repro.errors import PermissionDenied, SimulationError
from repro.http.cookies import format_cookies
from repro.http.message import HttpRequest
from repro.http.packet import Destination, HttpPacket
from repro.http.url import percent_encode
from repro.net.ipv4 import IPv4Address
from repro.sensitive.identifiers import IdentifierKind
from repro.sensitive.transforms import Transform, transform_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.android.app import Application
    from repro.android.device import Device


class ValueSource:
    """Factory namespace for parameter value specifications."""

    LITERAL = "literal"
    IDENTIFIER = "identifier"
    APP_TOKEN = "app_token"  # stable per (service, app) — an app install id
    SESSION_TOKEN = "session_token"  # stable within one run of the app
    RANDOM_HEX = "random_hex"  # fresh every request
    RANDOM_DIGITS = "random_digits"
    PACKAGE = "package"  # the host application's package name
    TIMESTAMP = "timestamp"  # simulated epoch milliseconds
    SEQUENCE = "sequence"  # per-session increasing counter
    LOCALE = "locale"
    LOCATION_LAT = "location_lat"  # device latitude (fine-location gated)
    LOCATION_LON = "location_lon"  # device longitude (ditto)


@dataclass(frozen=True, slots=True)
class Param:
    """One wire parameter.

    :param key: parameter name as it appears on the wire.
    :param source: a :class:`ValueSource` kind.
    :param literal: the value for LITERAL sources.
    :param identifier: identifier kind for IDENTIFIER sources.
    :param transform: hash transform applied to an identifier.
    :param length: length of generated random/token material.
    :param probability: chance the parameter is present at all (models
        optional fields SDKs include conditionally).
    :param app_gate: fraction of adopting apps whose build/config includes
        this parameter at all; decided deterministically per (app, key).
        Models SDK versions and integration options — the mechanism behind
        the paper's Table III "# Apps" being much smaller than a service's
        total adoption for some identifier kinds.
    """

    key: str
    source: str = ValueSource.LITERAL
    literal: str = ""
    identifier: IdentifierKind | None = None
    transform: Transform = Transform.PLAIN
    length: int = 16
    probability: float = 1.0
    app_gate: float = 1.0

    @classmethod
    def lit(cls, key: str, value: str) -> "Param":
        return cls(key, ValueSource.LITERAL, literal=value)

    @classmethod
    def ident(
        cls,
        key: str,
        kind: IdentifierKind,
        transform: Transform = Transform.PLAIN,
        probability: float = 1.0,
        app_gate: float = 1.0,
    ) -> "Param":
        return cls(
            key,
            ValueSource.IDENTIFIER,
            identifier=kind,
            transform=transform,
            probability=probability,
            app_gate=app_gate,
        )


@dataclass(frozen=True, slots=True)
class RequestTemplate:
    """One request shape a service can emit.

    :param name: event label ("ad_request", "imp", "track"...), recorded in
        packet metadata for ground-truth debugging.
    :param method: GET or POST.
    :param path: URL path (no query string; query comes from ``query``).
    :param host_index: which of the service's hosts receives this request.
    :param query: query-string parameters.
    :param body: form-body parameters (POST only).
    :param cookies: cookie parameters.
    :param weight: relative frequency among the service's repeating events.
    :param once: emitted exactly once per session (SDK init beacons).
    :param app_gate: fraction of adopting apps whose integration uses this
        request shape at all (deterministic per app) — models optional SDK
        features only some apps enable, which is how a service's secondary
        hosts end up with fewer apps than its primary (Table II).
    """

    name: str
    method: str
    path: str
    host_index: int = 0
    query: tuple[Param, ...] = ()
    body: tuple[Param, ...] = ()
    cookies: tuple[Param, ...] = ()
    weight: float = 1.0
    once: bool = False
    app_gate: float = 1.0


@dataclass(frozen=True)
class ServiceSpec:
    """Full static description of one network service.

    :param name: short service id ("admob", "nend", ...).
    :param category: "ad", "analytics", "webapi", or "content".
    :param hosts: FQDNs the service answers on; index 0 is the primary.
    :param ip_base: dotted-quad base of the operator's address block; each
        host gets a stable address inside it (same org => close addresses,
        which is what the paper's ``d_ip`` exploits).
    :param ip_prefix: prefix length of the operator's block.
    :param templates: the request shapes.
    :param adoption_target: how many of the 1,188 corpus apps embed this
        service (Table II's "# Apps" column).
    :param packets_per_app: mean packets one app sends this service per
        session (Table II's "# Packets" / "# Apps").
    """

    name: str
    category: str
    hosts: tuple[str, ...]
    ip_base: str
    ip_prefix: int = 24
    templates: tuple[RequestTemplate, ...] = ()
    adoption_target: int = 0
    packets_per_app: float = 1.0

    def __post_init__(self) -> None:
        if not self.hosts:
            raise SimulationError(f"service {self.name} declares no hosts")
        for template in self.templates:
            if not 0 <= template.host_index < len(self.hosts):
                raise SimulationError(
                    f"service {self.name} template {template.name} references host "
                    f"{template.host_index} but only {len(self.hosts)} hosts exist"
                )


def _stable_offset(text: str, modulus: int) -> int:
    """Deterministic small integer derived from a string (not RNG-seeded,
    so host -> IP is stable across corpora)."""
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % modulus


class Service:
    """A live service instance: spec + deterministic IP assignment.

    :param spec: the static description.
    """

    def __init__(self, spec: ServiceSpec) -> None:
        self.spec = spec
        base = IPv4Address.parse(spec.ip_base)
        span = 1 << (32 - spec.ip_prefix)
        self._host_ips: dict[str, IPv4Address] = {}
        for host in spec.hosts:
            offset = _stable_offset(host, span - 2) + 1
            self._host_ips[host] = IPv4Address((base.value & ~(span - 1)) + offset)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def category(self) -> str:
        return self.spec.category

    @property
    def hosts(self) -> tuple[str, ...]:
        return self.spec.hosts

    def ip_for(self, host: str) -> IPv4Address:
        """The stable IPv4 address serving ``host``."""
        return self._host_ips[host]

    # -- packet construction ---------------------------------------------------

    def session_packets(
        self,
        app: "Application",
        device: "Device",
        rng: Random,
        count: int,
        *,
        start_time: float = 0.0,
        duration: float = 600.0,
    ) -> list[HttpPacket]:
        """Emit ``count`` packets for one app session.

        ``once`` templates fire first (at most once each); the remainder are
        sampled by weight.  Timestamps are spread uniformly over the
        session duration and sorted.
        """
        if count <= 0:
            return []
        state = _SessionState(app=app, device=device, rng=rng)
        templates = [
            t for t in self.spec.templates
            if t.app_gate >= 1.0 or _template_gate_open(self.name, app.package, t)
        ]
        chosen: list[RequestTemplate] = []
        once_templates = [t for t in templates if t.once]
        repeating = [t for t in templates if not t.once]
        for template in once_templates:
            if len(chosen) < count:
                chosen.append(template)
        if repeating:
            weights = [t.weight for t in repeating]
            while len(chosen) < count:
                chosen.append(rng.choices(repeating, weights=weights)[0])
        elif not chosen:
            return []
        times = sorted(start_time + rng.random() * duration for __ in chosen)
        return [
            self.build_packet(template, state, timestamp)
            for template, timestamp in zip(chosen, times)
        ]

    def build_packet(
        self, template: RequestTemplate, state: "_SessionState", timestamp: float = 0.0
    ) -> HttpPacket:
        """Instantiate one template into a concrete packet."""
        host = self.spec.hosts[template.host_index]
        query_pairs = state.render(template.query, timestamp)
        body_pairs = state.render(template.body, timestamp)
        cookie_pairs = state.render(template.cookies, timestamp)
        target = template.path
        if query_pairs:
            encoded = "&".join(f"{k}={percent_encode(v)}" for k, v in query_pairs)
            target = f"{template.path}?{encoded}"
        headers: list[tuple[str, str]] = [
            ("Host", host),
            ("User-Agent", state.device.user_agent),
            ("Accept", "*/*"),
            ("Connection", "keep-alive"),
        ]
        if cookie_pairs:
            headers.append(("Cookie", format_cookies(cookie_pairs)))
        body = b""
        method = template.method
        if body_pairs:
            method = "POST"
            body = "&".join(f"{k}={percent_encode(v)}" for k, v in body_pairs).encode("latin-1")
            headers.append(("Content-Type", "application/x-www-form-urlencoded"))
            headers.append(("Content-Length", str(len(body))))
        request = HttpRequest(
            method=method, target=target, version="HTTP/1.1", headers=headers, body=body
        )
        destination = Destination(self.ip_for(host), 80, host)
        return HttpPacket(
            destination=destination,
            request=request,
            app_id=state.app.package,
            timestamp=timestamp,
            meta={"service": self.name, "event": template.name, "category": self.category},
        )


def _template_gate_open(service_name: str, package: str, template: RequestTemplate) -> bool:
    """Deterministic per-(service, app, template) coin for template gating."""
    seed = f"{service_name}|{package}|{template.name}"
    digest = hashlib.md5(seed.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 2**32 < template.app_gate


@dataclass
class _SessionState:
    """Per-session value generation context (tokens, counters)."""

    app: "Application"
    device: "Device"
    rng: Random
    sequence: int = 0
    _session_tokens: dict[str, str] = field(default_factory=dict)

    def render(self, params: tuple[Param, ...], timestamp: float) -> list[tuple[str, str]]:
        """Materialize a parameter list; absent/forbidden params are skipped."""
        pairs: list[tuple[str, str]] = []
        for param in params:
            if param.app_gate < 1.0 and not self._app_gate_open(param):
                continue
            if param.probability < 1.0 and self.rng.random() >= param.probability:
                continue
            value = self._value(param, timestamp)
            if value is None:
                continue
            pairs.append((param.key, value))
        return pairs

    def _app_gate_open(self, param: Param) -> bool:
        """Deterministic per-app coin for ``app_gate`` (stable across runs)."""
        seed = f"{self.app.package}|{param.key}|{param.identifier}|{param.transform}"
        digest = hashlib.md5(seed.encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2**32
        return fraction < param.app_gate

    def _value(self, param: Param, timestamp: float) -> str | None:
        source = param.source
        if source == ValueSource.LITERAL:
            return param.literal
        if source == ValueSource.IDENTIFIER:
            if param.identifier is None:
                raise SimulationError(f"param {param.key} has no identifier kind")
            try:
                raw = self.device.read_identifier(self.app.manifest, param.identifier)
            except PermissionDenied:
                # Real SDKs catch SecurityException and send what they can.
                return None
            return transform_value(raw, param.transform)
        if source == ValueSource.APP_TOKEN:
            seed = f"{self.app.package}:{param.key}"
            return hashlib.md5(seed.encode("utf-8")).hexdigest()[: param.length]
        if source == ValueSource.SESSION_TOKEN:
            token = self._session_tokens.get(param.key)
            if token is None:
                token = "".join(self.rng.choice("0123456789abcdef") for __ in range(param.length))
                self._session_tokens[param.key] = token
            return token
        if source == ValueSource.RANDOM_HEX:
            return "".join(self.rng.choice("0123456789abcdef") for __ in range(param.length))
        if source == ValueSource.RANDOM_DIGITS:
            return "".join(self.rng.choice("0123456789") for __ in range(param.length))
        if source == ValueSource.PACKAGE:
            return self.app.package
        if source == ValueSource.TIMESTAMP:
            return str(int(1_330_000_000_000 + timestamp * 1000))
        if source == ValueSource.SEQUENCE:
            self.sequence += 1
            return str(self.sequence)
        if source == ValueSource.LOCALE:
            return "ja_JP"
        if source in (ValueSource.LOCATION_LAT, ValueSource.LOCATION_LON):
            fix = self._session_location()
            if fix is None:
                return None
            lat, lon = fix
            return lat if source == ValueSource.LOCATION_LAT else lon
        raise SimulationError(f"unknown value source {source!r}")

    def _session_location(self) -> tuple[str, str] | None:
        """One jittered GPS fix per session, or ``None`` when the host app
        lacks the location permission (SDKs catch the SecurityException)."""
        cached = self._session_tokens.get("__location__")
        if cached is not None:
            if cached == "denied":
                return None
            lat, __, lon = cached.partition(",")
            return lat, lon
        try:
            fix = self.device.get_last_known_location(self.app.manifest)
        except PermissionDenied:
            fix = None
        if fix is None:
            self._session_tokens["__location__"] = "denied"
            return None
        lat, lon = fix.jittered(self.rng).wire_format()
        self._session_tokens["__location__"] = f"{lat},{lon}"
        return lat, lon
