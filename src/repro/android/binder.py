"""The Binder reference monitor (paper Section II-A).

"The Binder takes charge of the reference monitor to manage the
application's request [and] verifies that the application has the
appropriate permissions to bind to the requested resource."  The simulated
Binder gates every sensitive-resource read an application (or an ad module
running inside it) performs, raising :class:`~repro.errors.PermissionDenied`
on a missing permission — exactly the sandboxing boundary the paper relies
on for its threat model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.permissions import (
    ACCESS_COARSE_LOCATION,
    ACCESS_FINE_LOCATION,
    INTERNET,
    Manifest,
    Permission,
    READ_CONTACTS,
    READ_PHONE_STATE,
)
from repro.errors import PermissionDenied

#: Resource name -> permission required to read it.  Mirrors the Android
#: API: TelephonyManager getters need READ_PHONE_STATE, Settings.Secure
#: ANDROID_ID is world-readable, the carrier name needs phone state, etc.
RESOURCE_PERMISSIONS: dict[str, Permission | None] = {
    "imei": READ_PHONE_STATE,
    "imsi": READ_PHONE_STATE,
    "sim_serial": READ_PHONE_STATE,
    "carrier": READ_PHONE_STATE,
    "android_id": None,  # readable without any permission (the 2012 reality)
    "location": ACCESS_FINE_LOCATION,
    "coarse_location": ACCESS_COARSE_LOCATION,
    "contacts": READ_CONTACTS,
    "network": INTERNET,
}


@dataclass(slots=True)
class AccessRecord:
    """One audited resource access (granted or denied)."""

    package: str
    resource: str
    granted: bool


@dataclass
class Binder:
    """Permission-checked resource broker with an audit log.

    :param audit: when true, every check is recorded in :attr:`log` —
        useful in tests asserting that ad modules only read what the host
        app's manifest allows.
    """

    audit: bool = False
    log: list[AccessRecord] = field(default_factory=list)

    def check(self, manifest: Manifest, resource: str) -> bool:
        """Whether ``manifest`` may access ``resource`` (no exception)."""
        try:
            required = RESOURCE_PERMISSIONS[resource]
        except KeyError:
            raise PermissionDenied(manifest.package, f"<unknown resource {resource}>") from None
        if required is None:
            granted = True
        elif resource == "location":
            # Fine location is also satisfied by... nothing else; but the
            # coarse permission grants coarse reads only.
            granted = manifest.holds(required)
        else:
            granted = manifest.holds(required)
        if self.audit:
            self.log.append(AccessRecord(manifest.package, resource, granted))
        return granted

    def require(self, manifest: Manifest, resource: str) -> None:
        """Raise :class:`PermissionDenied` unless access is allowed."""
        if not self.check(manifest, resource):
            required = RESOURCE_PERMISSIONS[resource]
            raise PermissionDenied(manifest.package, str(required))

    def denials(self) -> list[AccessRecord]:
        """Audited accesses that were refused."""
        return [record for record in self.log if not record.granted]
