"""Benign Web-API and content services, plus app-specific backends.

These populate the *normal* group of the dataset: search/API calls, image
and static-asset fetches, analytics beacons that carry only random client
ids.  They share destination space (and sometimes registered domains) with
the ad modules, which is what makes the detection problem non-trivial —
"googlesyndication.com" ad requests and "google.com" API calls are 16 IP
bits apart.
"""

from __future__ import annotations

from random import Random

from repro.android.services import Param, RequestTemplate, Service, ServiceSpec
from repro.sensitive.identifiers import IdentifierKind as IK
from repro.sensitive.transforms import Transform as TF

P = Param

GOOGLE_ANALYTICS = ServiceSpec(
    name="google_analytics",
    category="analytics",
    hosts=("www.google-analytics.com", "ssl.google-analytics.com"),
    ip_base="173.194.38.0",
    adoption_target=353,
    packets_per_app=8.8,
    templates=(
        RequestTemplate(
            name="utm",
            method="GET",
            path="/__utm.gif",
            query=(
                P("utmwv", "literal", literal="4.8.1ma"),
                P("utmn", "random_digits", length=10),
                P("utmcs", "literal", literal="UTF-8"),
                P("utmsr", "literal", literal="480x800"),
                P("utmac", "app_token", length=12),
                P("utmcc", "session_token", length=32),
                P("utme", "random_hex", length=18, probability=0.4),
            ),
            weight=1.0,
        ),
    ),
)

GOOGLE_API = ServiceSpec(
    name="google_api",
    category="webapi",
    hosts=("www.google.com", "maps.google.com", "ajax.googleapis.com"),
    ip_base="173.194.39.0",
    adoption_target=308,
    packets_per_app=11.7,
    templates=(
        RequestTemplate(
            name="search",
            method="GET",
            path="/m/search",
            query=(P("q", "random_hex", length=8), P("hl", "locale"), P("client", "literal", literal="ms-android")),
            weight=2.0,
        ),
        RequestTemplate(
            name="maps_tile",
            method="GET",
            path="/maps/api/staticmap",
            host_index=1,
            query=(
                P("center", "random_digits", length=7),
                P("zoom", "literal", literal="14"),
                P("size", "literal", literal="320x320"),
                P("sensor", "literal", literal="true"),
            ),
            weight=1.5,
        ),
        RequestTemplate(
            name="jsapi",
            method="GET",
            path="/ajax/libs/jquery/1.7.1/jquery.min.js",
            host_index=2,
            weight=0.8,
        ),
    ),
)

GSTATIC = ServiceSpec(
    name="gstatic",
    category="content",
    hosts=("t0.gstatic.com", "csi.gstatic.com"),
    ip_base="173.194.40.0",
    adoption_target=333,
    packets_per_app=4.2,
    templates=(
        RequestTemplate(
            name="asset",
            method="GET",
            path="/images",
            query=(P("q", "random_hex", length=24),),
            weight=2.0,
        ),
        RequestTemplate(
            name="csi",
            method="GET",
            path="/csi",
            host_index=1,
            query=(P("v", "literal", literal="3"), P("s", "package"), P("rt", "random_digits", length=6)),
            weight=1.0,
        ),
    ),
)

GGPHT = ServiceSpec(
    name="ggpht",
    category="content",
    hosts=("lh3.ggpht.com", "lh4.ggpht.com"),
    ip_base="173.194.42.0",
    adoption_target=281,
    packets_per_app=3.3,
    templates=(
        RequestTemplate(
            name="thumb",
            method="GET",
            path="/thumbnails",
            query=(P("id", "random_hex", length=28),),
            weight=1.0,
        ),
        RequestTemplate(
            name="thumb4",
            method="GET",
            path="/thumbnails",
            host_index=1,
            query=(P("id", "random_hex", length=28),),
            weight=0.7,
        ),
    ),
)

YAHOO_JP = ServiceSpec(
    name="yahoo_jp",
    category="webapi",
    hosts=("search.mobile.yahoo.co.jp", "i.yimg.jp"),
    ip_base="124.83.187.0",
    adoption_target=287,
    packets_per_app=6.1,
    templates=(
        RequestTemplate(
            name="api",
            method="GET",
            path="/onesearch",
            query=(
                P("appid", "app_token", length=20),
                P("query", "random_hex", length=6),
                P("results", "literal", literal="20"),
            ),
            weight=2.0,
        ),
        RequestTemplate(
            name="img",
            method="GET",
            path="/images/top/sp/logo.png",
            host_index=1,
            weight=1.0,
        ),
    ),
)

NAVER_JP = ServiceSpec(
    name="naver_jp",
    category="content",
    hosts=("m.naver.jp", "cache.naver.jp"),
    ip_base="125.209.222.0",
    adoption_target=82,
    packets_per_app=41.3,
    templates=(
        RequestTemplate(
            name="matome",
            method="GET",
            path="/matome/feed",
            query=(P("page", "sequence"), P("fmt", "literal", literal="json")),
            cookies=(P("NID_SES", "session_token", length=40),),
            weight=3.0,
        ),
        RequestTemplate(
            name="static",
            method="GET",
            path="/static/css/m.css",
            host_index=1,
            weight=1.0,
        ),
    ),
)

RAKUTEN = ServiceSpec(
    name="rakuten",
    category="webapi",
    hosts=("app.rakuten.co.jp", "image.rakuten.co.jp"),
    ip_base="133.237.16.0",
    adoption_target=56,
    packets_per_app=9.0,
    templates=(
        RequestTemplate(
            name="ichiba_api",
            method="GET",
            path="/services/api/IchibaItem/Search/20120123",
            query=(
                P("applicationId", "app_token", length=19),
                P("keyword", "random_hex", length=6),
                P("format", "literal", literal="json"),
            ),
            weight=2.0,
        ),
        RequestTemplate(
            name="item_img",
            method="GET",
            path="/img/item",
            host_index=1,
            query=(P("i", "random_digits", length=9),),
            weight=1.5,
        ),
    ),
)

FC2 = ServiceSpec(
    name="fc2",
    category="content",
    hosts=("blog.fc2.com",),
    ip_base="208.71.104.0",
    adoption_target=52,
    packets_per_app=3.1,
    templates=(
        RequestTemplate(
            name="entry",
            method="GET",
            path="/entry",
            query=(P("no", "random_digits", length=5),),
            cookies=(P("fc2_sid", "session_token", length=24),),
            weight=1.0,
        ),
    ),
)

MBGA = ServiceSpec(
    name="mbga",
    category="content",
    hosts=("img.mbga.jp", "sp.mbga.jp"),
    ip_base="202.238.103.0",
    adoption_target=45,
    packets_per_app=12.0,
    templates=(
        RequestTemplate(
            name="avatar",
            method="GET",
            path="/img/avatar",
            query=(P("u", "random_digits", length=8),),
            weight=2.0,
        ),
        RequestTemplate(
            name="portal",
            method="GET",
            path="/portal/top",
            host_index=1,
            cookies=(P("sp_sid", "session_token", length=32),),
            weight=1.0,
        ),
    ),
)

GREE = ServiceSpec(
    name="gree",
    category="webapi",
    hosts=("os-sp.gree.jp",),
    ip_base="210.157.1.0",
    adoption_target=45,
    packets_per_app=5.1,
    templates=(
        RequestTemplate(
            name="api",
            method="GET",
            path="/api/rest/people/@me/@self",
            query=(P("oauth_nonce", "random_hex", length=16), P("oauth_timestamp", "timestamp")),
            cookies=(P("gssid", "session_token", length=32),),
            weight=1.0,
        ),
    ),
)

MEDIBA_PORTAL = ServiceSpec(
    name="mediba_portal",
    category="content",
    hosts=("sp.mediba.jp",),
    ip_base="210.173.178.0",  # same operator block as medibaad.com
    adoption_target=48,
    packets_per_app=8.9,
    templates=(
        RequestTemplate(
            name="portal",
            method="GET",
            path="/news/list",
            query=(P("cat", "random_digits", length=2), P("page", "sequence")),
            cookies=(P("au_sid", "session_token", length=20),),
            weight=1.0,
        ),
    ),
)

#: All shared benign services.
WEB_SERVICES: tuple[ServiceSpec, ...] = (
    GOOGLE_ANALYTICS,
    GOOGLE_API,
    GSTATIC,
    GGPHT,
    YAHOO_JP,
    NAVER_JP,
    RAKUTEN,
    FC2,
    MBGA,
    GREE,
    MEDIBA_PORTAL,
)


def build_web_services() -> list[Service]:
    """Instantiate the shared benign-service catalog."""
    return [Service(spec) for spec in WEB_SERVICES]


# -- app-specific backends ------------------------------------------------------

_TLDS = ("com", "jp", "net", "co.jp", "info")


def make_own_backend(package: str, rng: Random, *, leaky: bool = False) -> Service:
    """A backend service unique to one application.

    Every app talks to one to three hosts of its own (its developer's API
    and CDN) — this is the long tail of destinations behind Fig 2's fan-out
    and most of the dataset's normal traffic.  With ``leaky=True`` the
    developer's own tracking endpoint also receives the plain Android ID or
    IMEI (a small number of apps do this in the paper: Table III counts
    75-94 distinct destinations for those identifiers, far more than there
    are ad networks).
    """
    stem = package.split(".")[-1][:12] or "app"
    tld = rng.choice(_TLDS)
    domain = f"{stem}-app.{tld}"
    hosts = [f"api.{domain}"]
    if rng.random() < 0.8:
        hosts.append(f"cdn.{domain}")
    base = f"{rng.randrange(1, 223)}.{rng.randrange(256)}.{rng.randrange(256)}.0"
    query: tuple[Param, ...] = (
        P("v", "literal", literal="1"),
        P("session", "session_token", length=16),
        P("r", "sequence"),
    )
    if leaky:
        # Developers copy what the ad SDKs do: some send the raw Android ID
        # or IMEI, others hash it first (paper Section III-B).
        choice = rng.random()
        if choice < 0.5:
            query = query + (P.ident("aid", IK.ANDROID_ID, probability=0.8),)
        elif choice < 0.75:
            query = query + (P.ident("huid", IK.ANDROID_ID, TF.MD5, probability=0.8),)
        else:
            query = query + (P.ident("dvid", IK.IMEI, probability=0.8),)
    templates: list[RequestTemplate] = [
        RequestTemplate(name="api", method="GET", path=f"/v1/{stem}/feed", query=query, weight=2.5),
    ]
    if len(hosts) > 1:
        templates.append(
            RequestTemplate(
                name="asset",
                method="GET",
                path="/assets/pack.json",
                host_index=1,
                query=(P("rev", "random_hex", length=8),),
                weight=1.5,
            )
        )
    spec = ServiceSpec(
        name=f"own:{domain}",
        category="own",
        hosts=tuple(hosts),
        ip_base=base,
        templates=tuple(templates),
        packets_per_app=0.0,  # rate decided by the app, not the catalog
    )
    return Service(spec)


def make_browser_service(index: int, rng: Random) -> Service:
    """One site visited through an app's embedded WebView browser."""
    tld = rng.choice(_TLDS)
    domain = f"site{index:03d}-news.{tld}"
    base = f"{rng.randrange(1, 223)}.{rng.randrange(256)}.{rng.randrange(256)}.0"
    spec = ServiceSpec(
        name=f"browser:{domain}",
        category="browser",
        hosts=(f"www.{domain}",),
        ip_base=base,
        templates=(
            RequestTemplate(
                name="page",
                method="GET",
                path="/index.html",
                query=(P("ref", "literal", literal="app"),),
                cookies=(P("sid", "session_token", length=18),),
                weight=1.0,
            ),
        ),
        packets_per_app=0.0,
    )
    return Service(spec)
