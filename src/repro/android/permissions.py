"""The Android permission framework (paper Section II-B, Table I).

Android API level 15 defines 125 permissions; the paper's analysis cares
about four groups: ``INTERNET``, location, phone state, and contacts.  We
model a representative registry (the sensitive ones exactly, plus the
common benign ones apps of the era requested) and the manifest analysis
that produces Table I.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PermissionCategory(enum.Enum):
    """Coarse grouping used by the paper's problem analysis."""

    NETWORK = "network"
    LOCATION = "location"
    PHONE_STATE = "phone_state"
    CONTACTS = "contacts"
    BENIGN = "benign"


@dataclass(frozen=True, slots=True)
class Permission:
    """One manifest permission.

    :param name: the ``android.permission.*`` constant (short form).
    :param category: coarse category for the Table I analysis.
    :param protection: Android protection level (``normal``/``dangerous``).
    """

    name: str
    category: PermissionCategory
    protection: str = "dangerous"

    def __str__(self) -> str:
        return self.name


# -- the permissions the paper's analysis distinguishes ----------------------

INTERNET = Permission("INTERNET", PermissionCategory.NETWORK)
ACCESS_FINE_LOCATION = Permission("ACCESS_FINE_LOCATION", PermissionCategory.LOCATION)
ACCESS_COARSE_LOCATION = Permission("ACCESS_COARSE_LOCATION", PermissionCategory.LOCATION)
READ_PHONE_STATE = Permission("READ_PHONE_STATE", PermissionCategory.PHONE_STATE)
READ_CONTACTS = Permission("READ_CONTACTS", PermissionCategory.CONTACTS)

# -- common benign permissions (do not gate sensitive information) ----------

ACCESS_NETWORK_STATE = Permission("ACCESS_NETWORK_STATE", PermissionCategory.BENIGN, "normal")
VIBRATE = Permission("VIBRATE", PermissionCategory.BENIGN, "normal")
WAKE_LOCK = Permission("WAKE_LOCK", PermissionCategory.BENIGN, "normal")
WRITE_EXTERNAL_STORAGE = Permission("WRITE_EXTERNAL_STORAGE", PermissionCategory.BENIGN)
CAMERA = Permission("CAMERA", PermissionCategory.BENIGN)
RECORD_AUDIO = Permission("RECORD_AUDIO", PermissionCategory.BENIGN)
GET_ACCOUNTS = Permission("GET_ACCOUNTS", PermissionCategory.BENIGN)
RECEIVE_BOOT_COMPLETED = Permission("RECEIVE_BOOT_COMPLETED", PermissionCategory.BENIGN, "normal")

#: All registered permissions, keyed by name.
REGISTRY: dict[str, Permission] = {
    p.name: p
    for p in (
        INTERNET,
        ACCESS_FINE_LOCATION,
        ACCESS_COARSE_LOCATION,
        READ_PHONE_STATE,
        READ_CONTACTS,
        ACCESS_NETWORK_STATE,
        VIBRATE,
        WAKE_LOCK,
        WRITE_EXTERNAL_STORAGE,
        CAMERA,
        RECORD_AUDIO,
        GET_ACCOUNTS,
        RECEIVE_BOOT_COMPLETED,
    )
}

#: Permissions granting access to the sensitive information of Section III-A.
DANGEROUS_INFO_PERMISSIONS: frozenset[PermissionCategory] = frozenset(
    {
        PermissionCategory.LOCATION,
        PermissionCategory.PHONE_STATE,
        PermissionCategory.CONTACTS,
    }
)


@dataclass(frozen=True)
class Manifest:
    """An application's declared permission set.

    :param package: the application package name.
    :param permissions: the requested permissions.
    """

    package: str
    permissions: frozenset[Permission] = field(default_factory=frozenset)

    def holds(self, permission: Permission) -> bool:
        return permission in self.permissions

    def holds_category(self, category: PermissionCategory) -> bool:
        return any(p.category is category for p in self.permissions)

    @property
    def has_internet(self) -> bool:
        return self.holds(INTERNET)

    @property
    def is_dangerous_combination(self) -> bool:
        """INTERNET plus at least one sensitive-information permission —
        the 61% class of the paper's Table I."""
        if not self.has_internet:
            return False
        return any(self.holds_category(c) for c in DANGEROUS_INFO_PERMISSIONS)


def classify_manifest(manifest: Manifest) -> tuple[bool, bool, bool, bool]:
    """Table I row key: (INTERNET, LOCATION, PHONE_STATE, CONTACTS) flags."""
    return (
        manifest.has_internet,
        manifest.holds_category(PermissionCategory.LOCATION),
        manifest.holds_category(PermissionCategory.PHONE_STATE),
        manifest.holds_category(PermissionCategory.CONTACTS),
    )


def table1_counts(manifests: list[Manifest]) -> dict[tuple[bool, bool, bool, bool], int]:
    """Histogram of Table I row keys over an application population."""
    counts: dict[tuple[bool, bool, bool, bool], int] = {}
    for manifest in manifests:
        key = classify_manifest(manifest)
        counts[key] = counts.get(key, 0) + 1
    return counts


def is_internet_only(manifest: Manifest) -> bool:
    """The paper's strict "require only the INTERNET permission" class.

    Table I's 302-app top row counts manifests whose *entire* permission
    set is ``{INTERNET}`` — an app with INTERNET plus a benign permission
    (VIBRATE, WAKE_LOCK ...) is not in it, even though it shares the same
    four-flag row key.
    """
    return manifest.permissions == frozenset({INTERNET})


def internet_only_count(manifests: list[Manifest]) -> int:
    """Number of strictly-INTERNET-only manifests (Table I top row)."""
    return sum(1 for manifest in manifests if is_internet_only(manifest))
